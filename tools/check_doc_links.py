#!/usr/bin/env python3
"""Checks relative Markdown links in README.md and docs/*.md.

Every `[text](target)` whose target is not an absolute URL or a pure
anchor must point at an existing file (or directory) relative to the
linking document.  Exits non-zero listing every broken link — the CI
docs job runs this so documentation restructures cannot orphan links.

Usage: python3 tools/check_doc_links.py [repo_root]
"""

import os
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def links_of(path):
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    # Fenced code blocks routinely contain bracketed sweep specs like
    # "[--grid SPEC]" — strip them before matching.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    text = re.sub(r"`[^`\n]*`", "", text)
    return LINK.findall(text)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    documents = []
    readme = os.path.join(root, "README.md")
    if os.path.exists(readme):
        documents.append(readme)
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                documents.append(os.path.join(docs_dir, name))

    broken = []
    checked = 0
    for document in documents:
        base = os.path.dirname(document)
        for target in links_of(document):
            if target.startswith(SKIP_PREFIXES):
                continue
            checked += 1
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not os.path.exists(os.path.join(base, relative)):
                broken.append(f"{document}: broken link -> {target}")
    for line in broken:
        print(line, file=sys.stderr)
    print(f"checked {checked} relative link(s) in {len(documents)} file(s), "
          f"{len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
