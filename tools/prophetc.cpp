// prophetc — command-line front end to the Performance Prophet pipeline.
//
//   prophetc check <model> [--mcf <mcf.xml>]
//   prophetc generate <model> [-o out.cpp] [--main]
//   prophetc estimate <model> [--sp <sp.xml>] [--np N] [--nodes N]
//                     [--ppn N] [--nt N] [--backend KIND]
//                     [--trace out.tf] [--gantt] [--timings]
//                     [--metrics out.json] [--trace-json out.json]
//   prophetc outline <model>
//   prophetc models [--names] [--grid @name]
//   prophetc sweep <model>... [--grid SPEC] [--sp <sp.xml>]
//                  [--backend KIND] [--max-rel-error X]
//                  [--threads N] [--batch-lanes N] [--csv out.csv] [--seed S]
//                  [--no-check] [--no-codegen] [--isolate]
//                  [--metrics out.json] [--trace-json out.json] [--progress]
//                  [--job-timeout S] [--deadline S] [--limit-sim-events N]
//                  [--limit-vm-instructions N] [--limit-replay-events N]
//                  [--limit-loop-trips N] [--inject-faults SPEC]
//                  [--fault-seed S]
//   prophetc --version
//
// <model> is an XMI file (see prophet/xmi) or a registry reference
// "@name" / "@name(knob=value, ...)" resolved against the built-in
// workload library — `prophetc models` lists it; --sp loads the SP
// element of Fig. 2 from XML, the individual flags override it.  sweep
// expands --grid cross-products like "np=1..8:*2 nodes=1,2" over every
// input model; without --sp, a registry reference's grid expands over
// the entry's default system parameters (estimate does the same).
// --backend selects the estimation engines: the discrete-event
// simulator (default), the closed-form analytic estimator, the
// compiled-code evaluator (codegen: prepare emits specialized C++ from
// the shared lowering, builds it with the host toolchain and dlopen's
// it), or any cross-validating combination — both (sim+analytic),
// sim+codegen, analytic+codegen, all.  Cross-validating kinds run one
// engine as reference (sim when selected, else codegen) and report
// every other engine's relative error (--max-rel-error fails a sweep
// whose worst error exceeds the bound).  Sweeps compile each model once
// (parse, check, transform, prepare) and evaluate all its scenarios
// against the cached result; --isolate restores the
// re-run-everything-per-job pipeline.  Predictions are bit-identical
// either way.  --batch-lanes sets the sweep's lane width: same-model
// scenario runs are grouped into chunks of N and evaluated through the
// backends' batched path (0, the default, picks the width
// automatically; 1 disables batching).  Batched and scalar sweeps are
// bit-identical on every deterministic CSV column.  estimate --timings
// reports the prepare/evaluate split, including the time prepare spent
// compiling cost expressions to bytecode.
//
// Observability: --metrics exports the run's metric registry (engine
// counters, lowering stats, host timers) as prophet-metrics-1 JSON;
// --trace-json exports a Chrome trace-event file (load in Perfetto or
// chrome://tracing) with host spans on worker lanes plus the simulated
// timeline mapped to one pid per rank; sweep --progress prints a
// heartbeat to stderr.  None of it changes predictions: instrumented
// and uninstrumented runs are bit-identical.
//
// Guardrails: --job-timeout bounds each job's wall clock, --deadline the
// whole sweep, and the --limit-* flags the cooperative evaluation loops
// (DES events, expression-VM instructions, analytic replay events, loop
// trips).  A job that trips a bound is marked failed — the CSV's
// tripped_limit column names it — while the rest of the sweep completes;
// Ctrl-C cancels cooperatively, draining workers and still writing the
// partial CSV, metrics and the final progress line.  Unlimited runs pay
// nothing and stay bit-identical.  --inject-faults "site[@N|%P], ..."
// deterministically fails pipeline stages (parse, check, transform,
// lower, prepare, estimate; "cancel@E" arms a mid-simulation
// cancellation at event E) to exercise error paths; --fault-seed selects
// the probabilistic-rule stream.
//
// Every parse error prints usage and exits non-zero; flags are accepted
// as `--flag value` or `--flag=value`.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "prophet/analytic/backend.hpp"
#include "prophet/cgen/backend.hpp"
#include "prophet/estimator/backend.hpp"
#include "prophet/guard/guard.hpp"
#include "prophet/lower/lower.hpp"
#include "prophet/models/registry.hpp"
#include "prophet/obs/obs.hpp"
#include "prophet/pipeline/batch.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/prophet.hpp"
#include "prophet/traverse/traverse.hpp"
#include "prophet/xml/parser.hpp"
#include "prophet/xmi/xmi.hpp"

#ifndef PROPHET_VERSION
#define PROPHET_VERSION "unknown"
#endif

namespace {

namespace estimator = prophet::estimator;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  prophetc check <model> [--mcf <mcf.xml>]\n"
      "  prophetc generate <model> [-o out.cpp] [--main]\n"
      "  prophetc estimate <model> [--sp <sp.xml>] [--np N] "
      "[--nodes N] [--ppn N] [--nt N] "
      "[--backend sim|analytic|codegen|both|sim+codegen|analytic+codegen|"
      "all] "
      "[--trace out.tf] [--gantt] [--timings] [--metrics out.json] "
      "[--trace-json out.json]\n"
      "  prophetc outline <model>\n"
      "  prophetc models [--names] [--grid @name]\n"
      "  prophetc sweep <model>... [--grid SPEC] [--sp <sp.xml>] "
      "[--backend sim|analytic|codegen|both|sim+codegen|analytic+codegen|"
      "all] "
      "[--max-rel-error X] [--threads N] [--batch-lanes N] "
      "[--csv out.csv] [--seed S] [--no-check] [--no-codegen] [--isolate] "
      "[--metrics out.json] [--trace-json out.json] [--progress] "
      "[--job-timeout S] [--deadline S] [--limit-sim-events N] "
      "[--limit-vm-instructions N] [--limit-replay-events N] "
      "[--limit-loop-trips N] [--inject-faults SPEC] [--fault-seed S]\n"
      "  prophetc --version\n"
      "\n"
      "<model> is an XMI file or a built-in reference "
      "\"@name(knob=value, ...)\".\n"
      "built-in models: %s\n",
      prophet::models::Registry::builtin().available().c_str());
  return 2;
}

[[nodiscard]] int parse_error(const std::string& message) {
  std::fprintf(stderr, "prophetc: %s\n", message.c_str());
  return usage();
}

/// Splits "--flag=value" tokens so every command loop only sees the
/// `--flag value` shape.
std::vector<std::string> normalize(const std::vector<std::string>& args) {
  std::vector<std::string> out;
  out.reserve(args.size());
  for (const auto& arg : args) {
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        out.push_back(arg.substr(0, eq));
        out.push_back(arg.substr(eq + 1));
        continue;
      }
    }
    out.push_back(arg);
  }
  return out;
}

/// The value of flag `args[i]`, or nullopt (caller reports the error).
/// An empty value (e.g. a bare `--csv=`) counts as missing.
std::optional<std::string> flag_value(const std::vector<std::string>& args,
                                      std::size_t& i) {
  if (i + 1 >= args.size() || args[i + 1].empty()) {
    return std::nullopt;
  }
  return args[++i];
}

std::optional<int> parse_int(const std::string& text) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < -2147483647L ||
      value > 2147483647L) {
    return std::nullopt;
  }
  return static_cast<int>(value);
}

std::optional<double> parse_double(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return std::nullopt;
  }
  return value;
}

/// Common handler for `--flag <int>` updating `target`; returns false on
/// a reported parse error.
bool take_int(const std::vector<std::string>& args, std::size_t& i,
              int& target, std::string* error) {
  const std::string flag = args[i];
  const auto value = flag_value(args, i);
  if (!value) {
    *error = flag + " requires a value";
    return false;
  }
  const auto parsed = parse_int(*value);
  if (!parsed) {
    *error = flag + ": '" + *value + "' is not an integer";
    return false;
  }
  target = *parsed;
  return true;
}

/// Common handler for `--flag <count>` updating a 64-bit unsigned
/// `target`; returns false on a reported parse error.
bool take_uint64(const std::vector<std::string>& args, std::size_t& i,
                 std::uint64_t& target, std::string* error) {
  const std::string flag = args[i];
  const auto value = flag_value(args, i);
  if (!value) {
    *error = flag + " requires a value";
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const std::uint64_t parsed = std::strtoull(value->c_str(), &end, 10);
  // strtoull wraps negative input instead of failing; reject it.
  if (end == value->c_str() || *end != '\0' || errno == ERANGE ||
      value->find('-') != std::string::npos) {
    *error = flag + ": '" + *value + "' is not a 64-bit unsigned integer";
    return false;
  }
  target = parsed;
  return true;
}

/// Common handler for `--flag <seconds>` updating `target`; requires a
/// strictly positive value, returns false on a reported parse error.
bool take_seconds(const std::vector<std::string>& args, std::size_t& i,
                  double& target, std::string* error) {
  const std::string flag = args[i];
  const auto value = flag_value(args, i);
  if (!value) {
    *error = flag + " requires a value";
    return false;
  }
  const auto parsed = parse_double(*value);
  if (!parsed || !(*parsed > 0)) {
    *error = flag + ": '" + *value + "' is not a positive number of seconds";
    return false;
  }
  target = *parsed;
  return true;
}

/// Sweep-scoped cancellation target of the SIGINT handler.  The handler
/// only flips the budget's atomic cancel flag (async-signal-safe); the
/// workers observe it at their next check site and the sweep drains,
/// still flushing the partial CSV, metrics and final progress callback.
std::atomic<prophet::guard::Budget*> g_interrupt_budget{nullptr};

void handle_interrupt(int /*signum*/) {
  if (auto* budget = g_interrupt_budget.load(std::memory_order_relaxed)) {
    budget->cancel();
  }
}

int cmd_check(const prophet::Prophet& prophet,
              const std::vector<std::string>& args) {
  prophet::check::ModelChecker checker;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--mcf") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--mcf requires a value");
      }
      checker.configure(prophet::xml::parse_file(*value));
    } else {
      return parse_error("check: unexpected argument '" + args[i] + "'");
    }
  }
  const auto diagnostics = checker.check(prophet.model());
  std::printf("%s", diagnostics.to_string().c_str());
  std::printf("%zu error(s), %zu warning(s)\n", diagnostics.error_count(),
              diagnostics.warning_count());
  return diagnostics.ok() ? 0 : 1;
}

int cmd_generate(const prophet::Prophet& prophet,
                 const std::vector<std::string>& args) {
  prophet::codegen::TransformOptions options;
  std::string output;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("-o requires a value");
      }
      output = *value;
    } else if (args[i] == "--main") {
      options.emit_main = true;
    } else {
      return parse_error("generate: unexpected argument '" + args[i] + "'");
    }
  }
  const std::string cpp = prophet.transform(options);
  if (output.empty()) {
    std::printf("%s", cpp.c_str());
  } else {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", output.c_str());
      return 1;
    }
    out << cpp;
    std::printf("wrote %s (%zu bytes)\n", output.c_str(), cpp.size());
  }
  return 0;
}

/// Seconds since `start` (used by `estimate --timings`).
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Folds a prepared model's lowering statistics under "lower." — the
/// cells `--timings` formats and `--metrics` exports.
void fold_lowering(prophet::obs::Registry& registry,
                   const prophet::lower::LoweringStats& stats) {
  registry.counter("lower.expr_programs").add(stats.expr_programs);
  registry.counter("lower.nodes").add(stats.nodes);
  registry.counter("lower.slots").add(stats.slots);
  registry.counter("lower.guards").add(stats.guards);
  registry.counter("lower.functions").add(stats.functions);
  registry.counter("lower.variables").add(stats.variables);
  registry.counter("lower.fragment_assignments")
      .add(stats.fragment_assignments);
  registry.counter("lower.bytecode_bytes").add(stats.bytecode_bytes);
  registry.timer("lower.expr_compile_seconds")
      .add_seconds(stats.expr_compile_seconds);
}

/// Two `--timings` lines per backend, formatted from the metric
/// registry — the same cells `--metrics` exports, so the printed numbers
/// and the JSON document cannot disagree.  The lowering counts are the
/// shared lower::ModelProgram's; every backend consuming one lowering
/// reports identical counts on its second line.
std::string timings_line(const prophet::obs::Registry& registry,
                         std::string_view backend) {
  const std::string prefix = "host." + std::string(backend);
  char line[288];
  std::snprintf(line, sizeof(line),
                "%s: prepare %.6f s (expr compile %.6f s, %zu programs), "
                "estimate %.6f s\n"
                "%s: lowering %zu nodes, %zu slots, %zu bytecode bytes\n",
                std::string(backend).c_str(),
                registry.timer_seconds(prefix + ".prepare_seconds"),
                registry.timer_seconds("lower.expr_compile_seconds"),
                static_cast<std::size_t>(
                    registry.counter_value("lower.expr_programs")),
                registry.timer_seconds(prefix + ".estimate_seconds"),
                std::string(backend).c_str(),
                static_cast<std::size_t>(
                    registry.counter_value("lower.nodes")),
                static_cast<std::size_t>(
                    registry.counter_value("lower.slots")),
                static_cast<std::size_t>(
                    registry.counter_value("lower.bytecode_bytes")));
  return line;
}

/// Writes `text` to `path`; reports and returns false on I/O failure.
bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

int cmd_estimate(const prophet::Prophet& prophet,
                 const std::vector<std::string>& args,
                 prophet::machine::SystemParameters params,
                 const std::string& model_name,
                 std::chrono::steady_clock::time_point epoch,
                 double load_seconds) {
  std::string trace_path;
  std::string metrics_path;
  std::string trace_json_path;
  bool gantt = false;
  bool timings = false;
  auto backend = estimator::BackendKind::Simulation;
  std::string error;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--sp") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--sp requires a value");
      }
      params = prophet::machine::SystemParameters::load(*value);
    } else if (args[i] == "--np") {
      if (!take_int(args, i, params.processes, &error)) {
        return parse_error(error);
      }
    } else if (args[i] == "--nodes") {
      if (!take_int(args, i, params.nodes, &error)) {
        return parse_error(error);
      }
    } else if (args[i] == "--ppn") {
      if (!take_int(args, i, params.processors_per_node, &error)) {
        return parse_error(error);
      }
    } else if (args[i] == "--nt") {
      if (!take_int(args, i, params.threads_per_process, &error)) {
        return parse_error(error);
      }
    } else if (args[i] == "--backend") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--backend requires a value");
      }
      const auto kind = estimator::backend_from_string(*value);
      if (!kind) {
        return parse_error("--backend: unknown backend '" + *value +
                           "' (expected sim, analytic, codegen, both, "
                           "sim+codegen, analytic+codegen or all)");
      }
      backend = *kind;
    } else if (args[i] == "--trace") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--trace requires a value");
      }
      trace_path = *value;
    } else if (args[i] == "--gantt") {
      gantt = true;
    } else if (args[i] == "--timings") {
      timings = true;
    } else if (args[i] == "--metrics") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--metrics requires a value");
      }
      metrics_path = *value;
    } else if (args[i] == "--trace-json") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--trace-json requires a value");
      }
      trace_json_path = *value;
    } else {
      return parse_error("estimate: unexpected argument '" + args[i] + "'");
    }
  }

  const estimator::BackendSet selected = estimator::backends_of(backend);
  if (backend != estimator::BackendKind::Simulation &&
      (!trace_path.empty() || gantt)) {
    return parse_error(
        "--trace/--gantt need a simulation (use --backend sim)");
  }

  // One registry backs --metrics and --timings (the printed numbers are
  // the exported ones); one trace log backs --trace-json.  Neither feeds
  // back into the engines: predictions are bit-identical either way.
  prophet::obs::Registry registry;
  prophet::obs::TraceLog trace_log(epoch);
  prophet::obs::Registry* metrics =
      (!metrics_path.empty() || timings) ? &registry : nullptr;
  prophet::obs::TraceLog* log =
      trace_json_path.empty() ? nullptr : &trace_log;
  const bool want_sim_timeline = log != nullptr && selected.sim;
  if (log != nullptr) {
    trace_log.name_process(0, "prophetc estimate (host)");
    trace_log.name_thread(0, 0, "main");
    trace_log.complete(0.0, load_seconds * 1e6, 0, 0, "parse " + model_name,
                       "host.parse");
  }

  const auto write_outputs = [&]() -> bool {
    bool ok = true;
    if (!metrics_path.empty()) {
      ok = write_file(metrics_path, registry.to_json()) && ok;
      if (ok) {
        std::printf("metrics written to %s (%zu cells)\n",
                    metrics_path.c_str(), registry.size());
      }
    }
    if (!trace_json_path.empty()) {
      ok = write_file(trace_json_path, trace_log.to_chrome_json()) && ok;
      if (ok) {
        std::printf("trace json written to %s (%zu spans)\n",
                    trace_json_path.c_str(), trace_log.span_count());
      }
    }
    return ok;
  };

  std::string timing_report;

  // The selected engines evaluate reference-first: the reference prints
  // the full summary (and owns the event trace when it is the
  // simulator), every other backend reports its relative error against
  // it.  All consume one shared lowering — backends only differ in how
  // they evaluate the lower::ModelProgram — so `--timings` reports one
  // expression-compile cost and identical lowering counts per backend.
  struct Engine {
    estimator::BackendKind kind;
    const char* name;
  };
  std::vector<Engine> engines;
  const estimator::BackendKind reference = selected.reference();
  const auto add = [&](bool on, estimator::BackendKind kind,
                       const char* name) {
    if (!on) {
      return;
    }
    if (kind == reference) {
      engines.insert(engines.begin(), Engine{kind, name});
    } else {
      engines.push_back(Engine{kind, name});
    }
  };
  add(selected.sim, estimator::BackendKind::Simulation, "sim");
  add(selected.codegen, estimator::BackendKind::Codegen, "codegen");
  add(selected.analytic, estimator::BackendKind::Analytic, "analytic");

  prophet::lower::ModelProgramPtr program;
  {
    const prophet::obs::TraceLog::HostSpan span(log, 0, 0,
                                                "lower " + model_name,
                                                "host.lower");
    program = prophet::lower::lower(prophet.model());
  }
  fold_lowering(registry, program->stats());

  estimator::PredictionReport report;  // the reference engine's
  std::string candidate_lines;
  for (std::size_t index = 0; index < engines.size(); ++index) {
    const Engine& engine = engines[index];
    const bool is_reference = index == 0;
    const auto factory = prophet::cgen::make_backend(engine.kind);
    // Route through the Backend prepare()/estimate() split
    // (bit-identical to the one-shot path per the PreparedModel
    // contract) so the prepare cost — expression compilation, and for
    // codegen the toolchain run — is measurable.
    const auto prepare_started = std::chrono::steady_clock::now();
    std::unique_ptr<estimator::PreparedModel> prepared;
    {
      const prophet::obs::TraceLog::HostSpan span(
          log, 0, 0, std::string("prepare ") + engine.name, "host.prepare");
      prepared = factory->prepare(program);
    }
    registry.timer("host." + std::string(engine.name) + ".prepare_seconds")
        .add_seconds(seconds_since(prepare_started));
    if (const auto* codegen =
            dynamic_cast<const prophet::cgen::CodegenPrepared*>(
                prepared.get())) {
      registry.timer("codegen.prepare_seconds")
          .add_seconds(codegen->prepare_seconds());
      registry.counter("codegen.cache_hits")
          .add(codegen->cache_hit() ? 1 : 0);
    }
    estimator::EstimationOptions options;
    options.metrics = metrics;
    options.collect_trace =
        is_reference && engine.kind == estimator::BackendKind::Simulation &&
        (!trace_path.empty() || gantt || want_sim_timeline);
    options.collect_machine_report = is_reference;
    const auto estimate_started = std::chrono::steady_clock::now();
    estimator::PredictionReport engine_report;
    {
      const prophet::obs::TraceLog::HostSpan span(
          log, 0, 0, std::string("estimate ") + engine.name, "host.estimate");
      engine_report = prepared->estimate(params, options);
    }
    registry.timer("host." + std::string(engine.name) + ".estimate_seconds")
        .add_seconds(seconds_since(estimate_started));
    if (timings) {
      timing_report += timings_line(registry, engine.name);
    }
    if (is_reference) {
      report = std::move(engine_report);
      continue;
    }
    // Same convention as the batch pipeline: a zero reference time with
    // a nonzero candidate prediction is total disagreement, not zero
    // error.
    double rel_error = 0;
    if (report.predicted_time > 0) {
      rel_error =
          std::abs(engine_report.predicted_time - report.predicted_time) /
          report.predicted_time;
    } else if (engine_report.predicted_time > 0) {
      rel_error = std::numeric_limits<double>::infinity();
    }
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%s time:  %.12f s (relative error %.6f)\n", engine.name,
                  engine_report.predicted_time, rel_error);
    candidate_lines += line;
  }
  std::printf("%s", report.summary().c_str());
  std::printf("%s", candidate_lines.c_str());
  if (!timing_report.empty()) {
    std::printf("-- timings --\n%s", timing_report.c_str());
  }
  if (!trace_path.empty()) {
    report.trace.save(trace_path);
    std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                report.trace.size());
  }
  if (gantt) {
    std::printf("%s", report.trace.gantt().c_str());
  }
  if (want_sim_timeline) {
    trace_log.append_simulated(report.trace, 1000, model_name);
  }
  return write_outputs() ? 0 : 1;
}

// Registers one sweep input — an XMI file path or a registry reference
// ("@name", "@name(knob=value, ...)") — and returns its model index.
// The registry reports unknown models/knobs with the valid alternatives.
int add_sweep_model(prophet::pipeline::BatchRunner& runner,
                    const std::string& input) {
  if (prophet::models::is_reference(input)) {
    return runner.add_model_reference(input);
  }
  return runner.add_model_file(input);
}

// Loads an XMI file or resolves a registry reference.  For references,
// `base_params` (when non-null) receives the registry entry's default
// system parameters (e.g. @pingpong wants np = 2).
prophet::Prophet load_model(const std::string& input,
                            prophet::machine::SystemParameters* base_params) {
  if (prophet::models::is_reference(input)) {
    const auto reference = prophet::models::parse_reference(input);
    const auto& entry =
        prophet::models::Registry::builtin().at(reference.name);
    if (base_params != nullptr) {
      *base_params = entry.default_params;
    }
    return prophet::Prophet(entry.make(reference.knobs));
  }
  return prophet::Prophet::load(input);
}

int cmd_models(const std::vector<std::string>& args) {
  const auto& registry = prophet::models::Registry::builtin();
  bool names_only = false;
  std::string grid_of;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--names") {
      names_only = true;
    } else if (args[i] == "--grid") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--grid requires a value (a @name reference)");
      }
      grid_of = *value;
    } else {
      return parse_error("models: unexpected argument '" + args[i] + "'");
    }
  }
  if (!grid_of.empty()) {
    const auto reference = prophet::models::parse_reference(grid_of);
    std::printf("%s\n", registry.at(reference.name).default_grid.c_str());
    return 0;
  }
  if (names_only) {
    for (const auto& name : registry.names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  std::printf("%s", registry.describe().c_str());
  return 0;
}

int cmd_sweep(const std::vector<std::string>& args) {
  prophet::pipeline::BatchOptions options;
  prophet::machine::SystemParameters base;
  bool have_sp = false;
  bool progress = false;
  std::string grid_spec;
  std::string csv_path;
  std::string metrics_path;
  std::string trace_json_path;
  std::optional<double> max_rel_error;
  std::vector<std::string> inputs;
  std::string fault_spec;
  std::uint64_t fault_seed = 0;
  std::string error;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--grid") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--grid requires a value");
      }
      grid_spec = *value;
    } else if (args[i] == "--sp") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--sp requires a value");
      }
      base = prophet::machine::SystemParameters::load(*value);
      have_sp = true;
    } else if (args[i] == "--threads") {
      if (!take_int(args, i, options.threads, &error)) {
        return parse_error(error);
      }
    } else if (args[i] == "--batch-lanes") {
      if (!take_int(args, i, options.batch_lanes, &error)) {
        return parse_error(error);
      }
      if (options.batch_lanes < 0 || options.batch_lanes > 64) {
        return parse_error("--batch-lanes: expected 0 (auto) or 1..64, got " +
                           std::to_string(options.batch_lanes));
      }
    } else if (args[i] == "--csv") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--csv requires a value");
      }
      csv_path = *value;
    } else if (args[i] == "--seed") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--seed requires a value");
      }
      char* end = nullptr;
      errno = 0;
      options.base_seed = std::strtoull(value->c_str(), &end, 10);
      // strtoull wraps negative input instead of failing; reject it.
      if (end == value->c_str() || *end != '\0' || errno == ERANGE ||
          value->find('-') != std::string::npos) {
        return parse_error("--seed: '" + *value +
                           "' is not a 64-bit unsigned integer");
      }
    } else if (args[i] == "--backend") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--backend requires a value");
      }
      const auto kind = estimator::backend_from_string(*value);
      if (!kind) {
        return parse_error("--backend: unknown backend '" + *value +
                           "' (expected sim, analytic, codegen, both, "
                           "sim+codegen, analytic+codegen or all)");
      }
      options.backend = *kind;
    } else if (args[i] == "--max-rel-error") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--max-rel-error requires a value");
      }
      max_rel_error = parse_double(*value);
      // NaN must not slip through: comparisons against it are false, which
      // would silently disable the gate.
      if (!max_rel_error || !(*max_rel_error >= 0)) {
        return parse_error("--max-rel-error: '" + *value +
                           "' is not a non-negative number");
      }
    } else if (args[i] == "--no-check") {
      options.run_checker = false;
    } else if (args[i] == "--no-codegen") {
      options.run_codegen = false;
    } else if (args[i] == "--isolate") {
      options.isolate_jobs = true;
    } else if (args[i] == "--metrics") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--metrics requires a value");
      }
      metrics_path = *value;
    } else if (args[i] == "--trace-json") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--trace-json requires a value");
      }
      trace_json_path = *value;
    } else if (args[i] == "--progress") {
      progress = true;
    } else if (args[i] == "--job-timeout") {
      if (!take_seconds(args, i, options.job_timeout_seconds, &error)) {
        return parse_error(error);
      }
    } else if (args[i] == "--deadline") {
      if (!take_seconds(args, i, options.deadline_seconds, &error)) {
        return parse_error(error);
      }
    } else if (args[i] == "--limit-sim-events") {
      if (!take_uint64(args, i, options.limits.max_sim_events, &error)) {
        return parse_error(error);
      }
    } else if (args[i] == "--limit-vm-instructions") {
      if (!take_uint64(args, i, options.limits.max_vm_instructions, &error)) {
        return parse_error(error);
      }
    } else if (args[i] == "--limit-replay-events") {
      if (!take_uint64(args, i, options.limits.max_replay_events, &error)) {
        return parse_error(error);
      }
    } else if (args[i] == "--limit-loop-trips") {
      if (!take_uint64(args, i, options.limits.max_loop_trips, &error)) {
        return parse_error(error);
      }
    } else if (args[i] == "--inject-faults") {
      const auto value = flag_value(args, i);
      if (!value) {
        return parse_error("--inject-faults requires a value");
      }
      fault_spec = *value;
    } else if (args[i] == "--fault-seed") {
      if (!take_uint64(args, i, fault_seed, &error)) {
        return parse_error(error);
      }
    } else if (!args[i].empty() && args[i][0] == '-') {
      return parse_error("sweep: unknown flag '" + args[i] + "'");
    } else {
      inputs.push_back(args[i]);
    }
  }
  if (inputs.empty()) {
    return parse_error("sweep: no input models");
  }
  if (max_rel_error.has_value() &&
      !estimator::backends_of(options.backend).cross_validates()) {
    return parse_error(
        "--max-rel-error requires a cross-validating --backend "
        "(both, sim+codegen, analytic+codegen or all)");
  }
  options.collect_metrics = !metrics_path.empty();
  options.collect_trace = !trace_json_path.empty();
  // Both outlive runner.run(): options holds raw pointers to them.
  prophet::guard::FaultPlan fault_plan;
  prophet::guard::Budget interrupt_budget;
  if (!fault_spec.empty()) {
    try {
      fault_plan = prophet::guard::FaultPlan::parse(fault_spec, fault_seed);
    } catch (const std::invalid_argument& bad_spec) {
      return parse_error(std::string("--inject-faults: ") + bad_spec.what());
    }
    options.fault_plan = &fault_plan;
  }
  // Ctrl-C cancels cooperatively: the handler flips this budget's atomic
  // flag, every job inherits it through the sweep chain, and the run
  // drains instead of dying mid-write.
  options.sweep_budget = &interrupt_budget;
  if (progress) {
    // Heartbeat on stderr (stdout stays machine-readable): jobs done,
    // throughput, ETA and — in cross-validation sweeps — the worst
    // relative error seen so far.
    options.on_progress =
        [](const prophet::pipeline::BatchProgress& progress) {
          std::fprintf(stderr,
                       "\rsweep: %zu/%zu job(s), %.1f jobs/s, eta %.1f s, "
                       "worst rel err %.6f%s",
                       progress.done, progress.total,
                       progress.jobs_per_second, progress.eta_seconds,
                       progress.worst_rel_error, progress.final ? "\n" : "");
          std::fflush(stderr);
        };
  }

  prophet::pipeline::BatchRunner runner(options);
  for (const auto& input : inputs) {
    const int index = add_sweep_model(runner, input);
    // Without an explicit --sp, a registry reference sweeps over its
    // entry's default system parameters (e.g. @pingpong's np = 2) —
    // the same base the cross-validation tests expand default grids
    // over.  Grid axes still override any field they name.
    prophet::machine::SystemParameters model_base = base;
    if (!have_sp && prophet::models::is_reference(input)) {
      const auto reference = prophet::models::parse_reference(input);
      model_base = prophet::models::Registry::builtin()
                       .at(reference.name)
                       .default_params;
    }
    runner.add_sweep(
        index, prophet::pipeline::ScenarioGrid::parse(grid_spec, model_base));
  }

  g_interrupt_budget.store(&interrupt_budget, std::memory_order_relaxed);
  std::signal(SIGINT, handle_interrupt);
  const auto report = runner.run();
  std::signal(SIGINT, SIG_DFL);
  g_interrupt_budget.store(nullptr, std::memory_order_relaxed);
  if (interrupt_budget.cancel_requested()) {
    std::fprintf(stderr, "sweep: interrupted; partial results follow\n");
  }
  std::printf("%s", report.summary().c_str());
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    out << report.to_csv();
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  if (!metrics_path.empty()) {
    if (!write_file(metrics_path, report.metrics.to_json())) {
      return 1;
    }
    std::printf("metrics written to %s (%zu cells)\n", metrics_path.c_str(),
                report.metrics.size());
  }
  if (!trace_json_path.empty()) {
    if (!write_file(trace_json_path, report.trace.to_chrome_json())) {
      return 1;
    }
    std::printf("trace json written to %s (%zu spans)\n",
                trace_json_path.c_str(), report.trace.span_count());
  }
  const auto stats = report.stats();
  if (max_rel_error.has_value() && stats.max_rel_error > *max_rel_error) {
    std::fprintf(stderr,
                 "prophetc sweep: cross-validation relative error %.6f "
                 "exceeds --max-rel-error %.6f\n",
                 stats.max_rel_error, *max_rel_error);
    return 1;
  }
  return stats.failed == 0 ? 0 : 1;
}

int cmd_outline(const prophet::Prophet& prophet,
                const std::vector<std::string>& args) {
  if (!args.empty()) {
    return parse_error("outline: unexpected argument '" + args[0] + "'");
  }
  prophet::traverse::DepthFirstNavigator navigator;
  prophet::traverse::OutlineHandler outline;
  prophet::traverse::Traverser traverser;
  traverser.traverse(prophet.model(), navigator, outline);
  std::printf("%s", outline.text().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> raw;
  for (int i = 1; i < argc; ++i) {
    raw.emplace_back(argv[i]);
  }
  if (!raw.empty() && (raw[0] == "--version" || raw[0] == "-V")) {
    std::printf("prophetc (Performance Prophet) %s\n", PROPHET_VERSION);
    return 0;
  }
  if (raw.empty()) {
    return parse_error("missing command");
  }
  const std::string command = raw[0];
  const bool known = command == "check" || command == "generate" ||
                     command == "estimate" || command == "outline" ||
                     command == "models" || command == "sweep";
  if (!known) {
    return parse_error("unknown command '" + command + "'");
  }
  try {
    if (command == "models") {
      return cmd_models(normalize({raw.begin() + 1, raw.end()}));
    }
    if (raw.size() < 2) {
      return parse_error(command + ": missing <model>");
    }
    if (command == "sweep") {
      // sweep takes N models mixed with flags in any order, so every
      // token after the command is normalized and parsed by cmd_sweep.
      return cmd_sweep(normalize({raw.begin() + 1, raw.end()}));
    }
    const std::string model_path = raw[1];
    if (!model_path.empty() && model_path[0] == '-') {
      return parse_error(command + ": expected <model>, got flag '" +
                         model_path + "'");
    }
    const std::vector<std::string> args =
        normalize({raw.begin() + 2, raw.end()});
    prophet::machine::SystemParameters base_params;
    // The epoch anchors estimate's --trace-json time base before the
    // model loads, so the load/parse stage appears as the first span.
    const auto epoch = std::chrono::steady_clock::now();
    const prophet::Prophet prophet = load_model(model_path, &base_params);
    const double load_seconds = seconds_since(epoch);
    if (command == "check") {
      return cmd_check(prophet, args);
    }
    if (command == "generate") {
      return cmd_generate(prophet, args);
    }
    if (command == "estimate") {
      return cmd_estimate(prophet, args, base_params, model_path, epoch,
                          load_seconds);
    }
    return cmd_outline(prophet, args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "prophetc: %s\n", error.what());
    return 1;
  }
}
