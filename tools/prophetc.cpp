// prophetc — command-line front end to the Performance Prophet pipeline.
//
//   prophetc check <model.xml> [--mcf <mcf.xml>]
//   prophetc generate <model.xml> [-o out.cpp] [--main]
//   prophetc estimate <model.xml> [--sp <sp.xml>] [--np N] [--nodes N]
//                     [--ppn N] [--nt N] [--trace out.tf] [--gantt]
//   prophetc outline <model.xml>
//   prophetc sweep <model.xml>... [--grid SPEC] [--sp <sp.xml>]
//                  [--threads N] [--csv out.csv] [--seed S]
//                  [--no-check] [--no-codegen]
//
// Models are XMI files (see prophet/xmi); --sp loads the SP element of
// Fig. 2 from XML, the individual flags override it.  sweep also accepts
// the built-in models @sample, @kernel6 and @pingpong, and expands --grid
// cross-products like "np=1..8:*2 nodes=1,2" over every input model.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "prophet/pipeline/batch.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/prophet.hpp"
#include "prophet/traverse/traverse.hpp"
#include "prophet/xml/parser.hpp"
#include "prophet/xmi/xmi.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  prophetc check <model.xml> [--mcf <mcf.xml>]\n"
      "  prophetc generate <model.xml> [-o out.cpp] [--main]\n"
      "  prophetc estimate <model.xml> [--sp <sp.xml>] [--np N] "
      "[--nodes N] [--ppn N] [--nt N] [--trace out.tf] [--gantt]\n"
      "  prophetc outline <model.xml>\n"
      "  prophetc sweep <model.xml>... [--grid SPEC] [--sp <sp.xml>] "
      "[--threads N] [--csv out.csv] [--seed S] [--no-check] "
      "[--no-codegen]\n");
  return 2;
}

int cmd_check(const prophet::Prophet& prophet,
              const std::vector<std::string>& args) {
  prophet::check::ModelChecker checker;
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "--mcf") {
      checker.configure(prophet::xml::parse_file(args[i + 1]));
    }
  }
  const auto diagnostics = checker.check(prophet.model());
  std::printf("%s", diagnostics.to_string().c_str());
  std::printf("%zu error(s), %zu warning(s)\n", diagnostics.error_count(),
              diagnostics.warning_count());
  return diagnostics.ok() ? 0 : 1;
}

int cmd_generate(const prophet::Prophet& prophet,
                 const std::vector<std::string>& args) {
  prophet::codegen::TransformOptions options;
  std::string output;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) {
      output = args[i + 1];
    } else if (args[i] == "--main") {
      options.emit_main = true;
    }
  }
  const std::string cpp = prophet.transform(options);
  if (output.empty()) {
    std::printf("%s", cpp.c_str());
  } else {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", output.c_str());
      return 1;
    }
    out << cpp;
    std::printf("wrote %s (%zu bytes)\n", output.c_str(), cpp.size());
  }
  return 0;
}

int cmd_estimate(const prophet::Prophet& prophet,
                 const std::vector<std::string>& args) {
  prophet::machine::SystemParameters params;
  std::string trace_path;
  bool gantt = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto next_int = [&](int& target) {
      if (i + 1 < args.size()) {
        target = std::atoi(args[++i].c_str());
      }
    };
    if (args[i] == "--sp" && i + 1 < args.size()) {
      params = prophet::machine::SystemParameters::load(args[++i]);
    } else if (args[i] == "--np") {
      next_int(params.processes);
    } else if (args[i] == "--nodes") {
      next_int(params.nodes);
    } else if (args[i] == "--ppn") {
      next_int(params.processors_per_node);
    } else if (args[i] == "--nt") {
      next_int(params.threads_per_process);
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--gantt") {
      gantt = true;
    }
  }
  const auto report = prophet.estimate(params);
  std::printf("%s", report.summary().c_str());
  if (!trace_path.empty()) {
    report.trace.save(trace_path);
    std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                report.trace.size());
  }
  if (gantt) {
    std::printf("%s", report.trace.gantt().c_str());
  }
  return 0;
}

// Registers one sweep input: an XMI file path or a built-in model
// reference (@sample, @kernel6, @pingpong).
void add_sweep_model(prophet::pipeline::BatchRunner& runner,
                     const std::string& input) {
  if (input == "@sample") {
    runner.add_model(input, prophet::models::sample_model());
  } else if (input == "@kernel6") {
    runner.add_model(input, prophet::models::kernel6_model(64, 16, 1e-8));
  } else if (input == "@pingpong") {
    runner.add_model(input, prophet::models::pingpong_model(1024, 8));
  } else {
    runner.add_model_file(input);
  }
}

int cmd_sweep(const std::vector<std::string>& args) {
  prophet::pipeline::BatchOptions options;
  prophet::machine::SystemParameters base;
  std::string grid_spec;
  std::string csv_path;
  std::vector<std::string> inputs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--grid" && i + 1 < args.size()) {
      grid_spec = args[++i];
    } else if (args[i] == "--sp" && i + 1 < args.size()) {
      base = prophet::machine::SystemParameters::load(args[++i]);
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      options.threads = std::atoi(args[++i].c_str());
    } else if (args[i] == "--csv" && i + 1 < args.size()) {
      csv_path = args[++i];
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      options.base_seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--no-check") {
      options.run_checker = false;
    } else if (args[i] == "--no-codegen") {
      options.run_codegen = false;
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::fprintf(stderr, "prophetc sweep: unknown flag %s\n",
                   args[i].c_str());
      return usage();
    } else {
      inputs.push_back(args[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "prophetc sweep: no input models\n");
    return usage();
  }

  prophet::pipeline::BatchRunner runner(options);
  for (const auto& input : inputs) {
    add_sweep_model(runner, input);
  }
  runner.add_sweep_all(
      prophet::pipeline::ScenarioGrid::parse(grid_spec, base));

  const auto report = runner.run();
  std::printf("%s", report.summary().c_str());
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    out << report.to_csv();
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  return report.stats().failed == 0 ? 0 : 1;
}

int cmd_outline(const prophet::Prophet& prophet) {
  prophet::traverse::DepthFirstNavigator navigator;
  prophet::traverse::OutlineHandler outline;
  prophet::traverse::Traverser traverser;
  traverser.traverse(prophet.model(), navigator, outline);
  std::printf("%s", outline.text().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const std::string command = argv[1];
  const std::string model_path = argv[2];
  std::vector<std::string> args;
  for (int i = 3; i < argc; ++i) {
    args.emplace_back(argv[i]);
  }
  try {
    if (command == "sweep") {
      // sweep takes N models (argv[2] is the first input, not a single
      // model path), so it bypasses the single-model load below.
      std::vector<std::string> sweep_args;
      sweep_args.push_back(model_path);
      sweep_args.insert(sweep_args.end(), args.begin(), args.end());
      return cmd_sweep(sweep_args);
    }
    const prophet::Prophet prophet = prophet::Prophet::load(model_path);
    if (command == "check") {
      return cmd_check(prophet, args);
    }
    if (command == "generate") {
      return cmd_generate(prophet, args);
    }
    if (command == "estimate") {
      return cmd_estimate(prophet, args);
    }
    if (command == "outline") {
      return cmd_outline(prophet);
    }
    return usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "prophetc: %s\n", error.what());
    return 1;
  }
}
