// Build-time helper: writes the C++ representation (PMP) of the paper's
// sample model to the given path.  bench_fig8_evaluation compiles the
// result, so the machine-efficiency benchmark runs genuinely generated
// code, not a hand-written imitation.
#include <cstdio>
#include <fstream>

#include "prophet/prophet.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: gen_sample_pmp <output.cpp>\n");
    return 2;
  }
  const prophet::Prophet prophet(prophet::models::sample_model());
  std::ofstream out(argv[1]);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", argv[1]);
    return 1;
  }
  out << prophet.transform();
  return 0;
}
