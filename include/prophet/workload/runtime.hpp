// Workload elements — the runtime library that generated C++ models (and
// the UML interpreter) execute against.
//
// Fig. 4 of the paper maps the modeling element <<action+>> to the C++
// class ActionPlus: "The performance behavior of the modeling element
// action+ is defined in the method execute() of the class ActionPlus",
// and the generated code calls `A1.execute(uid, pid, tid, FA1());`
// (Fig. 8b).  This header defines ActionPlus and the companion elements
// for the message-passing and shared-memory building blocks of the
// authors' UML extension [17,18].
//
// One deviation from the paper's listing: CSIM processes were stackful
// threads, so execute() could block synchronously.  The reproduction's
// engine uses C++20 coroutines, so execute() returns a sim::Process that
// the caller awaits:  `co_await A1.execute(uid, pid, tid, FA1());`.
// The call shape — element object, execute(uid, pid, tid, cost) — is
// exactly Fig. 8's.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "prophet/machine/machine.hpp"
#include "prophet/obs/obs.hpp"
#include "prophet/sim/engine.hpp"
#include "prophet/sim/facility.hpp"
#include "prophet/sim/mailbox.hpp"
#include "prophet/trace/trace.hpp"

namespace prophet::workload {

class Communicator;
struct RegionState;

/// Execution context of one modeled process (or thread).  Copyable value:
/// a parallel region hands each thread a copy with its own tid.
struct ModelContext {
  sim::Engine* engine = nullptr;
  machine::MachineModel* machine = nullptr;
  Communicator* comm = nullptr;
  trace::Trace* trace = nullptr;  // nullable: tracing is optional
  obs::SimCounters* counters = nullptr;  // nullable: metrics are optional
  int pid = 0;
  int tid = 0;
  RegionState* region = nullptr;  // non-null inside a parallel region

  [[nodiscard]] int np() const { return machine->params().processes; }
  [[nodiscard]] int nt() const { return machine->params().threads_per_process; }
  [[nodiscard]] int nn() const { return machine->params().nodes; }
  [[nodiscard]] int ppn() const {
    return machine->params().processors_per_node;
  }

  /// Records a trace span.  `event_pid`/`event_tid` are passed explicitly
  /// (not taken from this context) because element objects may be bound to
  /// the process context while executing on behalf of a region thread.
  void record(double start, double end, int event_pid, int event_tid,
              int uid, const std::string& element,
              trace::EventKind kind) const {
    if (trace != nullptr) {
      trace->add({start, end, event_pid, event_tid, uid, element, kind});
    }
  }
};

// --- Synchronization primitive shared by barriers and collectives ----------

/// A reusable counting barrier for `expected` participants.
class BarrierGate {
 public:
  explicit BarrierGate(sim::Engine& engine, int expected)
      : engine_(&engine), expected_(expected) {}

  [[nodiscard]] int expected() const { return expected_; }

  struct Awaiter {
    BarrierGate* gate;
    [[nodiscard]] bool await_ready() {
      if (gate->arrived_ + 1 == gate->expected_) {
        // Last arrival: release everyone at the current time.
        gate->arrived_ = 0;
        for (const auto handle : gate->waiting_) {
          gate->engine_->schedule(handle, gate->engine_->now());
        }
        gate->waiting_.clear();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      ++gate->arrived_;
      gate->waiting_.push_back(handle);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Awaiter arrive() { return Awaiter{this}; }

 private:
  sim::Engine* engine_;
  int expected_;
  int arrived_ = 0;
  std::vector<std::coroutine_handle<>> waiting_;
};

// --- Communicator ------------------------------------------------------------

/// Shared communication state of one estimation run: point-to-point
/// mailboxes keyed by (dst, src, tag), the global process barrier, and the
/// named critical-section locks.
class Communicator {
 public:
  Communicator(sim::Engine& engine, machine::MachineModel& machine);

  /// Mailbox for messages to `dst` from `src` with `tag`.
  sim::Mailbox& mailbox(int dst, int src, int tag);

  /// The all-processes barrier gate.
  BarrierGate& process_barrier() { return barrier_; }

  /// Named lock (1-server facility) for <<ompcritical>> sections.
  sim::Facility& critical_section(const std::string& name);

  [[nodiscard]] std::size_t mailbox_count() const { return mailboxes_.size(); }

 private:
  sim::Engine* engine_;
  machine::MachineModel* machine_;
  BarrierGate barrier_;
  std::map<std::tuple<int, int, int>, std::unique_ptr<sim::Mailbox>>
      mailboxes_;
  std::map<std::string, std::unique_ptr<sim::Facility>> criticals_;
};

/// State of one active parallel region (one per region instance).
struct RegionState {
  int num_threads = 1;
  std::unique_ptr<BarrierGate> barrier;
};

// --- Performance modeling elements ------------------------------------------

/// <<action+>>: a single-entry single-exit code region (Fig. 4b).
///
/// execute() acquires a processor of the owning process's node, holds for
/// the (CPU-speed-scaled) cost, releases, and records a trace span — so
/// the contention of oversubscribed nodes shows up in predictions.
class ActionPlus {
 public:
  ActionPlus(ModelContext& ctx, std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t executions() const { return executions_; }
  [[nodiscard]] double total_time() const { return total_time_; }

  /// Models the performance behaviour of the code block: consumes
  /// `cost` seconds of processor time (Fig. 8b:
  /// `A1.execute(uid, pid, tid, FA1());`).
  [[nodiscard]] sim::Process execute(int uid, int pid, int tid, double cost);

 private:
  ModelContext* ctx_;
  std::string name_;
  std::uint64_t executions_ = 0;
  double total_time_ = 0;
};

/// <<activity+>>: composite element.  Generated code inlines the content
/// as a nested block (Fig. 8b lines 79-82); ActivityPlus wraps the block
/// with region trace events so hierarchical structure is visible in TF.
class ActivityPlus {
 public:
  ActivityPlus(ModelContext& ctx, std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Records the start of the composite region; returns the start time.
  double begin(int uid);
  /// Records the end of the composite region started at `started`.
  void end(int uid, double started);

 private:
  ModelContext* ctx_;
  std::string name_;
};

// --- Message-passing elements ([17,18]) --------------------------------------

/// <<send>>: deposits a message for `dest`; the sender is charged the
/// per-message CPU overhead and does not otherwise block (eager protocol).
class SendElement {
 public:
  SendElement(ModelContext& ctx, std::string name);
  [[nodiscard]] sim::Process execute(int uid, int pid, int tid, int dest,
                                     double bytes, int tag = 0);

 private:
  ModelContext* ctx_;
  std::string name_;
};

/// <<recv>>: blocks until the matching message is available, then waits
/// out the remaining transfer time (latency + size/bandwidth from the
/// machine model).
class RecvElement {
 public:
  RecvElement(ModelContext& ctx, std::string name);
  [[nodiscard]] sim::Process execute(int uid, int pid, int tid, int source,
                                     double bytes, int tag = 0);

 private:
  ModelContext* ctx_;
  std::string name_;
};

/// <<barrier>>: synchronizes all np processes, then charges
/// ceil(log2(np)) rounds of barrier latency.
class BarrierElement {
 public:
  BarrierElement(ModelContext& ctx, std::string name);
  [[nodiscard]] sim::Process execute(int uid, int pid, int tid);

 private:
  ModelContext* ctx_;
  std::string name_;
};

/// Which collective pattern a CollectiveElement models; determines the
/// analytic time formula (tree rounds vs. root-linear).
enum class CollectiveKind {
  Broadcast,
  Reduce,
  AllReduce,
  Scatter,
  Gather,
};

[[nodiscard]] std::string_view to_string(CollectiveKind kind);

/// <<broadcast>>/<<reduce>>/<<allreduce>>/<<scatter>>/<<gather>>:
/// synchronize all processes, then charge the collective's analytic time:
///   broadcast/reduce: ceil(log2 np) tree rounds of (lat + size/bw)
///   allreduce:        reduce + broadcast
///   scatter/gather:   (np-1) root-sequential messages of size/np
class CollectiveElement {
 public:
  CollectiveElement(ModelContext& ctx, std::string name, CollectiveKind kind);
  [[nodiscard]] sim::Process execute(int uid, int pid, int tid, double bytes,
                                     int root = 0);

  /// The modeled completion latency for `n` processes (exposed for tests,
  /// benches, and the analytic estimation backend, which evaluates the
  /// same formula without a machine instance).
  [[nodiscard]] static double model_time(const machine::SystemParameters& params,
                                         CollectiveKind kind, int n,
                                         double bytes);
  [[nodiscard]] static double model_time(const machine::MachineModel& machine,
                                         CollectiveKind kind, int n,
                                         double bytes);

 private:
  ModelContext* ctx_;
  std::string name_;
  CollectiveKind kind_;
};

// --- Shared-memory elements ([17,18]) ----------------------------------------

/// <<ompparallel>>: runs `body` once per thread (tids 0..n-1) with an
/// implicit barrier at the end; each thread's context carries the region
/// state for <<ompbarrier>>/<<ompfor>>.
[[nodiscard]] sim::Process parallel_region(
    ModelContext ctx, int num_threads, int uid, std::string name,
    std::function<sim::Process(ModelContext)> body);

/// <<ompfor>>: splits `iterations` iterations of `itercost` seconds each
/// across the region's threads.  schedule "static" assigns balanced
/// blocks; "dynamic" assigns chunks of `chunk` iterations with a
/// per-chunk scheduling overhead.
class WorkshareElement {
 public:
  WorkshareElement(ModelContext& ctx, std::string name);
  [[nodiscard]] sim::Process execute(int uid, int pid, int tid,
                                     double iterations, double itercost,
                                     const std::string& schedule = "static",
                                     std::int64_t chunk = 0);

  /// Iterations assigned to `tid` of `threads` (exposed for tests).
  [[nodiscard]] static std::int64_t static_share(std::int64_t iterations,
                                                 int threads, int tid);

  /// Nominal compute seconds `tid` spends in the construct (before CPU
  /// speed scaling) — the formula execute() charges, shared with the
  /// analytic estimation backend.
  [[nodiscard]] static double model_compute(double iterations,
                                            double itercost,
                                            const std::string& schedule,
                                            std::int64_t chunk, int threads,
                                            int tid);

 private:
  ModelContext* ctx_;
  std::string name_;
};

/// <<ompcritical>>: runs `body` under the named lock.
class CriticalElement {
 public:
  CriticalElement(ModelContext& ctx, std::string name,
                  std::string critical_name = "default");
  [[nodiscard]] sim::Process execute(
      int uid, int pid, int tid, std::function<sim::Process()> body);

 private:
  ModelContext* ctx_;
  std::string name_;
  std::string critical_name_;
};

/// <<ompbarrier>>: synchronizes the threads of the enclosing region.
class OmpBarrierElement {
 public:
  OmpBarrierElement(ModelContext& ctx, std::string name);
  [[nodiscard]] sim::Process execute(int uid, int pid, int tid);

 private:
  ModelContext* ctx_;
  std::string name_;
};

// --- Control-flow helpers -----------------------------------------------------

/// Fork/join: runs all branches concurrently (each as a spawned process)
/// and resumes when the last one finishes — the UML fork/join bars.
[[nodiscard]] sim::Process fork_join(
    ModelContext ctx, std::vector<std::function<sim::Process()>> branches);

}  // namespace prophet::workload
