// The Model Checker — Teuta's conformance component.
//
// "The Model Checker is used to verify whether the model conforms to the
// UML specification" (Sec. 2.2).  The checker runs a configurable set of
// well-formedness rules over a model and produces diagnostics; the MCF
// ("Model Checking File", an XML document in Fig. 2) enables/disables
// rules and overrides their severities.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "prophet/uml/model.hpp"
#include "prophet/xml/dom.hpp"

namespace prophet::check {

enum class Severity {
  Error,    // model cannot be transformed / evaluated
  Warning,  // suspicious but transformable
  Info,
};

[[nodiscard]] std::string_view to_string(Severity severity);
[[nodiscard]] std::optional<Severity> severity_from_string(
    std::string_view text);

/// One finding produced by a rule.
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string rule;      // rule name, e.g. "decision-guards"
  std::string location;  // element path, e.g. "diagram d1 / node n3 (A1)"
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// The collected findings of one checker run.
class Diagnostics {
 public:
  void add(Diagnostic diagnostic);

  [[nodiscard]] const std::vector<Diagnostic>& all() const { return items_; }
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;

  /// True when the model has no errors (warnings allowed).
  [[nodiscard]] bool ok() const { return error_count() == 0; }

  /// All findings from a given rule.
  [[nodiscard]] std::vector<const Diagnostic*> from_rule(
      std::string_view rule) const;

  /// One line per finding.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Diagnostic> items_;
};

/// Reporting context handed to a rule; carries the rule's (possibly
/// MCF-overridden) severity.
class RuleContext {
 public:
  RuleContext(Diagnostics& sink, std::string rule, Severity severity)
      : sink_(&sink), rule_(std::move(rule)), severity_(severity) {}

  /// Reports a finding at the rule's configured severity.
  void report(std::string location, std::string message);

  /// Reports a finding at an explicit severity (for rules that mix
  /// must-fix and advisory findings).
  void report(Severity severity, std::string location, std::string message);

 private:
  Diagnostics* sink_;
  std::string rule_;
  Severity severity_;
};

/// A well-formedness rule.
class Rule {
 public:
  Rule(std::string name, std::string description, Severity default_severity)
      : name_(std::move(name)),
        description_(std::move(description)),
        default_severity_(default_severity) {}
  virtual ~Rule() = default;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& description() const { return description_; }
  [[nodiscard]] Severity default_severity() const { return default_severity_; }

  virtual void run(const uml::Model& model, RuleContext& ctx) const = 0;

 private:
  std::string name_;
  std::string description_;
  Severity default_severity_;
};

/// The checker: a rule registry plus per-rule enablement/severity.
class ModelChecker {
 public:
  /// A checker pre-loaded with the standard rule set.
  ModelChecker();

  /// A checker with no rules (extend with add()).
  static ModelChecker empty();

  /// Registers a rule; replaces any rule with the same name.
  void add(std::unique_ptr<Rule> rule);

  /// Enables/disables a rule; false when the rule is unknown.
  bool set_enabled(std::string_view rule, bool enabled);
  /// Overrides a rule's severity; false when the rule is unknown.
  bool set_severity(std::string_view rule, Severity severity);

  [[nodiscard]] bool is_enabled(std::string_view rule) const;
  [[nodiscard]] std::vector<std::string> rule_names() const;

  /// Applies an MCF document:
  ///   <mcf><rule name="node-reachable" enabled="false"/>
  ///        <rule name="fork-join-balance" severity="error"/></mcf>
  /// Unknown rule names are reported as Info diagnostics on the next run.
  void configure(const xml::Document& mcf);

  /// Runs all enabled rules.
  [[nodiscard]] Diagnostics check(const uml::Model& model) const;

 private:
  struct Entry {
    std::unique_ptr<Rule> rule;
    bool enabled = true;
    std::optional<Severity> severity_override;
  };
  explicit ModelChecker(bool load_standard_rules);

  std::vector<Entry> entries_;
  std::vector<std::string> configuration_notes_;
};

/// Registers the standard rule set on a checker (exposed for tests that
/// want to build custom checkers rule by rule).
void register_standard_rules(ModelChecker& checker);

}  // namespace prophet::check
