// Shared model lowering — one UML -> executable-form transformation
// behind every evaluation backend.
//
// The paper's thesis is that *transforming* the UML model into an
// executable C++ form is what makes evaluation fast.  This module owns
// that transformation for the in-process backends: `lower()` turns a
// checked `uml::Model` into an immutable `ModelProgram` — the model-wide
// slot space, every expression tag/guard/initializer/function body
// compiled to slot-resolved bytecode (expr::compile), code fragments
// with statically resolved write targets, and the static metadata the
// analytic backend's loop-collapse/SPMD legality checks read.
//
// Backends do not lower; they consume a `ModelProgram`
// (`shared_ptr<const>` — any number of backends and threads share one
// lowering without synchronization) and keep only their per-run state.
// The interpreter (simulation backend), the analytic estimator, and any
// future backend (native codegen) are consumers of this one module, so
// their lowering semantics cannot drift apart.  docs/lowering.md
// documents the phases, the slot-binding rules and the metadata
// contract.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "prophet/expr/compile.hpp"
#include "prophet/uml/model.hpp"

namespace prophet::lower {

/// Error thrown when a model cannot be lowered: unparseable expressions,
/// malformed code fragments, missing referenced diagrams, no resolvable
/// main diagram.  Backends wrap it in their own error type
/// (interp::InterpretError, analytic::AnalyticError) with the message
/// preserved verbatim, so diagnostics are identical across consumers.
class LowerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The expression-valued tags an evaluation site reads, as a dense enum.
/// One table row in `lower.cpp` maps each tag name to its kind — adding
/// a tag is one row there plus one accessor here, not an edit in every
/// backend.
enum class TagKind : std::uint8_t {
  Cost,        ///< `cost` on <<action+>>
  Dest,        ///< `dest` on <<send>>
  Source,      ///< `source` on <<recv>>
  Size,        ///< `size` on sends/recvs/collectives
  Root,        ///< `root` on rooted collectives
  Iterations,  ///< `iterations` on <<loop+>> / <<ompfor>>
  IterCost,    ///< `itercost` on <<ompfor>>
  NumThreads,  ///< `num_threads` on <<ompparallel>>
};

/// Number of TagKind values (size of the per-node program array).
inline constexpr std::size_t kTagKindCount = 8;

/// The TagKind for a tag name (uml::tag spelling), or nullopt for tags
/// no evaluation site reads as an expression.
[[nodiscard]] std::optional<TagKind> tag_kind(std::string_view name);

/// The uml::tag spelling of a kind (inverse of tag_kind()).
[[nodiscard]] std::string_view tag_name(TagKind kind);

/// A code-fragment assignment with its write target resolved at lowering
/// time: `Local` writes per-process storage, `Global` writes run-shared
/// storage, `Undeclared` raises the walker's "assigns undeclared
/// variable" error if (and only if) the fragment executes.
struct CompiledAssignment {
  /// Statically resolved storage class of the assignment target.
  enum class Target : std::uint8_t {
    Local,       ///< a declared per-process variable
    Global,      ///< a declared run-shared variable
    Undeclared,  ///< no declaration — executing it is an error
  };
  /// Assignment target name (diagnostics only; the slot is resolved).
  std::string name;
  /// Resolved storage class.
  Target target = Target::Undeclared;
  /// Slot of the target variable (valid unless Undeclared).
  expr::Slot slot = 0;
  /// True when the declared variable is Integer-typed: assigned values
  /// truncate, exactly like the generated C++'s `long` variables.
  bool coerce_int = false;
  /// The right-hand side, compiled against the model's node table.
  expr::Compiled value;
};

/// Everything an evaluation site needs at one node, pre-resolved: the
/// node's uid, the compiled programs of its expression tags, its code
/// fragment, and (for <<loop+>> nodes) the loop-variable slot.
struct NodePrograms {
  /// Numeric element uid (explicit `id` tag, else a stable 1-based
  /// index skipping claimed values).
  int uid = 0;
  /// Slot of the loop variable bound by this node (Loop nodes only).
  expr::Slot loop_var_slot = 0;
  /// Compiled expression tags, indexed by TagKind; absent entries mean
  /// the tag is missing or empty on this node.
  std::array<std::optional<expr::Compiled>, kTagKindCount> tags;
  /// The node's code fragment as resolved assignments (execution order).
  std::vector<CompiledAssignment> fragment;

  /// The compiled program of `kind`, absent when the node lacks the tag.
  [[nodiscard]] const std::optional<expr::Compiled>& tag(
      TagKind kind) const {
    return tags[static_cast<std::size_t>(kind)];
  }
  /// `cost` program (TagKind::Cost).
  [[nodiscard]] const std::optional<expr::Compiled>& cost() const {
    return tag(TagKind::Cost);
  }
  /// `dest` program (TagKind::Dest).
  [[nodiscard]] const std::optional<expr::Compiled>& dest() const {
    return tag(TagKind::Dest);
  }
  /// `source` program (TagKind::Source).
  [[nodiscard]] const std::optional<expr::Compiled>& source() const {
    return tag(TagKind::Source);
  }
  /// `size` program (TagKind::Size).
  [[nodiscard]] const std::optional<expr::Compiled>& size() const {
    return tag(TagKind::Size);
  }
  /// `root` program (TagKind::Root).
  [[nodiscard]] const std::optional<expr::Compiled>& root() const {
    return tag(TagKind::Root);
  }
  /// `iterations` program (TagKind::Iterations).
  [[nodiscard]] const std::optional<expr::Compiled>& iterations() const {
    return tag(TagKind::Iterations);
  }
  /// `itercost` program (TagKind::IterCost).
  [[nodiscard]] const std::optional<expr::Compiled>& itercost() const {
    return tag(TagKind::IterCost);
  }
  /// `num_threads` program (TagKind::NumThreads).
  [[nodiscard]] const std::optional<expr::Compiled>& num_threads() const {
    return tag(TagKind::NumThreads);
  }
};

/// A model variable, pre-resolved (declaration order preserved — the
/// run/process initialization order backends must follow).
struct CompiledVariable {
  /// Declared name (diagnostics and introspection).
  std::string name;
  /// The variable's slot in the model-wide slot space.
  expr::Slot slot = 0;
  /// Global (run-shared) or Local (per-process) storage.
  uml::VariableScope scope = uml::VariableScope::Global;
  /// Integer-typed variables truncate on every assignment.
  uml::VariableType type = uml::VariableType::Real;
  /// Compiled initializer; absent means zero-initialize.
  std::optional<expr::Compiled> initializer;
};

/// What lowering produced, from the single source of truth — surfaced
/// through estimator::PrepareStats and `prophetc estimate --timings`.
struct LoweringStats {
  /// Seconds spent in expr::compile (a subset of the lower() wall time).
  double expr_compile_seconds = 0;
  /// Bytecode programs produced (tags, guards, initializers,
  /// cost-function bodies, fragment assignments).
  std::size_t expr_programs = 0;
  /// Nodes lowered (every node of every diagram gets a NodePrograms).
  std::size_t nodes = 0;
  /// Slots in the model-wide slot space.
  std::size_t slots = 0;
  /// Compiled guards (guarded, non-else control-flow edges).
  std::size_t guards = 0;
  /// Compiled cost-function bodies.
  std::size_t functions = 0;
  /// Declared model variables.
  std::size_t variables = 0;
  /// Code-fragment assignments across all nodes.
  std::size_t fragment_assignments = 0;
  /// Total bytecode size across all programs, in bytes.
  std::size_t bytecode_bytes = 0;
};

/// The immutable executable form of a model — everything every backend
/// shares, produced once by lower().
///
/// A ModelProgram is written only by its constructor and read-only
/// afterwards: any number of backends on any number of threads consume
/// one program concurrently without synchronization (the
/// `shared_ptr<const ModelProgram>` handle estimator::PreparedModel
/// exposes).  Per-run state — bound system parameters, global/local
/// storage, clocks — lives in the consuming backend, never here.
///
/// Node programs are keyed by `const uml::Node*` and guards by
/// `const uml::ControlFlow*`; both are heap-allocated and owned through
/// the model's diagram list, so the keys are stable for the model's
/// lifetime (including across a move of the Model object itself).
class ModelProgram {
 public:
  /// Lowers `model`, borrowing it (see lower() for the owning form).
  /// Throws LowerError on unparseable expressions, malformed fragments,
  /// unresolvable diagram references or a missing main diagram.
  explicit ModelProgram(const uml::Model& model);

  /// The lowered model (borrowed or owned; never null).
  [[nodiscard]] const uml::Model& model() const { return *model_; }

  /// The model-wide symbol table node-scope programs were compiled
  /// against: one slot per bindable name (declared variables, loop
  /// variables, np/nt/nn/ppn) plus the pid/tid/uid ambients with
  /// slot-shadowing fallbacks.
  [[nodiscard]] const expr::SymbolTable& symbols() const {
    return node_table_;
  }

  /// Slots in the model-wide slot space (the frame size every consumer
  /// must allocate).
  [[nodiscard]] std::size_t slot_count() const { return nslots_; }

  /// Slot of the `np` (process count) structural parameter.
  [[nodiscard]] expr::Slot np_slot() const { return slot_np_; }
  /// Slot of the `nt` (threads per process) structural parameter.
  [[nodiscard]] expr::Slot nt_slot() const { return slot_nt_; }
  /// Slot of the `nn` (node count) structural parameter.
  [[nodiscard]] expr::Slot nn_slot() const { return slot_nn_; }
  /// Slot of the `ppn` (processors per node) structural parameter.
  [[nodiscard]] expr::Slot ppn_slot() const { return slot_ppn_; }

  /// Declared model variables in declaration order (the initialization
  /// order run/process start-up must follow).
  [[nodiscard]] std::span<const CompiledVariable> variables() const {
    return variables_;
  }

  /// Compiled cost-function bodies, indexed by function id (the id
  /// expr::Op::CallUser carries and function_id() returns).
  [[nodiscard]] std::span<const expr::Compiled> functions() const {
    return functions_;
  }

  /// Function id of a cost function by name, if declared.
  [[nodiscard]] std::optional<int> function_id(std::string_view name) const;

  /// The lowered programs of `node`.  Every node of every diagram of the
  /// model has an entry; passing a foreign node throws std::out_of_range.
  [[nodiscard]] const NodePrograms& at(const uml::Node& node) const {
    return nodes_.at(&node);
  }

  /// The compiled guard of `edge`, or nullptr when the edge is
  /// unguarded or an `else` edge.
  [[nodiscard]] const expr::Compiled* guard(
      const uml::ControlFlow& edge) const;

  /// The uid assigned to the node with element id `node_id`.  Throws
  /// LowerError for unknown ids.
  [[nodiscard]] int uid_of(const std::string& node_id) const;

  /// What lowering produced (see LoweringStats).
  [[nodiscard]] const LoweringStats& stats() const { return stats_; }

 private:
  friend std::shared_ptr<const ModelProgram> lower(uml::Model&& model);

  std::optional<uml::Model> owned_;  // set by the owning lower() overload
  const uml::Model* model_ = nullptr;

  expr::SymbolTable node_table_;  // slots + pid/tid/uid ambients
  std::size_t nslots_ = 0;
  expr::Slot slot_np_ = 0, slot_nt_ = 0, slot_nn_ = 0, slot_ppn_ = 0;

  std::vector<CompiledVariable> variables_;
  std::vector<expr::Compiled> functions_;    // indexed by function id
  std::map<std::string, int, std::less<>> function_ids_;
  std::map<const uml::Node*, NodePrograms> nodes_;
  std::map<const uml::ControlFlow*, expr::Compiled> guards_;
  std::map<std::string, int> uids_;          // node element id -> uid

  LoweringStats stats_;
};

/// Shared handle to an immutable lowering — the unit every backend's
/// prepare() consumes and estimator::PreparedModel::lowering() exposes.
using ModelProgramPtr = std::shared_ptr<const ModelProgram>;

/// Lowers `model` into a shareable ModelProgram.  Borrows `model`; it
/// must outlive every consumer of the program.  Throws LowerError (see
/// ModelProgram constructor).
[[nodiscard]] ModelProgramPtr lower(const uml::Model& model);

/// Owning overload (safe with temporaries): the program keeps the model
/// alive for its own lifetime.
[[nodiscard]] ModelProgramPtr lower(uml::Model&& model);

}  // namespace prophet::lower
