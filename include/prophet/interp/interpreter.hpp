// Direct interpreter of UML performance models.
//
// This is the *human-usable* evaluation path the paper contrasts with the
// machine-efficient generated C++: it walks the UML model tree at
// simulation time, re-evaluating guards, cost expressions and code
// fragments through the expression evaluator.  Its semantics define the
// reference behaviour the code generator must reproduce; differential
// tests (tests/integration) pit the two against each other, and
// bench/bench_fig8_evaluation.cpp measures the efficiency gap that
// motivates the paper's transformation.
//
// Semantics (matched exactly by generated code):
//  * global variables are shared by all modeled processes of a run
//    (generated code holds them in file-scope variables);
//  * local variables live per process (function-scope variables);
//  * loop variables are scoped to their loop statement;
//  * guards are evaluated in edge insertion order, first truthy guard
//    wins, the "else" edge fires when none holds;
//  * code fragments are lists of `name = expression;` assignments
//    executed before the element's execute() call (Fig. 8b lines 72-76).
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "prophet/estimator/estimator.hpp"
#include "prophet/lower/lower.hpp"
#include "prophet/uml/model.hpp"
#include "prophet/workload/runtime.hpp"

namespace prophet::interp {

/// Error thrown when a model cannot be interpreted (unparseable
/// expression, unknown variable at runtime, malformed structure, ...).
/// Running the model checker first catches nearly all of these statically.
class InterpretError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Executes a lowered UML model.  All per-model work — expression
/// parsing, slot-space construction, bytecode compilation — lives in the
/// shared lowering layer (lower::lower); the interpreter is a *consumer*
/// of a lower::ModelProgram and holds only its per-run state, so the
/// per-run cost is bytecode evaluation only — no string lookups on the
/// hot path.
///
/// The lowered form is immutable and shareable: any number of
/// interpreters (on any number of threads) can run the same program
/// concurrently.  This is what the simulation backend's PreparedModel
/// hands out: lower once, then per estimate() construct a cheap
/// interpreter over the shared program.
class Interpreter final : public estimator::ProgramModel {
 public:
  /// The immutable lowered form of a model (see lower::ModelProgram):
  /// every expression in slot-resolved bytecode, uids assigned, diagram
  /// references resolved.  Obtain one from compile() — or directly from
  /// lower::lower() — and pass it to the sharing constructor.
  using Program = lower::ModelProgram;

  /// Lowers `model` into a shareable Program (lower::lower with the
  /// error type rewrapped).  Borrows `model`; it must outlive every
  /// interpreter running the program.  Throws InterpretError when any
  /// expression fails to parse or a referenced diagram is missing.
  [[nodiscard]] static std::shared_ptr<const Program> compile(
      const uml::Model& model);

  /// Owning overload (safe with temporaries): the program keeps the
  /// model alive.
  [[nodiscard]] static std::shared_ptr<const Program> compile(
      uml::Model&& model);

  /// Borrows `model`; it must outlive the interpreter.  Throws
  /// InterpretError when any expression fails to parse or a referenced
  /// diagram is missing.
  explicit Interpreter(const uml::Model& model);

  /// Takes ownership of `model` (safe with temporaries).
  explicit Interpreter(uml::Model&& model);

  /// Shares a pre-compiled program: construction is O(1) — all parsed
  /// state is reused, the interpreter allocates only its per-run state.
  explicit Interpreter(std::shared_ptr<const Program> program);
  ~Interpreter() override;

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  // --- estimator::ProgramModel ---------------------------------------------
  void on_run_start(const machine::SystemParameters& params) override;
  [[nodiscard]] sim::Process process_main(
      workload::ModelContext ctx) override;
  /// Routes VM activity of every subsequent expression evaluation (tags,
  /// guards, fragments, cost-function bodies) into `counters`; null
  /// disables.  The block must outlive its installation.
  void set_expr_counters(obs::ExprCounters* counters) override;
  /// Charges subsequent evaluation — loop iterations and expression-VM
  /// instructions — against `budget`; null disables.  Guard errors
  /// (guard::ResourceExhausted / guard::Cancelled) propagate out of the
  /// simulation run.  Loops are charged per iteration, so a zero-cost
  /// spin loop (which never yields an engine event) still trips.
  void set_budget(guard::Budget* budget) override;

  // --- Introspection ---------------------------------------------------------

  /// Value of a global variable after/during a run.
  [[nodiscard]] double global(const std::string& name) const;

  /// Evaluates a named cost function with the given arguments under the
  /// current global state (used by tests and by cost-function benches).
  [[nodiscard]] double call_cost_function(const std::string& name,
                                          const std::vector<double>& args,
                                          int pid = 0, int tid = 0,
                                          int uid = 0) const;

  /// The numeric uid assigned to a node (tag `id` if present, otherwise a
  /// stable 1-based index).
  [[nodiscard]] int uid_of(const std::string& node_id) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace prophet::interp
