// Deterministic random-number generation for stochastic workloads.
//
// xoshiro256++ core (public-domain algorithm by Blackman & Vigna) seeded
// via SplitMix64, plus the distributions simulation models typically need.
// The engine itself is deterministic; all stochastic behaviour in a model
// flows through an explicitly seeded Rng, so every experiment in
// EXPERIMENTS.md is reproducible bit-for-bit.
#pragma once

#include <cstdint>

namespace prophet::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (mean = 1/lambda).
  double exponential(double mean);

  /// Normal via Box-Muller.
  double normal(double mean, double stddev);

  /// True with probability p.
  bool bernoulli(double p);

 private:
  std::uint64_t state_[4] = {};
  bool has_spare_normal_ = false;
  double spare_normal_ = 0;
};

}  // namespace prophet::sim
