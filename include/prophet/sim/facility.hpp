// Facilities — queued servers, the CSIM abstraction the machine model is
// built from.
//
// A Facility models one service station with `servers` identical servers
// and a single queue (FCFS within equal priority, higher priority first).
// Processors in the machine model are facilities: when the Performance
// Estimator maps more modeled processes than processors onto a node, the
// queue makes the contention visible in the predicted times.
//
// Usage inside a process:
//   co_await cpu.acquire();        // waits for a free server
//   co_await engine.hold(t);       // service
//   cpu.release();
//
// Statistics: utilization, throughput (completed grants), time-weighted
// queue length, waiting times.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "prophet/sim/engine.hpp"
#include "prophet/sim/stats.hpp"

namespace prophet::sim {

class Facility {
 public:
  Facility(Engine& engine, std::string name, int servers = 1);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int servers() const { return servers_; }
  [[nodiscard]] int busy() const { return busy_; }
  [[nodiscard]] std::size_t queue_length() const { return waiters_.size(); }

  /// Awaitable acquisition of one server.  Grants are FCFS within equal
  /// priority; larger `priority` values are served first.
  struct AcquireAwaiter {
    Facility* facility;
    int priority;
    Time arrival = 0;

    [[nodiscard]] bool await_ready() {
      arrival = facility->engine_->now();
      if (facility->busy_ < facility->servers_) {
        facility->grant(arrival, arrival);
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      facility->enqueue(handle, priority, arrival);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] AcquireAwaiter acquire(int priority = 0) {
    return AcquireAwaiter{this, priority};
  }

  /// Releases one server; the longest-waiting highest-priority waiter (if
  /// any) is granted at the current time.
  void release();

  // --- Statistics ----------------------------------------------------------

  /// Completed acquire/release cycles.
  [[nodiscard]] std::uint64_t completions() const { return completions_; }
  /// Fraction of server-time spent busy over [0, now].
  [[nodiscard]] double utilization() const;
  /// Time-weighted mean queue length over [0, now].
  [[nodiscard]] double mean_queue_length() const;
  [[nodiscard]] double max_queue_length() const {
    return queue_stat_.max();
  }
  /// Waiting time from acquire to grant.
  [[nodiscard]] const Accumulator& waiting_times() const { return waits_; }

 private:
  friend struct AcquireAwaiter;

  struct Waiter {
    std::coroutine_handle<> handle;
    int priority;
    Time arrival;
    std::uint64_t seq;
  };

  void grant(Time arrival, Time now);
  void enqueue(std::coroutine_handle<> handle, int priority, Time arrival);

  Engine* engine_;
  std::string name_;
  int servers_;
  int busy_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t next_seq_ = 0;
  std::deque<Waiter> waiters_;  // kept sorted: priority desc, seq asc
  TimeWeighted busy_stat_;
  TimeWeighted queue_stat_;
  Accumulator waits_;
};

}  // namespace prophet::sim
