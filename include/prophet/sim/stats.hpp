// Statistics accumulators used by the simulation engine and the
// Performance Estimator: plain accumulators for sampled values
// (service/waiting times), time-weighted accumulators for level processes
// (queue lengths, busy servers), and fixed-bin histograms for the
// performance-visualization output.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "prophet/sim/engine.hpp"

namespace prophet::sim {

/// Running mean/min/max/sum over discrete observations.
class Accumulator {
 public:
  void record(double value) {
    ++count_;
    sum_ += value;
    sum_squares_ += value * value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Population variance.
  [[nodiscard]] double variance() const {
    if (count_ == 0) {
      return 0.0;
    }
    const double m = mean();
    return sum_squares_ / static_cast<double>(count_) - m * m;
  }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

  void reset() { *this = Accumulator{}; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0;
  double sum_squares_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant level (queue length,
/// number of busy servers).  Call set(level, now) at every level change;
/// mean(now) integrates the level over elapsed time.
class TimeWeighted {
 public:
  explicit TimeWeighted(double initial_level = 0, Time start = 0)
      : level_(initial_level), last_change_(start), start_(start) {}

  void set(double level, Time now) {
    integral_ += level_ * (now - last_change_);
    level_ = level;
    last_change_ = now;
    max_ = std::max(max_, level);
  }

  void add(double delta, Time now) { set(level_ + delta, now); }

  [[nodiscard]] double level() const { return level_; }
  [[nodiscard]] double max() const { return max_; }

  /// Time-weighted mean over [start, now].
  [[nodiscard]] double mean(Time now) const {
    const Time elapsed = now - start_;
    if (elapsed <= 0) {
      return level_;
    }
    const double integral = integral_ + level_ * (now - last_change_);
    return integral / elapsed;
  }

 private:
  double level_ = 0;
  double integral_ = 0;
  double max_ = 0;
  Time last_change_ = 0;
  Time start_ = 0;
};

/// Fixed-width histogram over [lo, hi); values outside are clamped into
/// the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void record(double value) {
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto index = static_cast<long>((value - lo_) / width);
    index = std::clamp<long>(index, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(index)];
    ++total_;
  }

  [[nodiscard]] const std::vector<std::size_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const {
    return lo_ + static_cast<double>(i) * (hi_ - lo_) /
                     static_cast<double>(counts_.size());
  }

  /// Simple ASCII rendering (one row per bin) for report output.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace prophet::sim
