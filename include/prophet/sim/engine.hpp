// Process-oriented discrete-event simulation engine.
//
// This is the reproduction's substitute for the commercial CSIM engine the
// Performance Estimator uses in Fig. 2 of the paper.  CSIM models a system
// as a set of processes that hold (consume simulated time), use facilities
// (queued servers) and exchange messages through mailboxes; this engine
// offers the same primitives with C++20 coroutines standing in for CSIM's
// stackful threads:
//
//   sim::Process worker(sim::Engine& engine) {
//     co_await engine.hold(1.5);              // consume simulated time
//     co_await other_process(engine);         // run a sub-process inline
//   }
//   sim::Engine engine;
//   engine.spawn(worker(engine));
//   engine.run();
//
// The engine is single-threaded and deterministic: events at equal times
// fire in schedule order (stable FIFO), so a fixed model and seed always
// produce the same trace.
#pragma once

#include <cmath>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

namespace prophet::guard {
class Budget;
}  // namespace prophet::guard

namespace prophet::sim {

/// Simulated time, in seconds.
using Time = double;

/// +infinity: run() until the event calendar drains.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

class Engine;

namespace detail {

/// Shared completion state of a spawned process, used for joining.
struct ProcessState {
  bool done = false;
  std::exception_ptr error;
  std::vector<std::coroutine_handle<>> waiters;
};

}  // namespace detail

/// Handle to a spawned process; co_await it to join.
class ProcessRef {
 public:
  ProcessRef() = default;
  explicit ProcessRef(std::shared_ptr<detail::ProcessState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const { return state_ && state_->done; }

  // Awaiting a ProcessRef suspends until the process completes.  If the
  // process terminated with an exception, it is rethrown at the join
  // point (and is then considered handled).
  struct JoinAwaiter {
    std::shared_ptr<detail::ProcessState> state;
    [[nodiscard]] bool await_ready() const noexcept { return state->done; }
    void await_suspend(std::coroutine_handle<> handle) const {
      state->waiters.push_back(handle);
    }
    void await_resume() const {
      if (state->error) {
        std::exception_ptr error = state->error;
        state->error = nullptr;
        std::rethrow_exception(error);
      }
    }
  };
  [[nodiscard]] JoinAwaiter operator co_await() const {
    if (!state_) {
      throw std::logic_error("joining an empty ProcessRef");
    }
    return JoinAwaiter{state_};
  }

 private:
  std::shared_ptr<detail::ProcessState> state_;
};

/// A simulation process: a coroutine scheduled by the Engine.
///
/// Processes either run as sub-processes (`co_await child(...)`, which
/// executes the child inline at the current simulated time) or as
/// independent concurrent processes (`engine.spawn(child(...))`).
class [[nodiscard]] Process {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    Engine* engine = nullptr;
    std::coroutine_handle<> continuation;  // set when awaited as sub-process
    std::shared_ptr<detail::ProcessState> state;  // set when spawned
    std::exception_ptr error;

    Process get_return_object() {
      return Process(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle handle) noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  Process() = default;
  explicit Process(Handle handle) : handle_(handle) {}
  Process(Process&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = nullptr;
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy(); }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }

  /// Releases ownership of the coroutine (used by Engine::spawn).
  Handle release() {
    Handle handle = handle_;
    handle_ = nullptr;
    return handle;
  }

  /// Awaiting a Process runs it inline as a sub-process: the child starts
  /// immediately at the current simulated time and the parent resumes when
  /// the child finishes.  This is how composite model elements (nested
  /// activity diagrams, Fig. 8b lines 79-82) execute their content.
  /// (Defined after the class; it holds a Process by value.)
  struct CallAwaiter;
  [[nodiscard]] CallAwaiter operator co_await() &&;

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_ = nullptr;
};

struct Process::CallAwaiter {
  Process child;  // owns the child coroutine for the await's duration
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> caller) noexcept {
    child.handle_.promise().engine = caller.promise().engine;
    child.handle_.promise().continuation = caller;
    return child.handle_;  // symmetric transfer into the child
  }
  void await_resume() {
    if (child.handle_.promise().error) {
      std::rethrow_exception(child.handle_.promise().error);
    }
  }
};

inline Process::CallAwaiter Process::operator co_await() && {
  if (!handle_) {
    throw std::logic_error("awaiting an empty Process");
  }
  return CallAwaiter{std::move(*this)};
}

/// The event calendar + clock + run loop.
class Engine {
 public:
  Engine() = default;
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Number of events processed so far.
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Number of live (spawned, unfinished) processes.
  [[nodiscard]] std::size_t live_processes() const { return live_.size(); }

  /// Schedules a raw coroutine resume at absolute time `when`.
  /// Throws std::logic_error when `when` precedes the current time.
  void schedule(std::coroutine_handle<> handle, Time when);

  /// Spawns an independent process starting at the current time.
  ProcessRef spawn(Process process) {
    return spawn_at(now_, std::move(process));
  }

  /// Spawns an independent process starting at absolute time `when`.
  ProcessRef spawn_at(Time when, Process process);

  /// Awaitable that consumes `delay` of simulated time.
  struct HoldAwaiter {
    Engine* engine;
    Time delay;
    [[nodiscard]] bool await_ready() const noexcept { return delay <= 0; }
    void await_suspend(std::coroutine_handle<> handle) const {
      engine->schedule(handle, engine->now_ + delay);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] HoldAwaiter hold(Time delay) {
    if (delay < 0 || std::isnan(delay)) {
      throw std::invalid_argument("hold() with negative or NaN delay");
    }
    return HoldAwaiter{this, delay};
  }

  /// Runs until the calendar drains or the clock would pass `until`.
  /// Returns the number of events processed by this call.  An exception
  /// escaping a spawned process that nobody has joined aborts the run and
  /// is rethrown here.
  std::uint64_t run(Time until = kTimeInfinity);

  /// Processes a single event; returns false when the calendar is empty.
  bool step();

  /// True when no events are pending.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Installs an execution budget (null detaches).  The run loop then
  /// charges one sim event per dispatched event and lets the budget's
  /// guard::ResourceExhausted / guard::Cancelled escape run() — a bounded
  /// simulation can never spin past its limits between events.  The
  /// budget never alters scheduling: an unlimited budget is bit-identical
  /// to none.
  void set_budget(guard::Budget* budget) { budget_ = budget; }
  [[nodiscard]] guard::Budget* budget() const { return budget_; }

  // --- internal hooks (used by the Process machinery) ----------------------
  void defer_destroy(std::coroutine_handle<> handle);
  void record_error(std::exception_ptr error) {
    if (!pending_error_) {
      pending_error_ = error;
    }
  }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  void drain_destroy_list();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::coroutine_handle<>> to_destroy_;
  std::vector<std::coroutine_handle<>> live_;  // spawned, unfinished
  std::exception_ptr pending_error_;
  guard::Budget* budget_ = nullptr;
};

}  // namespace prophet::sim
