// Mailboxes — CSIM-style message exchange between simulation processes.
//
// The workload layer builds the message-passing modeling elements of the
// paper's UML extension (send/recv/broadcast/... [17,18]) on top of these:
// a send deposits a message (never blocks), a receive suspends the calling
// process until a message is available.  Delivery is FIFO.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "prophet/sim/engine.hpp"
#include "prophet/sim/stats.hpp"

namespace prophet::sim {

/// A message in flight.  `size` is in bytes (used by the network model to
/// derive transfer times); `payload` is opaque to the engine.
struct Message {
  int source = 0;
  int tag = 0;
  double size = 0;
  Time sent_at = 0;
  std::uint64_t payload = 0;
};

class Mailbox {
 public:
  Mailbox(Engine& engine, std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t pending() const { return messages_.size(); }
  [[nodiscard]] std::size_t waiting_receivers() const {
    return waiters_.size();
  }

  /// Deposits a message; wakes the longest-waiting receiver if any.
  void send(Message message);

  /// Awaitable receive; suspends while the mailbox is empty.
  struct ReceiveAwaiter {
    Mailbox* mailbox;
    Message message;
    Time arrival = 0;

    [[nodiscard]] bool await_ready() {
      arrival = mailbox->engine_->now();
      if (!mailbox->messages_.empty()) {
        message = mailbox->take();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      mailbox->waiters_.push_back({handle, this});
    }
    [[nodiscard]] Message await_resume() {
      mailbox->receive_waits_.record(mailbox->engine_->now() - arrival);
      return message;
    }
  };
  [[nodiscard]] ReceiveAwaiter receive() {
    return ReceiveAwaiter{this, Message{}, 0};
  }

  // --- Statistics ----------------------------------------------------------

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_received() const { return received_; }
  /// Time-weighted mean number of queued messages.
  [[nodiscard]] double mean_pending() const;
  /// Receiver blocking times.
  [[nodiscard]] const Accumulator& receive_waits() const {
    return receive_waits_;
  }

 private:
  friend struct ReceiveAwaiter;

  struct Waiter {
    std::coroutine_handle<> handle;
    ReceiveAwaiter* awaiter;
  };

  Message take();

  Engine* engine_;
  std::string name_;
  std::deque<Message> messages_;
  std::deque<Waiter> waiters_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  TimeWeighted pending_stat_;
  Accumulator receive_waits_;
};

}  // namespace prophet::sim
