// The machine model — "Machine Elements" + "SP" of Fig. 2.
//
// "The Performance Estimator generates automatically the machine model
// based on the specified architectural parameters" (Sec. 2.2).  The
// SystemParameters struct is the paper's SP element: number of
// computational nodes, processors per node, processes and threads — plus
// the network/CPU parameters the synthetic machine needs (the paper's
// authors measured these on real clusters; the reproduction uses
// configurable defaults that resemble a 2008-era cluster).
//
// The generated machine is a set of sim::Facility objects (one per node,
// with `processors_per_node` servers) plus an analytic communication-time
// model: intra-node transfers use memory latency/bandwidth, inter-node
// transfers the network, in the LogGP spirit (latency + size/bandwidth,
// with a per-message CPU overhead charged to the sender).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "prophet/sim/engine.hpp"
#include "prophet/sim/facility.hpp"
#include "prophet/xml/dom.hpp"

namespace prophet::machine {

/// The paper's SP element plus the synthetic hardware constants.
struct SystemParameters {
  // --- SP proper (Sec. 2.2) ------------------------------------------------
  int nodes = 1;                // nn
  int processors_per_node = 1;  // ppn
  int processes = 1;            // np
  int threads_per_process = 1;  // nt

  // --- synthetic hardware --------------------------------------------------
  double cpu_speed = 1.0;            // scales all compute costs (1 = nominal)
  double network_latency = 50e-6;    // seconds per inter-node message
  double network_bandwidth = 125e6;  // bytes/second (≈ 1 Gbit/s)
  double network_overhead = 5e-6;    // sender CPU time per message
  double memory_latency = 0.5e-6;    // seconds per intra-node message
  double memory_bandwidth = 2e9;     // bytes/second
  double barrier_latency = 2e-6;     // per synchronization round

  /// Throws std::invalid_argument when any count is < 1 or any rate <= 0.
  void validate() const;

  /// Serialization (the SP XML file of Fig. 2):
  ///   <sp nodes="4" ppn="2" processes="8" threads="1">
  ///     <network latency="5e-05" bandwidth="1.25e+08" overhead="5e-06"/>
  ///     <memory latency="5e-07" bandwidth="2e+09"/>
  ///     <cpu speed="1"/>
  ///   </sp>
  [[nodiscard]] xml::Document to_xml() const;
  [[nodiscard]] static SystemParameters from_xml(const xml::Document& doc);
  void save(const std::string& path) const;
  [[nodiscard]] static SystemParameters load(const std::string& path);
};

// --- Engine-free cost helpers ------------------------------------------------
//
// The LogGP-style communication/compute cost formulas, usable without a
// sim::Engine.  MachineModel delegates to these; the analytic estimation
// backend (prophet/analytic) evaluates the same formulas directly, so the
// two backends price communication identically by construction.

/// Node hosting a given process (block distribution: consecutive ranks
/// share a node).  Throws std::out_of_range for pids outside
/// [0, processes).
[[nodiscard]] int node_of(const SystemParameters& params, int pid);

/// Wall time a `bytes`-sized message needs from process `src_pid` to
/// process `dst_pid` (latency + bytes/bandwidth; intra- vs inter-node).
[[nodiscard]] double message_time(const SystemParameters& params, int src_pid,
                                  int dst_pid, double bytes);

/// Time for one tree round of a collective moving `bytes` per rank pair.
[[nodiscard]] double collective_round_time(const SystemParameters& params,
                                           double bytes);

/// Scales a nominal compute cost by the machine's CPU speed.
[[nodiscard]] inline double compute_time(const SystemParameters& params,
                                         double nominal_cost) {
  return nominal_cost / params.cpu_speed;
}

/// ceil(log2(n)) for n >= 1 — rounds of a binomial synchronization tree.
[[nodiscard]] int tree_rounds(int n);

/// Completion latency of an all-process barrier: ceil(log2(np))
/// synchronization rounds of barrier latency.
[[nodiscard]] double barrier_time(const SystemParameters& params);

/// The generated machine: node facilities + communication-time model.
class MachineModel {
 public:
  MachineModel(sim::Engine& engine, SystemParameters params);

  [[nodiscard]] const SystemParameters& params() const { return params_; }

  /// Node hosting a given process (block distribution: consecutive ranks
  /// share a node).
  [[nodiscard]] int node_of(int pid) const;

  /// The processor facility of a node (ppn servers).
  [[nodiscard]] sim::Facility& node(int index);
  [[nodiscard]] const sim::Facility& node(int index) const;
  [[nodiscard]] int node_count() const {
    return static_cast<int>(nodes_.size());
  }

  /// Processor facility serving a process's compute requests.
  [[nodiscard]] sim::Facility& processor_of(int pid) {
    return node(node_of(pid));
  }

  /// Wall time a `bytes`-sized message needs from process `src` to
  /// process `dst` (latency + bytes/bandwidth; intra- vs inter-node).
  [[nodiscard]] double message_time(int src_pid, int dst_pid,
                                    double bytes) const;

  /// Sender CPU overhead per message.
  [[nodiscard]] double send_overhead() const {
    return params_.network_overhead;
  }

  /// Time for one tree round of a collective among `participants`
  /// processes moving `bytes` per rank pair.  Collectives in the workload
  /// layer charge ceil(log2(n)) such rounds.
  [[nodiscard]] double collective_round_time(double bytes) const;

  /// Scales a nominal compute cost by the machine's CPU speed.
  [[nodiscard]] double compute_time(double nominal_cost) const {
    return machine::compute_time(params_, nominal_cost);
  }

  /// One line per node: utilization, completions, mean queue length.
  [[nodiscard]] std::string utilization_report() const;

 private:
  sim::Engine* engine_;
  SystemParameters params_;
  std::vector<std::unique_ptr<sim::Facility>> nodes_;
};

}  // namespace prophet::machine
