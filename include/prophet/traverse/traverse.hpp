// Model traversing — the Navigator / Traverser / ContentHandler triad of
// Fig. 6 of the paper.
//
// "During the model traversing procedure, first, the Traverser sends the
// navigation command to the Navigator. Then, the Traverser obtains the
// current element ce from the Navigator. Finally, the Traverser asks the
// ContentHandler to visit the element ce and generate the corresponding
// code."  The three components meet only through these interfaces, so
// "each implementation of one of these components can be combined with any
// implementation of the other two" (Sec. 3).  The library ships default
// implementations (depth-first and breadth-first navigators, and several
// handlers); generating a new model representation only requires a new
// ContentHandler, exactly as the paper prescribes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "prophet/uml/model.hpp"

namespace prophet::traverse {

/// What kind of model entity the navigator is currently positioned on.
enum class EntityKind {
  Model,
  Variable,
  CostFunction,
  Diagram,
  Node,
  Edge,
};

/// Whether the entity is being entered, left, or visited as a leaf.
/// Container entities (Model, Diagram) produce Enter/Leave pairs;
/// leaf entities (nodes, edges, variables, cost functions) produce Visit.
enum class Phase {
  Enter,
  Leave,
  Visit,
};

[[nodiscard]] std::string_view to_string(EntityKind kind);
[[nodiscard]] std::string_view to_string(Phase phase);

/// The "current element ce" of Fig. 6: a typed view onto one entity of the
/// model tree.  Only the pointer matching `kind` is non-null.
struct Entity {
  EntityKind kind = EntityKind::Model;
  Phase phase = Phase::Visit;
  const uml::Model* model = nullptr;
  const uml::ActivityDiagram* diagram = nullptr;  // enclosing or self
  const uml::Node* node = nullptr;
  const uml::ControlFlow* edge = nullptr;
  const uml::Variable* variable = nullptr;
  const uml::CostFunction* cost_function = nullptr;

  /// Identifier of the entity for diagnostics (element id, variable name,
  /// ...).
  [[nodiscard]] std::string label() const;
};

/// Supplies the model tree one element at a time (Fig. 6 :Navigator).
class Navigator {
 public:
  virtual ~Navigator() = default;

  /// Positions the navigator at the start of `model`.
  virtual void start(const uml::Model& model) = 0;

  /// The navigation command: advances to the next element.  Returns false
  /// when the traversal is exhausted.
  virtual bool advance() = 0;

  /// The element the navigator currently points at.  Only valid after a
  /// successful advance().
  [[nodiscard]] virtual const Entity& current() const = 0;
};

/// Consumes elements and generates a model representation
/// (Fig. 6 :ContentHandler).
class ContentHandler {
 public:
  virtual ~ContentHandler() = default;

  /// Visits one element.  Called once per successful navigator advance.
  virtual void visit(const Entity& entity) = 0;
};

/// Drives the traversal protocol (Fig. 6 :Traverser): for every step it
/// (1) sends the navigation command, (2) obtains the current element, and
/// (3) asks the handler to visit it.
class Traverser {
 public:
  /// Runs the full protocol; returns the number of elements visited.
  std::size_t traverse(const uml::Model& model, Navigator& navigator,
                       ContentHandler& handler);
};

// --- Default navigators ------------------------------------------------------

/// Pre/post-order depth-first walk over the model tree:
/// Model(Enter), each Variable, each CostFunction, then per diagram:
/// Diagram(Enter), nodes in insertion order, edges in insertion order,
/// Diagram(Leave); finally Model(Leave).
class DepthFirstNavigator final : public Navigator {
 public:
  void start(const uml::Model& model) override;
  bool advance() override;
  [[nodiscard]] const Entity& current() const override;

 private:
  std::vector<Entity> sequence_;
  std::size_t position_ = 0;
  bool started_ = false;
};

/// Breadth-first over diagram contents: all diagrams (Enter) first, then
/// all nodes of all diagrams, then all edges, then diagram Leaves.  Useful
/// for handlers that want all declarations before any flow.
class BreadthFirstNavigator final : public Navigator {
 public:
  void start(const uml::Model& model) override;
  bool advance() override;
  [[nodiscard]] const Entity& current() const override;

 private:
  std::vector<Entity> sequence_;
  std::size_t position_ = 0;
  bool started_ = false;
};

// --- Default handlers -------------------------------------------------------

/// Records the visit sequence (labels + phases); used by protocol tests.
class RecordingHandler final : public ContentHandler {
 public:
  void visit(const Entity& entity) override;
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  std::vector<std::string> log_;
};

/// Counts visited entities per kind.
class CountingHandler final : public ContentHandler {
 public:
  void visit(const Entity& entity) override;
  [[nodiscard]] std::size_t count(EntityKind kind) const;
  [[nodiscard]] std::size_t total() const { return total_; }

 private:
  std::size_t counts_[6] = {};
  std::size_t total_ = 0;
};

/// Renders a human-readable outline of the model (one line per entity).
class OutlineHandler final : public ContentHandler {
 public:
  void visit(const Entity& entity) override;
  [[nodiscard]] const std::string& text() const { return text_; }

 private:
  std::string text_;
  int depth_ = 0;
};

}  // namespace prophet::traverse
