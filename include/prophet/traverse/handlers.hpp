// Additional ContentHandler implementations.
//
// The paper: "Commonly, the extension of Performance Prophet for the
// generation of a specific model representation involves only a specific
// implementation of the ContentHandler interface" (Sec. 3).  These
// handlers demonstrate exactly that: an XML representation generator and
// a model-statistics collector, both driven by the unmodified Traverser /
// Navigator machinery.
#pragma once

#include <map>
#include <string>

#include "prophet/traverse/traverse.hpp"
#include "prophet/xml/dom.hpp"

namespace prophet::traverse {

/// Generates the XML model representation through the Fig. 6 protocol —
/// the Model Traverser's "generation of different model representations
/// (XML and C++)" (Sec. 2.2).  The produced document uses the same schema
/// as prophet::xmi, so `xmi::from_document` can reload it.
class XmlContentHandler final : public ContentHandler {
 public:
  XmlContentHandler();

  void visit(const Entity& entity) override;

  /// The document built so far (complete after the Model Leave event).
  [[nodiscard]] const xml::Document& document() const { return document_; }

 private:
  xml::Document document_;
  xml::Element* variables_ = nullptr;
  xml::Element* functions_ = nullptr;
  xml::Element* diagrams_ = nullptr;
  xml::Element* current_diagram_ = nullptr;
};

/// Collects model-complexity statistics (element counts per kind and per
/// stereotype, guard/tag totals, hierarchy depth inputs).
class StatisticsHandler final : public ContentHandler {
 public:
  void visit(const Entity& entity) override;

  [[nodiscard]] std::size_t diagrams() const { return diagrams_; }
  [[nodiscard]] std::size_t nodes() const { return nodes_; }
  [[nodiscard]] std::size_t edges() const { return edges_; }
  [[nodiscard]] std::size_t guarded_edges() const { return guarded_edges_; }
  [[nodiscard]] std::size_t tagged_values() const { return tagged_values_; }
  [[nodiscard]] const std::map<std::string, std::size_t>& by_stereotype()
      const {
    return by_stereotype_;
  }
  [[nodiscard]] const std::map<std::string, std::size_t>& by_node_kind()
      const {
    return by_node_kind_;
  }

  /// One-line-per-metric report.
  [[nodiscard]] std::string report() const;

 private:
  std::size_t diagrams_ = 0;
  std::size_t nodes_ = 0;
  std::size_t edges_ = 0;
  std::size_t guarded_edges_ = 0;
  std::size_t tagged_values_ = 0;
  std::map<std::string, std::size_t> by_stereotype_;
  std::map<std::string, std::size_t> by_node_kind_;
};

}  // namespace prophet::traverse
