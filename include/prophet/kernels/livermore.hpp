// C++ ports of Livermore Fortran kernels [McMahon 1986], used to ground
// the paper's running example (kernel 6, Fig. 3a) in measurable code.
//
// The examples use these to *calibrate* cost functions: run the real
// kernel, divide measured time by operation count, and feed the per-op
// time into the model's FK6 — the measurement-based workflow the paper
// describes ("We may identify, for an existing program, code blocks that
// determine the overall program performance by using a profiling tool",
// Sec. 3).
#pragma once

#include <cstddef>
#include <cstdint>

namespace prophet::kernels {

/// Result of one timed kernel run.
struct KernelResult {
  double seconds = 0;       // wall time of the kernel body
  double checksum = 0;      // value depending on every output element
  std::uint64_t operations = 0;  // inner-loop operation count
};

/// Kernel 1 — hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
[[nodiscard]] KernelResult kernel1(std::size_t n, int repetitions);

/// Kernel 2 — ICCG (incomplete Cholesky conjugate gradient) fragment.
[[nodiscard]] KernelResult kernel2(std::size_t n, int repetitions);

/// Kernel 3 — inner product: q += z[k]*x[k].
[[nodiscard]] KernelResult kernel3(std::size_t n, int repetitions);

/// Kernel 6 — general linear recurrence equations (the paper's Fig. 3a):
///   DO L = 1, M
///     DO i = 2, N
///       DO k = 1, i-1
///         W(i) = W(i) + B(i,k) * W(i-k)
[[nodiscard]] KernelResult kernel6(std::size_t n, std::size_t m);

/// Inner-loop operation count of kernel 6: m * n*(n-1)/2.
[[nodiscard]] std::uint64_t kernel6_operations(std::size_t n, std::size_t m);

/// Measures kernel 6 at a calibration size and returns seconds per
/// inner-loop operation (the `c` fed into FK6).
[[nodiscard]] double calibrate_kernel6_op_time(std::size_t n = 256,
                                               std::size_t m = 16);

}  // namespace prophet::kernels
