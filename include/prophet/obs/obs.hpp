#pragma once

/// \file obs.hpp
/// Observability substrate: a metrics registry of named counters, gauges
/// and timers, plus a span log that exports Chrome trace-event JSON.
///
/// The design keeps instrumentation off the hot paths:
///
///  - Engines (the expr VM, the sim elements, the analytic walker) never
///    touch the registry directly.  They increment plain POD counter
///    blocks (ExprCounters, SimCounters, AnalyticCounters) through
///    nullable raw pointers — a null pointer means "disabled" and costs
///    one predictable branch.  Call boundaries fold the PODs into a
///    Registry afterwards.
///  - Registry hands out Counter/Gauge/Timer handles wrapping raw cell
///    pointers; a default-constructed handle is a no-op.  Cells live in
///    a std::map, whose node stability keeps handles valid for the
///    registry's lifetime.
///  - Neither Registry nor TraceLog is thread-safe.  Concurrent callers
///    (BatchRunner workers) own one instance each and merge() after the
///    join.
///
/// Invariant: hot paths emit through obs handles and POD counters, never
/// through string lookups.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "prophet/trace/trace.hpp"

namespace prophet::obs {

// ---------------------------------------------------------------------------
// Hot-path counter blocks
// ---------------------------------------------------------------------------

/// Counted by the expression VM (expr::Compiled::eval) when a block is
/// installed on the EvalContext.
struct ExprCounters {
  std::uint64_t instructions = 0;  ///< bytecode instructions dispatched
  std::uint64_t evals = 0;         ///< eval() calls completed or thrown
  std::uint64_t lazy_errors = 0;   ///< compile-time-deferred errors thrown
  /// eval_batch fast-path executions (each one advances `evals` by its
  /// lane width but `instructions` once per batched dispatch) — CI
  /// asserts this is nonzero when a sweep claims to have vectorized.
  std::uint64_t batch_evals = 0;
};

/// Counted by the workload elements and the simulation manager.
struct SimCounters {
  std::uint64_t messages = 0;          ///< point-to-point + collective sends
  std::uint64_t barriers = 0;          ///< MPI + OpenMP barrier entries
  std::uint64_t context_switches = 0;  ///< engine events processed
};

/// Counted by the analytic estimator's symbolic walk and replay.
struct AnalyticCounters {
  std::uint64_t loop_collapses = 0;   ///< loops folded to one walked body
  std::uint64_t spmd_fast_path = 0;   ///< one walk reused for all ranks
  std::uint64_t events_replayed = 0;  ///< events consumed by replay()
  std::uint64_t schedule_wins = 0;    ///< makespan set by replayed schedule
  std::uint64_t capacity_wins = 0;    ///< makespan set by node capacity bound
  std::uint64_t critical_wins = 0;    ///< makespan set by critical-path bound
  ExprCounters expr;                  ///< VM activity during the walk
};

// ---------------------------------------------------------------------------
// Registry handles
// ---------------------------------------------------------------------------

/// Monotonic integer cell handle.  Default-constructed handles are
/// disabled no-ops.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n = 1) {
    if (cell_ != nullptr) {
      *cell_ += n;
    }
  }

 private:
  friend class Registry;
  explicit Counter(std::uint64_t* cell) : cell_(cell) {}
  std::uint64_t* cell_ = nullptr;
};

/// Point-in-time double cell handle (set/add).
class Gauge {
 public:
  Gauge() = default;

  void set(double value) {
    if (cell_ != nullptr) {
      *cell_ = value;
    }
  }

  void add(double value) {
    if (cell_ != nullptr) {
      *cell_ += value;
    }
  }

 private:
  friend class Registry;
  explicit Gauge(double* cell) : cell_(cell) {}
  double* cell_ = nullptr;
};

/// Accumulated-seconds cell handle.
class Timer {
 public:
  Timer() = default;

  void add_seconds(double seconds) {
    if (cell_ != nullptr) {
      *cell_ += seconds;
    }
  }

 private:
  friend class Registry;
  friend class ScopedTimer;
  explicit Timer(double* cell) : cell_(cell) {}
  double* cell_ = nullptr;
};

/// RAII wall-clock accumulation into a Timer (no-op on a disabled one).
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer timer)
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_.add_seconds(std::chrono::duration<double>(elapsed).count());
  }

 private:
  Timer timer_;
  std::chrono::steady_clock::time_point start_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Named metric cells with a stable JSON export.  NOT thread-safe: give
/// each worker its own registry and merge().  Metric names are
/// dot-separated lowercase paths ("batch.jobs", "expr.instructions");
/// the glossary lives in docs/observability.md.
class Registry {
 public:
  /// Returns a handle, creating the cell at zero on first use.
  /// Re-requesting a name with a different kind throws std::logic_error.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Timer timer(std::string_view name);

  /// Folds a POD counter block in under `prefix` ("expr." + field name).
  void fold(std::string_view prefix, const ExprCounters& counters);
  void fold(std::string_view prefix, const SimCounters& counters);
  void fold(std::string_view prefix, const AnalyticCounters& counters);

  /// Adds every cell of `other` into this registry (creating missing
  /// cells).  Counters, gauges and timers all merge by summation.
  void merge(const Registry& other);

  /// Point reads; absent names read as zero.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;
  [[nodiscard]] double timer_seconds(std::string_view name) const;

  [[nodiscard]] bool empty() const { return cells_.empty(); }
  [[nodiscard]] std::size_t size() const { return cells_.size(); }

  /// Stable export: {"schema":"prophet-metrics-1","counters":{...},
  /// "gauges":{...},"timers":{...}} with keys sorted, counters as
  /// integers, doubles in shortest round-trip form.
  [[nodiscard]] std::string to_json() const;

 private:
  struct Cell {
    enum class Kind { Counter, Gauge, Timer };
    Kind kind = Kind::Counter;
    std::uint64_t count = 0;
    double value = 0.0;
  };

  Cell& cell(std::string_view name, Cell::Kind kind);

  std::map<std::string, Cell, std::less<>> cells_;
};

// ---------------------------------------------------------------------------
// TraceLog
// ---------------------------------------------------------------------------

/// One completed span on a (pid, tid) lane, in microseconds.  Host spans
/// measure wall clock from the log's epoch; simulated spans measure
/// model time from zero (distinct pid groups keep the two time bases
/// from ever sharing a lane).
struct Span {
  double start_us = 0.0;
  double dur_us = 0.0;
  int pid = 0;
  int tid = 0;
  std::string name;
  std::string cat;
};

/// Span collector exporting the Chrome trace-event JSON format (load in
/// Perfetto or chrome://tracing).  NOT thread-safe: one per worker,
/// merge() after the join.  Workers must share the parent's epoch so
/// their wall-clock spans land on one time base — create them with
/// TraceLog(parent.epoch()).
class TraceLog {
 public:
  using Clock = std::chrono::steady_clock;

  TraceLog() : epoch_(Clock::now()) {}
  explicit TraceLog(Clock::time_point epoch) : epoch_(epoch) {}

  [[nodiscard]] Clock::time_point epoch() const { return epoch_; }

  /// Microseconds of wall clock elapsed since the epoch.
  [[nodiscard]] double now_us() const;

  /// Records a completed span.
  void complete(double start_us, double dur_us, int pid, int tid,
                std::string name, std::string cat);

  /// RAII host span: records `[construction, destruction)` on a lane.
  /// A span on a null log is a no-op — callers pass nullptr when
  /// tracing is disabled.
  class HostSpan {
   public:
    HostSpan(TraceLog* log, int pid, int tid, std::string name,
             std::string cat)
        : log_(log),
          pid_(pid),
          tid_(tid),
          name_(std::move(name)),
          cat_(std::move(cat)),
          start_us_(log != nullptr ? log->now_us() : 0.0) {}
    HostSpan(const HostSpan&) = delete;
    HostSpan& operator=(const HostSpan&) = delete;

    ~HostSpan() {
      if (log_ != nullptr) {
        log_->complete(start_us_, log_->now_us() - start_us_, pid_, tid_,
                       std::move(name_), std::move(cat_));
      }
    }

   private:
    TraceLog* log_;
    int pid_;
    int tid_;
    std::string name_;
    std::string cat_;
    double start_us_;
  };

  /// Metadata: lane labels shown by the trace viewer.
  void name_process(int pid, std::string name);
  void name_thread(int pid, int tid, std::string name);

  /// Maps a simulated timeline onto trace lanes: event (pid p, tid t)
  /// lands on chrome pid `base_pid + p`, tid `t`, with model seconds
  /// scaled to microseconds.  Each rank's process lane is labeled
  /// "`label` pN".
  void append_simulated(const trace::Trace& trace, int base_pid,
                        std::string_view label);

  /// Moves every span and lane label of `other` into this log.
  void merge(TraceLog&& other);

  [[nodiscard]] std::size_t span_count() const { return spans_.size(); }
  [[nodiscard]] bool empty() const { return spans_.empty(); }

  /// {"displayTimeUnit":"ms","traceEvents":[...]} with metadata events
  /// first and "ph":"X" spans sorted by timestamp.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  Clock::time_point epoch_;
  std::vector<Span> spans_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int>, std::string> thread_names_;
};

}  // namespace prophet::obs
