// XMI-style serialization of UML performance models.
//
// Plays the role of the `Models (XML)` store of Fig. 2: Teuta keeps models
// as XML; the Model Traverser generates "different model representations
// (XML and C++)" (Sec. 2.2).  The schema is self-contained (the applied
// profile is embedded) so a model file can be checked and transformed
// without out-of-band configuration:
//
//   <prophet:model name="SampleModel" main="d1" schema="1">
//     <profile name="PerformanceProphet">
//       <stereotype name="action+" base="Action">
//         <tagdef name="id" type="Integer"/> ...
//       </stereotype> ...
//     </profile>
//     <variables>
//       <variable name="GV" type="Real" scope="global" init="0"/> ...
//     </variables>
//     <functions>
//       <function name="FA1" params=""><![CDATA[0.000001*P*P+0.001]]></function>
//     </functions>
//     <diagrams>
//       <diagram id="d1" name="main">
//         <node id="n2" kind="action" name="A1" stereotype="action+">
//           <tag name="cost" type="String">FA1()</tag>
//         </node>
//         <edge id="f2" source="n3" target="n5" guard="GV &gt; 0"/>
//       </diagram>
//     </diagrams>
//   </prophet:model>
#pragma once

#include <stdexcept>
#include <string>

#include "prophet/uml/model.hpp"
#include "prophet/xml/dom.hpp"

namespace prophet::xmi {

/// Error thrown when a document does not conform to the model schema.
class XmiError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Current schema version written by to_document().
inline constexpr int kSchemaVersion = 1;

/// Serializes a model to a DOM document.
[[nodiscard]] xml::Document to_document(const uml::Model& model);

/// Serializes a model directly to XML text.
[[nodiscard]] std::string to_xml(const uml::Model& model);

/// Writes a model to a file.
void save(const uml::Model& model, const std::string& path);

/// Reconstructs a model from a DOM document. Throws XmiError.
[[nodiscard]] uml::Model from_document(const xml::Document& doc);

/// Parses XML text and reconstructs the model. Throws xml::ParseError or
/// XmiError.
[[nodiscard]] uml::Model from_xml(std::string_view text);

/// Loads a model from a file.
[[nodiscard]] uml::Model load(const std::string& path);

/// Structural equality of two models (used by round-trip tests): name,
/// variables, cost functions, profile, diagrams with node/edge ids, kinds,
/// stereotypes, tags and guards.
[[nodiscard]] bool equivalent(const uml::Model& a, const uml::Model& b);

}  // namespace prophet::xmi
