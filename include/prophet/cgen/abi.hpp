// The C ABI between the host process and a dlopen'd generated evaluator.
//
// The cgen backend compiles a specialized C++ evaluator (emitter.hpp)
// into a shared object and loads it with dlopen.  Host and shared object
// are built by the same toolchain from the same headers, but the contract
// between them is deliberately a *C* ABI over POD structs: no C++ types,
// no exceptions and no ownership cross the boundary.  The shared object
// catches everything internally and reports structured status codes; the
// host maps them back onto the typed errors (guard::ResourceExhausted,
// guard::Cancelled) the in-process backends throw, so `tripped_limit`
// accounting is identical across engines.
//
// Versioning: `prophet_cgen_abi_version()` must return kCgenAbiVersion or
// the host refuses the object.  The version also participates in the
// compile-cache key (toolchain.hpp), so a stale cached .so from an older
// ABI is never loaded.
#pragma once

#include <cstddef>
#include <cstdint>

namespace prophet::cgen {

/// Bump on any change to the structs or entry points below.
inline constexpr std::uint32_t kCgenAbiVersion = 1;

/// Status codes of prophet_cgen_run().
enum CgenRunStatus : std::int32_t {
  kCgenOk = 0,                 ///< result is valid
  kCgenError = 1,              ///< evaluation failed (message set)
  kCgenResourceExhausted = 2,  ///< a guard limit tripped (limit/stage set)
  kCgenCancelled = 3,          ///< cancellation observed (stage set)
};

/// One estimation request: machine::SystemParameters flattened to PODs,
/// guard::Limits numbers, and an optional host cancellation poll.
struct CgenParams {
  // machine::SystemParameters, field for field.
  std::int32_t nodes = 1;
  std::int32_t processors_per_node = 1;
  std::int32_t processes = 1;
  std::int32_t threads_per_process = 1;
  double cpu_speed = 1.0;
  double network_latency = 50e-6;
  double network_bandwidth = 125e6;
  double network_overhead = 5e-6;
  double memory_latency = 0.5e-6;
  double memory_bandwidth = 2e9;
  double barrier_latency = 2e-6;

  // guard::Limits for the budget the evaluator constructs on its side of
  // the boundary.  Zero disables a bound, exactly like guard::Limits.
  double wall_seconds = 0;
  std::uint64_t max_sim_events = 0;
  std::uint64_t max_vm_instructions = 0;
  std::uint64_t max_replay_events = 0;
  std::uint64_t max_loop_trips = 0;

  /// Non-zero arms Budget::cancel_at_sim_event (fault injection parity).
  std::uint64_t cancel_at_sim_event = 0;

  /// Optional host cancellation source, polled via
  /// guard::Budget::bind_external_cancel.  Returns non-zero to cancel.
  int (*cancel_poll)(void* context) = nullptr;
  void* cancel_context = nullptr;

  /// Non-zero: format the per-node utilization report (PredictionReport::
  /// machine_report); sweeps keep it off.
  std::int32_t collect_machine_report = 1;
};

/// One estimation result.  Array/string pointers point into storage owned
/// by the shared object (`owner`); the host copies out and then calls
/// prophet_cgen_free exactly once, before dlclose.
struct CgenResult {
  std::int32_t status = kCgenError;  ///< CgenRunStatus
  double predicted_time = 0;
  std::uint64_t events = 0;
  std::int32_t processes = 0;

  // Per-process finish times (parallel arrays, `finish_count` entries).
  const std::int32_t* finish_pids = nullptr;
  const double* finish_times = nullptr;
  std::size_t finish_count = 0;

  /// NUL-terminated utilization report ("" unless requested), and the
  /// error message for non-ok statuses.
  const char* machine_report = nullptr;
  const char* message = nullptr;

  // Guard trip details (status 2/3): guard::LimitKind as int, the check
  // site that observed the trip, and the usage counters at failure.
  std::int32_t limit = 0;
  const char* stage = nullptr;
  std::uint64_t usage_sim_events = 0;
  std::uint64_t usage_vm_instructions = 0;
  std::uint64_t usage_replay_events = 0;
  std::uint64_t usage_loop_trips = 0;
  double usage_elapsed_seconds = 0;

  /// Opaque storage handle; released by prophet_cgen_free.
  void* owner = nullptr;
};

/// Entry-point names and signatures every generated object exports.
inline constexpr const char* kCgenAbiVersionSymbol =
    "prophet_cgen_abi_version";
inline constexpr const char* kCgenRunSymbol = "prophet_cgen_run";
inline constexpr const char* kCgenFreeSymbol = "prophet_cgen_free";

using CgenAbiVersionFn = std::uint32_t (*)();
using CgenRunFn = std::int32_t (*)(const CgenParams*, CgenResult*);
using CgenFreeFn = void (*)(CgenResult*);

}  // namespace prophet::cgen
