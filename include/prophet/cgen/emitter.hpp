// Emission of a specialized C++ evaluator from a lower::ModelProgram.
//
// This is the paper's transformation thesis completed in-process: the
// model's executable form (the shared lowering every backend consumes)
// is translated into one self-contained C++ translation unit that drives
// the same workload runtime and simulation engine as the interpreter —
// but with every per-node decision made at emission time:
//
//   * the model-wide slot space becomes a fixed-size pointer frame and
//     thread_local global storage (concurrent estimates stay race-free),
//   * each diagram becomes a coroutine state machine (`switch` over node
//     indices) that replays the interpreter's walk exactly — decisions,
//     fork/join discovery, loop trips, step limits and error messages
//     included,
//   * every expression tag, guard, initializer, fragment assignment and
//     cost-function body is transliterated from its slot-resolved
//     bytecode into straight-line C++ statements that reproduce the VM's
//     arithmetic operation for operation (the compile-cache and the
//     three-way differential tests pin bit-identical predictions),
//   * the guard::Budget contract survives: generated loops charge
//     loop trips (stage "cgen-loop") and the engine charges events, so
//     runaway models trip limits instead of hanging.
//
// Invariant: generated evaluators are produced from lower::ModelProgram,
// never from the AST (codegen/transformer, the out-of-process path, is a
// separate consumer of the model).  The emitted unit's only interface is
// the C ABI of cgen/abi.hpp.
#pragma once

#include <string>

#include "prophet/lower/lower.hpp"

namespace prophet::cgen {

/// Emits the complete C++ translation unit of a specialized evaluator
/// for `program`.  Deterministic: the same program emits byte-identical
/// source (the toolchain's compile cache keys on the source hash).
[[nodiscard]] std::string emit_evaluator(const lower::ModelProgram& program);

}  // namespace prophet::cgen
