// Host-toolchain driver: compile emitted evaluators into shared objects.
//
// One command builder serves every consumer that invokes the C++
// toolchain on generated code — the cgen backend (shared objects) and
// the out-of-process integration tests (executables) — so the compiler
// choice (`$CXX`, default g++) and the sanitizer pass-through
// (`$PROPHET_EXTRA_CXX_FLAGS`, falling back to the flags baked in at
// configure time) cannot drift between them.
//
// compile_shared_object() adds a content-addressed cache: the key is an
// FNV-1a hash over (emitted source, full command shape, ABI version), so
// a model that lowers to the same evaluator — across jobs, sweeps and
// processes sharing the cache directory — compiles once and every later
// prepare() is a dlopen of the cached object.  Compiles go to a
// temporary name and rename into place, which is atomic within the cache
// directory, so concurrent producers of the same key are benign.
//
// Failures (no usable compiler, compile errors) throw CgenError with the
// toolchain's output attached; the pipeline surfaces them as stage-
// prefixed job errors ("cgen: ...") without poisoning other jobs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace prophet::guard {
class FaultPlan;
}  // namespace prophet::guard

namespace prophet::cgen {

/// Structured error of the codegen backend: emission, toolchain or
/// loading failures.  The message carries the toolchain output when a
/// compile failed.
class CgenError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The C++ compiler command: `$CXX` when set and non-empty, else "g++".
[[nodiscard]] std::string compiler_command();

/// Extra compile flags: `$PROPHET_EXTRA_CXX_FLAGS` when set (possibly
/// empty), else `fallback` (callers pass their configure-time flags, so
/// sanitized builds compile generated code sanitized too).
[[nodiscard]] std::string extra_cxx_flags(std::string_view fallback);

/// The module archives generated code links against, in link order,
/// under `binary_dir` (the build tree root).  Shared by the cgen driver
/// and the out-of-process integration tests.
[[nodiscard]] std::vector<std::string> runtime_archives(
    std::string_view binary_dir);

/// One toolchain invocation, fully specified.
struct CompileSpec {
  std::string source_path;            ///< input .cpp
  std::string output_path;            ///< output .so / executable
  std::string include_dir;            ///< -I directory (repo include/)
  std::vector<std::string> archives;  ///< static archives, link order
  /// True: position-independent shared object with deterministic FP
  /// (-shared -fPIC -ffp-contract=off, the bit-identity contract).
  /// False: plain executable (the integration tests' mode).
  bool shared_object = false;
  std::string optimization = "-O2";   ///< optimization flag
  /// Fallback for extra_cxx_flags() when the env var is unset.
  std::string extra_flags_fallback;
};

/// The full shell command for `spec` (stderr folded into stdout).
[[nodiscard]] std::string compile_command(const CompileSpec& spec);

/// Runs a shell command, collecting its combined output.  Returns the
/// raw wait status (as pclose reports it); 0 means success.
[[nodiscard]] int run_command(const std::string& command,
                              std::string* output);

/// FNV-1a 64-bit content hash (the compile-cache key function; exposed
/// for tests).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text);

/// Where compile_shared_object works and how it is observed.  Defaults
/// resolve from the environment and the configure-time constants.
struct ToolchainOptions {
  /// Cache directory; empty resolves `$PROPHET_CGEN_CACHE`, then
  /// <system temp>/prophet-cgen-cache.
  std::string cache_dir;
  /// Header include root; empty resolves the configure-time source dir.
  std::string include_dir;
  /// Build tree holding the module archives; empty resolves the
  /// configure-time binary dir.
  std::string binary_dir;
  /// Extra-flags fallback; empty resolves the configure-time flags.
  std::string extra_flags_fallback;
  /// When set, every toolchain invocation visits the "cgen-compile"
  /// fault site first (robustness tests inject compile failures here).
  guard::FaultPlan* fault_plan = nullptr;
};

/// What compile_shared_object() produced.
struct CompileOutcome {
  std::string object_path;     ///< the cached shared object
  bool cache_hit = false;      ///< true: no toolchain invocation needed
  double compile_seconds = 0;  ///< toolchain wall time (0 on cache hit)
};

/// Compiles `source` (an emitted evaluator TU) into a content-addressed
/// shared object, reusing the cache when possible.  Throws CgenError
/// when no toolchain is usable or the compile fails.
[[nodiscard]] CompileOutcome compile_shared_object(
    const std::string& source, const ToolchainOptions& options = {});

}  // namespace prophet::cgen
