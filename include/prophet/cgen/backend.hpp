// The codegen estimation backend: estimator::BackendKind::Codegen.
//
// prepare() completes the paper's transformation loop in-process: the
// shared lowering is emitted as a specialized C++ evaluator
// (emitter.hpp), compiled by the host toolchain into a shared object
// (toolchain.hpp, content-addressed cache) and dlopen'd; estimate()
// marshals machine::SystemParameters and the guard contract across the
// C ABI (abi.hpp) and maps results — including tripped limits — back
// onto the exact types the in-process backends produce.
//
// Semantics: the generated evaluator replays the interpreter's walk, so
// predictions are bit-identical to the simulation backend (the three-way
// differential suite pins this).  Known divergences, documented in
// docs/codegen.md: no event trace, no sim.* metrics, per-estimate (not
// job-cumulative) budget ledgers inside the shared object, and
// max_vm_instructions does not bind (there is no VM to count).
#pragma once

#include <memory>
#include <string_view>

#include "prophet/cgen/toolchain.hpp"
#include "prophet/estimator/backend.hpp"

namespace prophet::cgen {

/// Codegen backend configuration: toolchain resolution, cache location
/// and fault-injection observation for prepare()-time compiles.
struct CodegenOptions {
  ToolchainOptions toolchain;
};

/// A dlopen'd generated evaluator behind the PreparedModel contract.
/// Immutable after prepare(); estimate() marshals everything per call
/// (the shared object keeps its mutable state thread_local), so
/// concurrent estimates are race-free.
class CodegenPrepared final : public estimator::PreparedModel {
 public:
  CodegenPrepared(lower::ModelProgramPtr program,
                  const CodegenOptions& options);
  ~CodegenPrepared() override;

  CodegenPrepared(const CodegenPrepared&) = delete;
  CodegenPrepared& operator=(const CodegenPrepared&) = delete;

  [[nodiscard]] std::string_view backend_name() const override {
    return "codegen";
  }

  [[nodiscard]] estimator::PredictionReport estimate(
      const machine::SystemParameters& params,
      const estimator::EstimationOptions& options) const override;

  [[nodiscard]] lower::ModelProgramPtr lowering() const override;

  /// Wall seconds prepare() spent emitting + compiling + loading (the
  /// pipeline folds this into the codegen.prepare_seconds metric).
  [[nodiscard]] double prepare_seconds() const;

  /// True when the compile cache already held the evaluator (the
  /// codegen.cache_hits metric).
  [[nodiscard]] bool cache_hit() const;

  /// The cached shared object backing this handle (for tests/tools).
  [[nodiscard]] const std::string& object_path() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The codegen backend.  prepare() throws CgenError when emission,
/// the toolchain (including "no usable compiler") or loading fails —
/// a structured, per-model error that leaves other models unaffected.
class CodegenBackend final : public estimator::Backend {
 public:
  using estimator::Backend::prepare;

  CodegenBackend() = default;
  explicit CodegenBackend(CodegenOptions options)
      : options_(std::move(options)) {}

  [[nodiscard]] std::string_view name() const override { return "codegen"; }

  [[nodiscard]] std::unique_ptr<estimator::PreparedModel> prepare(
      lower::ModelProgramPtr program) const override;

 private:
  CodegenOptions options_;
};

/// Factory over every single-engine kind: Simulation and Analytic
/// delegate to analytic::make_backend, Codegen constructs a
/// CodegenBackend with `options`.  Cross-validating kinds throw
/// std::invalid_argument (they select several backends, not one).
[[nodiscard]] std::unique_ptr<estimator::Backend> make_backend(
    estimator::BackendKind kind, CodegenOptions options = {});

}  // namespace prophet::cgen
