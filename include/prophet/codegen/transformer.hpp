// The UML -> C++ model transformation — the paper's core contribution.
//
// Implements the algorithm of Fig. 5:
//   lines  1-8  identify and select performance modeling elements by
//               stereotype name;
//   lines  9-12 emit the global variables;
//   lines 13-18 emit the cost functions (double FA1() { ... });
//   lines 20-23 emit the local variables;
//   lines 24-28 declare the performance modeling elements
//               (ActionPlus A1(ctx, "A1");)
//   lines 29-35 emit the execution flow, invoking each element's
//               execute() method in the order the UML model specifies —
//               branches become if/else-if chains (Fig. 8b lines 77-87),
//               nested activities become nested blocks (lines 79-82),
//               <<loop+>> nodes become for statements, fork/join becomes a
//               fork_join() call, and associated code fragments are
//               inlined verbatim before their element (lines 72-75).
//
// The output is one self-contained C++ translation unit (the PMP element
// of Fig. 2) that compiles against the prophet workload runtime, plus an
// optional main() driver that runs the Performance Estimator on it.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "prophet/uml/model.hpp"

namespace prophet::codegen {

/// Error thrown when the model cannot be transformed (run the model
/// checker first for precise diagnostics).
class TransformError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Transformation options.
struct TransformOptions {
  /// Name of the generated model coroutine.
  std::string model_function = "prophet_model";
  /// Emit stage banner comments mirroring Fig. 5 / Fig. 8.
  bool banners = true;
  /// Also emit a main() that runs the Performance Estimator over the
  /// model with parameters from argv (used by the prophetc tool).
  bool emit_main = false;
};

/// Indentation-aware C++ source writer used by the transformer (public so
/// custom ContentHandlers can reuse it).
class CppEmitter {
 public:
  explicit CppEmitter(int indent_width = 2) : indent_width_(indent_width) {}

  /// Appends one line at the current indentation.
  void line(std::string_view text);
  /// Appends an empty line.
  void blank();
  /// Opens a block: emits `header {` and indents.
  void open(std::string_view header);
  /// Closes a block: dedents and emits `}` (plus optional suffix).
  void close(std::string_view suffix = "");
  /// Appends pre-rendered text verbatim (no indentation applied).
  void raw(std::string_view text) { text_ += text; }
  void indent() { ++depth_; }
  void dedent();

  [[nodiscard]] const std::string& text() const { return text_; }

 private:
  std::string text_;
  int indent_width_;
  int depth_ = 0;
};

/// Sanitizes an element name into a C++ identifier ("Kernel 6" ->
/// "Kernel_6"; empty/leading-digit names get an "e_" prefix).
[[nodiscard]] std::string sanitize_identifier(std::string_view name);

/// The transformer.
class Transformer {
 public:
  explicit Transformer(TransformOptions options = {});

  /// Fig. 5, whole algorithm: UML model representation in, C++ model
  /// representation out.
  [[nodiscard]] std::string transform(const uml::Model& model) const;

  // --- Individual stages (exposed for stage-level tests and benches) -----

  /// Lines 1-8: performance modeling elements, in diagram order.
  [[nodiscard]] std::vector<const uml::Node*> select_performance_elements(
      const uml::Model& model) const;

  /// Lines 9-12: global variable definitions.
  [[nodiscard]] std::string emit_globals(const uml::Model& model) const;

  /// Lines 13-18: cost-function definitions, dependency-ordered.
  [[nodiscard]] std::string emit_cost_functions(
      const uml::Model& model) const;

  /// Lines 20-23: local variable definitions (inside the model function).
  [[nodiscard]] std::string emit_locals(const uml::Model& model) const;

  /// Lines 24-28: performance-modeling-element declarations.
  [[nodiscard]] std::string emit_declarations(const uml::Model& model) const;

  /// Lines 29-35: the execution flow of the main diagram.
  [[nodiscard]] std::string emit_flow(const uml::Model& model) const;

 private:
  TransformOptions options_;
};

}  // namespace prophet::codegen
