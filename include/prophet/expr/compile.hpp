// Compilation of cost-function expressions to a slot-based bytecode VM.
//
// The tree-walking evaluator (eval.hpp) resolves every identifier through
// a virtual Environment with string-map lookups on each evaluation — fine
// for one-off checks, far too slow for the hot paths that evaluate the
// same cost tag, guard or cost-function body millions of times across a
// scenario sweep.  This header brings the paper's prepare-once discipline
// down to individual expressions: `compile()` lowers a parsed Expr into a
// flat postfix bytecode program whose variable references were resolved
// at compile time to integer *slots*, so evaluation is a tight dispatch
// loop over a pointer frame — no strings, no virtual calls, no maps.
//
// Contract with the tree-walking evaluator: for the same bindings,
// `Compiled::eval` is **bit-identical** to `expr::evaluate`, including
// IEEE edge cases (NaN, infinities, signed zero), short-circuit
// semantics of `&&` / `||` / `?:`, and the exact EvalError messages for
// unknown identifiers and built-in arity mismatches (which are detected
// at compile time but — like the tree walker — raised only if the
// offending subexpression actually executes).  The randomized
// differential test in tests/expr/compile_test.cpp pins this contract.
//
// Compilation applies constant folding (including libm built-ins over
// constant arguments), short-circuit elimination for constant guards,
// and the algebraic identities that are exact in IEEE arithmetic
// (`x*1`, `1*x`, `x/1`, `x-0`).  `x+0` is deliberately *not* rewritten
// to `x`: for x == -0.0 the sum is +0.0, so the identity would break
// bit-identity.  See docs/expr.md for the bytecode format and the full
// folding rule table.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "prophet/expr/ast.hpp"
#include "prophet/expr/eval.hpp"

namespace prophet::guard {
class Budget;
}  // namespace prophet::guard

namespace prophet::obs {
struct ExprCounters;
}  // namespace prophet::obs

namespace prophet::expr {

/// Index of a variable slot in an evaluation frame.
using Slot = std::uint32_t;

/// Identifiers whose value is supplied per evaluation call rather than
/// through the frame: the paper's `pid` / `tid` / `uid` system
/// parameters, which change per process, thread and model element while
/// a frame describes run-level and scope-level bindings.
enum class Ambient : std::uint8_t {
  Pid,  ///< modeled process id
  Tid,  ///< modeled thread id
  Uid,  ///< executing element uid
};

/// User-defined cost functions callable from compiled programs.
///
/// `compile()` resolves a call to a name registered via
/// SymbolTable::add_function into a direct index; at evaluation time the
/// VM invokes `call` with the already-evaluated arguments.  Hosts (the
/// interpreter, the analytic estimator, tests) implement this by
/// evaluating the named function's own compiled body.
class UserFunctions {
 public:
  virtual ~UserFunctions() = default;

  /// Invokes function `id` (the value SymbolTable::add_function
  /// returned) with `args`.  May throw; the VM propagates.
  [[nodiscard]] virtual double call(int id,
                                    std::span<const double> args) const = 0;
};

/// User-defined cost functions callable from batched programs
/// (Compiled::eval_batch).  Hosts that feed batched evaluation implement
/// both entry points: `call_batch` evaluates one function across all
/// lanes at once (the fast path), `call_lane` evaluates it for a single
/// lane with scalar semantics (used by the VM's lane-by-lane fallback,
/// which must reproduce Compiled::eval bit-for-bit, including error
/// ordering).
class BatchUserFunctions {
 public:
  virtual ~BatchUserFunctions() = default;

  /// Invokes function `id` across `width` lanes.  `args[i]` points at
  /// argument i's lane array (`width` contiguous doubles); results go to
  /// `out[0..width)`.  `out` never aliases the argument arrays.  May
  /// throw; the VM catches and re-runs lane-by-lane so the surfaced
  /// error matches the scalar loop's (lowest erroring lane wins).
  virtual void call_batch(int id, std::span<const double* const> args,
                          double* out, std::size_t width) const = 0;

  /// Invokes function `id` for one lane with scalar arguments.  Must be
  /// bit-identical to what UserFunctions::call would produce for that
  /// lane's bindings (same value or same exception).
  [[nodiscard]] virtual double call_lane(int id, std::span<const double> args,
                                         std::size_t lane) const = 0;
};

/// Compile-time name resolution: maps identifiers to slots, per-call
/// ambients, constants, positional parameters and user-function ids.
///
/// Hosts populate a table once per model (or per function body), then
/// compile every expression against it.  Resolution precedence matches
/// the dynamic environments it replaces:
///   1. positional parameters (function bodies only),
///   2. variable slots (model variables, loop variables, np/nt/nn/ppn),
///   3. compile-time constants,
///   4. ambients (pid/tid/uid),
///   5. otherwise: an "unknown variable" error raised lazily at
///      evaluation time, exactly like the tree walker.
/// A name may be both a slot and an ambient (e.g. a loop variable named
/// `pid` shadows the system parameter only while bound): the compiled
/// load then falls back to the ambient when the slot is unbound.
class SymbolTable {
 public:
  /// Interns `name` as a frame slot; idempotent (same name, same slot).
  Slot add_variable(std::string name);

  /// Registers `name` as a per-call ambient value (pid/tid/uid).
  void bind_ambient(std::string name, Ambient kind);

  /// Binds `name` to a compile-time constant (folded into the program).
  void bind_constant(std::string name, double value);

  /// Registers a user function; returns its id (also idempotent).
  /// Registered names shadow the built-ins, as in the tree walker.
  int add_function(std::string name);

  /// Declares a positional parameter (function bodies); parameters
  /// resolve before any other binding, in declaration order.
  void add_parameter(std::string name);

  /// Number of slots interned so far (the minimum frame size).
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

  /// Slot of `name`, if interned.
  [[nodiscard]] std::optional<Slot> slot_of(std::string_view name) const;

  /// Name interned for `slot`.
  [[nodiscard]] const std::string& name_of(Slot slot) const;

  /// Id of a registered user function, if any.
  [[nodiscard]] std::optional<int> function_id(std::string_view name) const;

  /// Ambient binding of `name`, if any.
  [[nodiscard]] std::optional<Ambient> ambient_of(
      std::string_view name) const;

 private:
  friend class Compiler;

  /// Transparent string hash for heterogeneous (string_view) lookup.
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view name) const noexcept {
      return std::hash<std::string_view>{}(name);
    }
  };
  using NameIndex =
      std::unordered_map<std::string, std::uint32_t, NameHash,
                         std::equal_to<>>;

  std::vector<std::string> slots_;               // slot -> name
  std::vector<std::string> parameters_;          // position -> name
  std::vector<std::string> functions_;           // id -> name
  std::vector<std::pair<std::string, Ambient>> ambients_;
  std::vector<std::pair<std::string, double>> constants_;
  // Hash indexes over slots_/functions_ — lookups are O(1), so lowering
  // a model with many identifiers stays O(identifiers), not O(n^2).
  // Keys are owned copies, so copied tables stay self-contained.
  NameIndex slot_index_;
  NameIndex function_index_;
};

/// Bytecode operations.  Stack effect in brackets.
enum class Op : std::uint8_t {
  PushConst,       ///< [-0 +1] push immediate
  LoadSlot,        ///< [-0 +1] push *frame[a]; throws strings[b] when unbound
  LoadSlotOrPid,   ///< [-0 +1] push *frame[a], or ctx.pid when unbound
  LoadSlotOrTid,   ///< [-0 +1] like LoadSlotOrPid for ctx.tid
  LoadSlotOrUid,   ///< [-0 +1] like LoadSlotOrPid for ctx.uid
  LoadArg,         ///< [-0 +1] push args[a], or 0.0 past the call's arity
  LoadPid,         ///< [-0 +1] push ctx.pid
  LoadTid,         ///< [-0 +1] push ctx.tid
  LoadUid,         ///< [-0 +1] push ctx.uid
  Neg,             ///< [-1 +1] arithmetic negation
  Not,             ///< [-1 +1] logical not (1.0 / 0.0)
  Add,             ///< [-2 +1]
  Sub,             ///< [-2 +1]
  Mul,             ///< [-2 +1]
  Div,             ///< [-2 +1] IEEE semantics (inf/nan on zero divisor)
  Mod,             ///< [-2 +1] fmod semantics
  Lt,              ///< [-2 +1] comparisons yield 1.0 / 0.0
  Le,              ///< [-2 +1]
  Gt,              ///< [-2 +1]
  Ge,              ///< [-2 +1]
  Eq,              ///< [-2 +1]
  Ne,              ///< [-2 +1]
  ToBool,          ///< [-1 +1] truthy-normalize to 1.0 / 0.0
  Jump,            ///< [-0 +0] continue at instruction a
  JumpIfFalse,     ///< [-1 +0] pop; continue at a when falsy
  JumpIfTrue,      ///< [-1 +0] pop; continue at a when truthy
  CallUser,        ///< [-b +1] call user function a with b stack args
  Throw,           ///< raise EvalError(strings[a]) — lazily compiled errors
  // One direct-dispatch opcode per built-in, in kBuiltins order (sorted
  // by name), replacing the tree walker's per-call table scan.
  Abs,             ///< [-1 +1]
  Ceil,            ///< [-1 +1]
  Cos,             ///< [-1 +1]
  Exp,             ///< [-1 +1]
  Floor,           ///< [-1 +1]
  Log,             ///< [-1 +1]
  Log10,           ///< [-1 +1]
  Log2,            ///< [-1 +1]
  Max,             ///< [-2 +1] fmax semantics
  Min,             ///< [-2 +1] fmin semantics
  Pow,             ///< [-2 +1]
  Round,           ///< [-1 +1]
  Sin,             ///< [-1 +1]
  Sqrt,            ///< [-1 +1]
  Tan,             ///< [-1 +1]
  Tanh,            ///< [-1 +1]
};

/// One bytecode instruction (16 bytes; programs are flat vectors).
struct Instr {
  Op op = Op::PushConst;     ///< operation
  std::uint16_t b = 0;       ///< CallUser argc / LoadSlot error-string index
  std::int32_t a = 0;        ///< slot / arg index / jump target / fn or string id
  double value = 0;          ///< PushConst immediate
};

/// Everything one evaluation needs: the frame, per-call ambients, the
/// positional arguments of the enclosing user-function call (if any) and
/// the user-function dispatch table.
///
/// `frame[slot]` points at the current binding of that slot, or is null
/// when the name is unbound in this context (the load then falls back to
/// its ambient, or raises the same "unknown variable" EvalError the tree
/// walker would).  The frame must cover every slot of the SymbolTable
/// the program was compiled against.
struct EvalContext {
  std::span<double* const> frame = {};   ///< slot -> current binding
  std::span<const double> args = {};     ///< function-call parameters
  const UserFunctions* functions = nullptr;  ///< user-function dispatch
  double pid = 0;                        ///< ambient process id
  double tid = 0;                        ///< ambient thread id
  double uid = 0;                        ///< ambient element uid
  /// Optional VM activity counters (instructions dispatched, evals,
  /// lazy-error throws).  Null — the default — disables counting; the
  /// counted values never feed back into evaluation, so results are
  /// bit-identical either way.
  obs::ExprCounters* counters = nullptr;
  /// Optional execution budget.  When set, the dispatch loop charges
  /// executed instructions against it every
  /// guard::Budget::kDeadlineStride dispatches and raises
  /// guard::ResourceExhausted / guard::Cancelled when a limit trips.
  /// Null — the default — disables the checks; like `counters`, a budget
  /// never feeds values into evaluation.
  guard::Budget* budget = nullptr;
};

/// Everything one *batched* evaluation needs: the structure-of-arrays
/// frame (each bound slot points at `width` contiguous per-lane values),
/// lane-array positional arguments, the batched user-function table and
/// the lane-uniform ambients.
///
/// The contract mirrors EvalContext lane-wise: `eval_batch(ctx, out)`
/// leaves `out[l]` bit-identical to what `eval` would return for lane
/// l's view (frame pointers offset by l, `args[i][l]`, same ambients).
/// When any lane raises, the exception thrown is the one the scalar
/// loop would surface: the lowest erroring lane's, with its exact
/// message.  Counter and budget accounting is batched (instructions
/// count once per batched dispatch, `evals` advances by `width`);
/// counted values never feed back into evaluation.
struct BatchEvalContext {
  /// slot -> lane array (`width` contiguous doubles), or null when the
  /// slot is unbound in every lane.  Lanes of one slot may not be bound
  /// selectively — bindings are frame-uniform, values are per-lane.
  std::span<double* const> frame = {};
  std::size_t width = 1;                   ///< number of scenario lanes
  std::span<const double* const> args = {};  ///< arg -> lane array
  const BatchUserFunctions* functions = nullptr;
  double pid = 0;                          ///< lane-uniform ambient
  double tid = 0;                          ///< lane-uniform ambient
  double uid = 0;                          ///< lane-uniform ambient
  obs::ExprCounters* counters = nullptr;   ///< optional VM counters
  guard::Budget* budget = nullptr;         ///< optional execution budget
};

/// A compiled expression: flat postfix bytecode plus the static metadata
/// hosts use to skip work (constant programs, referenced slots, pid/tid
/// dependence).  Immutable after compile(); evaluation is const and
/// thread-safe (all per-call state lives on the caller's stack).
class Compiled {
 public:
  /// Runs the program.  Throws EvalError on lazily-compiled resolution
  /// errors (unknown variable/function, built-in arity mismatch) or
  /// whatever a user function throws.
  [[nodiscard]] double eval(const EvalContext& ctx) const;

  /// Runs the program across `ctx.width` scenario lanes at once, writing
  /// one result per lane to `out[0..width)`.  Bit-identical to a scalar
  /// eval() loop over the per-lane views (see BatchEvalContext).
  ///
  /// Branchless programs execute instruction-at-a-time across all lanes
  /// — arithmetic and compare opcodes through runtime-dispatched SIMD
  /// kernels (AVX2 when the CPU has it, a generic loop otherwise; both
  /// IEEE-exact), libm built-ins and fmod lane-by-lane through the same
  /// std:: calls the scalar VM makes.  Programs with jumps (short
  /// circuits, conditionals — lane-divergent control) fall back to
  /// lane-by-lane scalar evaluation, as does any lane-raised error, so
  /// error lane order and messages always match the scalar loop.
  void eval_batch(const BatchEvalContext& ctx, double* out) const;

  /// The folded constant value when the whole program reduced to one —
  /// hosts can skip the VM dispatch entirely.
  [[nodiscard]] std::optional<double> constant() const;

  /// True when the program loads `slot` (after folding).  Sorted-vector
  /// binary search; used for the analytic backend's loop-collapse and
  /// SPMD-sharing legality checks.
  [[nodiscard]] bool references_slot(Slot slot) const;

  /// All slots the program may load, sorted ascending.
  [[nodiscard]] std::span<const Slot> referenced_slots() const {
    return slots_;
  }

  /// True when evaluation may read the pid or tid ambient (directly or
  /// as an unbound-slot fallback) — the static analogue of the analytic
  /// walker's "pid queried" tracking.
  [[nodiscard]] bool may_read_pid_tid() const { return uses_pid_tid_; }

  /// True when the program contains no jump instructions (no
  /// short-circuit or conditional control flow) — the precondition for
  /// eval_batch's instruction-stepped fast path.  Computed at compile
  /// time.
  [[nodiscard]] bool branchless() const { return branchless_; }

  /// True when the program contains CallUser instructions — batched
  /// evaluation then needs a BatchUserFunctions table.  Computed at
  /// compile time.
  [[nodiscard]] bool calls_user_functions() const { return calls_user_; }

  /// Instruction count (post folding).
  [[nodiscard]] std::size_t size() const { return code_.size(); }

  /// The instructions (exposed for tests and the disassembler).
  [[nodiscard]] std::span<const Instr> code() const { return code_; }

  /// The lazy-error message table LoadSlot (index `b`) and Throw
  /// (index `a`) reference — exposed so code generators consuming the
  /// bytecode can reproduce the VM's exact EvalError messages.
  [[nodiscard]] std::span<const std::string> strings() const {
    return strings_;
  }

  /// Worst-case operand-stack depth, computed at compile time.
  [[nodiscard]] std::size_t max_stack() const { return max_stack_; }

  /// Human-readable listing, one instruction per line (for docs/tests).
  [[nodiscard]] std::string disassemble() const;

 private:
  friend class Compiler;
  std::vector<Instr> code_;
  std::vector<std::string> strings_;  // lazy error messages
  std::vector<Slot> slots_;           // referenced slots, sorted
  std::size_t max_stack_ = 0;
  bool uses_pid_tid_ = false;
  bool branchless_ = true;   // no Jump/JumpIfFalse/JumpIfTrue emitted
  bool calls_user_ = false;  // contains CallUser

  void eval_batch_lanes(const BatchEvalContext& ctx, double* out) const;
};

/// Lowers `expr` to bytecode under `table`.  Never throws for resolution
/// problems — unknown names, unknown functions and built-in arity
/// mismatches compile to instructions that raise the tree walker's exact
/// EvalError if (and only if) they execute, so models whose dead branches
/// are malformed keep evaluating identically.
[[nodiscard]] Compiled compile(const Expr& expr, const SymbolTable& table);

/// Owning frame helper for simple hosts (tests, benches): one double of
/// storage per slot, all bound by default.
///
/// The interpreter and analytic estimator manage raw pointer frames
/// themselves (they layer run/process/loop bindings); SlotFrame covers
/// the common flat case.
class SlotFrame {
 public:
  /// Builds a frame for every slot of `table`, each bound to owned
  /// zero-initialized storage.
  explicit SlotFrame(const SymbolTable& table);

  /// Writes owned storage for `slot` (must be bound to owned storage).
  void set(Slot slot, double value) { values_[slot] = value; }

  /// Reads the current binding of `slot` (must be bound).
  [[nodiscard]] double get(Slot slot) const { return *pointers_[slot]; }

  /// Rebinds `slot` to external `storage` (null unbinds: loads fall back
  /// to the slot's ambient or raise "unknown variable").
  void bind(Slot slot, double* storage) { pointers_[slot] = storage; }

  /// Unbinds `slot` (see bind()).
  void unbind(Slot slot) { pointers_[slot] = nullptr; }

  /// The pointer view EvalContext::frame expects.
  [[nodiscard]] std::span<double* const> frame() const { return pointers_; }

 private:
  std::vector<double> values_;
  std::vector<double*> pointers_;
};

/// Owning structure-of-arrays frame for batched evaluation: `width`
/// scenario lanes of storage per slot, laid out slot-major
/// (`values[slot * width + lane]`) so each slot's lanes are the
/// contiguous array BatchEvalContext::frame expects — and so lane l's
/// scalar view is simply every lane array offset by l.
///
/// The batched analogue of SlotFrame: every slot bound to owned
/// zero-initialized storage by default, rebindable to external lane
/// arrays or unbindable per slot (bindings are frame-uniform across
/// lanes, values are per-lane).
class SlotBlock {
 public:
  /// Builds a `width`-lane frame covering every slot of `table`.
  SlotBlock(const SymbolTable& table, std::size_t width)
      : SlotBlock(table.slot_count(), width) {}

  /// Builds a `width`-lane frame with `slot_count` slots.
  SlotBlock(std::size_t slot_count, std::size_t width)
      : width_(width),
        values_(slot_count * width, 0.0),
        pointers_(slot_count) {
    for (std::size_t slot = 0; slot < slot_count; ++slot) {
      pointers_[slot] = values_.data() + slot * width_;
    }
  }

  /// Number of scenario lanes.
  [[nodiscard]] std::size_t width() const { return width_; }

  /// Number of slots.
  [[nodiscard]] std::size_t slot_count() const { return pointers_.size(); }

  /// Writes lane `lane` of `slot`'s owned storage.
  void set(Slot slot, std::size_t lane, double value) {
    values_[slot * width_ + lane] = value;
  }

  /// Reads lane `lane` of `slot`'s current binding (must be bound).
  [[nodiscard]] double get(Slot slot, std::size_t lane) const {
    return pointers_[slot][lane];
  }

  /// The owned lane array of `slot` (`width` doubles), regardless of the
  /// current binding.
  [[nodiscard]] double* lanes(Slot slot) {
    return values_.data() + slot * width_;
  }

  /// Rebinds `slot` to an external lane array of `width` doubles (null
  /// unbinds: loads fall back to the slot's ambient or raise "unknown
  /// variable", like SlotFrame).
  void bind(Slot slot, double* lane_array) { pointers_[slot] = lane_array; }

  /// Unbinds `slot` (see bind()).
  void unbind(Slot slot) { pointers_[slot] = nullptr; }

  /// The pointer view BatchEvalContext::frame expects.
  [[nodiscard]] std::span<double* const> frame() const { return pointers_; }

 private:
  std::size_t width_;
  std::vector<double> values_;     // slot-major: [slot * width + lane]
  std::vector<double*> pointers_;  // slot -> lane array (or external/null)
};

}  // namespace prophet::expr
