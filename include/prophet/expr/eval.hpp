// Tree-walking evaluator for cost-function expressions.
//
// This is the "human-usable" evaluation path: the UML model carries cost
// functions as annotation strings and the interpreter evaluates them by
// walking the AST.  The generated C++ of Fig. 8a evaluates the same
// functions natively; bench/bench_expr.cpp measures the gap between the
// two, which is one concrete facet of the paper's machine-efficiency
// argument.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "prophet/expr/ast.hpp"

namespace prophet::expr {

/// Error thrown on unknown identifiers or arity mismatches.
class EvalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Name-resolution interface used during evaluation.
///
/// Variables and user functions are looked up here first; when the
/// environment does not resolve a call, the evaluator falls back to the
/// built-in math functions (see `builtin_names`).
class Environment {
 public:
  virtual ~Environment() = default;

  /// Value of a variable, or nullopt when unknown to this environment.
  [[nodiscard]] virtual std::optional<double> variable(
      std::string_view name) const = 0;

  /// Invokes a user-defined function, or returns nullopt when unknown.
  [[nodiscard]] virtual std::optional<double> call(
      std::string_view name, std::span<const double> args) const = 0;
};

/// Environment backed by maps; the common case for tests and the
/// interpreter.
class MapEnvironment : public Environment {
 public:
  using Function = std::function<double(std::span<const double>)>;

  MapEnvironment() = default;

  void set(std::string name, double value) {
    variables_[std::move(name)] = value;
  }
  void define(std::string name, Function fn) {
    functions_[std::move(name)] = std::move(fn);
  }
  [[nodiscard]] bool has_variable(std::string_view name) const {
    // Heterogeneous lookup through the transparent comparator — no
    // temporary std::string per call.
    return variables_.find(name) != variables_.end();
  }

  [[nodiscard]] std::optional<double> variable(
      std::string_view name) const override;
  [[nodiscard]] std::optional<double> call(
      std::string_view name, std::span<const double> args) const override;

 private:
  std::map<std::string, double, std::less<>> variables_;
  std::map<std::string, Function, std::less<>> functions_;
};

/// An environment with no variables and no user functions (built-ins only).
[[nodiscard]] const Environment& empty_environment();

/// Evaluates `expr` under `env`. Throws EvalError on unresolved names,
/// unknown functions, or wrong built-in arity.  Division by zero follows
/// IEEE semantics (inf/nan), matching what the generated C++ would do.
[[nodiscard]] double evaluate(const Expr& expr, const Environment& env);

/// True when `value` is "truthy" under the language's rules (!= 0).
[[nodiscard]] inline bool truthy(double value) { return value != 0.0; }

/// Names of all built-in functions (sqrt, pow, log, ... ); sorted.
[[nodiscard]] std::span<const std::string_view> builtin_names();

/// Returns the arity of a built-in, or nullopt when `name` is not one.
[[nodiscard]] std::optional<int> builtin_arity(std::string_view name);

}  // namespace prophet::expr
