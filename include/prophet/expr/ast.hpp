// Abstract syntax trees for the Performance Prophet cost-function language.
//
// The paper attaches cost functions to performance modeling elements as
// annotations (Fig. 3c: `TK6 = FK6(...)`; Fig. 7c; Fig. 8a lines 31-54).
// A cost function may reference model variables (global or local), system
// parameters (`P`, `pid`, `tid`, `uid`, ...), numeric literals, built-in
// math functions and *other cost functions* ("a cost function may be
// composed using other functions that are defined in the performance
// model", Sec. 4).  Decision-edge guards (Fig. 7a: `[GV > 0]`) use the
// same language, so it includes comparison and logical operators; truth
// values are represented as 1.0 / 0.0.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace prophet::expr {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  Number,
  Variable,
  Unary,
  Binary,
  Call,
  Conditional,
};

enum class UnaryOp {
  Negate,  // -x
  Not,     // !x
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,  // fmod semantics
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,  // short-circuit, yields 1.0 / 0.0
  Or,   // short-circuit, yields 1.0 / 0.0
};

/// Operator spelling as it appears in source ("+", "<=", "&&", ...).
[[nodiscard]] std::string_view to_string(BinaryOp op);
[[nodiscard]] std::string_view to_string(UnaryOp op);

/// Base class of all expression nodes.
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  [[nodiscard]] ExprKind kind() const { return kind_; }
  [[nodiscard]] virtual ExprPtr clone() const = 0;

 private:
  ExprKind kind_;
};

class NumberExpr final : public Expr {
 public:
  explicit NumberExpr(double value) : Expr(ExprKind::Number), value_(value) {}
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<NumberExpr>(value_);
  }

 private:
  double value_;
};

class VariableExpr final : public Expr {
 public:
  explicit VariableExpr(std::string name)
      : Expr(ExprKind::Variable), name_(std::move(name)) {}
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<VariableExpr>(name_);
  }

 private:
  std::string name_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::Unary), op_(op), operand_(std::move(operand)) {}
  [[nodiscard]] UnaryOp op() const { return op_; }
  [[nodiscard]] const Expr& operand() const { return *operand_; }
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<UnaryExpr>(op_, operand_->clone());
  }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::Binary),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}
  [[nodiscard]] BinaryOp op() const { return op_; }
  [[nodiscard]] const Expr& lhs() const { return *lhs_; }
  [[nodiscard]] const Expr& rhs() const { return *rhs_; }
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<BinaryExpr>(op_, lhs_->clone(), rhs_->clone());
  }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class CallExpr final : public Expr {
 public:
  CallExpr(std::string callee, std::vector<ExprPtr> args)
      : Expr(ExprKind::Call),
        callee_(std::move(callee)),
        args_(std::move(args)) {}
  [[nodiscard]] const std::string& callee() const { return callee_; }
  [[nodiscard]] const std::vector<ExprPtr>& args() const { return args_; }
  [[nodiscard]] ExprPtr clone() const override {
    std::vector<ExprPtr> args;
    args.reserve(args_.size());
    for (const auto& arg : args_) {
      args.push_back(arg->clone());
    }
    return std::make_unique<CallExpr>(callee_, std::move(args));
  }

 private:
  std::string callee_;
  std::vector<ExprPtr> args_;
};

/// C-style ternary: `cond ? then : otherwise`.
class ConditionalExpr final : public Expr {
 public:
  ConditionalExpr(ExprPtr cond, ExprPtr then, ExprPtr otherwise)
      : Expr(ExprKind::Conditional),
        cond_(std::move(cond)),
        then_(std::move(then)),
        otherwise_(std::move(otherwise)) {}
  [[nodiscard]] const Expr& cond() const { return *cond_; }
  [[nodiscard]] const Expr& then_branch() const { return *then_; }
  [[nodiscard]] const Expr& else_branch() const { return *otherwise_; }
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<ConditionalExpr>(cond_->clone(), then_->clone(),
                                             otherwise_->clone());
  }

 private:
  ExprPtr cond_;
  ExprPtr then_;
  ExprPtr otherwise_;
};

/// Renders the expression back to canonical source text (fully usable as
/// parser input; parenthesized only where precedence demands).
[[nodiscard]] std::string to_source(const Expr& expr);

/// Structural equality of two expression trees.
[[nodiscard]] bool equal(const Expr& a, const Expr& b);

}  // namespace prophet::expr
