// Parser for the cost-function expression language.
//
// Grammar (precedence low to high):
//   expr        := ternary
//   ternary     := or ('?' expr ':' ternary)?
//   or          := and ('||' and)*
//   and         := equality ('&&' equality)*
//   equality    := relational (('=='|'!=') relational)*
//   relational  := additive (('<'|'<='|'>'|'>=') additive)*
//   additive    := multiplicative (('+'|'-') multiplicative)*
//   multiplicative := unary (('*'|'/'|'%') unary)*
//   unary       := ('-'|'!') unary | primary
//   primary     := NUMBER | NAME | NAME '(' args? ')' | '(' expr ')'
//   args        := expr (',' expr)*
//
// Numbers: decimal integers and floats with optional exponent
// (1, 2.5, 1e-6, 0.25E+3). Names: [A-Za-z_][A-Za-z0-9_]*.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "prophet/expr/ast.hpp"

namespace prophet::expr {

/// Error thrown on malformed expressions; carries the 0-based offset of
/// the offending token within the input string.
class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(const std::string& message, std::size_t offset);
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Parses a single complete expression. Throws SyntaxError.
[[nodiscard]] ExprPtr parse(std::string_view text);

/// Returns true when `text` parses cleanly (used by the model checker).
[[nodiscard]] bool parses(std::string_view text);

}  // namespace prophet::expr
