// Static analysis over cost-function expressions: free variables and
// called functions.  The model checker uses these to verify that every
// identifier a cost function references is visible (a declared model
// variable, a system parameter, or another cost function), and the code
// generator uses them to order emitted cost-function definitions so that
// callees precede callers (Fig. 8a emits FA1..FSA2 as plain C++ functions,
// which require declaration before use).
#pragma once

#include <set>
#include <string>

#include "prophet/expr/ast.hpp"

namespace prophet::expr {

/// All variable names referenced by the expression.
[[nodiscard]] std::set<std::string> free_variables(const Expr& expr);

/// All function names invoked by the expression (built-ins included).
[[nodiscard]] std::set<std::string> called_functions(const Expr& expr);

/// All function names invoked, excluding built-ins (user functions only).
[[nodiscard]] std::set<std::string> called_user_functions(const Expr& expr);

}  // namespace prophet::expr
