// C++ emission for cost-function expressions.
//
// This is the expression-level piece of the paper's UML -> C++
// transformation: tagged-value strings become C++ expressions inside the
// generated cost-function definitions of Fig. 8a (lines 31-54), e.g.
//   double FA1() { return 0.000001 * P * P + 0.001; }
// Built-ins map to <cmath> (`sqrt` -> `std::sqrt`, `%` -> `std::fmod`);
// user cost functions are emitted as plain calls so the definitions the
// transformer writes earlier in the file resolve them.
#pragma once

#include <string>

#include "prophet/expr/ast.hpp"

namespace prophet::expr {

/// Renders `expr` as a C++ expression (parenthesized only where needed).
[[nodiscard]] std::string to_cpp(const Expr& expr);

}  // namespace prophet::expr
