// Lightweight XML document object model.
//
// This is the XML substrate used throughout Performance Prophet for the
// model files of Fig. 2 of the paper (the `Models (XML)` store, the model
// checking file MCF and the configuration files CF), and for the XMI
// serialization of UML models (see prophet/xmi).  C++ has no widely
// deployed, dependency-free XMI stack, so the reproduction ships its own
// small, well-tested DOM.
//
// Design notes:
//  * Elements own their children through std::unique_ptr; the tree is a
//    strict hierarchy (no parent back-pointers needed by the library).
//  * Attribute order is preserved (models round-trip byte-stably).
//  * Mixed content is supported through Node kinds (Element, Text,
//    Comment, CData); UML models mostly use elements and attributes, but
//    associated code fragments (Fig. 7b of the paper) travel as CDATA.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "prophet/xml/intern.hpp"

namespace prophet::xml {

class Element;

/// Kind discriminator for nodes in the DOM tree.
enum class NodeKind {
  Element,
  Text,
  Comment,
  CData,
};

/// Returns a human-readable name for a node kind (for diagnostics).
std::string_view to_string(NodeKind kind);

/// Base class of all DOM nodes.
class Node {
 public:
  explicit Node(NodeKind kind) : kind_(kind) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeKind kind() const { return kind_; }
  [[nodiscard]] bool is_element() const { return kind_ == NodeKind::Element; }

  /// Deep copy of this node and its subtree.
  [[nodiscard]] virtual std::unique_ptr<Node> clone() const = 0;

 private:
  NodeKind kind_;
};

/// A run of character data (already entity-decoded).
class TextNode final : public Node {
 public:
  explicit TextNode(std::string text)
      : Node(NodeKind::Text), text_(std::move(text)) {}

  [[nodiscard]] const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  [[nodiscard]] std::unique_ptr<Node> clone() const override {
    return std::make_unique<TextNode>(text_);
  }

 private:
  std::string text_;
};

/// An XML comment (without the `<!--`/`-->` delimiters).
class CommentNode final : public Node {
 public:
  explicit CommentNode(std::string text)
      : Node(NodeKind::Comment), text_(std::move(text)) {}

  [[nodiscard]] const std::string& text() const { return text_; }

  [[nodiscard]] std::unique_ptr<Node> clone() const override {
    return std::make_unique<CommentNode>(text_);
  }

 private:
  std::string text_;
};

/// A CDATA section (verbatim character data).
class CDataNode final : public Node {
 public:
  explicit CDataNode(std::string text)
      : Node(NodeKind::CData), text_(std::move(text)) {}

  [[nodiscard]] const std::string& text() const { return text_; }

  [[nodiscard]] std::unique_ptr<Node> clone() const override {
    return std::make_unique<CDataNode>(text_);
  }

 private:
  std::string text_;
};

/// A single name="value" attribute. Order within an element is preserved.
/// The name is a view into the process-wide intern pool (attribute
/// vocabularies are tiny and endlessly repeated across elements), so an
/// element's attributes own only their values.  Equality compares
/// content, not pool identity.
struct Attribute {
  std::string_view name;  ///< interned — valid for the process lifetime
  std::string value;

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// An XML element: name, ordered attributes, ordered children.
class Element final : public Node {
 public:
  /// The tag name is interned: constructing many elements with the same
  /// name stores it once, process-wide, and repeated constructions
  /// allocate nothing for the name.
  explicit Element(std::string_view name)
      : Node(NodeKind::Element), name_(&intern(name)) {}

  [[nodiscard]] const std::string& name() const { return *name_; }
  void set_name(std::string_view name) { name_ = &intern(name); }

  // --- Attributes -------------------------------------------------------

  [[nodiscard]] const std::vector<Attribute>& attributes() const {
    return attributes_;
  }

  /// Sets (or overwrites) an attribute; insertion order is kept for new
  /// attributes.
  void set_attr(std::string_view name, std::string_view value);

  /// Returns the attribute value, or std::nullopt if absent.
  [[nodiscard]] std::optional<std::string_view> attr(
      std::string_view name) const;

  /// Returns the attribute value, or `fallback` if absent.
  [[nodiscard]] std::string attr_or(std::string_view name,
                                    std::string_view fallback) const;

  [[nodiscard]] bool has_attr(std::string_view name) const;

  /// Removes an attribute if present; returns true when removed.
  bool remove_attr(std::string_view name);

  // --- Children ---------------------------------------------------------

  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }

  /// Appends a child node and returns a reference to it.
  Node& add_child(std::unique_ptr<Node> child);

  /// Creates, appends, and returns a new child element.
  Element& add_element(std::string_view name);

  /// Appends a text child.
  TextNode& add_text(std::string text);

  /// Appends a CDATA child.
  CDataNode& add_cdata(std::string text);

  /// Appends a comment child.
  CommentNode& add_comment(std::string text);

  /// First child element with the given name, or nullptr.
  [[nodiscard]] const Element* child(std::string_view name) const;
  [[nodiscard]] Element* child(std::string_view name);

  /// All child elements (in document order), optionally filtered by name.
  [[nodiscard]] std::vector<const Element*> children_named(
      std::string_view name) const;
  [[nodiscard]] std::vector<const Element*> child_elements() const;

  /// Concatenated text content of this element's Text/CData children
  /// (direct children only).
  [[nodiscard]] std::string text() const;

  /// Number of child elements (not counting text/comments).
  [[nodiscard]] std::size_t element_count() const;

  /// Total number of elements in this subtree, including this one.
  [[nodiscard]] std::size_t subtree_size() const;

  /// Finds the first descendant element (depth-first, pre-order) matching
  /// a `/`-separated path of element names, e.g. "model/diagrams/diagram".
  /// An empty path returns this element.
  [[nodiscard]] const Element* find(std::string_view path) const;

  [[nodiscard]] std::unique_ptr<Node> clone() const override;

 private:
  const std::string* name_;  ///< interned — never null
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// A parsed XML document: prolog information plus the single root element.
class Document {
 public:
  Document() = default;
  explicit Document(std::unique_ptr<Element> root) : root_(std::move(root)) {}

  /// Creates a document with a fresh root element of the given name.
  static Document with_root(std::string_view root_name);

  [[nodiscard]] bool has_root() const { return root_ != nullptr; }
  [[nodiscard]] const Element& root() const { return *root_; }
  [[nodiscard]] Element& root() { return *root_; }
  void set_root(std::unique_ptr<Element> root) { root_ = std::move(root); }

  /// XML declaration fields (defaulted when absent from input).
  [[nodiscard]] const std::string& version() const { return version_; }
  [[nodiscard]] const std::string& encoding() const { return encoding_; }
  void set_version(std::string v) { version_ = std::move(v); }
  void set_encoding(std::string e) { encoding_ = std::move(e); }

  [[nodiscard]] Document clone() const;

 private:
  std::string version_ = "1.0";
  std::string encoding_ = "UTF-8";
  std::unique_ptr<Element> root_;
};

/// Structural equality of two subtrees (names, attributes incl. order,
/// children incl. order and kinds). Comments are compared too.
[[nodiscard]] bool deep_equal(const Node& a, const Node& b);
[[nodiscard]] bool deep_equal(const Document& a, const Document& b);

}  // namespace prophet::xml
