// Process-wide string interning for the XML substrate.
//
// XML documents repeat a tiny vocabulary endlessly: tag names and
// attribute names recur once per element across models that reach tens
// of thousands of elements (an XMI export uses the same handful of
// qualified names — "prophet:model", "taggedValue", "stereotype" — on
// every row).  Storing each occurrence as its own std::string made the
// DOM's memory footprint proportional to the *document*, not the
// *vocabulary*, and made every Element construction pay an allocation
// for names past the small-string optimisation.
//
// intern() maps any string to its single canonical std::string with
// process lifetime.  The pool is append-only and deliberately leaked:
// callers hold plain references/views into it, so no destruction order
// may ever invalidate them.  Lookup takes a shared lock (the common
// case — a parse after the first touches only existing entries);
// inserting a new spelling takes the exclusive lock once.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace prophet::xml {

/// Returns the canonical std::string equal to `text`.  The reference is
/// valid for the remainder of the process; equal inputs return the same
/// object, so interned strings can be compared by address.  Thread-safe.
[[nodiscard]] const std::string& intern(std::string_view text);

/// Number of distinct strings currently interned (diagnostics/tests).
[[nodiscard]] std::size_t intern_count();

}  // namespace prophet::xml
