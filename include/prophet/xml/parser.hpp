// Recursive-descent XML parser producing a prophet::xml::Document.
//
// Supported: prolog (<?xml ... ?>), elements, attributes with single or
// double quotes, character data, the five predefined entities plus decimal
// and hexadecimal character references, comments, CDATA sections, and
// processing instructions (skipped).  Not supported (rejected with a
// diagnostic): DOCTYPE/DTD internal subsets — model files never use them.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include "prophet/xml/dom.hpp"

namespace prophet::xml {

/// Error thrown on malformed input; carries 1-based line/column.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, std::size_t line, std::size_t column);

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Parses a complete XML document from text. Throws ParseError.
[[nodiscard]] Document parse(std::string_view text);

/// Parses the file at `path`. Throws ParseError (or std::runtime_error if
/// the file cannot be read).
[[nodiscard]] Document parse_file(const std::string& path);

}  // namespace prophet::xml
