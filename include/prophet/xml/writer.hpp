// XML serialization: escaping plus compact and pretty-printed output.
#pragma once

#include <string>

#include "prophet/xml/dom.hpp"

namespace prophet::xml {

/// Serialization options.
struct WriteOptions {
  /// When true, nested elements are placed on their own lines and indented.
  bool pretty = true;
  /// Indentation width (spaces) used when pretty-printing.
  int indent = 2;
  /// When true, emit the `<?xml version=... encoding=...?>` declaration.
  bool declaration = true;
};

/// Escapes `&`, `<`, `>`, `"`, `'` for use in character data / attributes.
[[nodiscard]] std::string escape(std::string_view text);

/// Serializes a subtree rooted at `node`.
[[nodiscard]] std::string to_string(const Node& node,
                                    const WriteOptions& options = {});

/// Serializes a whole document.
[[nodiscard]] std::string to_string(const Document& doc,
                                    const WriteOptions& options = {});

/// Writes a document to a file. Throws std::runtime_error on I/O failure.
void write_file(const Document& doc, const std::string& path,
                const WriteOptions& options = {});

}  // namespace prophet::xml
