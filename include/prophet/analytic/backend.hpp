// Concrete estimation backends + factory.
//
// SimulationBackend wraps the paper's pipeline (UML interpreter +
// SimulationManager); AnalyticBackend wraps the AnalyticEstimator.  Both
// implement estimator::Backend, so the batch pipeline and prophetc select
// the evaluation engine with one knob (`--backend=sim|analytic|both`).
#pragma once

#include <memory>

#include "prophet/estimator/backend.hpp"

namespace prophet::analytic {

/// The discrete-event simulation path: interprets the UML model and runs
/// the CSIM-substitute engine (the paper's Performance Estimator).
/// prepare() holds the shared lower::ModelProgram; each estimate() call
/// builds its own cheap interpreter + engine over it, so concurrent
/// evaluation is race-free.
class SimulationBackend final : public estimator::Backend {
 public:
  using estimator::Backend::prepare;
  [[nodiscard]] std::string_view name() const override { return "sim"; }
  [[nodiscard]] std::unique_ptr<estimator::PreparedModel> prepare(
      lower::ModelProgramPtr program) const override;
};

/// The closed-form path: static cost analysis + dependency replay.  The
/// report's `events` stays 0 (no engine ran); `machine_report` carries the
/// analytic per-node utilization.  prepare() wraps an AnalyticEstimator
/// over the shared lowering, whose evaluate() is const and reentrant.
class AnalyticBackend final : public estimator::Backend {
 public:
  using estimator::Backend::prepare;
  [[nodiscard]] std::string_view name() const override { return "analytic"; }
  [[nodiscard]] std::unique_ptr<estimator::PreparedModel> prepare(
      lower::ModelProgramPtr program) const override;
};

/// Creates the backend for `kind`.  Throws std::invalid_argument for
/// BackendKind::Both — "both" is a cross-validation selection handled by
/// callers (run each backend, compare), not an engine.
[[nodiscard]] std::unique_ptr<estimator::Backend> make_backend(
    estimator::BackendKind kind);

}  // namespace prophet::analytic
