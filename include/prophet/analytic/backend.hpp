// Concrete estimation backends + factory.
//
// SimulationBackend wraps the paper's pipeline (UML interpreter +
// SimulationManager); AnalyticBackend wraps the AnalyticEstimator.  Both
// implement estimator::Backend, so the batch pipeline and prophetc select
// the evaluation engine with one knob (`--backend=sim|analytic|both`).
#pragma once

#include <memory>

#include "prophet/estimator/backend.hpp"

namespace prophet::analytic {

/// The discrete-event simulation path: interprets the UML model and runs
/// the CSIM-substitute engine (the paper's Performance Estimator).
class SimulationBackend final : public estimator::Backend {
 public:
  [[nodiscard]] std::string_view name() const override { return "sim"; }
  [[nodiscard]] estimator::PredictionReport estimate(
      const uml::Model& model, const machine::SystemParameters& params,
      const estimator::EstimationOptions& options = {}) const override;
};

/// The closed-form path: static cost analysis + dependency replay.  The
/// report's `events` stays 0 (no engine ran); `machine_report` carries the
/// analytic per-node utilization.
class AnalyticBackend final : public estimator::Backend {
 public:
  [[nodiscard]] std::string_view name() const override { return "analytic"; }
  [[nodiscard]] estimator::PredictionReport estimate(
      const uml::Model& model, const machine::SystemParameters& params,
      const estimator::EstimationOptions& options = {}) const override;
};

/// Creates the backend for `kind`.  Throws std::invalid_argument for
/// BackendKind::Both — "both" is a cross-validation selection handled by
/// callers (run each backend, compare), not an engine.
[[nodiscard]] std::unique_ptr<estimator::Backend> make_backend(
    estimator::BackendKind kind);

}  // namespace prophet::analytic
