// Analytic performance estimation — closed-form prediction without
// discrete-event simulation.
//
// The paper's Performance Estimator predicts program performance by
// simulating the transformed C++ model; related work (Sbeity et al.,
// "Generating a Performance Stochastic Model from UML Specifications")
// shows the same UML performance annotations can feed closed-form
// solvers instead.  The AnalyticEstimator walks the checked UML model
// once per process and prices it with the same LogGP-style cost formulas
// prophet/machine uses, turning a seconds-per-scenario simulation into a
// microseconds-per-scenario evaluation:
//
//  1. Symbolic walk (per process): sum CPU demands from the workload
//     cost expressions; collapse loops whose bodies are provably
//     iteration-independent (trip count x one-iteration cost); resolve
//     decisions by evaluating their guards, falling back to expectation
//     over `prob`-annotated branches; cost communication with the
//     machine model's formulas (latency + size/bandwidth + per-message
//     overhead).  Produces a compact per-process event sequence.
//  2. Dependency replay (O(events)): resolve send/recv matching and
//     barrier synchronization across processes with per-process clocks
//     and a message ledger — no event queue, no facility simulation.
//  3. Contention correction: the predicted makespan is the maximum of
//     the replay critical path, each node's total compute demand divided
//     by its `processors_per_node` servers (the deterministic
//     heavy-traffic limit of an M/M/k correction), and each critical
//     section's total serialized demand.
//
// docs/analytic.md derives the formulas and lists the assumptions; the
// simulation backend cross-validates the model (`--backend=both`).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "prophet/guard/guard.hpp"
#include "prophet/lower/lower.hpp"
#include "prophet/machine/machine.hpp"
#include "prophet/obs/obs.hpp"
#include "prophet/uml/model.hpp"

namespace prophet::analytic {

/// Error thrown when a model cannot be evaluated analytically: expression
/// parse/eval failures, constructs outside the supported subset (e.g.
/// message passing inside parallel regions), or communication patterns
/// that deadlock during replay.
class AnalyticError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-node load summary of one evaluation.
struct NodeLoad {
  double compute_demand = 0;  // summed contended CPU seconds on the node
  double utilization = 0;     // demand / (servers * predicted_time)
  int processes = 0;          // processes placed on the node
};

/// The result of one analytic evaluation.
struct AnalyticReport {
  double predicted_time = 0;  // predicted makespan (seconds)
  std::map<int, double> per_process_finish;  // uncontended replay clocks
  std::uint64_t evaluated_elements = 0;      // model elements walked
  int processes = 0;
  std::vector<NodeLoad> node_loads;

  /// Human-readable multi-line report (mirrors PredictionReport::summary).
  [[nodiscard]] std::string summary() const;

  /// One line per node: utilization and compute demand.
  [[nodiscard]] std::string machine_report() const;
};

/// Static cost analyzer over a UML performance model.  The analyzer is
/// a *consumer* of the shared lowering layer: all per-model compilation
/// (slot space, bytecode, resolved fragments — lower::ModelProgram)
/// happens in lower::lower(), so one estimator instance can evaluate
/// many scenarios cheaply — the symbolic walk resolves no identifier
/// strings at evaluation time — and the same lowering can feed the
/// simulation backend without recompilation.
class AnalyticEstimator {
 public:
  /// Borrows `model` and lowers it; it must outlive the estimator.
  /// Throws AnalyticError when any expression fails to parse or a
  /// referenced diagram is missing.
  explicit AnalyticEstimator(const uml::Model& model);

  /// Takes ownership of `model` (safe with temporaries).
  explicit AnalyticEstimator(uml::Model&& model);

  /// Shares an existing lowering: construction is O(1) — no parsing, no
  /// compilation.  Throws AnalyticError on null programs.
  explicit AnalyticEstimator(lower::ModelProgramPtr program);
  ~AnalyticEstimator();

  AnalyticEstimator(const AnalyticEstimator&) = delete;
  AnalyticEstimator& operator=(const AnalyticEstimator&) = delete;

  /// Predicts the model's performance under `params`.  Deterministic and
  /// reentrant: same parameters, same report.  Thread-safe: all
  /// per-evaluation state lives on the call's stack, so any number of
  /// threads may evaluate one estimator concurrently (the contract the
  /// analytic Backend::prepare() handle exposes).
  [[nodiscard]] AnalyticReport evaluate(
      const machine::SystemParameters& params) const;

  /// Like evaluate(params), additionally counting the evaluation's
  /// activity (loop collapses, SPMD sharing, replayed events, which
  /// bound set the makespan, VM instructions) into `counters` when
  /// non-null.  Counters never feed back into the prediction: the report
  /// is bit-identical to the uncounted overload's.
  [[nodiscard]] AnalyticReport evaluate(
      const machine::SystemParameters& params,
      obs::AnalyticCounters* counters) const;

  /// Like evaluate(params, counters), additionally charging the walk
  /// (steps + VM instructions), non-collapsed loop trips and the replay
  /// (delivered events) against `budget` when non-null.  Tripping raises
  /// guard::ResourceExhausted / guard::Cancelled; a null budget adds no
  /// checks and the report stays bit-identical.
  [[nodiscard]] AnalyticReport evaluate(const machine::SystemParameters& params,
                                        obs::AnalyticCounters* counters,
                                        guard::Budget* budget) const;

  /// Evaluates the model under every parameter set in `params` at once,
  /// returning one report per entry, in order.  Each report is
  /// bit-identical to what the scalar evaluate(params[i], counters,
  /// budget) loop would produce.
  ///
  /// When the model's walk is parameter-structure-independent (the SPMD
  /// fast path: uniform control flow across lanes, no pid/tid reads, no
  /// fragments, no fork/parallel-region/probabilistic constructs), one
  /// *batched* walk serves every lane — cost expressions evaluate
  /// through the vectorized expr VM (Compiled::eval_batch) with one
  /// value per lane — and only the cheap replay/bound assembly runs per
  /// lane.  Anything else (lane-divergent guards or trip counts,
  /// unsupported constructs, any evaluation error) falls back to the
  /// scalar loop, adding the abandoned lane count to `*lanes_fallback`
  /// when non-null.  Errors then propagate from the scalar path with
  /// their exact per-lane messages.  Counter totals may differ between
  /// the batched and scalar paths (batched dispatch counts instructions
  /// once per lane group); predictions never do.
  [[nodiscard]] std::vector<AnalyticReport> evaluate_batch(
      std::span<const machine::SystemParameters> params,
      obs::AnalyticCounters* counters = nullptr,
      guard::Budget* budget = nullptr,
      std::size_t* lanes_fallback = nullptr) const;

  /// The shared lowering this estimator evaluates (never null).
  [[nodiscard]] lower::ModelProgramPtr lowering() const;

  /// Lowering time spent compiling cost expressions to bytecode
  /// (lowering()->stats(); surfaced through
  /// PreparedModel::prepare_stats / `--timings`).
  [[nodiscard]] double expr_compile_seconds() const;

  /// Number of bytecode programs the lowering produced.
  [[nodiscard]] std::size_t expr_program_count() const;

  struct Impl;  // public so the walker/replay helpers in the TU can use it

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace prophet::analytic
