// Execution guardrails: budgets, cooperative cancellation and fault
// injection for every evaluation layer.
//
// The estimation engines are cooperative loops (DES event dispatch, expr
// VM dispatch, analytic walk/replay, interpreter loop trips).  A hostile
// or simply mistaken model — a 1e12-trip loop, a pathological XMI file, a
// deadlocking comm pattern — must never wedge the process: every loop
// periodically consults a guard::Budget and aborts with a structured
// error the moment a limit trips or a cancellation is requested.
//
//   guard::Limits     what is bounded (wall clock, sim events, VM
//                     instructions, replay events, loop trips); zero
//                     means unlimited, so a default Limits bounds nothing
//   guard::Budget     one evaluation's mutable ledger: counters charged
//                     at the check sites, an async-signal-safe cancel
//                     flag, and an optional parent (a sweep-level budget
//                     whose deadline/cancellation every job inherits)
//   guard::ResourceExhausted / guard::Cancelled
//                     structured errors carrying which limit tripped, the
//                     stage (check site) that observed it, and the usage
//                     counters at failure
//   guard::FaultPlan  deterministic, seeded fault injection at named
//                     sites (parse/lower/prepare/estimate, plus a
//                     mid-simulation cancel) for exercising error paths
//
// Contract: a Budget is charged from one evaluating thread at a time;
// cancel() may be called from any thread or from a signal handler.
// Checks never allocate on the happy path, and a null Budget pointer at
// a check site costs one branch — unlimited runs stay bit-identical.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// Execution budgets, cooperative cancellation and fault injection.
namespace prophet::guard {

/// Which bound a Budget tripped on.
enum class LimitKind : std::uint8_t {
  WallClock,       ///< Limits::wall_seconds deadline passed.
  SimEvents,       ///< Limits::max_sim_events reached.
  VmInstructions,  ///< Limits::max_vm_instructions reached.
  ReplayEvents,    ///< Limits::max_replay_events reached.
  LoopTrips,       ///< Limits::max_loop_trips reached.
};

/// Stable lower-case name of a limit ("wall_clock", "sim_events", ...)
/// used in error messages and the sweep CSV.
[[nodiscard]] std::string_view to_string(LimitKind kind);

/// What one evaluation may consume.  Zero (or non-positive wall time)
/// disables the corresponding bound; a default-constructed Limits bounds
/// nothing.
struct Limits {
  /// Wall-clock budget in seconds, measured from Budget construction.
  double wall_seconds = 0;
  /// Maximum events the DES engine may dispatch.
  std::uint64_t max_sim_events = 0;
  /// Maximum bytecode instructions the expression VM may execute.
  std::uint64_t max_vm_instructions = 0;
  /// Maximum events the analytic replay may deliver.
  std::uint64_t max_replay_events = 0;
  /// Maximum loop iterations (interpreter + analytic, non-collapsed).
  std::uint64_t max_loop_trips = 0;

  /// True when at least one bound is active.
  [[nodiscard]] bool any() const {
    return wall_seconds > 0 || max_sim_events != 0 ||
           max_vm_instructions != 0 || max_replay_events != 0 ||
           max_loop_trips != 0;
  }
};

/// Counter snapshot embedded in guard errors: what had been consumed
/// when the limit tripped.
struct Usage {
  std::uint64_t sim_events = 0;
  std::uint64_t vm_instructions = 0;
  std::uint64_t replay_events = 0;
  std::uint64_t loop_trips = 0;
  /// Seconds since the Budget was constructed.
  double elapsed_seconds = 0;
};

/// Base of the structured guard errors.  `limit()` names the tripped
/// bound, `stage()` the check site that observed it ("sim-engine",
/// "expr-vm", "analytic-walk", "analytic-replay", "interp-loop", ...),
/// and `usage()` the counters at failure.
class GuardError : public std::runtime_error {
 public:
  GuardError(const std::string& message, LimitKind limit, std::string stage,
             const Usage& usage)
      : std::runtime_error(message),
        limit_(limit),
        stage_(std::move(stage)),
        usage_(usage) {}

  [[nodiscard]] LimitKind limit() const { return limit_; }
  [[nodiscard]] const std::string& stage() const { return stage_; }
  [[nodiscard]] const Usage& usage() const { return usage_; }

 private:
  LimitKind limit_;
  std::string stage_;
  Usage usage_;
};

/// A resource limit tripped (the run consumed its budget).
class ResourceExhausted final : public GuardError {
  using GuardError::GuardError;
};

/// Cancellation was requested (SIGINT, sweep shutdown, injected fault).
class Cancelled final : public GuardError {
  using GuardError::GuardError;
};

/// One evaluation's budget: limit ledger plus cancellation token.
///
/// Charged from a single evaluating thread; cancel() and
/// cancel_requested() are thread- and async-signal-safe.  Chain a job
/// budget to a sweep budget via `parent` — the child then also honours
/// the parent's deadline and cancellation (a tripped parent deadline
/// reports as WallClock with stage unchanged).
///
/// Deadline checks call the steady clock only every
/// `kDeadlineStride` charge units, so per-event/per-instruction check
/// sites stay cheap; the cancel flag is checked on every charge.
class Budget {
 public:
  /// Clock resolution of the amortized deadline check, in charge units.
  static constexpr std::uint64_t kDeadlineStride = 4096;

  explicit Budget(const Limits& limits = {}, const Budget* parent = nullptr);

  [[nodiscard]] const Limits& limits() const { return limits_; }

  /// Requests cancellation.  Thread- and async-signal-safe; the
  /// evaluating thread observes it at its next check site and raises
  /// guard::Cancelled.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// C-compatible cancellation poll: returns non-zero when cancellation
  /// is requested.  See bind_external_cancel().
  using ExternalCancelFn = int (*)(void* context);

  /// Binds an external cancellation source polled by cancel_requested()
  /// alongside the budget's own flag and ancestors.  The callback must be
  /// thread-safe and stay valid for the budget's lifetime.  This is how a
  /// budget living behind a C ABI boundary (the cgen backend's dlopen'd
  /// evaluator builds its own Budget inside the shared object) observes
  /// the host budget's cancellation without sharing C++ types.
  void bind_external_cancel(ExternalCancelFn fn, void* context) noexcept {
    external_cancel_ctx_ = context;
    external_cancel_ = fn;
  }

  /// True once cancel() was called on this budget or any ancestor, or
  /// when a bound external cancellation source reports cancellation.
  [[nodiscard]] bool cancel_requested() const noexcept;

  /// Seconds left until the nearest wall-clock deadline across this
  /// budget and its ancestors (clamped at 0); nullopt when no deadline is
  /// armed anywhere in the chain.  Lets a caller re-derive an equivalent
  /// wall_seconds limit for a budget it constructs elsewhere (e.g. on the
  /// far side of a C ABI).
  [[nodiscard]] std::optional<double> remaining_wall_seconds() const noexcept;

  /// True when the budget can no longer admit work: cancelled, or a
  /// wall-clock deadline (own or inherited) has passed.  Non-throwing —
  /// for scheduler loops deciding whether to claim more work.
  [[nodiscard]] bool exhausted() const noexcept;

  /// Counter snapshot (approximate while the evaluation is running).
  [[nodiscard]] Usage usage() const;

  /// Arms a deterministic mid-run cancellation: the budget behaves as if
  /// cancel() were called once `sim_events` have been charged.  Used by
  /// FaultPlan's "cancel" site.
  void cancel_at_sim_event(std::uint64_t event);

  /// The event count armed by cancel_at_sim_event(), 0 when disarmed —
  /// so a caller can re-arm an equivalent budget elsewhere (the cgen
  /// backend transfers the arm across its C ABI).
  [[nodiscard]] std::uint64_t armed_cancel_at_sim_event() const noexcept {
    return cancel_at_sim_event_;
  }

  // --- check sites ---------------------------------------------------
  //
  // Each charge adds `n` to one counter, then checks that counter's
  // limit, the cancel flag, and (amortized) the deadline.  On a trip it
  // throws ResourceExhausted or Cancelled naming `stage`.

  void charge_sim_events(std::uint64_t n, std::string_view stage);
  void charge_vm_instructions(std::uint64_t n, std::string_view stage);
  void charge_replay_events(std::uint64_t n, std::string_view stage);
  void charge_loop_trips(std::uint64_t n, std::string_view stage);

  /// Cancel + deadline check without charging a counter — for coarse
  /// boundaries (stage transitions, walker steps) that want an immediate
  /// deadline observation.
  void checkpoint(std::string_view stage);

 private:
  void check(std::uint64_t charged, std::string_view stage);
  [[noreturn]] void trip(LimitKind kind, std::string_view stage) const;

  Limits limits_;
  const Budget* parent_ = nullptr;
  ExternalCancelFn external_cancel_ = nullptr;
  void* external_cancel_ctx_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::atomic<bool> cancelled_{false};
  std::uint64_t sim_events_ = 0;
  std::uint64_t vm_instructions_ = 0;
  std::uint64_t replay_events_ = 0;
  std::uint64_t loop_trips_ = 0;
  std::uint64_t cancel_at_sim_event_ = 0;  // 0: disarmed
  std::uint64_t until_deadline_check_ = 0;
};

/// A deterministic fault injected by a FaultPlan.
class FaultInjected final : public std::runtime_error {
 public:
  FaultInjected(const std::string& message, std::string site,
                std::uint64_t visit)
      : std::runtime_error(message), site_(std::move(site)), visit_(visit) {}

  /// The named site that fired ("parse", "estimate", ...).
  [[nodiscard]] const std::string& site() const { return site_; }
  /// 1-based visit count at which the site fired.
  [[nodiscard]] std::uint64_t visit() const { return visit_; }

 private:
  std::string site_;
  std::uint64_t visit_;
};

/// Deterministic, seeded fault injection at named sites.
///
/// A plan is parsed from a spec of comma/space-separated rules:
///
///   site        fire on every visit to `site`
///   site@N      fire on the Nth visit only (1-based)
///   site%P      fire on each visit with probability P in [0,1],
///               decided by a hash of (seed, site, visit) — the same
///               seed always fails the same visits
///
/// Sites are plain names the pipeline visits ("parse", "check",
/// "transform", "lower", "prepare", "estimate"); the special site
/// "cancel@E" does not throw — the runner arms Budget::
/// cancel_at_sim_event(E) instead, exercising mid-simulation
/// cancellation.  Visit counters are per-site and thread-safe.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses a spec; throws std::invalid_argument on malformed rules.
  [[nodiscard]] static FaultPlan parse(std::string_view spec,
                                       std::uint64_t seed = 0);

  /// True when the plan has no rules.
  [[nodiscard]] bool empty() const { return rules_.empty(); }

  /// Records a visit to `site`; throws FaultInjected when a rule fires.
  void visit(std::string_view site);

  /// Event count of a "cancel@E" rule (E defaults to 1), or nullopt
  /// when the plan has no cancel rule.
  [[nodiscard]] std::optional<std::uint64_t> cancel_at_event() const;

 private:
  struct Rule {
    std::string site;
    std::uint64_t at = 0;        // fire on this visit only; 0: every visit
    double probability = -1;     // >= 0: probabilistic rule
    std::atomic<std::uint64_t> hits{0};

    Rule() = default;
    Rule(const Rule& other)
        : site(other.site),
          at(other.at),
          probability(other.probability),
          hits(other.hits.load(std::memory_order_relaxed)) {}
  };

  std::uint64_t seed_ = 0;
  std::vector<Rule> rules_;
};

}  // namespace prophet::guard
