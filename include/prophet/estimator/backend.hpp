// Pluggable estimation backends.
//
// The paper's Performance Estimator predicts performance exclusively by
// discrete-event simulation (SimulationManager).  Related work (Sbeity et
// al.; André et al.) derives closed-form stochastic/analytic predictions
// from the same UML annotations instead.  The Backend interface makes the
// evaluation engine a pluggable choice: the simulation path and the
// analytic estimator (prophet/analytic) both implement it, and the batch
// pipeline / prophetc thread the selection through as
// `--backend=sim|analytic|both`, where `both` cross-validates the analytic
// model against the simulator per scenario.
//
// Concrete backends and the factory live in prophet/analytic/backend.hpp
// (the estimator module cannot depend on the UML interpreter that the
// simulation path needs without a dependency cycle).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>

#include "prophet/estimator/estimator.hpp"

namespace prophet::uml {
class Model;
}

namespace prophet::estimator {

/// Which evaluation engine(s) to run.  `Both` is a selection, not a
/// backend: it runs the simulator as the reference and the analytic
/// estimator as the candidate and reports their relative error.
enum class BackendKind {
  Simulation,  ///< The paper's discrete-event simulation path.
  Analytic,    ///< The closed-form analytic estimator.
  Both,        ///< Simulator as reference, analytic as candidate.
};

/// The `--backend` spelling of a kind ("sim", "analytic", "both").
[[nodiscard]] std::string_view to_string(BackendKind kind);

/// Parses "sim"/"simulation", "analytic", "both" (the `--backend` flag
/// vocabulary); nullopt for anything else.
[[nodiscard]] std::optional<BackendKind> backend_from_string(
    std::string_view text);

/// What Backend::prepare() spent lowering the model — surfaced by
/// PreparedModel::prepare_stats() so the prepare/evaluate tradeoff stays
/// observable (`prophetc estimate --timings`).
struct PrepareStats {
  /// Seconds spent compiling cost expressions to bytecode (a subset of
  /// the prepare wall time the caller measures around prepare()).
  double expr_compile_seconds = 0;
  /// Number of bytecode programs produced (cost tags, guards,
  /// initializers, cost-function bodies, code-fragment assignments).
  std::size_t expr_programs = 0;
};

/// A model compiled for repeated evaluation by one backend — the
/// prepare-once/evaluate-many half of the Backend contract.
///
/// A prepared model is immutable after Backend::prepare() returns:
/// estimate() is const, cheap (no re-parsing, no re-transformation), and
/// safe to call concurrently from any number of threads — implementations
/// keep every piece of per-evaluation engine state on the call's own
/// stack (or in per-call objects), never in the handle.  The handle may
/// borrow the uml::Model it was prepared from; the caller keeps that
/// model alive for the handle's lifetime.
class PreparedModel {
 public:
  /// Virtual: handles are owned and destroyed polymorphically.
  virtual ~PreparedModel() = default;

  /// The preparing backend's stable identifier ("sim", "analytic").
  [[nodiscard]] virtual std::string_view backend_name() const = 0;

  /// Evaluates the prepared model under `params`.  Deterministic: the
  /// same parameters give the same report, bit-identical to the one-shot
  /// Backend::estimate() on the same model.  Throws on unevaluable
  /// scenarios (invalid parameters, deadlocks).
  [[nodiscard]] virtual PredictionReport estimate(
      const machine::SystemParameters& params,
      const EstimationOptions& options = {}) const = 0;

  /// Preparation statistics (see PrepareStats); zeros when the backend
  /// does not track them.
  [[nodiscard]] virtual PrepareStats prepare_stats() const { return {}; }
};

/// An estimation engine: evaluates a UML performance model under one
/// parameter configuration and produces the paper's prediction report.
class Backend {
 public:
  /// Virtual: backends are selected and destroyed polymorphically.
  virtual ~Backend() = default;

  /// Stable identifier ("sim", "analytic") used in reports and CSV rows.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Compiles `model` into a reusable evaluation handle: all per-model
  /// work (expression parsing, structural resolution) happens here, once,
  /// so PreparedModel::estimate() is evaluation only.  Throws on models
  /// the backend cannot evaluate (unparseable expressions, unsupported
  /// constructs).  The handle may borrow `model`; it must outlive the
  /// handle.
  [[nodiscard]] virtual std::unique_ptr<PreparedModel> prepare(
      const uml::Model& model) const = 0;

  /// One-shot convenience: prepare(model) + a single estimate.
  /// Deterministic: the same model and parameters give the same report.
  /// Throws on unevaluable models (parse failures, unsupported
  /// constructs, deadlocks).  Callers evaluating one model repeatedly
  /// (parameter sweeps, serving) should hold a prepare() handle instead.
  [[nodiscard]] PredictionReport estimate(
      const uml::Model& model, const machine::SystemParameters& params,
      const EstimationOptions& options = {}) const;
};

}  // namespace prophet::estimator
