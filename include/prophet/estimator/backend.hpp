// Pluggable estimation backends.
//
// The paper's Performance Estimator predicts performance exclusively by
// discrete-event simulation (SimulationManager).  Related work (Sbeity et
// al.; André et al.) derives closed-form stochastic/analytic predictions
// from the same UML annotations instead.  The Backend interface makes the
// evaluation engine a pluggable choice: the simulation path and the
// analytic estimator (prophet/analytic) both implement it, and the batch
// pipeline / prophetc thread the selection through as
// `--backend=sim|analytic|both`, where `both` cross-validates the analytic
// model against the simulator per scenario.
//
// Concrete backends and the factory live in prophet/analytic/backend.hpp
// (the estimator module cannot depend on the UML interpreter that the
// simulation path needs without a dependency cycle).
#pragma once

#include <optional>
#include <string_view>

#include "prophet/estimator/estimator.hpp"

namespace prophet::uml {
class Model;
}

namespace prophet::estimator {

/// Which evaluation engine(s) to run.  `Both` is a selection, not a
/// backend: it runs the simulator as the reference and the analytic
/// estimator as the candidate and reports their relative error.
enum class BackendKind {
  Simulation,
  Analytic,
  Both,
};

[[nodiscard]] std::string_view to_string(BackendKind kind);

/// Parses "sim"/"simulation", "analytic", "both" (the `--backend` flag
/// vocabulary); nullopt for anything else.
[[nodiscard]] std::optional<BackendKind> backend_from_string(
    std::string_view text);

/// An estimation engine: evaluates a UML performance model under one
/// parameter configuration and produces the paper's prediction report.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable identifier ("sim", "analytic") used in reports and CSV rows.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Evaluates `model` under `params`.  Deterministic: the same model and
  /// parameters give the same report.  Throws on unevaluable models
  /// (parse failures, unsupported constructs, deadlocks).
  [[nodiscard]] virtual PredictionReport estimate(
      const uml::Model& model, const machine::SystemParameters& params,
      const EstimationOptions& options = {}) const = 0;
};

}  // namespace prophet::estimator
