// Pluggable estimation backends.
//
// The paper's Performance Estimator predicts performance exclusively by
// discrete-event simulation (SimulationManager).  Related work (Sbeity et
// al.; André et al.) derives closed-form stochastic/analytic predictions
// from the same UML annotations instead.  The Backend interface makes the
// evaluation engine a pluggable choice: the simulation path and the
// analytic estimator (prophet/analytic) both implement it, and the batch
// pipeline / prophetc thread the selection through as
// `--backend=sim|analytic|both`, where `both` cross-validates the analytic
// model against the simulator per scenario.
//
// Concrete backends and the factory live in prophet/analytic/backend.hpp
// (the estimator module cannot depend on the UML interpreter that the
// simulation path needs without a dependency cycle).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "prophet/estimator/estimator.hpp"
#include "prophet/lower/lower.hpp"

namespace prophet::estimator {

/// Which evaluation engine(s) to run.  The first three are single
/// engines; the rest are *selections*, not backends: they run two or
/// three engines per scenario, take one as the reference, and report the
/// worst candidate-vs-reference relative error (cross-validation).
enum class BackendKind {
  Simulation,       ///< The paper's discrete-event simulation path.
  Analytic,         ///< The closed-form analytic estimator.
  Codegen,          ///< Native code generated from the shared lowering.
  Both,             ///< sim (reference) + analytic.
  SimCodegen,       ///< sim (reference) + codegen.
  AnalyticCodegen,  ///< codegen (reference) + analytic.
  All,              ///< sim (reference) + analytic + codegen.
};

/// The set of engines a BackendKind selects, plus which one serves as the
/// cross-validation reference.  This is the single N>2-safe enumeration
/// every backend-iterating code path (pipeline, prophetc, CI) consumes —
/// adding an engine means extending this struct, not every switch.
struct BackendSet {
  bool sim = false;       ///< run the discrete-event simulator
  bool analytic = false;  ///< run the analytic estimator
  bool codegen = false;   ///< run the generated-code evaluator

  /// Number of selected engines.
  [[nodiscard]] int count() const {
    return static_cast<int>(sim) + static_cast<int>(analytic) +
           static_cast<int>(codegen);
  }
  /// True when more than one engine runs (relative errors are reported).
  [[nodiscard]] bool cross_validates() const { return count() > 1; }
  /// The engine whose prediction is the scenario's reference result:
  /// the simulator when selected, else codegen (bit-identical simulation
  /// semantics), else the analytic estimator.
  [[nodiscard]] BackendKind reference() const {
    if (sim) {
      return BackendKind::Simulation;
    }
    if (codegen) {
      return BackendKind::Codegen;
    }
    return BackendKind::Analytic;
  }
};

/// The engines `kind` selects (single kinds select themselves).
[[nodiscard]] BackendSet backends_of(BackendKind kind);

/// The `--backend` spelling of a kind ("sim", "analytic", "codegen",
/// "both", "sim+codegen", "analytic+codegen", "all").
[[nodiscard]] std::string_view to_string(BackendKind kind);

/// Parses the `--backend` flag vocabulary: "sim"/"simulation",
/// "analytic", "codegen", "both" (== "sim+analytic"), "sim+codegen",
/// "analytic+codegen"/"codegen+analytic", "all"; nullopt for anything
/// else.
[[nodiscard]] std::optional<BackendKind> backend_from_string(
    std::string_view text);

/// What Backend::prepare() spent (and produced) lowering the model —
/// surfaced by PreparedModel::prepare_stats() so the prepare/evaluate
/// tradeoff stays observable (`prophetc estimate --timings`).  Reported
/// from the shared lower::ModelProgram, so every backend consuming one
/// lowering reports identical counts.
struct PrepareStats {
  /// Seconds spent compiling cost expressions to bytecode (a subset of
  /// the prepare wall time the caller measures around prepare()).
  double expr_compile_seconds = 0;
  /// Number of bytecode programs produced (cost tags, guards,
  /// initializers, cost-function bodies, code-fragment assignments).
  std::size_t expr_programs = 0;
  /// Model nodes lowered (one NodePrograms entry each).
  std::size_t nodes = 0;
  /// Slots in the model-wide slot space.
  std::size_t slots = 0;
  /// Total bytecode size across all programs, in bytes.
  std::size_t bytecode_bytes = 0;
};

/// A model compiled for repeated evaluation by one backend — the
/// prepare-once/evaluate-many half of the Backend contract.
///
/// A prepared model is immutable after Backend::prepare() returns:
/// estimate() is const, cheap (no re-parsing, no re-transformation), and
/// safe to call concurrently from any number of threads — implementations
/// keep every piece of per-evaluation engine state on the call's own
/// stack (or in per-call objects), never in the handle.  The handle may
/// borrow the uml::Model it was prepared from; the caller keeps that
/// model alive for the handle's lifetime.
class PreparedModel {
 public:
  /// Virtual: handles are owned and destroyed polymorphically.
  virtual ~PreparedModel() = default;

  /// The preparing backend's stable identifier ("sim", "analytic").
  [[nodiscard]] virtual std::string_view backend_name() const = 0;

  /// Evaluates the prepared model under `params`.  Deterministic: the
  /// same parameters give the same report, bit-identical to the one-shot
  /// Backend::estimate() on the same model.  Throws on unevaluable
  /// scenarios (invalid parameters, deadlocks).
  [[nodiscard]] virtual PredictionReport estimate(
      const machine::SystemParameters& params,
      const EstimationOptions& options = {}) const = 0;

  /// Evaluates the prepared model under every parameter set in `params`
  /// at once, returning one report per entry, in order.  Each report is
  /// bit-identical to the one the scalar estimate(params[i], options)
  /// loop would produce — batching is an execution strategy, never a
  /// semantic change.  The default implementation IS that scalar loop,
  /// so every backend is conformant by construction; backends with a
  /// vectorized evaluation path (the analytic estimator) override it.
  /// Throws on the first unevaluable scenario — callers needing per-lane
  /// error attribution (the sweep pipeline) catch and re-run each lane
  /// through estimate().
  [[nodiscard]] virtual std::vector<PredictionReport> estimate_batch(
      std::span<const machine::SystemParameters> params,
      const EstimationOptions& options = {}) const;

  /// The shared lowering this handle consumes (never null).  Two
  /// handles prepared from the same lower::ModelProgramPtr return the
  /// same program — backends do not lower, so a caller can lower once
  /// and fan the result out to any number of engines.
  [[nodiscard]] virtual lower::ModelProgramPtr lowering() const = 0;

  /// Preparation statistics, derived from lowering()->stats() — the
  /// single source of truth, identical across every backend sharing the
  /// lowering.
  [[nodiscard]] PrepareStats prepare_stats() const {
    const lower::LoweringStats& stats = lowering()->stats();
    return {stats.expr_compile_seconds, stats.expr_programs, stats.nodes,
            stats.slots, stats.bytecode_bytes};
  }
};

/// An estimation engine: evaluates a UML performance model under one
/// parameter configuration and produces the paper's prediction report.
class Backend {
 public:
  /// Virtual: backends are selected and destroyed polymorphically.
  virtual ~Backend() = default;

  /// Stable identifier ("sim", "analytic") used in reports and CSV rows.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Builds a reusable evaluation handle over an already-lowered model.
  /// Backends do not lower: everything shareable lives in `program`, so
  /// preparing from an existing lowering is cheap (per-backend state
  /// only) and N backends can consume one lower::lower() result.  Throws
  /// on null programs or constructs the backend cannot evaluate.
  [[nodiscard]] virtual std::unique_ptr<PreparedModel> prepare(
      lower::ModelProgramPtr program) const = 0;

  /// Convenience: lowers `model` (lower::lower — may throw
  /// lower::LowerError) and prepares from the result.  The handle may
  /// borrow `model`; it must outlive the handle.  Callers preparing the
  /// same model for several backends should lower once themselves and
  /// use the sharing overload instead.
  [[nodiscard]] std::unique_ptr<PreparedModel> prepare(
      const uml::Model& model) const {
    return prepare(lower::lower(model));
  }

  /// One-shot convenience: prepare(model) + a single estimate.
  /// Deterministic: the same model and parameters give the same report.
  /// Throws on unevaluable models (parse failures, unsupported
  /// constructs, deadlocks).  Callers evaluating one model repeatedly
  /// (parameter sweeps, serving) should hold a prepare() handle instead.
  [[nodiscard]] PredictionReport estimate(
      const uml::Model& model, const machine::SystemParameters& params,
      const EstimationOptions& options = {}) const;
};

}  // namespace prophet::estimator
