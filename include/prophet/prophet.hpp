// Performance Prophet — top-level facade.
//
// Ties the pipeline of Fig. 2 together: model construction / loading
// (Teuta's role), model checking, UML -> C++ transformation (the Model
// Traverser's C++ representation), and simulation-based estimation (the
// Performance Estimator), each step delegating to the dedicated module.
//
//   prophet::Prophet prophet(prophet::models::sample_model());
//   auto diagnostics = prophet.check();                  // Model Checker
//   std::string cpp = prophet.transform();               // Fig. 5
//   auto report = prophet.estimate({.processes = 4});    // Estimator
#pragma once

#include <cstdint>
#include <string>

#include "prophet/check/checker.hpp"
#include "prophet/codegen/transformer.hpp"
#include "prophet/estimator/estimator.hpp"
#include "prophet/machine/machine.hpp"
#include "prophet/models/builtins.hpp"
#include "prophet/uml/builder.hpp"
#include "prophet/uml/model.hpp"

namespace prophet {

class Prophet {
 public:
  /// Wraps an in-memory model (built with uml::ModelBuilder).
  explicit Prophet(uml::Model model);

  /// Loads a model from an XMI file.
  static Prophet load(const std::string& path);

  [[nodiscard]] const uml::Model& model() const { return model_; }

  /// Saves the model to an XMI file.
  void save(const std::string& path) const;

  /// Runs the Model Checker (Teuta, Sec. 2.2).
  [[nodiscard]] check::Diagnostics check() const;

  /// Runs the Model Checker with MCF configuration.
  [[nodiscard]] check::Diagnostics check(const xml::Document& mcf) const;

  /// Transforms the model to its C++ representation (the Fig. 5
  /// algorithm); throws codegen::TransformError on unstructured models.
  [[nodiscard]] std::string transform(
      codegen::TransformOptions options = {}) const;

  /// Estimates performance by direct interpretation of the UML model
  /// (builds the machine model from `params`, integrates, simulates).
  [[nodiscard]] estimator::PredictionReport estimate(
      machine::SystemParameters params,
      estimator::EstimationOptions options = {}) const;

 private:
  uml::Model model_;
};

}  // namespace prophet
