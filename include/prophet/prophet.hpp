// Performance Prophet — top-level facade.
//
// Ties the pipeline of Fig. 2 together: model construction / loading
// (Teuta's role), model checking, UML -> C++ transformation (the Model
// Traverser's C++ representation), and simulation-based estimation (the
// Performance Estimator), each step delegating to the dedicated module.
//
//   prophet::Prophet prophet(prophet::models::sample_model());
//   auto diagnostics = prophet.check();                  // Model Checker
//   std::string cpp = prophet.transform();               // Fig. 5
//   auto report = prophet.estimate({.processes = 4});    // Estimator
#pragma once

#include <cstdint>
#include <string>

#include "prophet/check/checker.hpp"
#include "prophet/codegen/transformer.hpp"
#include "prophet/estimator/estimator.hpp"
#include "prophet/machine/machine.hpp"
#include "prophet/uml/builder.hpp"
#include "prophet/uml/model.hpp"

namespace prophet {

class Prophet {
 public:
  /// Wraps an in-memory model (built with uml::ModelBuilder).
  explicit Prophet(uml::Model model);

  /// Loads a model from an XMI file.
  static Prophet load(const std::string& path);

  [[nodiscard]] const uml::Model& model() const { return model_; }

  /// Saves the model to an XMI file.
  void save(const std::string& path) const;

  /// Runs the Model Checker (Teuta, Sec. 2.2).
  [[nodiscard]] check::Diagnostics check() const;

  /// Runs the Model Checker with MCF configuration.
  [[nodiscard]] check::Diagnostics check(const xml::Document& mcf) const;

  /// Transforms the model to its C++ representation (the Fig. 5
  /// algorithm); throws codegen::TransformError on unstructured models.
  [[nodiscard]] std::string transform(
      codegen::TransformOptions options = {}) const;

  /// Estimates performance by direct interpretation of the UML model
  /// (builds the machine model from `params`, integrates, simulates).
  [[nodiscard]] estimator::PredictionReport estimate(
      machine::SystemParameters params,
      estimator::EstimationOptions options = {}) const;

 private:
  uml::Model model_;
};

/// Ready-made models used by the paper, the examples and the benches.
namespace models {

/// The Sec. 4 sample model (Fig. 7): main diagram
/// `A1 -> [GV > 0] SA | [else] A2 -> A4` with sub-diagram `SA = SA1 ->
/// SA2`, globals GV and P, a code fragment on A1 (`GV = 3; P = 16;`) and
/// cost functions FA1/FA2/FA4/FSA1/FSA2 (FSA2 parameterized by pid).
[[nodiscard]] uml::Model sample_model();

/// Livermore kernel 6 as one collapsed <<action+>> with cost function
/// FK6 (Fig. 3c).  `n`/`m` are the loop bounds; `flop_time` the
/// calibrated seconds per inner-loop operation.
[[nodiscard]] uml::Model kernel6_model(std::int64_t n, std::int64_t m,
                                       double flop_time);

/// Livermore kernel 6 as the detailed three-level loop model (Fig. 3b):
/// nested <<loop+>> elements whose innermost body is one W update.
/// Evaluation cost scales with n*n*m — the reason the paper collapses it.
[[nodiscard]] uml::Model kernel6_detailed_model(std::int64_t n,
                                                std::int64_t m,
                                                double flop_time);

/// Two-process message-passing ping-pong: `rounds` exchanges of `bytes`.
[[nodiscard]] uml::Model pingpong_model(double bytes, std::int64_t rounds);

/// Synthetic model for transformation/traversal benches: `activities`
/// sub-diagrams of `actions` <<action+>> elements each, plus a decision
/// and cost functions.  Deterministic for a fixed shape.
[[nodiscard]] uml::Model synthetic_model(int activities, int actions);

/// Randomized *structured* model for property-based testing: a seeded mix
/// of sequences, guarded decisions (always with an else edge), nested
/// activities and counted loops, with globals and composed cost
/// functions.  Always checker-clean, interpretable, and transformable;
/// deterministic for a fixed (seed, size).  `size` roughly controls the
/// number of performance elements.
[[nodiscard]] uml::Model random_model(std::uint64_t seed, int size = 20);

}  // namespace models

}  // namespace prophet
