// Ready-made workload models — the paper's examples plus a library of
// message-passing patterns, each also registered in Registry::builtin()
// under the factory's "@name".
//
// The free functions are the typed factories; prefer the registry (and
// "@name(knob=value)" references) in tools so listings, defaults and
// documentation stay in one place.
#pragma once

#include <cstdint>

#include "prophet/uml/model.hpp"

namespace prophet::models {

/// The Sec. 4 sample model (Fig. 7): main diagram
/// `A1 -> [GV > 0] SA | [else] A2 -> A4` with sub-diagram `SA = SA1 ->
/// SA2`, globals GV and P, a code fragment on A1 (`GV = 3; P = 16;`) and
/// cost functions FA1/FA2/FA4/FSA1/FSA2 (FSA2 parameterized by pid).
[[nodiscard]] uml::Model sample_model();

/// Livermore kernel 6 as one collapsed <<action+>> with cost function
/// FK6 (Fig. 3c).  `n`/`m` are the loop bounds; `flop_time` the
/// calibrated seconds per inner-loop operation.
[[nodiscard]] uml::Model kernel6_model(std::int64_t n, std::int64_t m,
                                       double flop_time);

/// Livermore kernel 6 as the detailed three-level loop model (Fig. 3b):
/// nested <<loop+>> elements whose innermost body is one W update.
/// Evaluation cost scales with n*n*m — the reason the paper collapses it.
[[nodiscard]] uml::Model kernel6_detailed_model(std::int64_t n,
                                                std::int64_t m,
                                                double flop_time);

/// Two-process message-passing ping-pong: `rounds` exchanges of `bytes`.
[[nodiscard]] uml::Model pingpong_model(double bytes, std::int64_t rounds);

/// Synthetic model for transformation/traversal benches: `activities`
/// sub-diagrams of `actions` <<action+>> elements each, plus a decision
/// and cost functions.  Deterministic for a fixed shape.
[[nodiscard]] uml::Model synthetic_model(int activities, int actions);

/// Randomized *structured* model for property-based testing: a seeded mix
/// of sequences, guarded decisions (always with an else edge), nested
/// activities and counted loops, with globals and composed cost
/// functions.  Always checker-clean, interpretable, and transformable;
/// deterministic for a fixed (seed, size).  `size` roughly controls the
/// number of performance elements.
[[nodiscard]] uml::Model random_model(std::uint64_t seed, int size = 20);

/// 2-D Jacobi-style stencil, 1-D row decomposition: every sweep each rank
/// exchanges one halo row (8n bytes) with both neighbours, then updates
/// its ceil(n/np) owned rows at 5 flops per cell.  Ranks 0 and np-1 skip
/// the missing neighbour; np=1 degenerates to pure compute.
[[nodiscard]] uml::Model stencil2d_model(std::int64_t n, std::int64_t iters,
                                         double flop_time);

/// Allreduce decomposed into explicit circular-shift rounds (Bruck
/// style): ceil(log2(np)) rounds, round r sending `bytes` to
/// (pid + 2^r) mod np and combining at bytes/8 elements * `flop_time`.
/// Works for any np (including non-powers-of-two); np=1 is the local
/// reduction only.  Contrast with the one-element <<allreduce>>
/// collective, which both backends price as a closed-form tree.
[[nodiscard]] uml::Model allreduce_model(double bytes, double flop_time);

/// Master/worker task farm: rank 0 dispatches one task batch per worker
/// (block distribution of `tasks`), workers grind their batch — each
/// task branches heavy (prob 0.25, `heavy_cost`) or light (prob 0.75,
/// `light_cost`) on a `prob`-tagged decision — and return one result
/// message.  The simulator resolves the per-task guard (t % 4 == 0)
/// concretely; the analytic backend takes the expectation, so the two
/// agree wherever batch sizes keep the empirical mix near the tagged
/// probabilities.  np=1 runs the whole farm locally.
[[nodiscard]] uml::Model masterworker_model(std::int64_t tasks,
                                            double light_cost,
                                            double heavy_cost,
                                            double task_bytes,
                                            double result_bytes);

/// Stage-parallel dataflow pipeline: every rank is one stage; `items`
/// stream through, each costing `stage_cost` per stage and moving
/// `item_bytes` per hop.  Fill/drain skew makes the makespan
/// (np + items - 1) stages deep; np=1 is a plain loop.
[[nodiscard]] uml::Model pipeline_model(std::int64_t items,
                                        double stage_cost,
                                        double item_bytes);

/// Deliberately runaway diagnostic model: one counted loop of `trips`
/// iterations whose body cost depends on the loop variable, so neither
/// backend can collapse it — evaluation time is proportional to `trips`.
/// With trips like 1e12 it runs effectively forever; the guard layer's
/// budgets (`--job-timeout`, `--limit-loop-trips`) are what stop it.
/// Registered hidden as "@spin" (resolvable by exact reference, absent
/// from catalogue listings so automated sweeps never pick it up).
[[nodiscard]] uml::Model spin_model(double trips);

}  // namespace prophet::models
