// The workload registry — "@name" built-in models as data.
//
// The paper exercises its pipeline on hand-assembled models (the Sec. 4
// sample, Livermore kernel 6); this registry turns every such workload
// into one declarative entry — a parameterized factory plus the metadata
// tools need to list, sweep and cross-validate it — so adding scenario
// N+1 costs one registry entry instead of edits to prophetc, CI and the
// test suites.  `prophetc models` prints the registry; every consumer
// ("@" references in prophetc, BatchRunner::add_model_reference, the
// cross-validation tests, CI's sweep gate) resolves through it, keeping a
// single source of truth.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "prophet/machine/machine.hpp"
#include "prophet/uml/model.hpp"

/// The built-in workload library: model factories and the registry that
/// maps "@name" references onto them.
namespace prophet::models {

/// One tunable parameter of a registered workload.
struct Knob {
  /// Knob name as written in references: "@kernel6(n=128)".
  std::string name;
  /// Default value (all knobs are numeric; integer knobs are truncated by
  /// the factory).
  double value = 0;
  /// Human-readable meaning, shown by `prophetc models`.
  std::string description;
};

/// Knob assignments by name (heterogeneous lookup enabled).
using KnobValues = std::map<std::string, double, std::less<>>;

/// Everything the tools need to know about one registered workload.
struct ModelInfo {
  /// Bare workload name ("kernel6"); referenced as "@kernel6".
  std::string name;
  /// One-line description.
  std::string description;
  /// Communication structure ("none", "1-D halo exchange", ...).
  std::string comm_pattern;
  /// Expected scaling behaviour, human-readable.
  std::string scaling;
  /// Tunable knobs with defaults; overridable via "@name(k=v, ...)".
  std::vector<Knob> knobs;
  /// System parameters the model is meaningful under by default (e.g.
  /// pingpong wants exactly two processes).  `prophetc estimate @name`
  /// starts from these before applying flags.
  machine::SystemParameters default_params;
  /// Suggested sweep grid (ScenarioGrid spec) covering the model's
  /// interesting regime; CI cross-validates every registered model over
  /// this grid with `--backend=both`.
  std::string default_grid;
  /// Builds the model from a complete knob assignment (defaults merged
  /// with any overrides).
  std::function<uml::Model(const KnobValues&)> factory;
  /// Hidden entries resolve by exact "@name" reference but are omitted
  /// from names(), available() and describe() — for diagnostic
  /// workloads (e.g. the deliberately runaway "@spin") that automated
  /// sweeps over the listed catalogue must not pick up.
  bool hidden = false;

  /// Instantiates the workload.  `overrides` may assign any subset of
  /// `knobs`; unknown names throw std::invalid_argument listing the
  /// valid ones.
  [[nodiscard]] uml::Model make(const KnobValues& overrides = {}) const;
};

/// A parsed "@name" / "@name(k=v, ...)" reference.
struct ModelReference {
  /// Bare workload name (no '@').
  std::string name;
  /// Explicit knob overrides from the parenthesized list.
  KnobValues knobs;
};

/// True when `text` is a registry reference (starts with '@').
[[nodiscard]] bool is_reference(std::string_view text);

/// Parses "@name" or "@name(k=v, k2=v2)".  Throws std::invalid_argument
/// on malformed syntax (missing '@', unbalanced parentheses, non-numeric
/// values, duplicate knobs).
[[nodiscard]] ModelReference parse_reference(std::string_view text);

/// An ordered collection of registered workloads.
class Registry {
 public:
  /// An empty registry; populate with add().
  Registry() = default;

  /// Registers a workload.  Throws std::invalid_argument on an empty
  /// name, a duplicate name, or a missing factory.
  Registry& add(ModelInfo info);

  /// Entry lookup by bare name; nullptr when absent.
  [[nodiscard]] const ModelInfo* find(std::string_view name) const;

  /// Entry lookup by bare name; throws std::invalid_argument naming the
  /// available workloads when absent.
  [[nodiscard]] const ModelInfo& at(std::string_view name) const;

  /// All entries in registration order.
  [[nodiscard]] const std::vector<ModelInfo>& entries() const {
    return entries_;
  }

  /// Bare names in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Number of registered workloads.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Resolves a "@name(k=v, ...)" reference to a model instance.
  [[nodiscard]] uml::Model make(std::string_view reference) const;

  /// Comma-separated "@name" list ("@sample, @kernel6, ...") for help
  /// and error messages.
  [[nodiscard]] std::string available() const;

  /// The human-readable catalogue `prophetc models` prints: name,
  /// description, communication pattern, scaling, knobs and the default
  /// sweep grid of every entry.
  [[nodiscard]] std::string describe() const;

  /// The built-in workload library (all models shipped with the
  /// repository, the paper's examples included).
  [[nodiscard]] static const Registry& builtin();

 private:
  std::vector<ModelInfo> entries_;
};

}  // namespace prophet::models
