// Stereotypes and profiles — the UML customization of Sec. 2.1.
//
// A Stereotype specializes a UML metaclass (its `base`) with tag
// definitions; a Profile is a named collection of stereotypes.  The
// standard Performance Prophet profile (standard_profile()) provides the
// building blocks of the paper and of the authors' earlier UML extension
// [17,18]: <<action+>> / <<activity+>> for sequential code regions, the
// message-passing elements (send, recv, barrier, broadcast, reduce, ...)
// and the shared-memory elements (ompparallel, ompfor, ompcritical, ...).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "prophet/uml/tags.hpp"

namespace prophet::uml {

/// Base metaclasses our activity-diagram subset supports.
enum class Metaclass {
  Action,        // UML ActionNode
  Activity,      // UML StructuredActivityNode / CallBehaviorAction
  ControlFlow,   // UML ActivityEdge
};

[[nodiscard]] std::string_view to_string(Metaclass metaclass);

/// One tag definition inside a stereotype (Fig. 1a: `time : Double`).
struct TagDefinition {
  std::string name;
  TagType type = TagType::String;
  bool required = false;
};

/// A stereotype: named subclass of a metaclass with tag definitions.
class Stereotype {
 public:
  Stereotype(std::string name, Metaclass base,
             std::vector<TagDefinition> tags = {})
      : name_(std::move(name)), base_(base), tags_(std::move(tags)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Metaclass base() const { return base_; }
  [[nodiscard]] const std::vector<TagDefinition>& tags() const {
    return tags_;
  }

  /// Finds a tag definition by name, or nullptr.
  [[nodiscard]] const TagDefinition* tag(std::string_view name) const;

  void add_tag(TagDefinition tag) { tags_.push_back(std::move(tag)); }

 private:
  std::string name_;
  Metaclass base_;
  std::vector<TagDefinition> tags_;
};

/// A named collection of stereotypes.
class Profile {
 public:
  Profile() = default;
  explicit Profile(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Stereotype>& stereotypes() const {
    return stereotypes_;
  }

  /// Adds a stereotype; returns a reference to the stored copy.
  Stereotype& add(Stereotype stereotype);

  /// Finds a stereotype by name, or nullptr.
  [[nodiscard]] const Stereotype* find(std::string_view name) const;

  [[nodiscard]] bool empty() const { return stereotypes_.empty(); }

 private:
  std::string name_;
  std::vector<Stereotype> stereotypes_;
};

// --- The Performance Prophet standard profile ---------------------------

/// Canonical stereotype names used throughout the library.  Using
/// constants avoids stringly-typed drift between builder, checker,
/// interpreter and code generator.
namespace stereo {
inline constexpr std::string_view kActionPlus = "action+";
inline constexpr std::string_view kActivityPlus = "activity+";
inline constexpr std::string_view kLoopPlus = "loop+";
// Message passing (inter-node parallelism; MPI in the paper's setting).
inline constexpr std::string_view kSend = "send";
inline constexpr std::string_view kRecv = "recv";
inline constexpr std::string_view kBarrier = "barrier";
inline constexpr std::string_view kBroadcast = "broadcast";
inline constexpr std::string_view kReduce = "reduce";
inline constexpr std::string_view kAllReduce = "allreduce";
inline constexpr std::string_view kScatter = "scatter";
inline constexpr std::string_view kGather = "gather";
// Shared memory (intra-node parallelism; OpenMP in the paper's setting).
inline constexpr std::string_view kOmpParallel = "ompparallel";
inline constexpr std::string_view kOmpFor = "ompfor";
inline constexpr std::string_view kOmpCritical = "ompcritical";
inline constexpr std::string_view kOmpBarrier = "ompbarrier";
}  // namespace stereo

/// Canonical tag names.
namespace tag {
inline constexpr std::string_view kId = "id";
inline constexpr std::string_view kType = "type";
inline constexpr std::string_view kTime = "time";
inline constexpr std::string_view kCost = "cost";          // expression
inline constexpr std::string_view kCode = "code";          // C++ fragment
inline constexpr std::string_view kDiagram = "diagram";    // sub-diagram id
inline constexpr std::string_view kIterations = "iterations";  // expression
inline constexpr std::string_view kLoopVar = "var";
inline constexpr std::string_view kDest = "dest";          // expression
inline constexpr std::string_view kSource = "source";      // expression
inline constexpr std::string_view kSize = "size";          // expression, bytes
inline constexpr std::string_view kMsgTag = "tag";
inline constexpr std::string_view kRoot = "root";          // expression
inline constexpr std::string_view kOp = "op";              // reduce op name
inline constexpr std::string_view kNumThreads = "num_threads";  // expression
inline constexpr std::string_view kSchedule = "schedule";  // static|dynamic
inline constexpr std::string_view kChunk = "chunk";
inline constexpr std::string_view kIterCost = "itercost";  // expression
inline constexpr std::string_view kCriticalName = "name";
// Branch probability on an edge leaving a decision.  The simulator
// ignores it (guards decide); the analytic backend uses it to take the
// expectation over branches instead of resolving the guards.
inline constexpr std::string_view kProb = "prob";
}  // namespace tag

/// Returns the standard profile (a fresh copy; profiles are mutable).
[[nodiscard]] Profile standard_profile();

/// Names of the tags that hold cost-language expressions for a given
/// stereotype (e.g. `cost` for <<action+>>, `dest`/`size` for <<send>>).
/// Shared by the model checker (parse validation), the interpreter
/// (evaluation) and the code generator (C++ emission).
[[nodiscard]] std::vector<std::string_view> expression_tags(
    std::string_view stereotype);

}  // namespace prophet::uml
