// Activity diagrams — the behavioural notation the paper models programs
// with ("We have identified that UML activity diagrams are suitable for
// modeling scientific imperative programs", Sec. 3).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "prophet/uml/element.hpp"

namespace prophet::uml {

/// The activity-node subset used for performance models.
enum class NodeKind {
  Initial,   // solid dot; exactly one per diagram
  Final,     // bull's eye
  Action,    // single-entry single-exit code region (<<action+>> etc.)
  Activity,  // composite node whose content is another diagram (<<activity+>>)
  Decision,  // diamond; guarded outgoing edges ([GV > 0] in Fig. 7a)
  Merge,     // diamond joining alternative paths
  Fork,      // bar; splits into concurrent flows
  Join,      // bar; synchronizes concurrent flows
  Loop,      // counted repetition of a body diagram (<<loop+>>)
};

[[nodiscard]] std::string_view to_string(NodeKind kind);
[[nodiscard]] std::optional<NodeKind> node_kind_from_string(
    std::string_view text);

/// A node in an activity diagram.
class Node final : public Element {
 public:
  Node(std::string id, std::string name, NodeKind kind)
      : Element(std::move(id), std::move(name)), kind_(kind) {}

  [[nodiscard]] NodeKind kind() const { return kind_; }

  /// For Activity and Loop nodes: the id of the content diagram
  /// (tag `diagram`); empty otherwise.
  [[nodiscard]] std::string subdiagram_id() const;

 private:
  NodeKind kind_;
};

/// A directed control-flow edge.  `guard` holds the boolean expression for
/// edges leaving a Decision node; the distinguished guard "else" marks the
/// default branch (mapped to the trailing `else` of the generated
/// if/else-if chain, Fig. 8b lines 77-87).
class ControlFlow final : public Element {
 public:
  ControlFlow(std::string id, std::string source, std::string target,
              std::string guard = {})
      : Element(std::move(id), /*name=*/{}),
        source_(std::move(source)),
        target_(std::move(target)),
        guard_(std::move(guard)) {}

  [[nodiscard]] const std::string& source() const { return source_; }
  [[nodiscard]] const std::string& target() const { return target_; }
  [[nodiscard]] const std::string& guard() const { return guard_; }
  void set_guard(std::string guard) { guard_ = std::move(guard); }

  [[nodiscard]] bool has_guard() const { return !guard_.empty(); }
  [[nodiscard]] bool is_else() const { return guard_ == "else"; }

 private:
  std::string source_;
  std::string target_;
  std::string guard_;
};

/// An activity diagram: nodes plus control-flow edges.
class ActivityDiagram final : public Element {
 public:
  ActivityDiagram(std::string id, std::string name)
      : Element(std::move(id), std::move(name)) {}

  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<ControlFlow>>& edges()
      const {
    return edges_;
  }

  Node& add_node(std::unique_ptr<Node> node);
  ControlFlow& add_edge(std::unique_ptr<ControlFlow> edge);

  /// Node lookup by id within this diagram; nullptr when absent.
  [[nodiscard]] const Node* node(std::string_view id) const;
  [[nodiscard]] Node* node(std::string_view id);

  /// The unique Initial node, or nullptr (checker enforces presence).
  [[nodiscard]] const Node* initial() const;

  /// Edges leaving / entering a node, in insertion order (the order in
  /// which the modeler drew them, which fixes guard evaluation order).
  [[nodiscard]] std::vector<const ControlFlow*> outgoing(
      std::string_view node_id) const;
  [[nodiscard]] std::vector<const ControlFlow*> incoming(
      std::string_view node_id) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<ControlFlow>> edges_;
};

}  // namespace prophet::uml
