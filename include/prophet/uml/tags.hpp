// Tagged values — the UML extension mechanism's metaattributes.
//
// Fig. 1 of the paper defines the stereotype <<action+>> with tag
// definitions `id : Integer`, `type : String`, `time : Double`, and notes
// that "the set of tag definitions ... can be arbitrarily extended to meet
// the modeling objective".  TagValue is the typed value carried by an
// applied stereotype; TagType is its declared type in the profile.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace prophet::uml {

/// Declared type of a tag in a stereotype definition.
enum class TagType {
  Integer,
  Real,
  String,
  Boolean,
};

[[nodiscard]] std::string_view to_string(TagType type);
[[nodiscard]] std::optional<TagType> tag_type_from_string(
    std::string_view text);

/// A typed tag value.  Alternative index order matches TagType.
using TagValue = std::variant<std::int64_t, double, std::string, bool>;

/// The TagType a TagValue currently holds.
[[nodiscard]] TagType type_of(const TagValue& value);

/// Serializes a value for XMI storage / display ("10", "3.5", "SAMPLE",
/// "true").
[[nodiscard]] std::string to_string(const TagValue& value);

/// Parses a value of the given declared type; nullopt if the text does not
/// conform (e.g. "abc" as Integer).
[[nodiscard]] std::optional<TagValue> parse_tag_value(TagType type,
                                                      std::string_view text);

/// A name/value pair applied to a model element.
struct TaggedValue {
  std::string name;
  TagValue value;
};

}  // namespace prophet::uml
