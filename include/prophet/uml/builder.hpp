// Programmatic model construction — the reproduction's stand-in for the
// Teuta graphical editor.
//
// The paper's user "specifies graphically the performance model using
// UML" (Sec. 1); everything the GUI produces is a model tree, which this
// builder constructs directly:
//
//   ModelBuilder mb("SampleModel");
//   mb.global("GV", uml::VariableType::Real, "0");
//   mb.function("FA1", {}, "0.000001*P*P + 0.001");
//   DiagramBuilder main = mb.diagram("main");
//   NodeRef init = main.initial();
//   NodeRef a1 = main.action("A1").cost("FA1()").code("GV = 3;");
//   main.flow(init, a1);
//   ...
//   uml::Model model = std::move(mb).build();
//
// Element ids are generated deterministically (n1, n2, ... / f1, f2, ... /
// d1, d2, ...) so models built the same way serialize identically.
//
// On top of the node/edge layer, StepBuilder offers a structured,
// scope-checked construction style (compute/send/recv steps, loop and
// branch scopes, SPMD parallel regions) that cannot produce dangling
// edges, and ModelBuilder::build() validates the result — misuse
// (unclosed scopes, duplicate diagram names, a send whose message tag no
// recv ever matches) surfaces as BuildError diagnostics instead of a
// malformed model.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "prophet/uml/model.hpp"

/// The UML performance-model representation (elements, diagrams,
/// profiles) and its programmatic builders.
namespace prophet::uml {

class ModelBuilder;
class DiagramBuilder;

/// Lightweight handle to a node under construction; setters chain.
class NodeRef {
 public:
  /// Wraps a node owned by a diagram under construction.
  NodeRef(Node* node) : node_(node) {}  // NOLINT(google-explicit-constructor)

  /// Generated element id ("n1", "n2", ...).
  [[nodiscard]] const std::string& id() const { return node_->id(); }
  /// The underlying node (owned by the diagram, not by this handle).
  [[nodiscard]] Node& node() const { return *node_; }

  /// Associates a cost expression (tag `cost`) — Fig. 7c.
  NodeRef& cost(std::string expr);
  /// Associates a verbatim code fragment (tag `code`) — Fig. 7b.
  NodeRef& code(std::string fragment);
  /// Sets the `type` tag (Fig. 1b: type = SAMPLE).
  NodeRef& type(std::string value);
  /// Sets the `time` tag (measured/estimated execution time) — Fig. 1.
  NodeRef& time(double seconds);
  /// Sets an arbitrary tagged value.
  NodeRef& tag(std::string_view name, TagValue value);

 private:
  Node* node_;
};

/// Lightweight handle to a control-flow edge under construction.
///
/// Returned by DiagramBuilder::flow so guards and edge tags — most
/// importantly the `prob` branch probability the analytic backend takes
/// expectations over — chain fluently:
///
///   d.flow(decision, heavy, "t % 4 == 0").prob(0.25);
class EdgeRef {
 public:
  /// Wraps an edge owned by a diagram under construction.
  EdgeRef(ModelBuilder* owner, ControlFlow* edge)
      : owner_(owner), edge_(edge) {}

  /// The underlying edge (owned by the diagram, not by this handle).
  [[nodiscard]] ControlFlow& edge() const { return *edge_; }

  /// Annotates the edge with a branch probability (tag `prob`).  The
  /// simulator still resolves the guard concretely; the analytic backend
  /// replaces guard resolution by the expectation over all `prob`-tagged
  /// branches of the decision.  Values outside [0, 1] are recorded as a
  /// build diagnostic.
  EdgeRef& prob(double probability);

  /// Sets an arbitrary tagged value on the edge.
  EdgeRef& set_tag(std::string_view name, TagValue value);

 private:
  ModelBuilder* owner_;
  ControlFlow* edge_;
};

/// Builds one activity diagram.
class DiagramBuilder {
 public:
  /// Builds into `diagram`, drawing ids from `owner`.
  DiagramBuilder(ModelBuilder* owner, ActivityDiagram* diagram)
      : owner_(owner), diagram_(diagram) {}

  /// Generated diagram id ("d1", "d2", ...).
  [[nodiscard]] const std::string& id() const { return diagram_->id(); }
  /// The diagram's display name (unique per model; validated on build).
  [[nodiscard]] const std::string& name() const { return diagram_->name(); }

  // --- Control nodes -----------------------------------------------------

  /// The diagram's entry point (exactly one per diagram).
  NodeRef initial();
  /// A final node (flow termination).
  NodeRef final_node();
  /// A decision diamond; guard its outgoing edges via flow().
  NodeRef decision(std::string name = {});
  /// A merge diamond reconverging alternative paths.
  NodeRef merge(std::string name = {});
  /// A fork bar splitting into concurrent flows.
  NodeRef fork(std::string name = {});
  /// A join bar synchronizing concurrent flows.
  NodeRef join(std::string name = {});

  // --- Performance modeling elements --------------------------------------

  /// <<action+>>: a single-entry single-exit code region (Fig. 3c).
  NodeRef action(std::string name);

  /// <<activity+>>: composite element whose content is `subdiagram`
  /// (Fig. 7a's SA).
  NodeRef activity(std::string name, const DiagramBuilder& subdiagram);
  /// \overload
  NodeRef activity(std::string name, std::string subdiagram_id);

  /// <<loop+>>: repeats `body` `iterations` times; `var` is visible in
  /// expressions inside the body (0-based iteration index).
  NodeRef loop(std::string name, const DiagramBuilder& body,
               std::string iterations, std::string var = "i");
  /// \overload
  NodeRef loop(std::string name, std::string body_diagram_id,
               std::string iterations, std::string var = "i");

  // --- Message-passing elements (MPI-style, inter-node) -------------------

  /// <<send>>: posts `size_expr` bytes to process `dest_expr` (expressions
  /// over model variables and system parameters), non-blocking.
  NodeRef send(std::string name, std::string dest_expr,
               std::string size_expr, std::int64_t msg_tag = 0);
  /// <<recv>>: blocks until the FIFO-matching message with `msg_tag` from
  /// process `source_expr` arrives.
  NodeRef recv(std::string name, std::string source_expr,
               std::string size_expr, std::int64_t msg_tag = 0);
  /// <<barrier>>: synchronizes all processes.
  NodeRef barrier(std::string name = "Barrier");
  /// <<broadcast>>: root-to-all collective of `size_expr` bytes.
  NodeRef broadcast(std::string name, std::string root_expr,
                    std::string size_expr);
  /// <<reduce>>: all-to-root reduction collective.
  NodeRef reduce(std::string name, std::string root_expr,
                 std::string size_expr, std::string op = "sum");
  /// <<allreduce>>: reduction whose result reaches every process.
  NodeRef allreduce(std::string name, std::string size_expr,
                    std::string op = "sum");
  /// <<scatter>>: root distributes distinct blocks to every process.
  NodeRef scatter(std::string name, std::string root_expr,
                  std::string size_expr);
  /// <<gather>>: root collects distinct blocks from every process.
  NodeRef gather(std::string name, std::string root_expr,
                 std::string size_expr);

  // --- Shared-memory elements (OpenMP-style, intra-node) ------------------

  /// <<ompparallel>>: body executes once per thread, implicit barrier.
  NodeRef omp_parallel(std::string name, const DiagramBuilder& body,
                       std::string num_threads_expr);
  /// <<ompfor>>: `iterations` split across the threads of the enclosing
  /// parallel region; each iteration costs `itercost` (expression).
  NodeRef omp_for(std::string name, std::string iterations,
                  std::string itercost, std::string schedule = "static",
                  std::int64_t chunk = 0);
  /// <<ompcritical>>: body executes under a named mutual-exclusion lock.
  NodeRef omp_critical(std::string name, const DiagramBuilder& body,
                       std::string critical_name = "default");
  /// <<ompbarrier>>: synchronizes the threads of the enclosing region.
  NodeRef omp_barrier(std::string name = "OmpBarrier");

  // --- Edges ---------------------------------------------------------------

  /// Adds a control-flow edge; `guard` is a boolean expression or "else".
  EdgeRef flow(const NodeRef& from, const NodeRef& to,
               std::string guard = {});
  /// \overload
  EdgeRef flow(std::string_view from_id, std::string_view to_id,
               std::string guard = {});

  /// Adds unguarded edges chaining the given nodes in order.
  void sequence(std::initializer_list<NodeRef> nodes);

 private:
  NodeRef add_node(NodeKind kind, std::string name,
                   std::string_view stereotype = {});

  ModelBuilder* owner_;
  ActivityDiagram* diagram_;
};

// --- Build diagnostics ---------------------------------------------------

/// Severity of a build diagnostic.  Errors make ModelBuilder::build()
/// throw BuildError; warnings are advisory.
enum class BuildSeverity {
  Warning,
  Error,
};

/// One construction-time finding (builder misuse or structural lint).
struct BuildDiagnostic {
  /// Whether the finding blocks build().
  BuildSeverity severity = BuildSeverity::Error;
  /// Human-readable description, e.g. "unclosed loop scope 'ILoop'".
  std::string message;

  /// "error: <message>" / "warning: <message>".
  [[nodiscard]] std::string to_string() const;
};

/// Thrown by ModelBuilder::build() when validation finds errors.  The
/// what() string aggregates every diagnostic, one per line.
class BuildError : public std::runtime_error {
 public:
  explicit BuildError(std::vector<BuildDiagnostic> diagnostics);

  /// The individual findings behind what().
  [[nodiscard]] const std::vector<BuildDiagnostic>& diagnostics() const {
    return diagnostics_;
  }

 private:
  std::vector<BuildDiagnostic> diagnostics_;
};

// --- Structured construction ---------------------------------------------

/// Structured, scope-checked flow construction: emits one linear chain of
/// steps into a diagram, with explicit scopes for loops, guarded/
/// probabilistic branches, SPMD parallel regions and critical sections.
/// Misuse (a mismatched end_*(), a step before when(), a scope left open
/// at done()) is recorded as a build diagnostic on the owning
/// ModelBuilder — build() then throws instead of returning a malformed
/// model.
///
///   StepBuilder s(mb, "main");
///   s.compute("Init", "FInit()")
///       .begin_loop("Iters", "N", "it")
///           .send("Halo", "pid + 1", "B")
///           .recv("Halo", "pid + 1", "B")
///           .compute("Update", "FCell() * G")
///       .end_loop()
///       .begin_branch()
///           .when("pid == 0").compute("Root", "FRoot()")
///           .otherwise().compute("Leaf", "FLeaf()")
///       .end_branch()
///       .done();
///
/// Loop, SPMD and critical scopes implicitly create the body diagram
/// (named "<scope name>.body") with its initial/final nodes; branch
/// scopes create the decision, its guarded edges and the reconverging
/// merge.  when(guard, prob) additionally tags the branch edge with the
/// `prob` probability the analytic backend takes expectations over.
class StepBuilder {
 public:
  /// Opens a new diagram named `diagram_name` (with its Initial node) on
  /// `owner`.  Call done() exactly once when the chain is complete;
  /// otherwise build() reports the sequence as unfinished.
  StepBuilder(ModelBuilder& owner, std::string diagram_name = "main");
  /// Out-of-line for the incomplete Frame member; does not imply done().
  ~StepBuilder();

  /// \name Non-copyable (sequence accounting is per instance)
  ///@{
  StepBuilder(const StepBuilder&) = delete;
  StepBuilder& operator=(const StepBuilder&) = delete;
  ///@}

  /// Id of the diagram this sequence fills (usable with
  /// DiagramBuilder::activity / loop by id).
  [[nodiscard]] const std::string& diagram_id() const;

  // --- Linear steps -------------------------------------------------------

  /// <<action+>> costing `cost_expr`.
  StepBuilder& compute(std::string name, std::string cost_expr);
  /// <<send>> of `size_expr` bytes to `dest_expr` (non-blocking).
  StepBuilder& send(std::string name, std::string dest_expr,
                    std::string size_expr, std::int64_t msg_tag = 0);
  /// <<recv>> matching (`source_expr`, `msg_tag`), blocking.
  StepBuilder& recv(std::string name, std::string source_expr,
                    std::string size_expr, std::int64_t msg_tag = 0);
  /// <<barrier>> over all processes.
  StepBuilder& barrier(std::string name = "Barrier");
  /// <<broadcast>> collective.
  StepBuilder& broadcast(std::string name, std::string root_expr,
                         std::string size_expr);
  /// <<reduce>> collective.
  StepBuilder& reduce(std::string name, std::string root_expr,
                      std::string size_expr, std::string op = "sum");
  /// <<allreduce>> collective.
  StepBuilder& allreduce(std::string name, std::string size_expr,
                         std::string op = "sum");
  /// <<scatter>> collective.
  StepBuilder& scatter(std::string name, std::string root_expr,
                       std::string size_expr);
  /// <<gather>> collective.
  StepBuilder& gather(std::string name, std::string root_expr,
                      std::string size_expr);
  /// <<ompfor>> worksharing step (inside an SPMD region).
  StepBuilder& omp_for(std::string name, std::string iterations,
                       std::string itercost, std::string schedule = "static",
                       std::int64_t chunk = 0);
  /// <<activity+>> invoking an already-built sub-diagram.
  StepBuilder& call(std::string name, const DiagramBuilder& subdiagram);
  /// \overload
  StepBuilder& call(std::string name, std::string subdiagram_id);
  /// <<loop+>> over an already-built body diagram (for shared bodies;
  /// prefer begin_loop()/end_loop() for inline ones).
  StepBuilder& loop(std::string name, std::string body_diagram_id,
                    std::string iterations, std::string var = "i");

  // --- Decoration of the most recent step ---------------------------------

  /// Attaches a code fragment to the last emitted step.
  StepBuilder& code(std::string fragment);
  /// Sets the `type` tag on the last emitted step.
  StepBuilder& type(std::string value);
  /// Sets an arbitrary tag on the last emitted step.
  StepBuilder& tag(std::string_view name, TagValue value);

  // --- Scopes --------------------------------------------------------------

  /// Opens a <<loop+>> scope: steps until end_loop() form the body
  /// (diagram "<name>.body"); `var` is the 0-based iteration index.
  StepBuilder& begin_loop(std::string name, std::string iterations,
                          std::string var = "i");
  /// Closes the innermost loop scope.
  StepBuilder& end_loop();

  /// Opens a branch scope (a decision diamond).  Follow with one or more
  /// when()/otherwise() arms, then end_branch().
  StepBuilder& begin_branch(std::string name = {});
  /// Starts a branch arm taken when `guard` holds.
  StepBuilder& when(std::string guard);
  /// Starts a branch arm with a `prob` probability tag: the simulator
  /// still resolves `guard`, the analytic backend weights the arm by
  /// `probability` instead.
  StepBuilder& when(std::string guard, double probability);
  /// Starts the default ("else") arm.
  StepBuilder& otherwise();
  /// Starts a probability-tagged default arm.
  StepBuilder& otherwise(double probability);
  /// Closes the innermost branch scope, reconverging all arms at a merge.
  StepBuilder& end_branch();

  /// Opens an SPMD parallel-region scope (<<ompparallel>>): the body
  /// (diagram "<name>.body") executes once per thread with an implicit
  /// barrier at the end.
  StepBuilder& begin_spmd(std::string name, std::string num_threads_expr);
  /// Closes the innermost SPMD region scope.
  StepBuilder& end_spmd();

  /// Opens an <<ompcritical>> scope: the body executes under the named
  /// mutual-exclusion lock.
  StepBuilder& begin_critical(std::string name,
                              std::string critical_name = "default");
  /// Closes the innermost critical-section scope.
  StepBuilder& end_critical();

  /// Terminates the chain with a Final node and closes the sequence.
  /// Scopes still open are reported as build diagnostics.  Returns the
  /// owning builder for chaining.
  ModelBuilder& done();

 private:
  struct Frame;

  /// Emits a node as the next step of the current scope.
  StepBuilder& attach(NodeRef node);
  /// Makes `node` the current cursor without adding an edge.
  void advance(Node& node);
  /// Closes the currently open branch arm (records its tail).
  void close_arm();
  /// Shared tail of end_loop()/end_spmd()/end_critical(): finalize the
  /// body diagram, pop the frame, and attach the node `emit` builds in
  /// the enclosing scope.  The caller has already verified the kind.
  StepBuilder& close_body(
      const std::function<NodeRef(DiagramBuilder&, Frame&)>& emit);
  /// The diagram the current scope writes into.
  [[nodiscard]] DiagramBuilder current_diagram();
  void report(std::string message);

  ModelBuilder* owner_;
  std::vector<Frame> frames_;
  Node* last_step_ = nullptr;
  bool finished_ = false;
};

/// Builds a complete model.
class ModelBuilder {
 public:
  /// Starts an empty model carrying the standard profile.
  explicit ModelBuilder(std::string name);
  /// Discards the model under construction when build() was never called.
  ~ModelBuilder();

  /// \name Movable, not copyable (id counters must stay unique)
  ///@{
  ModelBuilder(const ModelBuilder&) = delete;
  ModelBuilder& operator=(const ModelBuilder&) = delete;
  ModelBuilder(ModelBuilder&&) = default;
  ModelBuilder& operator=(ModelBuilder&&) = default;
  ///@}

  /// Declares a global variable (visible to all expressions & codegen).
  ModelBuilder& global(std::string name, VariableType type = VariableType::Real,
                       std::string initializer = {});
  /// Declares a local variable (emitted inside the model function).
  ModelBuilder& local(std::string name, VariableType type = VariableType::Real,
                      std::string initializer = {});

  /// Defines a named cost function.
  ModelBuilder& function(std::string name, std::vector<std::string> parameters,
                         std::string body);

  /// Creates a diagram; the first created diagram becomes the main one.
  DiagramBuilder diagram(std::string name);

  /// Structural lint over the model under construction: diagnostics
  /// recorded by builder misuse, scopes/sequences left open, duplicate
  /// diagram names, and sends whose message tag has no recv partner
  /// anywhere in the model (or recvs with no send) — each a construction
  /// bug that would otherwise surface as a confusing downstream failure.
  [[nodiscard]] std::vector<BuildDiagnostic> validate() const;

  /// Finalizes and returns the model; the builder is consumed.  Runs
  /// validate() first and throws BuildError when it reports any
  /// error-severity diagnostic.
  [[nodiscard]] Model build() &&;

  /// Finalizes without validation — the escape hatch for deliberately
  /// ill-formed models (checker tests, deadlock reproductions).
  [[nodiscard]] Model build_unchecked() &&;

  /// Access to the model under construction (used by DiagramBuilder).
  [[nodiscard]] Model& model() { return model_; }

  /// Generates the next unique id with the given prefix ("n", "f", "d").
  [[nodiscard]] std::string next_id(std::string_view prefix);

  /// Records a construction-time diagnostic (builder misuse).
  void report(BuildSeverity severity, std::string message);

 private:
  friend class StepBuilder;

  /// StepBuilder lifecycle accounting: open sequences show up in
  /// validate() until done() retires them.
  void note_sequence_opened(const void* key, std::string label);
  void note_sequence_finished(const void* key);

  Model model_;
  std::size_t next_node_ = 1;
  std::size_t next_edge_ = 1;
  std::size_t next_diagram_ = 1;
  std::vector<BuildDiagnostic> diagnostics_;
  std::vector<std::pair<const void*, std::string>> open_sequences_;
};

}  // namespace prophet::uml
