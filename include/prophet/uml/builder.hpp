// Programmatic model construction — the reproduction's stand-in for the
// Teuta graphical editor.
//
// The paper's user "specifies graphically the performance model using
// UML" (Sec. 1); everything the GUI produces is a model tree, which this
// builder constructs directly:
//
//   ModelBuilder mb("SampleModel");
//   mb.global("GV", uml::VariableType::Real, "0");
//   mb.function("FA1", {}, "0.000001*P*P + 0.001");
//   DiagramBuilder main = mb.diagram("main");
//   NodeRef init = main.initial();
//   NodeRef a1 = main.action("A1").cost("FA1()").code("GV = 3;");
//   main.flow(init, a1);
//   ...
//   uml::Model model = std::move(mb).build();
//
// Element ids are generated deterministically (n1, n2, ... / f1, f2, ... /
// d1, d2, ...) so models built the same way serialize identically.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "prophet/uml/model.hpp"

namespace prophet::uml {

class ModelBuilder;
class DiagramBuilder;

/// Lightweight handle to a node under construction; setters chain.
class NodeRef {
 public:
  NodeRef(Node* node) : node_(node) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] const std::string& id() const { return node_->id(); }
  [[nodiscard]] Node& node() const { return *node_; }

  /// Associates a cost expression (tag `cost`) — Fig. 7c.
  NodeRef& cost(std::string expr);
  /// Associates a verbatim code fragment (tag `code`) — Fig. 7b.
  NodeRef& code(std::string fragment);
  /// Sets the `type` tag (Fig. 1b: type = SAMPLE).
  NodeRef& type(std::string value);
  /// Sets the `time` tag (measured/estimated execution time) — Fig. 1.
  NodeRef& time(double seconds);
  /// Sets an arbitrary tagged value.
  NodeRef& tag(std::string_view name, TagValue value);

 private:
  Node* node_;
};

/// Builds one activity diagram.
class DiagramBuilder {
 public:
  DiagramBuilder(ModelBuilder* owner, ActivityDiagram* diagram)
      : owner_(owner), diagram_(diagram) {}

  [[nodiscard]] const std::string& id() const { return diagram_->id(); }

  // --- Control nodes -----------------------------------------------------

  NodeRef initial();
  NodeRef final_node();
  NodeRef decision(std::string name = {});
  NodeRef merge(std::string name = {});
  NodeRef fork(std::string name = {});
  NodeRef join(std::string name = {});

  // --- Performance modeling elements --------------------------------------

  /// <<action+>>: a single-entry single-exit code region (Fig. 3c).
  NodeRef action(std::string name);

  /// <<activity+>>: composite element whose content is `subdiagram`
  /// (Fig. 7a's SA).
  NodeRef activity(std::string name, const DiagramBuilder& subdiagram);
  NodeRef activity(std::string name, std::string subdiagram_id);

  /// <<loop+>>: repeats `body` `iterations` times; `var` is visible in
  /// expressions inside the body (0-based iteration index).
  NodeRef loop(std::string name, const DiagramBuilder& body,
               std::string iterations, std::string var = "i");
  NodeRef loop(std::string name, std::string body_diagram_id,
               std::string iterations, std::string var = "i");

  // --- Message-passing elements (MPI-style, inter-node) -------------------

  NodeRef send(std::string name, std::string dest_expr,
               std::string size_expr, std::int64_t msg_tag = 0);
  NodeRef recv(std::string name, std::string source_expr,
               std::string size_expr, std::int64_t msg_tag = 0);
  NodeRef barrier(std::string name = "Barrier");
  NodeRef broadcast(std::string name, std::string root_expr,
                    std::string size_expr);
  NodeRef reduce(std::string name, std::string root_expr,
                 std::string size_expr, std::string op = "sum");
  NodeRef allreduce(std::string name, std::string size_expr,
                    std::string op = "sum");
  NodeRef scatter(std::string name, std::string root_expr,
                  std::string size_expr);
  NodeRef gather(std::string name, std::string root_expr,
                 std::string size_expr);

  // --- Shared-memory elements (OpenMP-style, intra-node) ------------------

  /// <<ompparallel>>: body executes once per thread, implicit barrier.
  NodeRef omp_parallel(std::string name, const DiagramBuilder& body,
                       std::string num_threads_expr);
  /// <<ompfor>>: `iterations` split across the threads of the enclosing
  /// parallel region; each iteration costs `itercost` (expression).
  NodeRef omp_for(std::string name, std::string iterations,
                  std::string itercost, std::string schedule = "static",
                  std::int64_t chunk = 0);
  /// <<ompcritical>>: body executes under a named mutual-exclusion lock.
  NodeRef omp_critical(std::string name, const DiagramBuilder& body,
                       std::string critical_name = "default");
  NodeRef omp_barrier(std::string name = "OmpBarrier");

  // --- Edges ---------------------------------------------------------------

  /// Adds a control-flow edge; `guard` is a boolean expression or "else".
  ControlFlow& flow(const NodeRef& from, const NodeRef& to,
                    std::string guard = {});
  ControlFlow& flow(std::string_view from_id, std::string_view to_id,
                    std::string guard = {});

  /// Adds unguarded edges chaining the given nodes in order.
  void sequence(std::initializer_list<NodeRef> nodes);

 private:
  NodeRef add_node(NodeKind kind, std::string name,
                   std::string_view stereotype = {});

  ModelBuilder* owner_;
  ActivityDiagram* diagram_;
};

/// Builds a complete model.
class ModelBuilder {
 public:
  explicit ModelBuilder(std::string name);

  /// Declares a global variable (visible to all expressions & codegen).
  ModelBuilder& global(std::string name, VariableType type = VariableType::Real,
                       std::string initializer = {});
  /// Declares a local variable (emitted inside the model function).
  ModelBuilder& local(std::string name, VariableType type = VariableType::Real,
                      std::string initializer = {});

  /// Defines a named cost function.
  ModelBuilder& function(std::string name, std::vector<std::string> parameters,
                         std::string body);

  /// Creates a diagram; the first created diagram becomes the main one.
  DiagramBuilder diagram(std::string name);

  /// Finalizes and returns the model. The builder is consumed.
  [[nodiscard]] Model build() &&;

  /// Access to the model under construction (used by DiagramBuilder).
  [[nodiscard]] Model& model() { return model_; }

  /// Generates the next unique id with the given prefix ("n", "f", "d").
  [[nodiscard]] std::string next_id(std::string_view prefix);

 private:
  Model model_;
  std::size_t next_node_ = 1;
  std::size_t next_edge_ = 1;
  std::size_t next_diagram_ = 1;
};

}  // namespace prophet::uml
