// Base class for all identifiable model elements.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "prophet/uml/tags.hpp"

namespace prophet::uml {

/// A model element: unique id, display name, optional applied stereotype
/// and its tagged values.  The model "forms a tree data structure"
/// (Sec. 3); Element instances are the tree's payloads.
class Element {
 public:
  Element(std::string id, std::string name)
      : id_(std::move(id)), name_(std::move(name)) {}
  virtual ~Element() = default;

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- Stereotype application -------------------------------------------

  /// Name of the applied stereotype ("action+", ...), empty when none.
  [[nodiscard]] const std::string& stereotype() const { return stereotype_; }
  void set_stereotype(std::string name) { stereotype_ = std::move(name); }
  [[nodiscard]] bool has_stereotype() const { return !stereotype_.empty(); }

  // --- Tagged values ------------------------------------------------------

  [[nodiscard]] const std::vector<TaggedValue>& tags() const { return tags_; }

  /// Sets (or replaces) a tagged value.
  void set_tag(std::string_view name, TagValue value);

  /// Reads a tagged value, or nullopt.
  [[nodiscard]] std::optional<TagValue> tag(std::string_view name) const;

  /// Reads a string tag; empty string when absent or not a string.
  [[nodiscard]] std::string tag_string(std::string_view name) const;

  /// Reads a numeric tag as double (Integer and Real both convert);
  /// nullopt when absent or non-numeric.
  [[nodiscard]] std::optional<double> tag_number(std::string_view name) const;

  [[nodiscard]] bool has_tag(std::string_view name) const;
  bool remove_tag(std::string_view name);

 private:
  std::string id_;
  std::string name_;
  std::string stereotype_;
  std::vector<TaggedValue> tags_;
};

}  // namespace prophet::uml
