// The performance model: diagrams, variables, cost functions, profile.
//
// Mirrors the model artifacts of the paper's Sec. 4 example: a main
// activity diagram plus sub-diagrams (activity SA), global and local
// variables (GV, P), and named cost functions (FA1..FSA2) that elements
// reference from their `cost` tags.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "prophet/uml/diagram.hpp"
#include "prophet/uml/profile.hpp"

namespace prophet::uml {

/// Variable scope: the paper's sample model shows both ("It is possible to
/// associate global and local variables to the model", Sec. 4).
enum class VariableScope {
  Global,
  Local,
};

/// Declared variable type; the generated C++ uses these spellings.
enum class VariableType {
  Real,    // double
  Integer, // long
};

[[nodiscard]] std::string_view to_string(VariableScope scope);
[[nodiscard]] std::string_view to_string(VariableType type);
[[nodiscard]] std::optional<VariableScope> variable_scope_from_string(
    std::string_view text);
[[nodiscard]] std::optional<VariableType> variable_type_from_string(
    std::string_view text);

/// A model variable. `initializer` is a cost-language expression string;
/// empty means zero-initialized.
struct Variable {
  std::string name;
  VariableType type = VariableType::Real;
  VariableScope scope = VariableScope::Global;
  std::string initializer;
};

/// A named cost function: `FA1() = 0.000001*P*P + 0.001`.  Parameters are
/// names visible inside the body (Fig. 8a: `FSA2(pid)`); the body may also
/// reference globals and other cost functions.
struct CostFunction {
  std::string name;
  std::vector<std::string> parameters;
  std::string body;
};

/// The complete UML performance model.
class Model {
 public:
  explicit Model(std::string name) : name_(std::move(name)) {}

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- Profile ------------------------------------------------------------

  [[nodiscard]] const Profile& profile() const { return profile_; }
  [[nodiscard]] Profile& profile() { return profile_; }
  void set_profile(Profile profile) { profile_ = std::move(profile); }

  // --- Variables ----------------------------------------------------------

  [[nodiscard]] const std::vector<Variable>& variables() const {
    return variables_;
  }
  void add_variable(Variable variable) {
    variables_.push_back(std::move(variable));
  }
  [[nodiscard]] const Variable* variable(std::string_view name) const;
  [[nodiscard]] std::vector<const Variable*> globals() const;
  [[nodiscard]] std::vector<const Variable*> locals() const;

  // --- Cost functions -------------------------------------------------------

  [[nodiscard]] const std::vector<CostFunction>& cost_functions() const {
    return cost_functions_;
  }
  void add_cost_function(CostFunction fn) {
    cost_functions_.push_back(std::move(fn));
  }
  [[nodiscard]] const CostFunction* cost_function(
      std::string_view name) const;

  // --- Diagrams ------------------------------------------------------------

  [[nodiscard]] const std::vector<std::unique_ptr<ActivityDiagram>>&
  diagrams() const {
    return diagrams_;
  }
  ActivityDiagram& add_diagram(std::unique_ptr<ActivityDiagram> diagram);

  /// Diagram lookup by id; nullptr when absent.
  [[nodiscard]] const ActivityDiagram* diagram(std::string_view id) const;
  [[nodiscard]] ActivityDiagram* diagram(std::string_view id);

  /// The entry diagram of the model (the "main activity diagram" of
  /// Fig. 7a).  Defaults to the first diagram added.
  [[nodiscard]] const std::string& main_diagram_id() const {
    return main_diagram_id_;
  }
  void set_main_diagram(std::string id) { main_diagram_id_ = std::move(id); }
  [[nodiscard]] const ActivityDiagram* main_diagram() const;

  /// Global node lookup across all diagrams; nullptr when absent.
  [[nodiscard]] const Node* node(std::string_view id) const;

  /// Total element count (diagrams + nodes + edges); used by benches to
  /// report transformation throughput per element.
  [[nodiscard]] std::size_t element_count() const;

 private:
  std::string name_;
  Profile profile_;
  std::vector<Variable> variables_;
  std::vector<CostFunction> cost_functions_;
  std::vector<std::unique_ptr<ActivityDiagram>> diagrams_;
  std::string main_diagram_id_;
};

}  // namespace prophet::uml
