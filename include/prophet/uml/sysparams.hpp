// System-parameter vocabulary shared by the checker, interpreter and code
// generator.
//
// The paper's SP element carries "the number of computational nodes, the
// number of processors per node, the number of processes, and the number
// of threads" (Sec. 2.2), and cost functions may use "properties of system
// components (such as number of processors, or the ID of process)" —
// Fig. 8a's FSA2(pid).  These names are implicitly visible in every
// cost-language expression.
#pragma once

#include <span>
#include <string_view>

namespace prophet::uml {

namespace sysparam {
inline constexpr std::string_view kProcessId = "pid";   // 0-based process id
inline constexpr std::string_view kThreadId = "tid";    // 0-based thread id
inline constexpr std::string_view kElementUid = "uid";  // element unique id
inline constexpr std::string_view kProcesses = "np";    // #processes
inline constexpr std::string_view kThreads = "nt";      // #threads/process
inline constexpr std::string_view kNodes = "nn";        // #computational nodes
inline constexpr std::string_view kProcessorsPerNode = "ppn";
}  // namespace sysparam

/// All implicitly visible system-parameter names.
[[nodiscard]] std::span<const std::string_view> system_parameter_names();

/// True when `name` is a system parameter.
[[nodiscard]] bool is_system_parameter(std::string_view name);

}  // namespace prophet::uml
