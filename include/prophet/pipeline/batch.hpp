// Batch scenario sweeps — the pipeline of Fig. 2, prepared once per
// model and evaluated many times over.
//
// The BatchRunner expands (model, SystemParameters) scenarios into jobs
// and fans them out over a worker-thread pool.  By default it runs the
// per-model half of the chain — XMI parse, model check, UML -> C++
// transformation, Backend::prepare — exactly once per registered model
// (the compiled-model cache), shares the immutable result read-only
// across the pool, and turns each job into a parameter-only evaluation.
// That is the source paper's own structure: the transformation is
// automatic and per-model, only the estimation depends on the system
// parameters.
//
// BatchOptions::isolate_jobs restores PR 1's fully isolated semantics:
// every job re-parses its own uml::Model from the registered XMI text
// and re-runs the whole chain.  Both modes produce bit-identical
// predictions at any thread count — cached mode evaluates the same
// parsed model through the same engines, just without re-deriving it per
// job — and in both modes one failing model cannot poison the batch.
// Each job also carries a seed derived from the batch base seed; the
// current evaluation path draws no random numbers, so the seed is
// recorded in the results as reserved job identity for future
// stochastic model workloads (sim::Rng).
//
//   pipeline::BatchRunner runner;
//   const int m = runner.add_model("sample", prophet::models::sample_model());
//   runner.add_sweep(m, pipeline::ScenarioGrid::parse("np=1..8:*2"));
//   const auto report = runner.run();
//   report.summary();  // per-scenario predictions + aggregate stats
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "prophet/estimator/backend.hpp"
#include "prophet/guard/guard.hpp"
#include "prophet/machine/machine.hpp"
#include "prophet/obs/obs.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/uml/model.hpp"

/// Batch scenario sweeps: grids, the worker pool and result aggregation.
namespace prophet::pipeline {

/// One unit of work: a registered model evaluated under one parameter
/// configuration with one RNG seed.
struct BatchJob {
  /// Dense id in assignment order; results keep this order.
  int id = 0;
  /// Index into the runner's registered models.
  int model_index = 0;
  /// Display name of the referenced model.
  std::string model_name;
  /// The scenario's system parameters.
  machine::SystemParameters params;
  /// Derived from BatchOptions::base_seed and id; reserved for stochastic
  /// workloads (the current evaluation path is deterministic).
  std::uint64_t seed = 0;
};

/// Outcome of one job.  `ok` is false when any pipeline stage failed; the
/// remaining fields are valid only when it is true.
struct ScenarioResult {
  /// Id of the job this result answers.
  int job_id = 0;
  /// Index of the evaluated model.
  int model_index = 0;
  /// Display name of the evaluated model.
  std::string model_name;
  /// The scenario's system parameters.
  machine::SystemParameters params;
  /// The job's derived RNG seed.
  std::uint64_t seed = 0;

  /// True when every pipeline stage succeeded.
  bool ok = false;
  /// Stage-prefixed failure message, e.g. "check: 2 error(s)".
  std::string error;
  /// Name of the guard bound that failed the job — "wall_clock",
  /// "sim_events", "vm_instructions", "replay_events", "loop_trips", or
  /// "cancelled" — empty for successes and non-guard failures.
  std::string tripped_limit;

  /// Which backend(s) evaluated the job.  Cross-validating kinds (Both,
  /// SimCodegen, AnalyticCodegen, All) put the reference engine's
  /// prediction in `predicted_time`, each candidate's in its own field,
  /// and the worst candidate-vs-reference deviation in `relative_error`.
  estimator::BackendKind backend = estimator::BackendKind::Simulation;
  /// Predicted seconds (makespan) of the reference engine.
  double predicted_time = 0;
  /// The analytic prediction; valid whenever the analytic engine ran.
  double analytic_predicted = 0;
  /// The generated-code prediction; valid whenever the codegen engine
  /// ran (bit-identical to the simulator's by contract).
  double codegen_predicted = 0;
  /// Worst |candidate - reference| / reference across the candidates;
  /// valid for cross-validating kinds.
  double relative_error = 0;
  /// Engine events processed (simulation and codegen engines).
  std::uint64_t events = 0;
  /// Number of modeled processes.
  int processes = 0;
  /// Checker findings (errors fail the job).
  std::size_t check_warnings = 0;
  /// Size of the generated C++ (when codegen is on).
  std::size_t generated_bytes = 0;
  /// Host time this job took.
  double wall_seconds = 0;

  /// \name Per-stage host times (seconds)
  /// In cached runs parse/check/transform happen once per model during
  /// the batch prepare phase (BatchReport::prepare_seconds), so those
  /// three stay 0 per job and estimate_seconds ~= wall_seconds; in
  /// isolated runs every stage is paid — and visible — per job.
  ///@{
  double parse_seconds = 0;      ///< XMI parse time.
  double check_seconds = 0;      ///< Model-check time.
  double transform_seconds = 0;  ///< UML -> C++ transformation time.
  double estimate_seconds = 0;   ///< Backend evaluation time.
  ///@}
};

/// Aggregate statistics over the successful results of a batch.
struct BatchStats {
  std::size_t total = 0;         ///< Number of jobs in the batch.
  std::size_t ok = 0;            ///< Jobs whose every stage succeeded.
  std::size_t failed = 0;        ///< Jobs with a failed stage.
  std::size_t timed_out = 0;     ///< Failed jobs that tripped a wall clock.
  std::size_t cancelled = 0;     ///< Failed jobs that were cancelled.
  double min_predicted = 0;      ///< Smallest successful prediction.
  double max_predicted = 0;      ///< Largest successful prediction.
  double mean_predicted = 0;     ///< Mean successful prediction.
  std::uint64_t total_events = 0;  ///< Engine events across all jobs.
  double total_job_seconds = 0;  ///< Sum of per-job wall times.
  /// \name Cross-validation (jobs run with a cross-validating kind)
  ///@{
  std::size_t compared = 0;      ///< Jobs carrying a relative error.
  double max_rel_error = 0;      ///< Worst candidate-vs-reference deviation.
  double mean_rel_error = 0;     ///< Mean candidate-vs-reference deviation.
  ///@}
};

/// The collected outcome of one BatchRunner::run().
struct BatchReport {
  /// Per-scenario outcomes, ordered by job id.
  std::vector<ScenarioResult> results;
  /// Worker threads the batch actually used.
  int threads_used = 1;
  /// End-to-end host time for the batch.
  double wall_seconds = 0;
  /// Compiled-model cache (cached runs only): how many models made it
  /// through the whole compile chain — parse, check, transform,
  /// Backend::prepare.  Zero in isolated runs.
  int models_prepared = 0;
  /// One-time prepare-phase host time; includes models whose compile
  /// failed.  Zero in isolated runs.
  double prepare_seconds = 0;
  /// The batch metric document: batch.* counts/timers derived from the
  /// results (always), lower.* lowering stats (cached runs) and engine
  /// counters — expr.*, sim.*, analytic.* — when the run had
  /// BatchOptions::collect_metrics on.  summary() formats its aggregate
  /// line from this registry, so the printed counts and the exported
  /// JSON (`--metrics`) can never disagree.
  obs::Registry metrics;
  /// Host worker spans (and one representative simulated timeline per
  /// model); populated when BatchOptions::collect_trace is on.
  obs::TraceLog trace;

  [[nodiscard]] BatchStats stats() const;

  /// Wall-clock throughput of the whole batch.
  [[nodiscard]] double jobs_per_second() const;

  /// The batch.* cells of `metrics`, re-derived from the results — what
  /// run() merges into `metrics`, exposed so hand-built reports (tests)
  /// can populate theirs the same way.
  [[nodiscard]] obs::Registry derived_metrics() const;

  /// Human-readable table: one line per scenario plus the aggregate
  /// (read from `metrics`).
  [[nodiscard]] std::string summary() const;

  /// Machine-readable CSV (header + one row per scenario).
  [[nodiscard]] std::string to_csv() const;
};

/// One progress heartbeat of a running batch (BatchOptions::on_progress).
struct BatchProgress {
  std::size_t done = 0;        ///< Jobs finished so far.
  std::size_t total = 0;       ///< Jobs in the batch.
  double elapsed_seconds = 0;  ///< Since run() started.
  double jobs_per_second = 0;  ///< done / elapsed.
  double eta_seconds = 0;      ///< (total - done) / jobs_per_second.
  /// Worst analytic-vs-sim deviation over the finished both-mode jobs
  /// (0 until one finishes).
  double worst_rel_error = 0;
  /// True for the one guaranteed callback after the last job.
  bool final = false;
};

/// Knobs for one batch run.
struct BatchOptions {
  /// Worker threads; <= 0 uses std::thread::hardware_concurrency().
  int threads = 0;
  /// Model-check each job; checker errors fail the job.
  bool run_checker = true;
  /// Run the UML -> C++ transformation per job.
  bool run_codegen = true;
  /// Evaluation engine(s) per job: any single engine (simulation — the
  /// paper's estimator —, analytic, codegen) or a cross-validating
  /// selection (both, sim+codegen, analytic+codegen, all) that runs
  /// several engines and records the worst candidate-vs-reference
  /// relative error per scenario (estimator::BackendSet).
  estimator::BackendKind backend = estimator::BackendKind::Simulation;
  /// Base of the per-job seed derivation (see derive_seed).
  std::uint64_t base_seed = 0x9e3779b97f4a7c15ULL;
  /// false (default): compile each referenced model once — XMI parse,
  /// check, transform, Backend::prepare — and share the immutable result
  /// read-only across the worker pool; jobs are parameter-only
  /// evaluations.  true: every job re-runs the whole chain on its own
  /// model copy (PR 1's isolation semantics — the escape hatch for
  /// workloads that want per-job fault containment of the pipeline
  /// stages themselves).  Predictions are bit-identical either way.
  bool isolate_jobs = false;
  /// Lane width for batched estimation (cached runs): consecutive
  /// same-model jobs are grouped into chunks of up to this many lanes
  /// and evaluated through one PreparedModel::estimate_batch call — one
  /// batched analytic walk instead of N scalar ones.  0 picks the
  /// default width (8); 1 disables batching.  Batching engages only on
  /// the unlimited fast path (cached mode, no per-job limits or timeout,
  /// no fault plan); a chunk that fails or is cancelled falls back to
  /// per-job evaluation (counted in `batch.lanes_fallback`), so per-job
  /// error isolation, budgets and tripped_limit reporting are unchanged.
  /// Predictions are bit-identical at any lane width.
  int batch_lanes = 0;
  /// Collect engine counters (expr.*, sim.*, analytic.*, lower.*) into
  /// BatchReport::metrics.  Each worker counts into its own registry and
  /// the registries are merged after the pool joins, so the hot path
  /// never synchronizes.  Predictions are bit-identical either way.
  bool collect_metrics = false;
  /// Record host spans — per-model compile stages and per-job estimates,
  /// one lane per worker thread — plus one representative simulated
  /// timeline per model (sim/both backends) into BatchReport::trace.
  /// Predictions are bit-identical either way.
  bool collect_trace = false;
  /// Progress heartbeat, called from a monitor thread roughly every
  /// `progress_interval_seconds` while jobs run, plus one guaranteed
  /// final call after the last job.  The callback must be thread-safe
  /// with respect to the caller; it never runs concurrently with itself.
  std::function<void(const BatchProgress&)> on_progress = nullptr;
  /// Heartbeat period in seconds (used only when on_progress is set).
  double progress_interval_seconds = 0.5;
  /// Per-job resource limits (guard::Limits).  A job that trips a bound
  /// is marked failed with ScenarioResult::tripped_limit naming it; the
  /// rest of the sweep completes.  Default bounds nothing and the
  /// evaluation path stays bit-identical.
  guard::Limits limits;
  /// Per-job wall-clock timeout in seconds (0: none).  Composed with
  /// `limits.wall_seconds` — the tighter bound wins.  Timed-out jobs
  /// count into the `batch.jobs_timed_out` metric.
  double job_timeout_seconds = 0;
  /// Whole-sweep deadline in seconds measured from run() (0: none).
  /// When it passes, running jobs are cancelled cooperatively, unclaimed
  /// jobs are marked failed, and the report — partial CSV, metrics, the
  /// guaranteed final progress callback — is still produced.
  double deadline_seconds = 0;
  /// Caller-owned sweep-wide cancellation token (nullable).  cancel() —
  /// e.g. from a SIGINT handler — drains the pool like a passed
  /// deadline: cooperative, partial results preserved.  Outlives run().
  guard::Budget* sweep_budget = nullptr;
  /// Deterministic fault plan (nullable, caller-owned, see
  /// guard::FaultPlan).  Sites visited: "parse", "check", "transform",
  /// "lower", "prepare" (once per compile chain — per model when cached,
  /// per job when isolated) and "estimate" (per job); a "cancel@E" rule
  /// arms a mid-simulation cancellation after E engine events.
  guard::FaultPlan* fault_plan = nullptr;
};

/// Expands sweeps into jobs and runs them on a worker pool.
class BatchRunner {
 public:
  /// Captures the batch options; models and scenarios are added next.
  explicit BatchRunner(BatchOptions options = {});

  /// The options this runner was constructed with.
  [[nodiscard]] const BatchOptions& options() const { return options_; }

  /// Registers a model (serialized to XMI text so every job can re-parse
  /// its own isolated copy).  Returns the model index.
  int add_model(std::string name, const uml::Model& model);

  /// Registers a model from XMI text; parse errors surface per job.
  int add_model_xml(std::string name, std::string xmi_text);

  /// Registers a model from an XMI file (read eagerly; throws on I/O
  /// errors, parse errors surface per job).  The name is the file path.
  int add_model_file(const std::string& path);

  /// Registers a built-in workload by registry reference ("@kernel6",
  /// "@stencil2d(n=256)").  Throws std::invalid_argument on unknown
  /// models or knobs, naming the valid ones.  The name is the reference.
  int add_model_reference(const std::string& reference);

  /// Number of registered models.
  [[nodiscard]] std::size_t model_count() const { return models_.size(); }

  /// Queues one scenario for a registered model.
  void add_scenario(int model_index, machine::SystemParameters params);

  /// Queues every scenario in `grid` for a registered model.
  void add_sweep(int model_index, const ScenarioGrid& grid);

  /// Queues every scenario in `grid` for every registered model.
  void add_sweep_all(const ScenarioGrid& grid);

  /// Number of queued jobs.
  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }
  /// The queued jobs, in assignment order.
  [[nodiscard]] const std::vector<BatchJob>& jobs() const { return jobs_; }

  /// Runs all queued jobs.  Results arrive in job order regardless of the
  /// thread count; jobs that fail are reported, never thrown.
  [[nodiscard]] BatchReport run() const;

 private:
  struct ModelEntry {
    std::string name;
    std::string xmi;
  };
  // One compiled model of a cached run: the parsed uml::Model plus the
  // PreparedModel handle(s) for the selected backend(s); defined in the
  // implementation file.
  struct CompiledEntry;

  /// Isolated-mode job: the full chain on the job's own model copy.  The
  /// backends are constructed once per worker and passed in (any may be
  /// null when the selected BackendKind does not need it).  `metrics`
  /// (nullable) receives the job's engine counters; `sim_trace`
  /// (nullable) receives the job's simulated timeline.
  [[nodiscard]] ScenarioResult run_job(
      const BatchJob& job, const estimator::Backend* sim_backend,
      const estimator::Backend* analytic_backend,
      const estimator::Backend* codegen_backend, obs::Registry* metrics,
      trace::Trace* sim_trace, const guard::Budget* sweep) const;

  /// Cached-mode job: parameter-only evaluation against the shared
  /// compiled entry of the job's model.
  [[nodiscard]] ScenarioResult run_job_cached(
      const BatchJob& job, const CompiledEntry& entry, obs::Registry* metrics,
      trace::Trace* sim_trace, const guard::Budget* sweep) const;

  /// Cached-mode lane chunk: `count` consecutive same-model jobs
  /// (`jobs[0..count)`) evaluated through one
  /// PreparedModel::estimate_batch call, writing `results[0..count)`.
  /// Any failure abandons the chunk and re-runs every lane through
  /// run_job_cached for exact per-job error attribution.
  void run_chunk_cached(const BatchJob* jobs, std::size_t count,
                        const CompiledEntry& entry, obs::Registry* metrics,
                        const guard::Budget* sweep,
                        ScenarioResult* results) const;

  /// Compiles every model referenced by at least one job (parse -> check
  /// -> transform -> prepare) on up to `threads` workers; per-model
  /// failures land in the entry, not as exceptions.  `compiled` counts
  /// the models that compiled successfully.  `trace_log` (nullable)
  /// receives one "compile <model>" span per model on the compiling
  /// worker's lane.
  [[nodiscard]] std::vector<CompiledEntry> compile_models(
      int threads, int* compiled, obs::TraceLog* trace_log) const;

  /// One model's compile chain; writes the outcome into *out.
  void compile_one(std::size_t m, CompiledEntry* out) const;

  /// The per-model stage chain both modes share: parse -> check ->
  /// transform.  Returns a stage-prefixed error ("" on success); stage
  /// timings land in the out-params (pass nullptr to skip timing).
  [[nodiscard]] std::string run_model_stages(
      std::size_t model_index, uml::Model* model, std::size_t* warnings,
      std::size_t* generated_bytes, double* parse_seconds,
      double* check_seconds, double* transform_seconds) const;

  BatchOptions options_;
  std::vector<ModelEntry> models_;
  std::vector<BatchJob> jobs_;
};

/// The per-job seed derivation (SplitMix64 over base_seed + job id);
/// exposed so tests and tools can predict job seeds.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed, int job_id);

}  // namespace prophet::pipeline
