// Scenario grids — the parameter-sweep vocabulary of the batch pipeline.
//
// The paper evaluates the transformation by predicting one program under
// many system configurations (Sec. 5 varies processor counts and problem
// sizes); a ScenarioGrid captures that as a base machine::SystemParameters
// plus sweep axes whose cross-product expands into one SystemParameters
// per scenario.  Axes address SP fields by their sysparam names (np, nn,
// ppn, nt) or the synthetic-hardware field names (cpu_speed, ...).
//
//   auto grid = pipeline::ScenarioGrid::parse("np=1..8:*2 nodes=1,2");
//   grid.size();    // 8 scenarios
//   grid.expand();  // row-major: first axis varies slowest
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "prophet/machine/machine.hpp"

namespace prophet::pipeline {

/// One sweep dimension: a named SystemParameters field and its values.
struct Axis {
  /// Sweepable parameter name ("np", "nodes", "cpu_speed", ...).
  std::string name;
  /// The values this axis takes, in sweep order.
  std::vector<double> values;
};

/// Cross-product of parameter axes over a base configuration.
class ScenarioGrid {
 public:
  /// An axis-less grid over default system parameters (one scenario).
  ScenarioGrid() = default;
  /// An axis-less grid over `base` (one scenario until axes are added).
  explicit ScenarioGrid(machine::SystemParameters base) : base_(base) {}

  /// Adds a sweep axis.  Throws std::invalid_argument when `name` is not
  /// a sweepable parameter or `values` is empty.
  ScenarioGrid& axis(std::string name, std::vector<double> values);

  /// Parses a grid spec: whitespace- or ';'-separated axes, each either a
  /// comma list or a range —
  ///   "np=1,2,4"        explicit values
  ///   "np=1..8"         inclusive linear range, step 1
  ///   "np=2..16:+2"     linear range with step
  ///   "np=1..64:*4"     geometric range with factor
  /// Throws std::invalid_argument on malformed specs.
  [[nodiscard]] static ScenarioGrid parse(std::string_view spec,
                                          machine::SystemParameters base = {});

  /// The base configuration every scenario starts from.
  [[nodiscard]] const machine::SystemParameters& base() const { return base_; }
  /// The sweep axes, in the order they were added.
  [[nodiscard]] const std::vector<Axis>& axes() const { return axes_; }

  /// Number of scenarios the grid expands to (1 for an axis-less grid).
  [[nodiscard]] std::size_t size() const;

  /// The cross-product, row-major: the first axis varies slowest, the
  /// last fastest — "np=1,2 nn=1,2" yields (1,1) (1,2) (2,1) (2,2).
  [[nodiscard]] std::vector<machine::SystemParameters> expand() const;

  /// Sets one named parameter on `params`.  Integer SP fields are
  /// rounded; throws std::invalid_argument for unknown names.
  static void apply(machine::SystemParameters& params, std::string_view name,
                    double value);

  /// True when `name` is sweepable via apply().
  [[nodiscard]] static bool is_parameter(std::string_view name);

 private:
  machine::SystemParameters base_;
  std::vector<Axis> axes_;
};

}  // namespace prophet::pipeline
