// Fig. 4 — from the UML representation to the C++ representation.
//
// Measures the whole-model transformation (the Transformer::transform
// entry point) across model sizes; the expectation, confirmed by the
// per-element counter, is linear scaling in the number of modeling
// elements.
#include <benchmark/benchmark.h>

#include "prophet/codegen/transformer.hpp"
#include "prophet/prophet.hpp"

namespace {

void BM_Transform_WholeModel(benchmark::State& state) {
  const int activities = static_cast<int>(state.range(0));
  const int actions = static_cast<int>(state.range(1));
  const prophet::uml::Model model =
      prophet::models::synthetic_model(activities, actions);
  const prophet::codegen::Transformer transformer;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string cpp = transformer.transform(model);
    bytes = cpp.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["elements"] =
      static_cast<double>(model.element_count());
  state.counters["output_bytes"] = static_cast<double>(bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(model.element_count()));
}
BENCHMARK(BM_Transform_WholeModel)
    ->Args({1, 8})
    ->Args({4, 16})
    ->Args({16, 16})
    ->Args({32, 32})
    ->Args({64, 64});

void BM_Transform_Kernel6(benchmark::State& state) {
  // The paper's Fig. 4 example itself.
  const prophet::uml::Model model =
      prophet::models::kernel6_model(100, 10, 1e-9);
  const prophet::codegen::Transformer transformer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transformer.transform(model));
  }
}
BENCHMARK(BM_Transform_Kernel6);

}  // namespace

BENCHMARK_MAIN();
