// The batch scenario-sweep pipeline: end-to-end jobs/second at different
// worker-pool sizes.
//
// Every job runs the whole chain — XMI parse, model check, UML -> C++
// transformation, interpretation/simulation — so this measures the
// throughput ceiling of "predict one program under many configurations",
// the evaluation workload of Sec. 5.  Thread counts 1 / 2 / 4 /
// hardware_concurrency show the scaling of the job-level parallelism
// (jobs are isolated, so the sweep should scale near-linearly until the
// cores run out).
#include <benchmark/benchmark.h>

#include <thread>

#include "prophet/pipeline/batch.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/prophet.hpp"

#include "json_args.hpp"

namespace pipeline = prophet::pipeline;

namespace {

// A mixed sweep: two models x (np in 1..8) x (nodes in 1,2) = 32 jobs.
pipeline::BatchRunner make_runner(int threads) {
  pipeline::BatchOptions options;
  options.threads = threads;
  pipeline::BatchRunner runner(options);
  runner.add_model("sample", prophet::models::sample_model());
  runner.add_model("kernel6", prophet::models::kernel6_model(128, 32, 1e-8));
  runner.add_sweep_all(pipeline::ScenarioGrid::parse("np=1..8 nodes=1,2"));
  return runner;
}

void BM_BatchSweep_Throughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto runner = make_runner(threads);
  std::size_t jobs = 0;
  std::size_t failed = 0;
  for (auto _ : state) {
    const auto report = runner.run();
    jobs = report.results.size();
    failed = report.stats().failed;
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["failed"] = static_cast<double>(failed);
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BatchSweep_Throughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(static_cast<int>(std::thread::hardware_concurrency()))
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Stage ablation: what check and codegen add on top of parse+simulate.
void BM_BatchSweep_Stages(benchmark::State& state) {
  pipeline::BatchOptions options;
  options.threads = 1;
  options.run_checker = state.range(0) != 0;
  options.run_codegen = state.range(1) != 0;
  pipeline::BatchRunner runner(options);
  runner.add_model("sample", prophet::models::sample_model());
  runner.add_sweep(0, pipeline::ScenarioGrid::parse("np=1..8"));
  for (auto _ : state) {
    const auto report = runner.run();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(runner.job_count()));
}
BENCHMARK(BM_BatchSweep_Stages)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

// Backend ablation: the same sweep through simulation, analytic and both
// (cross-validation) — what `prophetc sweep --backend=...` costs per job.
void BM_BatchSweep_Backend(benchmark::State& state) {
  pipeline::BatchOptions options;
  options.threads = 1;
  options.backend =
      static_cast<prophet::estimator::BackendKind>(state.range(0));
  pipeline::BatchRunner runner(options);
  runner.add_model("kernel6", prophet::models::kernel6_model(128, 32, 1e-8));
  runner.add_sweep(0, pipeline::ScenarioGrid::parse("np=1..8 nodes=1,2"));
  for (auto _ : state) {
    const auto report = runner.run();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(runner.job_count()));
}
BENCHMARK(BM_BatchSweep_Backend)
    ->Arg(static_cast<int>(prophet::estimator::BackendKind::Simulation))
    ->Arg(static_cast<int>(prophet::estimator::BackendKind::Analytic))
    ->Arg(static_cast<int>(prophet::estimator::BackendKind::Both))
    ->ArgNames({"backend"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

PROPHET_BENCHMARK_MAIN()
