// The batch scenario-sweep pipeline: end-to-end jobs/second at different
// worker-pool sizes and cache modes.
//
// Cached mode (the default) compiles each model once — XMI parse, model
// check, UML -> C++ transformation, Backend::prepare — and turns every
// job into a parameter-only evaluation; isolated mode re-runs the whole
// chain per job (PR 1's semantics).  BM_BatchSweep_Throughput measures
// both at 1 / 2 / 4 / hardware_concurrency threads; the dedicated
// BM_BatchSweep_CacheSpeedup reports the cached-vs-isolated jobs/s ratio
// on the analytic @kernel6 grid — the acceptance bar for the
// compiled-model cache is >= 20x.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "prophet/pipeline/batch.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/prophet.hpp"

#include "json_args.hpp"

namespace pipeline = prophet::pipeline;

namespace {

// A mixed sweep: two models x (np in 1..8) x (nodes in 1,2) = 32 jobs.
pipeline::BatchRunner make_runner(int threads, bool isolate) {
  pipeline::BatchOptions options;
  options.threads = threads;
  options.isolate_jobs = isolate;
  pipeline::BatchRunner runner(options);
  runner.add_model("sample", prophet::models::sample_model());
  runner.add_model("kernel6", prophet::models::kernel6_model(128, 32, 1e-8));
  runner.add_sweep_all(pipeline::ScenarioGrid::parse("np=1..8 nodes=1,2"));
  return runner;
}

void BM_BatchSweep_Throughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool isolate = state.range(1) != 0;
  const auto runner = make_runner(threads, isolate);
  std::size_t jobs = 0;
  std::size_t failed = 0;
  for (auto _ : state) {
    const auto report = runner.run();
    jobs = report.results.size();
    failed = report.stats().failed;
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["failed"] = static_cast<double>(failed);
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BatchSweep_Throughput)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({static_cast<int>(std::thread::hardware_concurrency()), 0})
    ->Args({1, 1})
    ->Args({static_cast<int>(std::thread::hardware_concurrency()), 1})
    ->ArgNames({"threads", "isolate"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The headline number for the compiled-model cache: one iteration runs
// the same analytic @kernel6 sweep cached and isolated; `speedup` is
// their jobs/s ratio (cached wall includes the one-time prepare).
void BM_BatchSweep_CacheSpeedup(benchmark::State& state) {
  using clock = std::chrono::steady_clock;
  const auto make = [](bool isolate) {
    pipeline::BatchOptions options;
    options.threads = 1;
    options.isolate_jobs = isolate;
    options.backend = prophet::estimator::BackendKind::Analytic;
    pipeline::BatchRunner runner(options);
    runner.add_model("kernel6", prophet::models::kernel6_model(64, 16, 1e-8));
    runner.add_sweep(0, pipeline::ScenarioGrid::parse(
                            "np=1..8 nodes=1..4 ppn=1,2"));
    return runner;
  };
  const auto cached_runner = make(false);
  const auto isolated_runner = make(true);
  double cached_seconds = 0;
  double isolated_seconds = 0;
  std::size_t jobs = 0;
  for (auto _ : state) {
    const auto cached_start = clock::now();
    const auto cached = cached_runner.run();
    cached_seconds +=
        std::chrono::duration<double>(clock::now() - cached_start).count();

    const auto isolated_start = clock::now();
    const auto isolated = isolated_runner.run();
    isolated_seconds +=
        std::chrono::duration<double>(clock::now() - isolated_start).count();

    jobs = cached.results.size();
    benchmark::DoNotOptimize(cached);
    benchmark::DoNotOptimize(isolated);
  }
  const double total_jobs =
      static_cast<double>(state.iterations()) * static_cast<double>(jobs);
  state.counters["speedup"] =
      cached_seconds > 0 ? isolated_seconds / cached_seconds : 0;
  state.counters["cached_jobs_per_s"] =
      cached_seconds > 0 ? total_jobs / cached_seconds : 0;
  state.counters["isolated_jobs_per_s"] =
      isolated_seconds > 0 ? total_jobs / isolated_seconds : 0;
}
BENCHMARK(BM_BatchSweep_CacheSpeedup)->Unit(benchmark::kMillisecond);

// Stage ablation: what check and codegen add on top of parse+simulate.
// Runs isolated so every job pays the stages being ablated (in cached
// mode they are one-time, amortized costs).
void BM_BatchSweep_Stages(benchmark::State& state) {
  pipeline::BatchOptions options;
  options.threads = 1;
  options.isolate_jobs = true;
  options.run_checker = state.range(0) != 0;
  options.run_codegen = state.range(1) != 0;
  pipeline::BatchRunner runner(options);
  runner.add_model("sample", prophet::models::sample_model());
  runner.add_sweep(0, pipeline::ScenarioGrid::parse("np=1..8"));
  for (auto _ : state) {
    const auto report = runner.run();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(runner.job_count()));
}
BENCHMARK(BM_BatchSweep_Stages)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

// Backend ablation: the same sweep through simulation, analytic and both
// (cross-validation) — what `prophetc sweep --backend=...` costs per job
// in its (cached) default shape.
void BM_BatchSweep_Backend(benchmark::State& state) {
  pipeline::BatchOptions options;
  options.threads = 1;
  options.backend =
      static_cast<prophet::estimator::BackendKind>(state.range(0));
  pipeline::BatchRunner runner(options);
  runner.add_model("kernel6", prophet::models::kernel6_model(128, 32, 1e-8));
  runner.add_sweep(0, pipeline::ScenarioGrid::parse("np=1..8 nodes=1,2"));
  for (auto _ : state) {
    const auto report = runner.run();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(runner.job_count()));
}
BENCHMARK(BM_BatchSweep_Backend)
    ->Arg(static_cast<int>(prophet::estimator::BackendKind::Simulation))
    ->Arg(static_cast<int>(prophet::estimator::BackendKind::Analytic))
    ->Arg(static_cast<int>(prophet::estimator::BackendKind::Both))
    ->ArgNames({"backend"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

PROPHET_BENCHMARK_MAIN()
