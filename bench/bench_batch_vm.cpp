// Ablation — batched expression evaluation and the batched sweep path.
//
// BM_BatchVm_* compare Compiled::eval one-lane-at-a-time against
// Compiled::eval_batch on SoA lane frames at several widths: the
// per-dispatch VM overhead amortizes across lanes and the arithmetic
// opcodes run through the SIMD kernels.  BM_BatchVm_SweepSpeedup is the
// headline pipeline number backing the CI perf gate: the batched
// analytic @kernel6 sweep must clear >= 1.5x the scalar (lane width 1)
// sweep in jobs/s.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <vector>

#include "json_args.hpp"
#include "prophet/expr/compile.hpp"
#include "prophet/expr/parser.hpp"
#include "prophet/pipeline/batch.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/prophet.hpp"

namespace expr = prophet::expr;
namespace pipeline = prophet::pipeline;

namespace {

// The kernel6 cost nest (FK6 of Fig. 3c) — the expression every
// @kernel6 scenario evaluation prices compute with.
constexpr const char* kKernel6Cost = "M * (N * (N - 1) / 2) * c";

// A branch-free mixed-arithmetic expression exercising the compare and
// select-free logical kernels alongside the arithmetic ones.
constexpr const char* kMixed =
    "(a + b * c) / (1 + (a > b)) - (b != c) * 0.25 + a * 0.5";

struct Compiled {
  expr::SymbolTable table;
  expr::Slot a, b, c;
  expr::Compiled program;

  explicit Compiled(const char* text, const char* na = "a",
                    const char* nb = "b", const char* nc = "c")
      : a(table.add_variable(na)),
        b(table.add_variable(nb)),
        c(table.add_variable(nc)),
        program(expr::compile(*expr::parse(text), table)) {}
};

void fill(expr::SlotBlock& block, const Compiled& model) {
  for (std::size_t lane = 0; lane < block.width(); ++lane) {
    const double x = static_cast<double>(lane + 1);
    block.set(model.a, lane, 64.0 + x);
    block.set(model.b, lane, 16.0 * x);
    block.set(model.c, lane, 1e-8 * x);
  }
}

/// Scalar reference: the per-lane eval() loop eval_batch must beat.
void BM_BatchVm_ScalarLoop(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  Compiled model(kKernel6Cost, "N", "M", "c");
  expr::SlotBlock block(model.table, width);
  fill(block, model);
  std::vector<double*> frame(block.slot_count());
  std::vector<double> out(width);
  for (auto _ : state) {
    for (std::size_t lane = 0; lane < width; ++lane) {
      for (std::size_t slot = 0; slot < frame.size(); ++slot) {
        frame[slot] = block.lanes(static_cast<expr::Slot>(slot)) + lane;
      }
      expr::EvalContext ctx;
      ctx.frame = frame;
      out[lane] = model.program.eval(ctx);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(width));
}
BENCHMARK(BM_BatchVm_ScalarLoop)->Arg(1)->Arg(8)->Arg(64)->ArgNames({"lanes"});

void BM_BatchVm_EvalBatch(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  Compiled model(kKernel6Cost, "N", "M", "c");
  expr::SlotBlock block(model.table, width);
  fill(block, model);
  std::vector<double> out(width);
  expr::BatchEvalContext ctx;
  ctx.frame = block.frame();
  ctx.width = width;
  for (auto _ : state) {
    model.program.eval_batch(ctx, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(width));
}
BENCHMARK(BM_BatchVm_EvalBatch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(64)
    ->ArgNames({"lanes"});

void BM_BatchVm_EvalBatchMixed(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  Compiled model(kMixed);
  expr::SlotBlock block(model.table, width);
  fill(block, model);
  std::vector<double> out(width);
  expr::BatchEvalContext ctx;
  ctx.frame = block.frame();
  ctx.width = width;
  for (auto _ : state) {
    model.program.eval_batch(ctx, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(width));
}
BENCHMARK(BM_BatchVm_EvalBatchMixed)
    ->Arg(8)
    ->Arg(64)
    ->ArgNames({"lanes"});

// The headline number: one iteration runs the same analytic @kernel6
// sweep batched (auto lane width) and scalar (lane width 1); `speedup`
// is their jobs/s ratio.  The CI perf gate requires >= 1.5.
void BM_BatchVm_SweepSpeedup(benchmark::State& state) {
  using clock = std::chrono::steady_clock;
  // Small grid (index 0) stresses per-job bookkeeping, the wide grid
  // (index 1, the CI gate) gives each job enough estimation work for
  // the shared batched walk to dominate.
  const char* const grids[] = {"np=1..8 nodes=1..4 ppn=1,2",
                               "np=1..16 nodes=1..4 ppn=1..4"};
  const char* const grid = grids[state.range(0)];
  const auto make = [grid](int batch_lanes) {
    pipeline::BatchOptions options;
    options.threads = 1;
    options.batch_lanes = batch_lanes;
    options.backend = prophet::estimator::BackendKind::Analytic;
    options.run_codegen = false;
    pipeline::BatchRunner runner(options);
    runner.add_model("kernel6", prophet::models::kernel6_model(64, 16, 1e-8));
    runner.add_sweep(0, pipeline::ScenarioGrid::parse(grid));
    return runner;
  };
  const auto batched_runner = make(0);  // auto width
  const auto scalar_runner = make(1);   // batching off
  double batched_seconds = 0;
  double scalar_seconds = 0;
  std::size_t jobs = 0;
  for (auto _ : state) {
    const auto batched_start = clock::now();
    const auto batched = batched_runner.run();
    batched_seconds +=
        std::chrono::duration<double>(clock::now() - batched_start).count();

    const auto scalar_start = clock::now();
    const auto scalar = scalar_runner.run();
    scalar_seconds +=
        std::chrono::duration<double>(clock::now() - scalar_start).count();

    jobs = batched.results.size();
    benchmark::DoNotOptimize(batched);
    benchmark::DoNotOptimize(scalar);
  }
  const double total_jobs =
      static_cast<double>(state.iterations()) * static_cast<double>(jobs);
  state.counters["speedup"] =
      batched_seconds > 0 ? scalar_seconds / batched_seconds : 0;
  state.counters["batched_jobs_per_s"] =
      batched_seconds > 0 ? total_jobs / batched_seconds : 0;
  state.counters["scalar_jobs_per_s"] =
      scalar_seconds > 0 ? total_jobs / scalar_seconds : 0;
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_BatchVm_SweepSpeedup)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"grid"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

PROPHET_BENCHMARK_MAIN()
