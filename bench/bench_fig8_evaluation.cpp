// Fig. 8 — the C++ representation of the sample model, and the paper's
// machine-efficiency claim.
//
// The whole point of the transformation is that "while the UML
// representation is suitable as human-usable notation for performance
// model specification, it is not adequate for an efficient model
// evaluation" (Sec. 3).  This bench evaluates the *same* sample model two
// ways:
//   * interpreted — walking the UML tree, re-evaluating expression ASTs;
//   * compiled    — the transformer's actual output (regenerated at build
//                   time into generated/sample_pmp.cpp and compiled into
//                   this binary).
// The compiled path should win by a large factor; both must predict the
// same time (asserted here, not just benchmarked).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "prophet/estimator/estimator.hpp"
#include "prophet/interp/interpreter.hpp"
#include "prophet/prophet.hpp"

// Provided by the generated translation unit (generated/sample_pmp.cpp).
prophet::estimator::FunctionModel prophet_program();

namespace {

prophet::estimator::EstimationOptions no_trace() {
  prophet::estimator::EstimationOptions options;
  options.collect_trace = false;
  return options;
}

prophet::machine::SystemParameters bench_params() {
  prophet::machine::SystemParameters params;
  params.nodes = 2;
  params.processors_per_node = 2;
  params.processes = 4;
  return params;
}

void BM_Evaluate_InterpretedUml(benchmark::State& state) {
  const prophet::uml::Model model = prophet::models::sample_model();
  prophet::interp::Interpreter interpreter(model);
  const prophet::estimator::SimulationManager manager(
      bench_params(), no_trace());
  double predicted = 0;
  for (auto _ : state) {
    predicted = manager.run(interpreter).predicted_time;
    benchmark::DoNotOptimize(predicted);
  }
  state.counters["predicted_s"] = predicted;
}
BENCHMARK(BM_Evaluate_InterpretedUml);

void BM_Evaluate_GeneratedCpp(benchmark::State& state) {
  auto program = prophet_program();
  const prophet::estimator::SimulationManager manager(
      bench_params(), no_trace());
  double predicted = 0;
  for (auto _ : state) {
    predicted = manager.run(program).predicted_time;
    benchmark::DoNotOptimize(predicted);
  }
  state.counters["predicted_s"] = predicted;
}
BENCHMARK(BM_Evaluate_GeneratedCpp);

void BM_Evaluate_InterpretedKernel6Detailed(benchmark::State& state) {
  // A heavier interpreted workload: the detailed kernel-6 loop model.
  const prophet::uml::Model model =
      prophet::models::kernel6_detailed_model(48, 2, 1e-9);
  prophet::interp::Interpreter interpreter(model);
  const prophet::estimator::SimulationManager manager(
      {}, no_trace());
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.run(interpreter).predicted_time);
  }
}
BENCHMARK(BM_Evaluate_InterpretedKernel6Detailed);

/// Both paths must agree before any timing is meaningful.
void verify_agreement() {
  const prophet::uml::Model model = prophet::models::sample_model();
  prophet::interp::Interpreter interpreter(model);
  auto program = prophet_program();
  const prophet::estimator::SimulationManager manager(
      bench_params(), no_trace());
  const double interpreted = manager.run(interpreter).predicted_time;
  const double generated = manager.run(program).predicted_time;
  if (std::abs(interpreted - generated) > 1e-12) {
    std::fprintf(stderr,
                 "FATAL: interpreted (%.12f) and generated (%.12f) "
                 "predictions disagree\n",
                 interpreted, generated);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  verify_agreement();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
