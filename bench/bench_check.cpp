// Ablation — Model Checker cost versus model size and rule count.
#include <benchmark/benchmark.h>

#include "prophet/check/checker.hpp"
#include "prophet/prophet.hpp"

namespace {

void BM_Check_FullRuleSet(benchmark::State& state) {
  const prophet::uml::Model model = prophet::models::synthetic_model(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  const prophet::check::ModelChecker checker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(model));
  }
  state.counters["elements"] = static_cast<double>(model.element_count());
}
BENCHMARK(BM_Check_FullRuleSet)
    ->Args({4, 8})
    ->Args({16, 16})
    ->Args({64, 32});

void BM_Check_StructuralRulesOnly(benchmark::State& state) {
  // MCF-style configuration: disable the expression-heavy rules to isolate
  // the structural pass.
  const prophet::uml::Model model = prophet::models::synthetic_model(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  prophet::check::ModelChecker checker;
  checker.set_enabled("expression-tags", false);
  checker.set_enabled("expression-visibility", false);
  checker.set_enabled("cost-functions", false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(model));
  }
}
BENCHMARK(BM_Check_StructuralRulesOnly)->Args({16, 16})->Args({64, 32});

}  // namespace

BENCHMARK_MAIN();
