// Ablation — the XML substrate (model files, MCF, CF, SP of Fig. 2).
#include <benchmark/benchmark.h>

#include <sstream>

#include "prophet/xml/parser.hpp"
#include "prophet/xml/writer.hpp"

namespace xml = prophet::xml;

namespace {

std::string synthetic_document(int width, int depth) {
  xml::Document doc = xml::Document::with_root("root");
  xml::Element* level = &doc.root();
  for (int d = 0; d < depth; ++d) {
    xml::Element* next = nullptr;
    for (int w = 0; w < width; ++w) {
      auto& child = level->add_element("node");
      child.set_attr("id", std::to_string(d * width + w));
      child.set_attr("kind", "action");
      child.add_text("payload " + std::to_string(w));
      if (next == nullptr) {
        next = &child;
      }
    }
    level = next;
  }
  return xml::to_string(doc);
}

void BM_Xml_Parse(benchmark::State& state) {
  const std::string text = synthetic_document(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const xml::Document doc = xml::parse(text);
    benchmark::DoNotOptimize(doc.root().subtree_size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_Xml_Parse)->Args({10, 5})->Args({100, 10})->Args({1000, 10});

void BM_Xml_Write(benchmark::State& state) {
  const std::string text = synthetic_document(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  const xml::Document doc = xml::parse(text);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string out = xml::to_string(doc);
    bytes = out.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Xml_Write)->Args({10, 5})->Args({100, 10})->Args({1000, 10});

void BM_Xml_Escape(benchmark::State& state) {
  const std::string text(1024, '<');
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::escape(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_Xml_Escape);

}  // namespace

BENCHMARK_MAIN();
