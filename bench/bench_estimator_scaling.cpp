// Ablation — Performance Estimator scaling: evaluation cost and predicted
// time across system-parameter sweeps (the SP element of Fig. 2).  The
// predicted_s counters reproduce the speedup-curve *series* the companion
// papers plot.
#include <benchmark/benchmark.h>

#include "prophet/interp/interpreter.hpp"
#include "prophet/prophet.hpp"

namespace {

prophet::estimator::EstimationOptions no_trace() {
  prophet::estimator::EstimationOptions options;
  options.collect_trace = false;
  return options;
}

void BM_Estimate_SampleModel_ProcessSweep(benchmark::State& state) {
  const int np = static_cast<int>(state.range(0));
  const prophet::uml::Model model = prophet::models::sample_model();
  prophet::interp::Interpreter interpreter(model);
  prophet::machine::SystemParameters params;
  params.processes = np;
  params.nodes = np;
  const prophet::estimator::SimulationManager manager(
      params, no_trace());
  double predicted = 0;
  for (auto _ : state) {
    predicted = manager.run(interpreter).predicted_time;
    benchmark::DoNotOptimize(predicted);
  }
  state.counters["predicted_s"] = predicted;
}
BENCHMARK(BM_Estimate_SampleModel_ProcessSweep)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

void BM_Estimate_PingPong_MessageSizeSweep(benchmark::State& state) {
  const double bytes = static_cast<double>(state.range(0));
  const prophet::uml::Model model =
      prophet::models::pingpong_model(bytes, 10);
  prophet::interp::Interpreter interpreter(model);
  prophet::machine::SystemParameters params;
  params.processes = 2;
  params.nodes = 2;
  const prophet::estimator::SimulationManager manager(
      params, no_trace());
  double predicted = 0;
  for (auto _ : state) {
    predicted = manager.run(interpreter).predicted_time;
    benchmark::DoNotOptimize(predicted);
  }
  state.counters["predicted_s"] = predicted;
}
BENCHMARK(BM_Estimate_PingPong_MessageSizeSweep)
    ->Arg(1024)
    ->Arg(65536)
    ->Arg(1048576);

void BM_Estimate_Oversubscription(benchmark::State& state) {
  // More processes than processors: the node facility queues and the
  // prediction grows — the contention effect the machine model exists
  // to expose.
  const int np = static_cast<int>(state.range(0));
  const prophet::uml::Model model = prophet::models::sample_model();
  prophet::interp::Interpreter interpreter(model);
  prophet::machine::SystemParameters params;
  params.processes = np;
  params.nodes = 1;
  params.processors_per_node = 2;
  const prophet::estimator::SimulationManager manager(
      params, no_trace());
  double predicted = 0;
  for (auto _ : state) {
    predicted = manager.run(interpreter).predicted_time;
    benchmark::DoNotOptimize(predicted);
  }
  state.counters["predicted_s"] = predicted;
}
BENCHMARK(BM_Estimate_Oversubscription)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
