// Ablation — the CSIM-substitute simulation engine.
//
// Raw event throughput (hold loops), facility contention, mailbox
// traffic, and barrier synchronization; these bound how large a model the
// Performance Estimator can evaluate per second.
#include <benchmark/benchmark.h>

#include "prophet/sim/engine.hpp"
#include "prophet/sim/facility.hpp"
#include "prophet/sim/mailbox.hpp"
#include "prophet/workload/runtime.hpp"

namespace sim = prophet::sim;

namespace {

sim::Process holder(sim::Engine& engine, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await engine.hold(1.0);
  }
}

void BM_Engine_HoldEvents(benchmark::State& state) {
  const int processes = static_cast<int>(state.range(0));
  const int hops = static_cast<int>(state.range(1));
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Engine engine;
    for (int p = 0; p < processes; ++p) {
      engine.spawn(holder(engine, hops));
    }
    engine.run();
    events = engine.events_processed();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_Engine_HoldEvents)
    ->Args({1, 10000})
    ->Args({100, 100})
    ->Args({1000, 100})
    ->Args({10000, 10});

sim::Process facility_user(sim::Engine& engine, sim::Facility& facility,
                           int uses) {
  for (int i = 0; i < uses; ++i) {
    co_await facility.acquire();
    co_await engine.hold(0.5);
    facility.release();
  }
}

void BM_Engine_FacilityContention(benchmark::State& state) {
  const int customers = static_cast<int>(state.range(0));
  const int servers = static_cast<int>(state.range(1));
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Engine engine;
    sim::Facility facility(engine, "cpu", servers);
    for (int c = 0; c < customers; ++c) {
      engine.spawn(facility_user(engine, facility, 50));
    }
    engine.run();
    events = engine.events_processed();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_Engine_FacilityContention)
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({256, 4})
    ->Args({256, 64});

sim::Process producer(sim::Engine& engine, sim::Mailbox& mailbox,
                      int messages) {
  for (int i = 0; i < messages; ++i) {
    co_await engine.hold(0.1);
    mailbox.send({0, 0, 64.0, 0, 0});
  }
}

sim::Process consumer(sim::Mailbox& mailbox, int messages) {
  for (int i = 0; i < messages; ++i) {
    co_await mailbox.receive();
  }
}

void BM_Engine_MailboxTraffic(benchmark::State& state) {
  const int messages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    sim::Mailbox mailbox(engine, "queue");
    engine.spawn(producer(engine, mailbox, messages));
    engine.spawn(consumer(mailbox, messages));
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          messages);
}
BENCHMARK(BM_Engine_MailboxTraffic)->Arg(1000)->Arg(100000);

sim::Process barrier_worker(sim::Engine& engine,
                            prophet::workload::BarrierGate& gate,
                            int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await engine.hold(0.01);
    co_await gate.arrive();
  }
}

void BM_Engine_BarrierRounds(benchmark::State& state) {
  const int participants = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  for (auto _ : state) {
    sim::Engine engine;
    prophet::workload::BarrierGate gate(engine, participants);
    for (int p = 0; p < participants; ++p) {
      engine.spawn(barrier_worker(engine, gate, rounds));
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(participants) * rounds);
}
BENCHMARK(BM_Engine_BarrierRounds)->Args({8, 100})->Args({256, 20});

}  // namespace

BENCHMARK_MAIN();
