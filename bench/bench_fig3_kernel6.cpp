// Fig. 3 — from program code to UML performance model.
//
// The paper collapses the detailed kernel-6 loop nest (Fig. 3b) into one
// <<action+>> with cost function FK6 (Fig. 3c) because "we are interested
// on the rough performance estimation" — i.e. the detailed model costs
// far more to *evaluate* for the same prediction.  This bench quantifies
// that: evaluation time of the collapsed vs the detailed model across N,
// next to the native kernel itself.
#include <benchmark/benchmark.h>

#include "prophet/kernels/livermore.hpp"
#include "prophet/prophet.hpp"

namespace {

constexpr double kOpTime = 2e-9;
constexpr std::int64_t kM = 4;

void BM_Kernel6_CollapsedModel(benchmark::State& state) {
  const auto n = state.range(0);
  const prophet::Prophet prophet(
      prophet::models::kernel6_model(n, kM, kOpTime));
  double predicted = 0;
  for (auto _ : state) {
    const auto report = prophet.estimate({});
    predicted = report.predicted_time;
    benchmark::DoNotOptimize(predicted);
  }
  state.counters["predicted_s"] = predicted;
}
BENCHMARK(BM_Kernel6_CollapsedModel)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Kernel6_DetailedModel(benchmark::State& state) {
  const auto n = state.range(0);
  const prophet::Prophet prophet(
      prophet::models::kernel6_detailed_model(n, kM, kOpTime));
  double predicted = 0;
  for (auto _ : state) {
    const auto report = prophet.estimate({});
    predicted = report.predicted_time;
    benchmark::DoNotOptimize(predicted);
  }
  state.counters["predicted_s"] = predicted;
}
BENCHMARK(BM_Kernel6_DetailedModel)->Arg(32)->Arg(64)->Arg(128);

void BM_Kernel6_NativeKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double checksum = 0;
  for (auto _ : state) {
    const auto result =
        prophet::kernels::kernel6(n, static_cast<std::size_t>(kM));
    checksum = result.checksum;
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["ops"] = static_cast<double>(
      prophet::kernels::kernel6_operations(n, static_cast<std::size_t>(kM)));
}
BENCHMARK(BM_Kernel6_NativeKernel)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
