// Shared `--json out.json` handling for the bench executables.
//
// The benches emit machine-readable results for trajectory tracking
// (BENCH_*.json artifacts in CI).  `--json path` is sugar for google
// benchmark's `--benchmark_out=path --benchmark_out_format=json`; every
// other flag passes through untouched.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace prophet::benchutil {

/// Runs the registered benchmarks with `--json` support; returns the
/// process exit code.
inline int run_benchmarks(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      args.push_back("--benchmark_out=" + std::string(argv[++i]));
      args.push_back("--benchmark_out_format=json");
    } else if (arg.rfind("--json=", 0) == 0) {
      args.push_back("--benchmark_out=" + arg.substr(7));
      args.push_back("--benchmark_out_format=json");
    } else {
      args.push_back(std::move(arg));
    }
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (auto& arg : args) {
    argv2.push_back(arg.data());
  }
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace prophet::benchutil

/// Drop-in replacement for BENCHMARK_MAIN() with `--json` support.
#define PROPHET_BENCHMARK_MAIN()                            \
  int main(int argc, char** argv) {                         \
    return prophet::benchutil::run_benchmarks(argc, argv);  \
  }
