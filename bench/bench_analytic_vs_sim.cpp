// Analytic backend vs. discrete-event simulation: per-scenario estimation
// cost and the speedup that motivates the analytic subsystem.
//
// Both backends are measured in their steady-state serving shape via the
// Backend::prepare contract: the model is compiled once into a
// PreparedModel, then each scenario of the acceptance grid ("np=1..8:*2"
// over @kernel6) is evaluated through the handle.  That is exactly what
// the batch pipeline's compiled-model cache pays per job — and what an
// interactive prediction service pays per request.
//
// BM_AnalyticSpeedup reports the measured ratio as the `speedup` counter;
// the acceptance bar for the analytic subsystem is >= 100x on this grid.
#include <benchmark/benchmark.h>

#include <chrono>

#include "prophet/analytic/analytic.hpp"
#include "prophet/analytic/backend.hpp"
#include "prophet/estimator/estimator.hpp"
#include "prophet/interp/interpreter.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/prophet.hpp"

#include "json_args.hpp"

namespace {

namespace analytic = prophet::analytic;
namespace machine = prophet::machine;

std::vector<machine::SystemParameters> acceptance_grid() {
  return prophet::pipeline::ScenarioGrid::parse("np=1..8:*2").expand();
}

// EstimationOptions now carries guard fields (limits, budget); partial
// designated initializers would trip -Wmissing-field-initializers, so
// the option sets are built by hand.
prophet::estimator::EstimationOptions no_trace() {
  prophet::estimator::EstimationOptions options;
  options.collect_trace = false;
  return options;
}

const prophet::estimator::EstimationOptions kLean = [] {
  auto options = no_trace();
  options.collect_machine_report = false;
  return options;
}();

// --- Per-scenario estimation cost, steady state (prepared handles) -----------

void BM_EstimateGrid_Sim(benchmark::State& state) {
  const auto grid = acceptance_grid();
  const auto model = prophet::models::kernel6_model(64, 16, 1e-8);
  const auto prepared = analytic::SimulationBackend().prepare(model);
  double last = 0;
  for (auto _ : state) {
    for (const auto& params : grid) {
      const auto report = prepared->estimate(params, kLean);
      last = report.predicted_time;
      benchmark::DoNotOptimize(report);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
  state.counters["predicted_np8_s"] = last;
}
BENCHMARK(BM_EstimateGrid_Sim)->Unit(benchmark::kMicrosecond);

void BM_EstimateGrid_Analytic(benchmark::State& state) {
  const auto grid = acceptance_grid();
  const auto model = prophet::models::kernel6_model(64, 16, 1e-8);
  const auto prepared = analytic::AnalyticBackend().prepare(model);
  double last = 0;
  for (auto _ : state) {
    for (const auto& params : grid) {
      const auto report = prepared->estimate(params, kLean);
      last = report.predicted_time;
      benchmark::DoNotOptimize(report);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
  state.counters["predicted_np8_s"] = last;
}
BENCHMARK(BM_EstimateGrid_Analytic)->Unit(benchmark::kMicrosecond);

// --- The headline number -----------------------------------------------------

// One iteration = the whole acceptance grid through both backends; the
// `speedup` counter is (sim time / analytic time) for identical work, and
// `max_rel_error` cross-validates the predictions while we are at it.
//
// Arg 0 selects the model: the collapsed one-action kernel6 (Fig. 3c —
// the form the paper hand-optimizes into a single cost function) or the
// detailed three-level loop nest (Fig. 3b — the form a modeler actually
// draws).  The detailed model is where the analytic backend earns its
// keep: the simulator executes all M * N * (N-1) / 2 loop iterations per
// process, the analyzer resolves the trip counts symbolically and walks
// each loop body once.
void BM_AnalyticSpeedup(benchmark::State& state) {
  using clock = std::chrono::steady_clock;
  const bool detailed = state.range(0) != 0;
  const auto make_model = [detailed] {
    return detailed ? prophet::models::kernel6_detailed_model(64, 16, 1e-8)
                    : prophet::models::kernel6_model(64, 16, 1e-8);
  };
  const auto grid = acceptance_grid();
  prophet::interp::Interpreter interpreter(make_model());
  const analytic::AnalyticEstimator analyzer(make_model());
  double sim_seconds = 0;
  double analytic_seconds = 0;
  double max_rel_error = 0;
  for (auto _ : state) {
    for (const auto& params : grid) {
      const auto sim_start = clock::now();
      const prophet::estimator::SimulationManager manager(
          params, no_trace());
      const auto sim_report = manager.run(interpreter);
      sim_seconds +=
          std::chrono::duration<double>(clock::now() - sim_start).count();

      const auto analytic_start = clock::now();
      const auto analytic_report = analyzer.evaluate(params);
      analytic_seconds +=
          std::chrono::duration<double>(clock::now() - analytic_start)
              .count();

      const double rel_error =
          std::abs(analytic_report.predicted_time -
                   sim_report.predicted_time) /
          sim_report.predicted_time;
      max_rel_error = std::max(max_rel_error, rel_error);
      benchmark::DoNotOptimize(sim_report);
      benchmark::DoNotOptimize(analytic_report);
    }
  }
  state.counters["speedup"] =
      analytic_seconds > 0 ? sim_seconds / analytic_seconds : 0;
  state.counters["sim_us_per_scenario"] =
      1e6 * sim_seconds /
      static_cast<double>(state.iterations() * grid.size());
  state.counters["analytic_us_per_scenario"] =
      1e6 * analytic_seconds /
      static_cast<double>(state.iterations() * grid.size());
  state.counters["max_rel_error"] = max_rel_error;
}
BENCHMARK(BM_AnalyticSpeedup)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"detailed"})
    ->Unit(benchmark::kMillisecond);

// --- Scaling with communication and contention -------------------------------

void BM_Estimate_PingPong(benchmark::State& state) {
  const bool use_analytic = state.range(0) != 0;
  machine::SystemParameters params;
  params.processes = 2;
  prophet::interp::Interpreter interpreter(
      prophet::models::pingpong_model(1024, 64));
  const analytic::AnalyticEstimator analyzer(
      prophet::models::pingpong_model(1024, 64));
  for (auto _ : state) {
    if (use_analytic) {
      const auto report = analyzer.evaluate(params);
      benchmark::DoNotOptimize(report);
    } else {
      const prophet::estimator::SimulationManager manager(
          params, no_trace());
      const auto report = manager.run(interpreter);
      benchmark::DoNotOptimize(report);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Estimate_PingPong)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"analytic"})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

PROPHET_BENCHMARK_MAIN()
