// Registry workload benchmarks: per-model factory cost, analytic
// evaluation throughput over the prepared handle, and simulation cost —
// one benchmark per registered workload, names derived from the registry
// so a new entry shows up here automatically.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "prophet/analytic/backend.hpp"
#include "prophet/estimator/backend.hpp"
#include "prophet/models/registry.hpp"
#include "prophet/uml/model.hpp"

#include "json_args.hpp"

namespace models = prophet::models;

namespace {

void bench_factory(benchmark::State& state, const models::ModelInfo* entry) {
  for (auto _ : state) {
    const auto model = entry->make();
    benchmark::DoNotOptimize(model.element_count());
  }
}

void bench_analytic(benchmark::State& state, const models::ModelInfo* entry) {
  const auto model = entry->make();
  const prophet::analytic::AnalyticBackend backend;
  const auto prepared = backend.prepare(model);
  for (auto _ : state) {
    const auto report = prepared->estimate(entry->default_params);
    benchmark::DoNotOptimize(report.predicted_time);
  }
}

void bench_simulate(benchmark::State& state, const models::ModelInfo* entry) {
  const auto model = entry->make();
  const prophet::analytic::SimulationBackend backend;
  const auto prepared = backend.prepare(model);
  for (auto _ : state) {
    const auto report = prepared->estimate(entry->default_params);
    benchmark::DoNotOptimize(report.predicted_time);
  }
}

const bool registered = [] {
  for (const auto& entry : models::Registry::builtin().entries()) {
    benchmark::RegisterBenchmark(("BM_Factory/@" + entry.name).c_str(),
                                 bench_factory, &entry);
    benchmark::RegisterBenchmark(("BM_Analytic/@" + entry.name).c_str(),
                                 bench_analytic, &entry);
    benchmark::RegisterBenchmark(("BM_Simulate/@" + entry.name).c_str(),
                                 bench_simulate, &entry);
  }
  return true;
}();

}  // namespace

PROPHET_BENCHMARK_MAIN()
