// Ablation — the cost-function expression language: parsing throughput
// and the evaluation ladder interpreted (tree walk + string lookups) →
// compiled (slot-based bytecode VM) → native (the C++ the generated cost
// functions of Fig. 8a execute).  The compiled/interpreted pair on the
// kernel6 cost nest backs the CI perf gate (compiled >= 2x interpreted).
#include <benchmark/benchmark.h>

#include <cmath>

#include "json_args.hpp"
#include "prophet/expr/compile.hpp"
#include "prophet/expr/eval.hpp"
#include "prophet/expr/parser.hpp"

namespace expr = prophet::expr;

namespace {

constexpr const char* kCostFunction =
    "0.000001 * P * P + 0.001 + sqrt(P) / (np + 1)";

// The kernel6 cost nest (FK6 of Fig. 3c): M general-linear-recurrence
// sweeps of N*(N-1)/2 updates at c seconds each — the expression every
// @kernel6 scenario evaluation prices compute with.
constexpr const char* kKernel6Cost = "M * (N * (N - 1) / 2) * c";

constexpr const char* kGuard = "GV > 0 && pid < np - 1";

void BM_Expr_Parse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::parse(kCostFunction));
  }
}
BENCHMARK(BM_Expr_Parse);

void BM_Expr_Compile(benchmark::State& state) {
  const expr::ExprPtr parsed = expr::parse(kCostFunction);
  expr::SymbolTable table;
  table.add_variable("P");
  table.add_variable("np");
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::compile(*parsed, table));
  }
}
BENCHMARK(BM_Expr_Compile);

void BM_Expr_InterpretedEval(benchmark::State& state) {
  const expr::ExprPtr parsed = expr::parse(kCostFunction);
  expr::MapEnvironment env;
  env.set("P", 16.0);
  env.set("np", 4.0);
  double total = 0;
  for (auto _ : state) {
    total += expr::evaluate(*parsed, env);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Expr_InterpretedEval);

void BM_Expr_CompiledEval(benchmark::State& state) {
  const expr::ExprPtr parsed = expr::parse(kCostFunction);
  expr::SymbolTable table;
  const expr::Slot p = table.add_variable("P");
  const expr::Slot np = table.add_variable("np");
  const expr::Compiled program = expr::compile(*parsed, table);
  expr::SlotFrame frame(table);
  frame.set(p, 16.0);
  frame.set(np, 4.0);
  expr::EvalContext ctx;
  ctx.frame = frame.frame();
  double total = 0;
  for (auto _ : state) {
    total += program.eval(ctx);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Expr_CompiledEval);

void BM_Expr_NativeEval(benchmark::State& state) {
  // The same arithmetic as compiled C++ (what the generated cost
  // functions of Fig. 8a execute).
  const double P = 16.0;
  const double np = 4.0;
  double total = 0;
  for (auto _ : state) {
    total += 0.000001 * P * P + 0.001 + std::sqrt(P) / (np + 1);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Expr_NativeEval);

void BM_Expr_InterpretedEvalKernel6(benchmark::State& state) {
  const expr::ExprPtr parsed = expr::parse(kKernel6Cost);
  expr::MapEnvironment env;
  env.set("M", 100.0);
  env.set("N", 64.0);
  env.set("c", 1e-8);
  double total = 0;
  for (auto _ : state) {
    total += expr::evaluate(*parsed, env);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Expr_InterpretedEvalKernel6);

void BM_Expr_CompiledEvalKernel6(benchmark::State& state) {
  const expr::ExprPtr parsed = expr::parse(kKernel6Cost);
  expr::SymbolTable table;
  const expr::Slot m = table.add_variable("M");
  const expr::Slot n = table.add_variable("N");
  const expr::Slot c = table.add_variable("c");
  const expr::Compiled program = expr::compile(*parsed, table);
  expr::SlotFrame frame(table);
  frame.set(m, 100.0);
  frame.set(n, 64.0);
  frame.set(c, 1e-8);
  expr::EvalContext ctx;
  ctx.frame = frame.frame();
  double total = 0;
  for (auto _ : state) {
    total += program.eval(ctx);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Expr_CompiledEvalKernel6);

void BM_Expr_SymbolTableBuild(benchmark::State& state) {
  // Interning N identifiers and resolving each once — the shape of
  // lowering a model with N declared/loop variables.  Hash-indexed
  // SymbolTable keeps this O(N); the old linear scan was O(N^2) and
  // dominated prepare() for large models.
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<std::string> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    names.push_back("var_" + std::to_string(i));
  }
  for (auto _ : state) {
    expr::SymbolTable table;
    for (const auto& name : names) {
      benchmark::DoNotOptimize(table.add_variable(name));
    }
    for (const auto& name : names) {
      benchmark::DoNotOptimize(table.slot_of(name));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count) * 2);
}
BENCHMARK(BM_Expr_SymbolTableBuild)->Range(64, 4096);

void BM_Expr_GuardEval(benchmark::State& state) {
  const expr::ExprPtr guard = expr::parse(kGuard);
  expr::MapEnvironment env;
  env.set("GV", 3.0);
  env.set("pid", 1.0);
  env.set("np", 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::evaluate(*guard, env));
  }
}
BENCHMARK(BM_Expr_GuardEval);

void BM_Expr_CompiledGuard(benchmark::State& state) {
  const expr::ExprPtr guard = expr::parse(kGuard);
  expr::SymbolTable table;
  const expr::Slot gv = table.add_variable("GV");
  const expr::Slot np = table.add_variable("np");
  table.bind_ambient("pid", expr::Ambient::Pid);
  const expr::Compiled program = expr::compile(*guard, table);
  expr::SlotFrame frame(table);
  frame.set(gv, 3.0);
  frame.set(np, 4.0);
  expr::EvalContext ctx;
  ctx.frame = frame.frame();
  ctx.pid = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.eval(ctx));
  }
}
BENCHMARK(BM_Expr_CompiledGuard);

}  // namespace

PROPHET_BENCHMARK_MAIN();
