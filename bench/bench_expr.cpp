// Ablation — the cost-function expression language: parsing throughput
// and the interpreted-vs-native evaluation gap that underlies the paper's
// machine-efficiency argument at the expression level.
#include <benchmark/benchmark.h>

#include <cmath>

#include "prophet/expr/eval.hpp"
#include "prophet/expr/parser.hpp"

namespace expr = prophet::expr;

namespace {

constexpr const char* kCostFunction =
    "0.000001 * P * P + 0.001 + sqrt(P) / (np + 1)";

void BM_Expr_Parse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::parse(kCostFunction));
  }
}
BENCHMARK(BM_Expr_Parse);

void BM_Expr_InterpretedEval(benchmark::State& state) {
  const expr::ExprPtr parsed = expr::parse(kCostFunction);
  expr::MapEnvironment env;
  env.set("P", 16.0);
  env.set("np", 4.0);
  double total = 0;
  for (auto _ : state) {
    total += expr::evaluate(*parsed, env);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Expr_InterpretedEval);

void BM_Expr_NativeEval(benchmark::State& state) {
  // The same arithmetic as compiled C++ (what the generated cost
  // functions of Fig. 8a execute).
  const double P = 16.0;
  const double np = 4.0;
  double total = 0;
  for (auto _ : state) {
    total += 0.000001 * P * P + 0.001 + std::sqrt(P) / (np + 1);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Expr_NativeEval);

void BM_Expr_GuardEval(benchmark::State& state) {
  const expr::ExprPtr guard = expr::parse("GV > 0 && pid < np - 1");
  expr::MapEnvironment env;
  env.set("GV", 3.0);
  env.set("pid", 1.0);
  env.set("np", 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::evaluate(*guard, env));
  }
}
BENCHMARK(BM_Expr_GuardEval);

}  // namespace

BENCHMARK_MAIN();
