// Fig. 5 — the transformation algorithm, stage by stage.
//
// One benchmark per stage of the listing: element selection (lines 1-8),
// globals (9-12), cost functions (13-18), locals (20-23), declarations
// (24-28) and execution flow (29-35).  Shows where transformation time
// goes and that every stage scales linearly.
#include <benchmark/benchmark.h>

#include "prophet/codegen/transformer.hpp"
#include "prophet/prophet.hpp"

namespace {

const prophet::uml::Model& model_for(int size) {
  static const prophet::uml::Model small =
      prophet::models::synthetic_model(4, 8);
  static const prophet::uml::Model medium =
      prophet::models::synthetic_model(16, 16);
  static const prophet::uml::Model large =
      prophet::models::synthetic_model(64, 32);
  switch (size) {
    case 0:
      return small;
    case 1:
      return medium;
    default:
      return large;
  }
}

void BM_Stage_SelectElements(benchmark::State& state) {
  const auto& model = model_for(static_cast<int>(state.range(0)));
  const prophet::codegen::Transformer transformer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        transformer.select_performance_elements(model));
  }
  state.counters["elements"] = static_cast<double>(model.element_count());
}
BENCHMARK(BM_Stage_SelectElements)->Arg(0)->Arg(1)->Arg(2);

void BM_Stage_Globals(benchmark::State& state) {
  const auto& model = model_for(static_cast<int>(state.range(0)));
  const prophet::codegen::Transformer transformer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transformer.emit_globals(model));
  }
}
BENCHMARK(BM_Stage_Globals)->Arg(0)->Arg(1)->Arg(2);

void BM_Stage_CostFunctions(benchmark::State& state) {
  const auto& model = model_for(static_cast<int>(state.range(0)));
  const prophet::codegen::Transformer transformer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transformer.emit_cost_functions(model));
  }
}
BENCHMARK(BM_Stage_CostFunctions)->Arg(0)->Arg(1)->Arg(2);

void BM_Stage_Locals(benchmark::State& state) {
  const auto& model = model_for(static_cast<int>(state.range(0)));
  const prophet::codegen::Transformer transformer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transformer.emit_locals(model));
  }
}
BENCHMARK(BM_Stage_Locals)->Arg(0)->Arg(1)->Arg(2);

void BM_Stage_Declarations(benchmark::State& state) {
  const auto& model = model_for(static_cast<int>(state.range(0)));
  const prophet::codegen::Transformer transformer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transformer.emit_declarations(model));
  }
}
BENCHMARK(BM_Stage_Declarations)->Arg(0)->Arg(1)->Arg(2);

void BM_Stage_Flow(benchmark::State& state) {
  const auto& model = model_for(static_cast<int>(state.range(0)));
  const prophet::codegen::Transformer transformer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transformer.emit_flow(model));
  }
}
BENCHMARK(BM_Stage_Flow)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
