// Fig. 7 — UML-based specification of the sample model.
//
// Measures the specification-side costs: programmatic model construction
// (the builder that stands in for the Teuta GUI), model checking, and the
// XMI persistence round trip that backs the `Models (XML)` store of
// Fig. 2.
#include <benchmark/benchmark.h>

#include "prophet/check/checker.hpp"
#include "prophet/prophet.hpp"
#include "prophet/xmi/xmi.hpp"

namespace {

void BM_Specify_SampleModel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(prophet::models::sample_model());
  }
}
BENCHMARK(BM_Specify_SampleModel);

void BM_Specify_SyntheticModel(benchmark::State& state) {
  const int activities = static_cast<int>(state.range(0));
  const int actions = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prophet::models::synthetic_model(activities, actions));
  }
}
BENCHMARK(BM_Specify_SyntheticModel)->Args({4, 8})->Args({64, 32});

void BM_Check_SampleModel(benchmark::State& state) {
  const prophet::uml::Model model = prophet::models::sample_model();
  const prophet::check::ModelChecker checker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(model));
  }
}
BENCHMARK(BM_Check_SampleModel);

void BM_Xmi_Write(benchmark::State& state) {
  const prophet::uml::Model model = prophet::models::synthetic_model(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string xml = prophet::xmi::to_xml(model);
    bytes = xml.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Xmi_Write)->Args({4, 8})->Args({64, 32});

void BM_Xmi_RoundTrip(benchmark::State& state) {
  const prophet::uml::Model model = prophet::models::synthetic_model(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  const std::string xml = prophet::xmi::to_xml(model);
  for (auto _ : state) {
    const prophet::uml::Model reloaded = prophet::xmi::from_xml(xml);
    benchmark::DoNotOptimize(reloaded.element_count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_Xmi_RoundTrip)->Args({4, 8})->Args({64, 32});

}  // namespace

BENCHMARK_MAIN();
