// Observability overhead: what instrumentation costs when it is off —
// the number that licenses threading obs handles through the hot paths.
//
// The disabled path is a nullable-pointer check per counter bump (the
// engines hold obs::Counter handles whose cell pointer is null), so the
// contract is "free when off".  BM_CounterDisabled vs BM_CounterEnabled
// measures the raw handle cost both ways; BM_EstimateGrid_{Plain,
// Metrics} measures the end-to-end estimation path with and without a
// live registry — the pair CI's perf smoke compares.
#include <benchmark/benchmark.h>

#include "prophet/analytic/analytic.hpp"
#include "prophet/analytic/backend.hpp"
#include "prophet/estimator/estimator.hpp"
#include "prophet/obs/obs.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/prophet.hpp"

#include "json_args.hpp"

namespace {

namespace machine = prophet::machine;
namespace obs = prophet::obs;

std::vector<machine::SystemParameters> acceptance_grid() {
  return prophet::pipeline::ScenarioGrid::parse("np=1..8:*2").expand();
}

// --- Raw handle cost ---------------------------------------------------------

void BM_CounterDisabled(benchmark::State& state) {
  obs::Counter counter;  // default-constructed: null cell, the off path
  for (auto _ : state) {
    counter.add(1);
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_CounterDisabled);

void BM_CounterEnabled(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter counter = registry.counter("bench.count");
  for (auto _ : state) {
    counter.add(1);
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_CounterEnabled);

// --- End-to-end estimation, instrumentation off vs on ------------------------

void run_grid(const prophet::estimator::Backend& backend,
              benchmark::State& state, obs::Registry* metrics) {
  const auto model = prophet::models::kernel6_model(64, 16, 1e-8);
  const auto prepared = backend.prepare(model);
  const auto grid = acceptance_grid();
  prophet::estimator::EstimationOptions options;
  options.collect_trace = false;
  options.collect_machine_report = false;
  options.metrics = metrics;
  double checksum = 0;
  for (auto _ : state) {
    for (const auto& params : grid) {
      checksum += prepared->estimate(params, options).predicted_time;
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}

void BM_EstimateGrid_Plain(benchmark::State& state) {
  run_grid(prophet::analytic::AnalyticBackend(), state, nullptr);
}
BENCHMARK(BM_EstimateGrid_Plain);

void BM_EstimateGrid_Metrics(benchmark::State& state) {
  obs::Registry registry;
  run_grid(prophet::analytic::AnalyticBackend(), state, &registry);
}
BENCHMARK(BM_EstimateGrid_Metrics);

}  // namespace

PROPHET_BENCHMARK_MAIN()
