// Fig. 6 — the model traversing procedure.
//
// Measures the Traverser protocol (navigationCommand -> getCurrentElement
// -> visitElement) with both shipped navigators and two handlers, across
// model sizes; reports elements visited per second.
#include <benchmark/benchmark.h>

#include "prophet/prophet.hpp"
#include "prophet/traverse/traverse.hpp"

namespace {

void BM_Traverse_DepthFirst(benchmark::State& state) {
  const prophet::uml::Model model = prophet::models::synthetic_model(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  prophet::traverse::Traverser traverser;
  std::size_t visited = 0;
  for (auto _ : state) {
    prophet::traverse::DepthFirstNavigator navigator;
    prophet::traverse::CountingHandler handler;
    visited = traverser.traverse(model, navigator, handler);
    benchmark::DoNotOptimize(visited);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(visited));
}
BENCHMARK(BM_Traverse_DepthFirst)
    ->Args({4, 8})
    ->Args({16, 16})
    ->Args({64, 32});

void BM_Traverse_BreadthFirst(benchmark::State& state) {
  const prophet::uml::Model model = prophet::models::synthetic_model(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  prophet::traverse::Traverser traverser;
  std::size_t visited = 0;
  for (auto _ : state) {
    prophet::traverse::BreadthFirstNavigator navigator;
    prophet::traverse::CountingHandler handler;
    visited = traverser.traverse(model, navigator, handler);
    benchmark::DoNotOptimize(visited);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(visited));
}
BENCHMARK(BM_Traverse_BreadthFirst)
    ->Args({4, 8})
    ->Args({16, 16})
    ->Args({64, 32});

void BM_Traverse_OutlineHandler(benchmark::State& state) {
  // A handler that builds output (like a code generator would).
  const prophet::uml::Model model = prophet::models::synthetic_model(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  prophet::traverse::Traverser traverser;
  for (auto _ : state) {
    prophet::traverse::DepthFirstNavigator navigator;
    prophet::traverse::OutlineHandler handler;
    traverser.traverse(model, navigator, handler);
    benchmark::DoNotOptimize(handler.text());
  }
}
BENCHMARK(BM_Traverse_OutlineHandler)->Args({16, 16})->Args({64, 32});

}  // namespace

BENCHMARK_MAIN();
