// Codegen backend vs the in-process VM (the simulation backend):
// prepare cost — a cold prepare pays the host toolchain, a cache-hit
// prepare only the dlopen — and steady-state per-scenario estimation
// through prepared handles, the shape the batch pipeline's
// compiled-model cache serves.
//
// BM_CodegenSpeedup reports the measured native-vs-VM ratio as the
// `speedup` counter on the detailed kernel6 loop nest (Fig. 3b) — the
// number CI's Release perf smoke gates at >= 1.5x — and checks the two
// engines stay bit-identical while we are at it.
#include <benchmark/benchmark.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>

#include "prophet/analytic/backend.hpp"
#include "prophet/cgen/backend.hpp"
#include "prophet/estimator/estimator.hpp"
#include "prophet/lower/lower.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/prophet.hpp"

#include "json_args.hpp"

namespace {

namespace analytic = prophet::analytic;
namespace cgen = prophet::cgen;
namespace machine = prophet::machine;

std::vector<machine::SystemParameters> acceptance_grid() {
  return prophet::pipeline::ScenarioGrid::parse("np=1..8:*2").expand();
}

const prophet::estimator::EstimationOptions kLean = [] {
  prophet::estimator::EstimationOptions options;
  options.collect_trace = false;
  options.collect_machine_report = false;
  return options;
}();

prophet::lower::ModelProgramPtr detailed_program() {
  return prophet::lower::lower(
      prophet::models::kernel6_detailed_model(64, 16, 1e-8));
}

// --- Prepare cost ------------------------------------------------------------

// Cold prepare: emission + toolchain + dlopen against an empty cache.
// This is the one-time cost a model pays before the native evaluator
// serves scenarios for free.
void BM_CodegenPrepare_Cold(benchmark::State& state) {
  const auto program = detailed_program();
  const std::string root =
      (std::filesystem::temp_directory_path() / "prophet-bench-cgen-cold")
          .string();
  std::uint64_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cgen::CodegenOptions options;
    options.toolchain.cache_dir = root + "/" + std::to_string(round++);
    const cgen::CodegenBackend backend(options);
    state.ResumeTiming();
    auto prepared = backend.prepare(program);
    benchmark::DoNotOptimize(prepared);
  }
  std::filesystem::remove_all(root);
}
BENCHMARK(BM_CodegenPrepare_Cold)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Cache-hit prepare: the content-addressed cache already holds the
// object, so prepare is emission + hash + dlopen — what every job after
// the first pays across sweeps and processes sharing the cache.
void BM_CodegenPrepare_CacheHit(benchmark::State& state) {
  const auto program = detailed_program();
  cgen::CodegenOptions options;
  options.toolchain.cache_dir =
      (std::filesystem::temp_directory_path() / "prophet-bench-cgen-warm")
          .string();
  const cgen::CodegenBackend backend(options);
  { auto warm = backend.prepare(program); }  // populate the cache
  for (auto _ : state) {
    auto prepared = backend.prepare(program);
    benchmark::DoNotOptimize(prepared);
  }
}
BENCHMARK(BM_CodegenPrepare_CacheHit)->Unit(benchmark::kMillisecond);

// --- Steady-state estimation -------------------------------------------------

// Mirrors BM_EstimateGrid_Sim / BM_EstimateGrid_Analytic in
// bench_analytic_vs_sim.cpp: same model, same grid, prepared handle.
void BM_EstimateGrid_Codegen(benchmark::State& state) {
  const auto grid = acceptance_grid();
  const auto model = prophet::models::kernel6_model(64, 16, 1e-8);
  const auto prepared = cgen::CodegenBackend().prepare(
      prophet::lower::lower(model));
  double last = 0;
  for (auto _ : state) {
    for (const auto& params : grid) {
      const auto report = prepared->estimate(params, kLean);
      last = report.predicted_time;
      benchmark::DoNotOptimize(report);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
  state.counters["predicted_np8_s"] = last;
}
BENCHMARK(BM_EstimateGrid_Codegen)->Unit(benchmark::kMicrosecond);

// --- The headline number -----------------------------------------------------

// One iteration = the acceptance grid through the VM and the generated
// native evaluator from one shared lowering.  `speedup` is (VM time /
// native time) for identical work; `bit_identical` must stay 1 — the
// speedup is worthless if the native walk diverges.
void BM_CodegenSpeedup(benchmark::State& state) {
  using clock = std::chrono::steady_clock;
  const bool detailed = state.range(0) != 0;
  const auto program = detailed
                           ? detailed_program()
                           : prophet::lower::lower(
                                 prophet::models::kernel6_model(64, 16, 1e-8));
  const auto grid = acceptance_grid();
  const auto vm = analytic::SimulationBackend().prepare(program);
  const auto native = cgen::CodegenBackend().prepare(program);
  double vm_seconds = 0;
  double native_seconds = 0;
  bool bit_identical = true;
  for (auto _ : state) {
    for (const auto& params : grid) {
      const auto vm_start = clock::now();
      const auto vm_report = vm->estimate(params, kLean);
      vm_seconds +=
          std::chrono::duration<double>(clock::now() - vm_start).count();

      const auto native_start = clock::now();
      const auto native_report = native->estimate(params, kLean);
      native_seconds +=
          std::chrono::duration<double>(clock::now() - native_start).count();

      bit_identical =
          bit_identical &&
          std::bit_cast<std::uint64_t>(vm_report.predicted_time) ==
              std::bit_cast<std::uint64_t>(native_report.predicted_time);
      benchmark::DoNotOptimize(vm_report);
      benchmark::DoNotOptimize(native_report);
    }
  }
  state.counters["speedup"] =
      native_seconds > 0 ? vm_seconds / native_seconds : 0;
  state.counters["vm_us_per_scenario"] =
      1e6 * vm_seconds /
      static_cast<double>(state.iterations() * grid.size());
  state.counters["codegen_us_per_scenario"] =
      1e6 * native_seconds /
      static_cast<double>(state.iterations() * grid.size());
  state.counters["bit_identical"] = bit_identical ? 1 : 0;
}
BENCHMARK(BM_CodegenSpeedup)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"detailed"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

PROPHET_BENCHMARK_MAIN()
