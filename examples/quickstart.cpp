// Quickstart: the complete Performance Prophet pipeline in ~60 lines.
//
// 1. Specify a performance model with the builder (the Teuta GUI's role).
// 2. Run the Model Checker.
// 3. Transform the UML representation to C++ (the Fig. 5 algorithm).
// 4. Evaluate the model by simulation (the Performance Estimator).
#include <cstdio>

#include "prophet/prophet.hpp"

int main() {
  using namespace prophet;

  // --- 1. Specify the model -----------------------------------------------
  // A two-phase program: Setup, then a Compute block whose cost is a
  // function of the number of processes (np is a system parameter).
  uml::ModelBuilder mb("Quickstart");
  mb.global("WORK", uml::VariableType::Real, "1.0");
  mb.function("FSetup", {}, "0.005");
  mb.function("FCompute", {}, "WORK / np + 0.001");

  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef setup = main.action("Setup").cost("FSetup()");
  uml::NodeRef compute = main.action("Compute").cost("FCompute()");
  uml::NodeRef fin = main.final_node();
  main.sequence({init, setup, compute, fin});

  Prophet prophet(std::move(mb).build());

  // --- 2. Check ------------------------------------------------------------
  const auto diagnostics = prophet.check();
  std::printf("model check: %zu error(s), %zu warning(s)\n",
              diagnostics.error_count(), diagnostics.warning_count());
  if (!diagnostics.ok()) {
    std::printf("%s", diagnostics.to_string().c_str());
    return 1;
  }

  // --- 3. Transform to the machine-efficient C++ representation ----------
  const std::string cpp = prophet.transform();
  std::printf("\n-- generated C++ (%zu bytes) — first lines --\n",
              cpp.size());
  std::size_t shown = 0;
  for (std::size_t i = 0; i < cpp.size() && shown < 12; ++i) {
    std::putchar(cpp[i]);
    if (cpp[i] == '\n') {
      ++shown;
    }
  }

  // --- 4. Estimate across machine sizes -----------------------------------
  std::printf("\n-- predicted execution times --\n");
  std::printf("%10s %14s %10s\n", "processes", "predicted (s)", "speedup");
  double t1 = 0;
  for (int np = 1; np <= 16; np *= 2) {
    machine::SystemParameters params;
    params.processes = np;
    params.nodes = np;  // one process per node
    const auto report = prophet.estimate(params);
    if (np == 1) {
      t1 = report.predicted_time;
    }
    std::printf("%10d %14.6f %10.2f\n", np, report.predicted_time,
                t1 / report.predicted_time);
  }
  return 0;
}
