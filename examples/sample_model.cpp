// The paper's Sec. 4 worked example, end to end (Figures 7 and 8).
//
// Builds the sample model (main diagram A1 -> [GV] -> SA | A2 -> A4 with
// sub-diagram SA = SA1 -> SA2, globals GV/P, a code fragment and cost
// functions), checks it, prints the automatically generated C++
// representation (compare with Fig. 8 of the paper), runs the Performance
// Estimator, and renders the trace-file visualization.
#include <cstdio>

#include "prophet/prophet.hpp"
#include "prophet/traverse/traverse.hpp"
#include "prophet/xmi/xmi.hpp"

int main() {
  using namespace prophet;

  Prophet prophet(models::sample_model());

  // Model outline via the Model Traverser (Fig. 6 protocol).
  std::printf("== model outline (Model Traverser) ==\n");
  traverse::DepthFirstNavigator navigator;
  traverse::OutlineHandler outline;
  traverse::Traverser traverser;
  traverser.traverse(prophet.model(), navigator, outline);
  std::printf("%s\n", outline.text().c_str());

  // Model Checker.
  const auto diagnostics = prophet.check();
  std::printf("== model checker ==\n%zu error(s), %zu warning(s)\n\n",
              diagnostics.error_count(), diagnostics.warning_count());

  // XML representation (the `Models (XML)` store of Fig. 2).
  std::printf("== XMI representation (excerpt) ==\n");
  const std::string xml = xmi::to_xml(prophet.model());
  std::printf("%.600s...\n\n", xml.c_str());

  // The automatic UML -> C++ transformation (Fig. 5 / Fig. 8).
  std::printf("== generated C++ representation (Fig. 8) ==\n");
  std::printf("%s\n", prophet.transform().c_str());

  // Performance Estimator run.
  machine::SystemParameters params;
  params.nodes = 2;
  params.processors_per_node = 2;
  params.processes = 4;
  const auto report = prophet.estimate(params);
  std::printf("== prediction (np=4, 2 nodes x 2 processors) ==\n%s\n",
              report.summary().c_str());

  // Performance visualization from the trace file (TF of Fig. 2).
  std::printf("== trace summary ==\n%s\n", report.trace.summary().c_str());
  std::printf("== gantt ==\n%s", report.trace.gantt().c_str());
  return 0;
}
