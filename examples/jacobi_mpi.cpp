// Message-passing scenario: 1-D Jacobi iteration with halo exchange —
// the kind of MPI program the paper's UML extension targets ("The MPI is
// usually used to express the inter-node parallelism", Sec. 3).
//
// Each process owns G/np rows of a GxG grid.  Per iteration it computes
// its block, exchanges one halo row with each neighbour (guarded <<send>>
// / <<recv>> elements — decision nodes handle the boundary ranks), and
// joins an <<allreduce>> for the convergence test.  The example sweeps
// the process count and prints the predicted speedup curves for a
// communication-bound and a compute-bound grid.
#include <cstdio>
#include <sstream>

#include "prophet/prophet.hpp"

namespace {

std::string num(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

prophet::uml::Model jacobi_model(double grid, double cell_time,
                                 std::int64_t iterations) {
  using namespace prophet::uml;
  ModelBuilder mb("Jacobi1D");
  mb.global("G", VariableType::Real, num(grid));
  mb.global("c", VariableType::Real, num(cell_time));
  // Per-iteration compute: my block of rows.
  mb.function("FCompute", {}, "G * G / np * c");

  DiagramBuilder iter = mb.diagram("iteration");
  {
    NodeRef init = iter.initial();
    NodeRef compute = iter.action("Compute").cost("FCompute()");

    NodeRef d_send_left = iter.decision("HasLeft");
    NodeRef send_left = iter.send("SendLeft", "pid - 1", "G * 8", 1);
    NodeRef m1 = iter.merge();

    NodeRef d_send_right = iter.decision("HasRight");
    NodeRef send_right = iter.send("SendRight", "pid + 1", "G * 8", 2);
    NodeRef m2 = iter.merge();

    NodeRef d_recv_left = iter.decision("RecvFromLeft");
    NodeRef recv_left = iter.recv("RecvLeft", "pid - 1", "G * 8", 2);
    NodeRef m3 = iter.merge();

    NodeRef d_recv_right = iter.decision("RecvFromRight");
    NodeRef recv_right = iter.recv("RecvRight", "pid + 1", "G * 8", 1);
    NodeRef m4 = iter.merge();

    NodeRef residual = iter.allreduce("Residual", "8");
    NodeRef fin = iter.final_node();

    iter.flow(init, compute);
    iter.flow(compute, d_send_left);
    iter.flow(d_send_left, send_left, "pid > 0");
    iter.flow(d_send_left, m1, "else");
    iter.flow(send_left, m1);
    iter.flow(m1, d_send_right);
    iter.flow(d_send_right, send_right, "pid < np - 1");
    iter.flow(d_send_right, m2, "else");
    iter.flow(send_right, m2);
    iter.flow(m2, d_recv_left);
    iter.flow(d_recv_left, recv_left, "pid > 0");
    iter.flow(d_recv_left, m3, "else");
    iter.flow(recv_left, m3);
    iter.flow(m3, d_recv_right);
    iter.flow(d_recv_right, recv_right, "pid < np - 1");
    iter.flow(d_recv_right, m4, "else");
    iter.flow(recv_right, m4);
    iter.flow(m4, residual);
    iter.flow(residual, fin);
  }

  DiagramBuilder main = mb.diagram("main");
  {
    NodeRef init = main.initial();
    NodeRef loop = main.loop("Iterations", iter, std::to_string(iterations));
    NodeRef fin = main.final_node();
    main.sequence({init, loop, fin});
  }
  Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  return model;
}

void sweep(const char* label, double grid) {
  const double cell_time = 5e-9;
  const std::int64_t iterations = 20;
  prophet::Prophet prophet(jacobi_model(grid, cell_time, iterations));
  const auto diagnostics = prophet.check();
  if (!diagnostics.ok()) {
    std::printf("%s", diagnostics.to_string().c_str());
    return;
  }
  std::printf("%s (G=%.0f, %lld iterations)\n", label, grid,
              static_cast<long long>(iterations));
  std::printf("%6s %14s %9s %11s\n", "np", "predicted (s)", "speedup",
              "efficiency");
  double t1 = 0;
  for (int np = 1; np <= 32; np *= 2) {
    prophet::machine::SystemParameters params;
    params.processes = np;
    params.nodes = np;
    const auto report = prophet.estimate(params);
    if (np == 1) {
      t1 = report.predicted_time;
    }
    const double speedup = t1 / report.predicted_time;
    std::printf("%6d %14.6f %9.2f %10.1f%%\n", np, report.predicted_time,
                speedup, 100.0 * speedup / np);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  sweep("communication-bound grid", 256);
  sweep("compute-bound grid", 4096);
  return 0;
}
