// Shared-memory scenario: an OpenMP-style parallel region with a
// workshared loop and a critical section — the intra-node side of the
// paper's UML extension ("OpenMP is used to express the intra-node
// parallelism", Sec. 3).
//
// The model: a parallel region of nt threads; each thread runs its share
// of a workshared loop (<<ompfor>>, static schedule), then updates a
// shared accumulator inside a named critical section (<<ompcritical>>).
// The sweep shows (a) near-linear speedup while compute dominates and
// (b) the serialization knee once the critical section does.
#include <cstdio>
#include <sstream>

#include "prophet/prophet.hpp"

namespace {

std::string num(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

prophet::uml::Model openmp_model(double iterations, double iter_cost,
                                 double critical_cost) {
  using namespace prophet::uml;
  ModelBuilder mb("OpenMPPipeline");
  mb.global("NITER", VariableType::Real, num(iterations));
  mb.global("cIter", VariableType::Real, num(iter_cost));
  mb.global("cCrit", VariableType::Real, num(critical_cost));

  // Critical-section body: one shared-accumulator update.
  DiagramBuilder crit_body = mb.diagram("crit_body");
  {
    NodeRef init = crit_body.initial();
    NodeRef update = crit_body.action("Update").cost("cCrit");
    NodeRef fin = crit_body.final_node();
    crit_body.sequence({init, update, fin});
  }

  // Region body: workshared loop then the critical update.
  DiagramBuilder body = mb.diagram("body");
  {
    NodeRef init = body.initial();
    NodeRef work = body.omp_for("Work", "NITER", "cIter", "static");
    NodeRef crit = body.omp_critical("Accumulate", crit_body, "sum");
    NodeRef fin = body.final_node();
    body.sequence({init, work, crit, fin});
  }

  DiagramBuilder main = mb.diagram("main");
  {
    NodeRef init = main.initial();
    NodeRef region = main.omp_parallel("Region", body, "nt");
    NodeRef fin = main.final_node();
    main.sequence({init, region, fin});
  }
  Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  return model;
}

void sweep(const char* label, double critical_cost) {
  const double iterations = 1e6;
  const double iter_cost = 2e-8;  // 20 ns per loop iteration
  prophet::Prophet prophet(
      openmp_model(iterations, iter_cost, critical_cost));
  const auto diagnostics = prophet.check();
  if (!diagnostics.ok()) {
    std::printf("%s", diagnostics.to_string().c_str());
    return;
  }
  std::printf("%s (critical section: %.0f us)\n", label,
              critical_cost * 1e6);
  std::printf("%8s %14s %9s %11s\n", "threads", "predicted (s)", "speedup",
              "efficiency");
  double t1 = 0;
  for (int nt = 1; nt <= 16; nt *= 2) {
    prophet::machine::SystemParameters params;
    params.threads_per_process = nt;
    params.processors_per_node = nt;  // one core per thread
    const auto report = prophet.estimate(params);
    if (nt == 1) {
      t1 = report.predicted_time;
    }
    const double speedup = t1 / report.predicted_time;
    std::printf("%8d %14.6f %9.2f %10.1f%%\n", nt, report.predicted_time,
                speedup, 100.0 * speedup / nt);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  sweep("cheap critical section", 1e-6);
  sweep("expensive critical section", 5e-3);
  return 0;
}
