// Batch scenario sweep — predicting one program under many system
// configurations at once.
//
// The paper evaluates its transformation by sweeping processor counts and
// problem sizes (Sec. 5); this example does the same through the batch
// pipeline: two models x a np/nodes grid, every job running the full
// parse -> check -> transform -> simulate chain on a worker pool, with
// bit-identical results at any thread count.
#include <cstdio>
#include <thread>

#include "prophet/pipeline/batch.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/prophet.hpp"

int main() {
  prophet::pipeline::BatchOptions options;
  options.threads = static_cast<int>(std::thread::hardware_concurrency());
  prophet::pipeline::BatchRunner runner(options);

  runner.add_model("sample", prophet::models::sample_model());
  runner.add_model("kernel6", prophet::models::kernel6_model(128, 32, 1e-8));

  // 4 process counts x 2 node counts x 2 models = 16 scenarios.
  const auto grid =
      prophet::pipeline::ScenarioGrid::parse("np=1..8:*2 nodes=1,2");
  runner.add_sweep_all(grid);

  const auto report = runner.run();
  std::printf("%s", report.summary().c_str());

  // The scaling picture: how the predicted time of the sample model
  // changes with the process count on a single node.
  std::printf("\nsample model scaling (nodes=1):\n");
  for (const auto& result : report.results) {
    if (result.ok && result.model_name == "sample" &&
        result.params.nodes == 1) {
      std::printf("  np=%d -> %.6f s\n", result.params.processes,
                  result.predicted_time);
    }
  }
  return report.stats().failed == 0 ? 0 : 1;
}
