// Livermore kernel 6 — the paper's Fig. 3 running example, grounded in a
// real measured kernel.
//
// Workflow (Sec. 3 of the paper): profile the code block that dominates
// performance, associate a cost function with its <<action+>> element,
// and predict.  Here we (1) measure the real kernel-6 C++ port,
// (2) calibrate the per-operation time `c`, (3) build both the collapsed
// (Fig. 3c) and detailed (Fig. 3b) UML models, (4) compare predicted
// against measured times across problem sizes.
#include <cstdio>

#include "prophet/kernels/livermore.hpp"
#include "prophet/prophet.hpp"

int main() {
  using namespace prophet;

  // --- Calibrate ------------------------------------------------------------
  const double op_time = kernels::calibrate_kernel6_op_time();
  std::printf("calibrated kernel-6 op time: %.3e s/op\n\n", op_time);

  // --- Predicted vs measured across N ---------------------------------------
  std::printf("%8s %8s %14s %14s %10s\n", "N", "M", "measured (s)",
              "predicted (s)", "ratio");
  for (std::size_t n = 64; n <= 1024; n *= 2) {
    const std::size_t m = 16;
    const auto measured = kernels::kernel6(n, m);

    Prophet prophet(models::kernel6_model(
        static_cast<std::int64_t>(n), static_cast<std::int64_t>(m), op_time));
    const auto report = prophet.estimate({});
    const double ratio =
        measured.seconds > 0 ? report.predicted_time / measured.seconds : 0;
    std::printf("%8zu %8zu %14.6f %14.6f %10.2f\n", n, m, measured.seconds,
                report.predicted_time, ratio);
  }

  // --- Detailed vs collapsed model (why the paper collapses Fig. 3b) -----
  std::printf("\ndetailed vs collapsed model evaluation (N=96, M=4):\n");
  const std::int64_t n = 96;
  const std::int64_t m = 4;
  Prophet collapsed(models::kernel6_model(n, m, op_time));
  Prophet detailed(models::kernel6_detailed_model(n, m, op_time));
  const auto rc = collapsed.estimate({});
  const auto rd = detailed.estimate({});
  std::printf("  collapsed: predicted %.6f s using %llu sim events\n",
              rc.predicted_time,
              static_cast<unsigned long long>(rc.events));
  std::printf("  detailed:  predicted %.6f s using %llu sim events\n",
              rd.predicted_time,
              static_cast<unsigned long long>(rd.events));
  std::printf("  same prediction, %.0fx more evaluation work for the "
              "detailed model\n",
              static_cast<double>(rd.events) /
                  static_cast<double>(rc.events));
  return 0;
}
