// The workload registry end to end: list the built-in library, author a
// new workload with the scope-checked StepBuilder (the ring shift from
// docs/models.md), register it, and sweep built-in + custom models
// together on the batch pipeline with analytic/sim cross-validation.
//
//   ./build/example_workload_registry
#include <cstdio>
#include <string>

#include "prophet/models/registry.hpp"
#include "prophet/pipeline/batch.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/uml/builder.hpp"

namespace models = prophet::models;
namespace pipeline = prophet::pipeline;
namespace uml = prophet::uml;

namespace {

// A ring shift: every rank passes a block of S bytes to (pid+1) mod np,
// `rounds` times, touching every element once per round.
uml::Model ring_model(double bytes, std::int64_t rounds) {
  uml::ModelBuilder mb("Ring");
  mb.global("S", uml::VariableType::Real, std::to_string(bytes));
  mb.global("R", uml::VariableType::Integer, std::to_string(rounds));
  mb.function("FTouch", {}, "(S / 8) * 1e-9");

  uml::StepBuilder main(mb, "main");
  main.begin_loop("Shift", "R", "r")
      .send("Pass", "(pid + 1) % np", "S", /*msg_tag=*/1)
      .recv("Take", "(pid - 1 + np) % np", "S", /*msg_tag=*/1)
      .compute("Touch", "FTouch()")
      .end_loop()
      .done();
  // build() validates: unclosed scopes, duplicate diagram names or
  // one-sided communication would throw uml::BuildError here.
  return std::move(mb).build();
}

}  // namespace

int main() {
  // 1. The built-in library (what `prophetc models` prints).
  const auto& builtin = models::Registry::builtin();
  std::printf("built-in workloads: %s\n\n", builtin.available().c_str());

  // 2. A private registry: the built-ins plus the custom ring workload.
  models::Registry registry;
  for (const auto& entry : builtin.entries()) {
    registry.add(entry);
  }
  models::ModelInfo ring;
  ring.name = "ring";
  ring.description = "ring shift: every rank passes a block around";
  ring.comm_pattern = "unidirectional ring, one message per round";
  ring.scaling = "T ~ rounds * (latency + bytes/bandwidth + touch)";
  ring.knobs = {{"bytes", 65536, "block size in bytes"},
                {"rounds", 8, "times around the ring"}};
  ring.default_grid = "np=1..8 nodes=1,2 ppn=8";
  ring.factory = [](const models::KnobValues& k) {
    return ring_model(k.at("bytes"),
                      static_cast<std::int64_t>(k.at("rounds")));
  };
  registry.add(ring);

  // 3. Sweep a built-in and the custom model together, cross-validating
  // the analytic backend against the simulator per scenario.
  pipeline::BatchOptions options;
  options.backend = prophet::estimator::BackendKind::Both;
  pipeline::BatchRunner runner(options);
  runner.add_model("@stencil2d", builtin.make("@stencil2d(n=64, iters=4)"));
  runner.add_model("@ring(1MiB)", registry.make("@ring(bytes=1048576)"));
  runner.add_sweep_all(pipeline::ScenarioGrid::parse("np=2,4,8 nodes=1,2"));

  const auto report = runner.run();
  std::printf("%s", report.summary().c_str());
  const auto stats = report.stats();
  std::printf("\nworst analytic-vs-sim relative error: %.6f\n",
              stats.max_rel_error);
  return stats.failed == 0 ? 0 : 1;
}
