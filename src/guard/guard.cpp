#include "prophet/guard/guard.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace prophet::guard {

namespace {

/// splitmix64 — the probabilistic fault decision hash.  Deterministic
/// across platforms so a seeded plan fails the same visits everywhere.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_site(std::string_view site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string format_usage(const Usage& usage) {
  char text[160];
  std::snprintf(text, sizeof(text),
                " [sim_events=%llu vm_instructions=%llu replay_events=%llu "
                "loop_trips=%llu elapsed=%.3fs]",
                static_cast<unsigned long long>(usage.sim_events),
                static_cast<unsigned long long>(usage.vm_instructions),
                static_cast<unsigned long long>(usage.replay_events),
                static_cast<unsigned long long>(usage.loop_trips),
                usage.elapsed_seconds);
  return text;
}

}  // namespace

std::string_view to_string(LimitKind kind) {
  switch (kind) {
    case LimitKind::WallClock:
      return "wall_clock";
    case LimitKind::SimEvents:
      return "sim_events";
    case LimitKind::VmInstructions:
      return "vm_instructions";
    case LimitKind::ReplayEvents:
      return "replay_events";
    case LimitKind::LoopTrips:
      return "loop_trips";
  }
  return "unknown";
}

Budget::Budget(const Limits& limits, const Budget* parent)
    : limits_(limits),
      parent_(parent),
      start_(std::chrono::steady_clock::now()),
      until_deadline_check_(kDeadlineStride) {
  if (limits_.wall_seconds > 0) {
    deadline_ = start_ + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(
                                 limits_.wall_seconds));
  }
}

bool Budget::cancel_requested() const noexcept {
  for (const Budget* b = this; b != nullptr; b = b->parent_) {
    if (b->cancelled_.load(std::memory_order_relaxed)) {
      return true;
    }
    if (b->external_cancel_ != nullptr &&
        b->external_cancel_(b->external_cancel_ctx_) != 0) {
      return true;
    }
  }
  return false;
}

std::optional<double> Budget::remaining_wall_seconds() const noexcept {
  std::optional<double> remaining;
  const auto now = std::chrono::steady_clock::now();
  for (const Budget* b = this; b != nullptr; b = b->parent_) {
    if (!b->deadline_) {
      continue;
    }
    const double left =
        std::chrono::duration<double>(*b->deadline_ - now).count();
    const double clamped = left > 0 ? left : 0;
    if (!remaining || clamped < *remaining) {
      remaining = clamped;
    }
  }
  return remaining;
}

bool Budget::exhausted() const noexcept {
  if (cancel_requested()) {
    return true;
  }
  const auto now = std::chrono::steady_clock::now();
  for (const Budget* b = this; b != nullptr; b = b->parent_) {
    if (b->deadline_ && now >= *b->deadline_) {
      return true;
    }
  }
  return false;
}

Usage Budget::usage() const {
  Usage usage;
  usage.sim_events = sim_events_;
  usage.vm_instructions = vm_instructions_;
  usage.replay_events = replay_events_;
  usage.loop_trips = loop_trips_;
  usage.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  return usage;
}

void Budget::cancel_at_sim_event(std::uint64_t event) {
  cancel_at_sim_event_ = event == 0 ? 1 : event;
}

void Budget::trip(LimitKind kind, std::string_view stage) const {
  const Usage at = usage();
  std::string message;
  if (kind == LimitKind::WallClock) {
    char bound[64];
    double seconds = limits_.wall_seconds;
    for (const Budget* b = parent_; seconds <= 0 && b != nullptr;
         b = b->parent_) {
      seconds = b->limits_.wall_seconds;
    }
    std::snprintf(bound, sizeof(bound), "%.3f s", seconds);
    message = "wall_clock limit (" + std::string(bound) + ") exceeded in " +
              std::string(stage) + format_usage(at);
    throw ResourceExhausted(message, kind, std::string(stage), at);
  }
  std::uint64_t bound = 0;
  switch (kind) {
    case LimitKind::SimEvents:
      bound = limits_.max_sim_events;
      break;
    case LimitKind::VmInstructions:
      bound = limits_.max_vm_instructions;
      break;
    case LimitKind::ReplayEvents:
      bound = limits_.max_replay_events;
      break;
    case LimitKind::LoopTrips:
      bound = limits_.max_loop_trips;
      break;
    case LimitKind::WallClock:
      break;  // handled above
  }
  message = std::string(to_string(kind)) + " limit (" +
            std::to_string(bound) + ") exceeded in " + std::string(stage) +
            format_usage(at);
  throw ResourceExhausted(message, kind, std::string(stage), at);
}

void Budget::check(std::uint64_t charged, std::string_view stage) {
  if (cancel_requested()) {
    const Usage at = usage();
    throw Cancelled("cancelled in " + std::string(stage) + format_usage(at),
                    LimitKind::WallClock, std::string(stage), at);
  }
  if (cancel_at_sim_event_ != 0 && sim_events_ >= cancel_at_sim_event_) {
    cancel();
    const Usage at = usage();
    throw Cancelled("cancelled (injected at simulated event " +
                        std::to_string(cancel_at_sim_event_) + ") in " +
                        std::string(stage) + format_usage(at),
                    LimitKind::WallClock, std::string(stage), at);
  }
  // Amortize the clock read: only every kDeadlineStride charge units —
  // but a checkpoint() (charged == 0) always looks at the clock.
  if (charged >= until_deadline_check_ || charged == 0) {
    until_deadline_check_ = kDeadlineStride;
    const bool has_deadline = [this] {
      for (const Budget* b = this; b != nullptr; b = b->parent_) {
        if (b->deadline_) {
          return true;
        }
      }
      return false;
    }();
    if (has_deadline) {
      const auto now = std::chrono::steady_clock::now();
      for (const Budget* b = this; b != nullptr; b = b->parent_) {
        if (b->deadline_ && now >= *b->deadline_) {
          trip(LimitKind::WallClock, stage);
        }
      }
    }
  } else {
    until_deadline_check_ -= charged;
  }
}

void Budget::charge_sim_events(std::uint64_t n, std::string_view stage) {
  sim_events_ += n;
  if (limits_.max_sim_events != 0 && sim_events_ > limits_.max_sim_events) {
    trip(LimitKind::SimEvents, stage);
  }
  check(n, stage);
}

void Budget::charge_vm_instructions(std::uint64_t n, std::string_view stage) {
  vm_instructions_ += n;
  if (limits_.max_vm_instructions != 0 &&
      vm_instructions_ > limits_.max_vm_instructions) {
    trip(LimitKind::VmInstructions, stage);
  }
  check(n, stage);
}

void Budget::charge_replay_events(std::uint64_t n, std::string_view stage) {
  replay_events_ += n;
  if (limits_.max_replay_events != 0 &&
      replay_events_ > limits_.max_replay_events) {
    trip(LimitKind::ReplayEvents, stage);
  }
  check(n, stage);
}

void Budget::charge_loop_trips(std::uint64_t n, std::string_view stage) {
  loop_trips_ += n;
  if (limits_.max_loop_trips != 0 && loop_trips_ > limits_.max_loop_trips) {
    trip(LimitKind::LoopTrips, stage);
  }
  check(n, stage);
}

void Budget::checkpoint(std::string_view stage) { check(0, stage); }

// --- FaultPlan -------------------------------------------------------------

FaultPlan FaultPlan::parse(std::string_view spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed_ = seed;
  std::size_t i = 0;
  const auto is_sep = [](char c) {
    return c == ',' || c == ' ' || c == '\t' || c == '\n';
  };
  while (i < spec.size()) {
    while (i < spec.size() && is_sep(spec[i])) {
      ++i;
    }
    if (i >= spec.size()) {
      break;
    }
    std::size_t end = i;
    while (end < spec.size() && !is_sep(spec[end])) {
      ++end;
    }
    const std::string_view token = spec.substr(i, end - i);
    i = end;

    Rule rule;
    std::string_view site = token;
    if (const auto at = token.find('@'); at != std::string_view::npos) {
      site = token.substr(0, at);
      const std::string count(token.substr(at + 1));
      char* parse_end = nullptr;
      rule.at = std::strtoull(count.c_str(), &parse_end, 10);
      if (count.empty() || *parse_end != '\0' || rule.at == 0) {
        throw std::invalid_argument("fault plan: bad visit count in '" +
                                    std::string(token) +
                                    "' (want site@N with N >= 1)");
      }
    } else if (const auto pct = token.find('%');
               pct != std::string_view::npos) {
      site = token.substr(0, pct);
      const std::string prob(token.substr(pct + 1));
      char* parse_end = nullptr;
      rule.probability = std::strtod(prob.c_str(), &parse_end);
      if (prob.empty() || *parse_end != '\0' || rule.probability < 0 ||
          rule.probability > 1) {
        throw std::invalid_argument("fault plan: bad probability in '" +
                                    std::string(token) +
                                    "' (want site%P with P in [0,1])");
      }
    }
    if (site.empty()) {
      throw std::invalid_argument("fault plan: empty site name in '" +
                                  std::string(token) + "'");
    }
    rule.site = std::string(site);
    plan.rules_.push_back(rule);
  }
  return plan;
}

void FaultPlan::visit(std::string_view site) {
  for (auto& rule : rules_) {
    if (rule.site != site) {
      continue;
    }
    const std::uint64_t visit =
        rule.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    if (rule.probability >= 0) {
      const std::uint64_t h =
          mix64(seed_ ^ hash_site(rule.site) ^ (visit * 0x9e3779b97f4a7c15ULL));
      fire = static_cast<double>(h) / 18446744073709551616.0 <
             rule.probability;
    } else if (rule.at != 0) {
      fire = visit == rule.at;
    } else {
      fire = true;
    }
    if (fire) {
      throw FaultInjected("injected fault at site '" + rule.site +
                              "' (visit " + std::to_string(visit) + ")",
                          rule.site, visit);
    }
  }
}

std::optional<std::uint64_t> FaultPlan::cancel_at_event() const {
  for (const auto& rule : rules_) {
    if (rule.site == "cancel") {
      return rule.at == 0 ? 1 : rule.at;
    }
  }
  return std::nullopt;
}

}  // namespace prophet::guard
