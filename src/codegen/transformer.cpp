#include "prophet/codegen/transformer.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "prophet/expr/analysis.hpp"
#include "prophet/expr/cppgen.hpp"
#include "prophet/expr/parser.hpp"
#include "prophet/uml/sysparams.hpp"

namespace prophet::codegen {
namespace {

using uml::ActivityDiagram;
using uml::ControlFlow;
using uml::Model;
using uml::Node;
using uml::NodeKind;

/// Parses a tag expression; wraps syntax errors in TransformError.
expr::ExprPtr parse_expr(const std::string& text, const std::string& where) {
  try {
    return expr::parse(text);
  } catch (const expr::SyntaxError& error) {
    throw TransformError(where + ": " + error.what());
  }
}

/// Replaces references to the variable `uid` with the element's numeric
/// uid — the generated code passes uids as literals.
expr::ExprPtr substitute_uid(const expr::Expr& expression, int uid) {
  switch (expression.kind()) {
    case expr::ExprKind::Variable: {
      const auto& variable =
          static_cast<const expr::VariableExpr&>(expression);
      if (variable.name() == uml::sysparam::kElementUid) {
        return std::make_unique<expr::NumberExpr>(static_cast<double>(uid));
      }
      return expression.clone();
    }
    case expr::ExprKind::Number:
      return expression.clone();
    case expr::ExprKind::Unary: {
      const auto& unary = static_cast<const expr::UnaryExpr&>(expression);
      return std::make_unique<expr::UnaryExpr>(
          unary.op(), substitute_uid(unary.operand(), uid));
    }
    case expr::ExprKind::Binary: {
      const auto& binary = static_cast<const expr::BinaryExpr&>(expression);
      return std::make_unique<expr::BinaryExpr>(
          binary.op(), substitute_uid(binary.lhs(), uid),
          substitute_uid(binary.rhs(), uid));
    }
    case expr::ExprKind::Call: {
      const auto& call = static_cast<const expr::CallExpr&>(expression);
      std::vector<expr::ExprPtr> args;
      args.reserve(call.args().size());
      for (const auto& arg : call.args()) {
        args.push_back(substitute_uid(*arg, uid));
      }
      return std::make_unique<expr::CallExpr>(call.callee(), std::move(args));
    }
    case expr::ExprKind::Conditional: {
      const auto& cond =
          static_cast<const expr::ConditionalExpr&>(expression);
      return std::make_unique<expr::ConditionalExpr>(
          substitute_uid(cond.cond(), uid),
          substitute_uid(cond.then_branch(), uid),
          substitute_uid(cond.else_branch(), uid));
    }
  }
  return expression.clone();
}

/// Runtime class for a stereotype's declaration (Fig. 5 line 26:
/// "identify the type of element").  Empty for structural stereotypes
/// (activity+, loop+, ompparallel) that map to control flow, not objects.
std::string runtime_class(const Node& node) {
  const std::string& stereotype = node.stereotype();
  if (stereotype == uml::stereo::kActionPlus) {
    return "ActionPlus";
  }
  if (stereotype == uml::stereo::kSend) {
    return "SendElement";
  }
  if (stereotype == uml::stereo::kRecv) {
    return "RecvElement";
  }
  if (stereotype == uml::stereo::kBarrier) {
    return "BarrierElement";
  }
  if (stereotype == uml::stereo::kBroadcast ||
      stereotype == uml::stereo::kReduce ||
      stereotype == uml::stereo::kAllReduce ||
      stereotype == uml::stereo::kScatter ||
      stereotype == uml::stereo::kGather) {
    return "CollectiveElement";
  }
  if (stereotype == uml::stereo::kOmpFor) {
    return "WorkshareElement";
  }
  if (stereotype == uml::stereo::kOmpBarrier) {
    return "OmpBarrierElement";
  }
  if (stereotype == uml::stereo::kOmpCritical) {
    return "CriticalElement";
  }
  return {};
}

std::string collective_kind_cpp(const std::string& stereotype) {
  if (stereotype == uml::stereo::kBroadcast) {
    return "prophet::workload::CollectiveKind::Broadcast";
  }
  if (stereotype == uml::stereo::kReduce) {
    return "prophet::workload::CollectiveKind::Reduce";
  }
  if (stereotype == uml::stereo::kAllReduce) {
    return "prophet::workload::CollectiveKind::AllReduce";
  }
  if (stereotype == uml::stereo::kScatter) {
    return "prophet::workload::CollectiveKind::Scatter";
  }
  return "prophet::workload::CollectiveKind::Gather";
}

std::string variable_cpp_type(uml::VariableType type) {
  return type == uml::VariableType::Integer ? "long" : "double";
}

std::string initializer_cpp(const uml::Variable& variable) {
  if (variable.initializer.empty()) {
    return variable.type == uml::VariableType::Integer ? "0" : "0.0";
  }
  const auto parsed = parse_expr(variable.initializer,
                                 "initializer of variable " + variable.name);
  std::string value = expr::to_cpp(*parsed);
  if (variable.type == uml::VariableType::Integer) {
    return "static_cast<long>(" + value + ")";
  }
  return value;
}

/// Per-transformation context: uid assignment (identical algorithm to the
/// interpreter's, so differential tests see the same uids) and the
/// declared C++ identifier of each element.
struct Context {
  const Model* model = nullptr;
  std::map<std::string, int> uids;           // node id -> numeric uid
  std::map<std::string, std::string> names;  // node id -> C++ identifier

  explicit Context(const Model& m) : model(&m) {
    std::set<int> claimed;
    for (const auto& diagram : m.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        if (auto id = node->tag(uml::tag::kId)) {
          if (const auto* value = std::get_if<std::int64_t>(&*id)) {
            uids[node->id()] = static_cast<int>(*value);
            claimed.insert(static_cast<int>(*value));
          }
        }
      }
    }
    int next = 1;
    std::set<std::string> used_names;
    for (const auto& diagram : m.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        if (uids.find(node->id()) == uids.end()) {
          while (claimed.find(next) != claimed.end()) {
            ++next;
          }
          uids[node->id()] = next;
          claimed.insert(next);
        }
        if (!node->has_stereotype()) {
          continue;
        }
        std::string name = sanitize_identifier(node->name());
        if (!used_names.insert(name).second) {
          // Disambiguate duplicates with the element id (Fig. 4's mapping
          // assumes distinct names; the element-names rule warns).
          name += "_" + node->id();
          used_names.insert(name);
        }
        names[node->id()] = std::move(name);
      }
    }
  }

  [[nodiscard]] int uid(const Node& node) const { return uids.at(node.id()); }
  [[nodiscard]] const std::string& name(const Node& node) const {
    return names.at(node.id());
  }

  /// Tag expression rendered as C++ (with uid substituted).
  [[nodiscard]] std::string tag_cpp(const Node& node,
                                    std::string_view tag) const {
    const std::string text = node.tag_string(tag);
    if (text.empty()) {
      throw TransformError("node " + node.id() + " lacks expression tag '" +
                           std::string(tag) + "'");
    }
    const auto parsed = parse_expr(text, "node " + node.id() + " tag '" +
                                             std::string(tag) + "'");
    return expr::to_cpp(*substitute_uid(*parsed, uid(node)));
  }

  /// Declaration line for a performance element (Fig. 5 lines 24-28).
  [[nodiscard]] std::string declaration(const Node& node) const {
    const std::string type = runtime_class(node);
    if (type.empty()) {
      return {};
    }
    if (type == "CollectiveElement") {
      return type + " " + name(node) + "(ctx, \"" + node.name() + "\", " +
             collective_kind_cpp(node.stereotype()) + ");";
    }
    if (type == "CriticalElement") {
      std::string lock = node.tag_string(uml::tag::kCriticalName);
      if (lock.empty()) {
        lock = "default";
      }
      return type + " " + name(node) + "(ctx, \"" + node.name() + "\", \"" +
             lock + "\");";
    }
    return type + " " + name(node) + "(ctx, \"" + node.name() + "\");";
  }
};

/// Diagrams executed in one context domain: start at `root`, follow
/// composite references (activity+, loop+, ompcritical) but stop at
/// ompparallel bodies — they run with a thread context and form their own
/// domain whose declarations live inside the region lambda.
std::set<std::string> domain_diagrams(const Model& model,
                                      const std::string& root) {
  std::set<std::string> domain;
  std::vector<std::string> frontier{root};
  while (!frontier.empty()) {
    const std::string id = std::move(frontier.back());
    frontier.pop_back();
    if (!domain.insert(id).second) {
      continue;
    }
    const ActivityDiagram* diagram = model.diagram(id);
    if (diagram == nullptr) {
      continue;
    }
    for (const auto& node : diagram->nodes()) {
      const std::string sub = node->subdiagram_id();
      if (sub.empty() || node->stereotype() == uml::stereo::kOmpParallel) {
        continue;
      }
      frontier.push_back(sub);
    }
  }
  return domain;
}

/// The structural successor of a node through its single unguarded edge.
const Node* successor(const ActivityDiagram& diagram, const Node& node) {
  const auto outgoing = diagram.outgoing(node.id());
  if (outgoing.empty()) {
    return nullptr;
  }
  if (outgoing.size() > 1) {
    throw TransformError("node " + node.id() +
                         " has multiple outgoing edges but is neither a "
                         "decision nor a fork");
  }
  const Node* next = diagram.node(outgoing[0]->target());
  if (next == nullptr) {
    throw TransformError("edge " + outgoing[0]->id() + " has dangling target");
  }
  return next;
}

const Node* find_merge(const ActivityDiagram& diagram, const Node& decision,
                       int depth = 0);
const Node* find_join(const ActivityDiagram& diagram, const Node& fork,
                      int depth = 0);

constexpr int kMaxStructureDepth = 256;

[[noreturn]] void fail_cyclic(const ActivityDiagram& diagram) {
  throw TransformError(
      "diagram " + diagram.id() +
      ": cyclic or unboundedly nested control flow; model loops with "
      "<<loop+>> instead of back edges");
}

/// Follows a branch structurally (skipping nested structured regions) and
/// returns the first Merge encountered, or nullptr when the branch
/// terminates at a Final / dead end.
const Node* branch_merge(const ActivityDiagram& diagram, const Node* node,
                         int depth) {
  int guard_budget = 100000;
  while (node != nullptr) {
    if (--guard_budget < 0) {
      fail_cyclic(diagram);
    }
    switch (node->kind()) {
      case NodeKind::Merge:
        return node;
      case NodeKind::Final:
        return nullptr;
      case NodeKind::Decision: {
        const Node* merge = find_merge(diagram, *node, depth + 1);
        if (merge == nullptr) {
          return nullptr;  // all inner branches terminate
        }
        node = successor(diagram, *merge);
        break;
      }
      case NodeKind::Fork: {
        const Node* join = find_join(diagram, *node, depth + 1);
        node = successor(diagram, *join);
        break;
      }
      default:
        node = successor(diagram, *node);
        break;
    }
  }
  return nullptr;
}

const Node* find_merge(const ActivityDiagram& diagram, const Node& decision,
                       int depth) {
  if (depth > kMaxStructureDepth) {
    fail_cyclic(diagram);
  }
  const Node* merge = nullptr;
  bool first = true;
  for (const auto* edge : diagram.outgoing(decision.id())) {
    const Node* target = diagram.node(edge->target());
    if (target == nullptr) {
      throw TransformError("edge " + edge->id() + " has dangling target");
    }
    const Node* branch = branch_merge(diagram, target, depth);
    if (first) {
      merge = branch;
      first = false;
    } else if (branch != nullptr && merge != nullptr && branch != merge) {
      throw TransformError("decision " + decision.id() +
                           ": branches converge on different merge nodes");
    } else if (merge == nullptr) {
      merge = branch;
    }
  }
  return merge;
}

/// Follows a fork branch to the first Join.
const Node* branch_join(const ActivityDiagram& diagram, const Node* node,
                        int depth) {
  int guard_budget = 100000;
  while (node != nullptr) {
    if (--guard_budget < 0) {
      fail_cyclic(diagram);
    }
    switch (node->kind()) {
      case NodeKind::Join:
        return node;
      case NodeKind::Final:
        return nullptr;
      case NodeKind::Decision: {
        const Node* merge = find_merge(diagram, *node, depth + 1);
        if (merge == nullptr) {
          return nullptr;
        }
        node = successor(diagram, *merge);
        break;
      }
      case NodeKind::Fork: {
        const Node* join = find_join(diagram, *node, depth + 1);
        node = successor(diagram, *join);
        break;
      }
      default:
        node = successor(diagram, *node);
        break;
    }
  }
  return nullptr;
}

const Node* find_join(const ActivityDiagram& diagram, const Node& fork,
                      int depth) {
  if (depth > kMaxStructureDepth) {
    fail_cyclic(diagram);
  }
  const Node* join = nullptr;
  bool first = true;
  for (const auto* edge : diagram.outgoing(fork.id())) {
    const Node* target = diagram.node(edge->target());
    if (target == nullptr) {
      throw TransformError("edge " + edge->id() + " has dangling target");
    }
    const Node* branch = branch_join(diagram, target, depth);
    if (branch == nullptr) {
      throw TransformError("fork " + fork.id() +
                           ": a branch does not reach a join");
    }
    if (first) {
      join = branch;
      first = false;
    } else if (branch != join) {
      throw TransformError("fork " + fork.id() +
                           ": branches reach different join nodes");
    }
  }
  if (join == nullptr) {
    throw TransformError("fork " + fork.id() + " has no outgoing edges");
  }
  return join;
}

/// Emits the execution flow of one diagram (Fig. 5 lines 29-35).
class FlowEmitter {
 public:
  FlowEmitter(const Context& ctx, CppEmitter& out) : ctx_(&ctx), out_(&out) {}

  void emit_diagram(const ActivityDiagram& diagram) {
    const Node* initial = diagram.initial();
    if (initial == nullptr) {
      throw TransformError("diagram " + diagram.id() +
                           " has no initial node");
    }
    emit_until(diagram, successor(diagram, *initial), nullptr);
  }

 private:
  /// Emits nodes from `node` until reaching `stop` (exclusive), a Final
  /// node, or a dead end.
  void emit_until(const ActivityDiagram& diagram, const Node* node,
                  const Node* stop) {
    while (node != nullptr && node != stop &&
           node->kind() != NodeKind::Final) {
      node = emit_node(diagram, *node, stop);
    }
  }

  /// Emits one construct; returns the node where emission continues.
  const Node* emit_node(const ActivityDiagram& diagram, const Node& node,
                        const Node* stop) {
    switch (node.kind()) {
      case NodeKind::Initial:
      case NodeKind::Final:
        return nullptr;
      case NodeKind::Merge:
      case NodeKind::Join:
        return successor(diagram, node);
      case NodeKind::Action:
        emit_fragment(node);
        emit_action(node);
        return successor(diagram, node);
      case NodeKind::Activity:
        emit_fragment(node);
        emit_activity(node);
        return successor(diagram, node);
      case NodeKind::Loop:
        emit_fragment(node);
        emit_loop(node);
        return successor(diagram, node);
      case NodeKind::Decision:
        return emit_decision(diagram, node, stop);
      case NodeKind::Fork:
        return emit_fork(diagram, node);
    }
    return nullptr;
  }

  void emit_fragment(const Node& node) {
    if (!node.has_tag(uml::tag::kCode)) {
      return;
    }
    const std::string code = node.tag_string(uml::tag::kCode);
    if (code.empty()) {
      return;
    }
    out_->line("// code associated with " + node.name());
    // Re-emit the fragment's assignments through the expression C++
    // emitter so cost-language operators (e.g. %) keep their semantics.
    std::size_t start = 0;
    while (start < code.size()) {
      auto end = code.find(';', start);
      if (end == std::string::npos) {
        end = code.size();
      }
      std::string statement = code.substr(start, end - start);
      start = end + 1;
      const auto first = statement.find_first_not_of(" \t\r\n");
      if (first == std::string::npos) {
        continue;
      }
      const auto last = statement.find_last_not_of(" \t\r\n");
      statement = statement.substr(first, last - first + 1);
      const auto equals = statement.find('=');
      if (equals == std::string::npos || equals + 1 >= statement.size() ||
          statement[equals + 1] == '=') {
        throw TransformError("code fragment at node " + node.id() +
                             ": statement '" + statement +
                             "' is not an assignment");
      }
      std::string target = statement.substr(0, equals);
      target = target.substr(0, target.find_last_not_of(" \t\r\n") + 1);
      const auto value = parse_expr(statement.substr(equals + 1),
                                    "code fragment at node " + node.id());
      out_->line(target + " = " +
                 expr::to_cpp(*substitute_uid(*value, ctx_->uid(node))) +
                 ";");
    }
  }

  void emit_action(const Node& node) {
    const std::string& name = ctx_->name(node);
    const std::string uid = std::to_string(ctx_->uid(node));
    const std::string& stereotype = node.stereotype();
    if (stereotype == uml::stereo::kActionPlus) {
      std::string cost = "0.0";
      if (node.has_tag(uml::tag::kCost) &&
          !node.tag_string(uml::tag::kCost).empty()) {
        cost = ctx_->tag_cpp(node, uml::tag::kCost);
      } else if (auto time = node.tag_number(uml::tag::kTime)) {
        std::ostringstream formatted;
        formatted.precision(17);
        formatted << *time;
        cost = formatted.str();
      }
      out_->line("co_await " + name + ".execute(" + uid + ", pid, tid, " +
                 cost + ");");
    } else if (stereotype == uml::stereo::kSend) {
      out_->line("co_await " + name + ".execute(" + uid +
                 ", pid, tid, static_cast<int>(" +
                 ctx_->tag_cpp(node, uml::tag::kDest) + "), " +
                 ctx_->tag_cpp(node, uml::tag::kSize) + ", " +
                 std::to_string(static_cast<int>(
                     node.tag_number(uml::tag::kMsgTag).value_or(0))) +
                 ");");
    } else if (stereotype == uml::stereo::kRecv) {
      out_->line("co_await " + name + ".execute(" + uid +
                 ", pid, tid, static_cast<int>(" +
                 ctx_->tag_cpp(node, uml::tag::kSource) + "), " +
                 ctx_->tag_cpp(node, uml::tag::kSize) + ", " +
                 std::to_string(static_cast<int>(
                     node.tag_number(uml::tag::kMsgTag).value_or(0))) +
                 ");");
    } else if (stereotype == uml::stereo::kBarrier ||
               stereotype == uml::stereo::kOmpBarrier) {
      out_->line("co_await " + name + ".execute(" + uid + ", pid, tid);");
    } else if (stereotype == uml::stereo::kBroadcast ||
               stereotype == uml::stereo::kReduce ||
               stereotype == uml::stereo::kAllReduce ||
               stereotype == uml::stereo::kScatter ||
               stereotype == uml::stereo::kGather) {
      const std::string root =
          node.has_tag(uml::tag::kRoot) &&
                  !node.tag_string(uml::tag::kRoot).empty()
              ? "static_cast<int>(" + ctx_->tag_cpp(node, uml::tag::kRoot) +
                    ")"
              : "0";
      out_->line("co_await " + name + ".execute(" + uid + ", pid, tid, " +
                 ctx_->tag_cpp(node, uml::tag::kSize) + ", " + root + ");");
    } else if (stereotype == uml::stereo::kOmpFor) {
      std::string schedule = node.tag_string(uml::tag::kSchedule);
      if (schedule.empty()) {
        schedule = "static";
      }
      out_->line("co_await " + name + ".execute(" + uid + ", pid, tid, " +
                 ctx_->tag_cpp(node, uml::tag::kIterations) + ", " +
                 ctx_->tag_cpp(node, uml::tag::kIterCost) + ", \"" +
                 schedule + "\", " +
                 std::to_string(static_cast<long>(
                     node.tag_number(uml::tag::kChunk).value_or(0))) +
                 ");");
    } else {
      throw TransformError("node " + node.id() +
                           ": unsupported stereotype <<" + stereotype +
                           ">> on an action node");
    }
  }

  void emit_activity(const Node& node) {
    const ActivityDiagram* sub = ctx_->model->diagram(node.subdiagram_id());
    if (sub == nullptr) {
      throw TransformError("node " + node.id() +
                           " references unknown diagram '" +
                           node.subdiagram_id() + "'");
    }
    const std::string& stereotype = node.stereotype();
    if (stereotype == uml::stereo::kOmpParallel) {
      std::string threads = "static_cast<int>(nt)";
      if (node.has_tag(uml::tag::kNumThreads) &&
          !node.tag_string(uml::tag::kNumThreads).empty()) {
        threads = "static_cast<int>(" +
                  ctx_->tag_cpp(node, uml::tag::kNumThreads) + ")";
      }
      out_->open("co_await prophet::workload::parallel_region(ctx, " +
                 threads + ", " + std::to_string(ctx_->uid(node)) + ", \"" +
                 node.name() + "\",");
      out_->open(
          "[&](prophet::workload::ModelContext ctx) -> prophet::sim::Process "
          "{");
      out_->line("const int tid = ctx.tid;  // thread-private id");
      // Elements of the region's domain execute with the thread context,
      // so their declarations live here, not at function scope.
      emit_domain_declarations(*sub);
      emit_diagram(*sub);
      out_->line("co_return;");
      out_->close(");");
      out_->dedent();  // balance the call-expression open()
    } else if (stereotype == uml::stereo::kOmpCritical) {
      out_->open("co_await " + ctx_->name(node) + ".execute(" +
                 std::to_string(ctx_->uid(node)) + ", pid, tid,");
      out_->open("[&]() -> prophet::sim::Process {");
      emit_diagram(*sub);
      out_->line("co_return;");
      out_->close(");");
      out_->dedent();
    } else {
      // <<activity+>>: the content nests within the enclosing flow as a
      // block (Fig. 8b lines 79-82).
      out_->line("{  // activity " + node.name());
      out_->indent();
      emit_diagram(*sub);
      out_->close();
    }
  }

  void emit_domain_declarations(const ActivityDiagram& root) {
    for (const auto& id : domain_diagrams(*ctx_->model, root.id())) {
      const ActivityDiagram* diagram = ctx_->model->diagram(id);
      if (diagram == nullptr) {
        continue;
      }
      for (const auto& node : diagram->nodes()) {
        if (!node->has_stereotype()) {
          continue;
        }
        const std::string declaration = ctx_->declaration(*node);
        if (!declaration.empty()) {
          out_->line(declaration);
        }
      }
    }
  }

  void emit_loop(const Node& node) {
    const ActivityDiagram* sub = ctx_->model->diagram(node.subdiagram_id());
    if (sub == nullptr) {
      throw TransformError("node " + node.id() +
                           " references unknown diagram '" +
                           node.subdiagram_id() + "'");
    }
    std::string var = node.tag_string(uml::tag::kLoopVar);
    if (var.empty()) {
      var = "i";
    }
    out_->open("for (double " + var + " = 0; " + var + " < (" +
               ctx_->tag_cpp(node, uml::tag::kIterations) + "); " + var +
               " += 1) {  // loop " + node.name());
    emit_diagram(*sub);
    out_->close();
  }

  const Node* emit_decision(const ActivityDiagram& diagram, const Node& node,
                            const Node* stop) {
    const Node* merge = find_merge(diagram, node);
    const Node* branch_stop = merge != nullptr ? merge : stop;
    std::vector<const ControlFlow*> guarded;
    const ControlFlow* else_edge = nullptr;
    for (const auto* edge : diagram.outgoing(node.id())) {
      if (edge->is_else()) {
        else_edge = edge;
      } else {
        guarded.push_back(edge);
      }
    }
    if (guarded.empty()) {
      throw TransformError("decision " + node.id() +
                           " has no guarded outgoing edges");
    }
    for (std::size_t i = 0; i < guarded.size(); ++i) {
      const auto guard = parse_expr(guarded[i]->guard(),
                                    "guard of edge " + guarded[i]->id());
      const std::string condition =
          expr::to_cpp(*substitute_uid(*guard, ctx_->uid(node)));
      if (i == 0) {
        out_->open("if (" + condition + ") {");
      } else {
        out_->dedent();
        out_->open("} else if (" + condition + ") {");
      }
      emit_until(diagram, diagram.node(guarded[i]->target()), branch_stop);
    }
    out_->dedent();
    out_->open("} else {");
    if (else_edge != nullptr) {
      emit_until(diagram, diagram.node(else_edge->target()), branch_stop);
    } else {
      // Mirror the interpreter: a decision where no guard holds and no
      // else edge exists is a modeling error at run time.
      out_->line("throw std::runtime_error(\"decision '" + node.name() +
                 "': no guard holds and no else edge\");");
    }
    out_->close();
    return merge != nullptr ? successor(diagram, *merge) : nullptr;
  }

  const Node* emit_fork(const ActivityDiagram& diagram, const Node& node) {
    const Node* join = find_join(diagram, node);
    out_->open("co_await prophet::workload::fork_join(ctx, {");
    const auto outgoing = diagram.outgoing(node.id());
    for (std::size_t i = 0; i < outgoing.size(); ++i) {
      out_->open("[&]() -> prophet::sim::Process {");
      emit_until(diagram, diagram.node(outgoing[i]->target()), join);
      out_->line("co_return;");
      out_->close(i + 1 < outgoing.size() ? "," : "");
    }
    out_->close(");");
    return successor(diagram, *join);
  }

  const Context* ctx_;
  CppEmitter* out_;
};

}  // namespace

void CppEmitter::line(std::string_view text) {
  for (int i = 0; i < depth_ * indent_width_; ++i) {
    text_ += ' ';
  }
  text_ += text;
  text_ += '\n';
}

void CppEmitter::blank() { text_ += '\n'; }

void CppEmitter::open(std::string_view header) {
  line(header);
  ++depth_;
}

void CppEmitter::close(std::string_view suffix) {
  dedent();
  line("}" + std::string(suffix));
}

void CppEmitter::dedent() {
  if (depth_ == 0) {
    throw std::logic_error("CppEmitter: unbalanced dedent");
  }
  --depth_;
}

std::string sanitize_identifier(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front()))) {
    out = "e_" + out;
  }
  return out;
}

Transformer::Transformer(TransformOptions options)
    : options_(std::move(options)) {}

std::vector<const Node*> Transformer::select_performance_elements(
    const Model& model) const {
  // Fig. 5 lines 1-8: FORALL diagrams, FORALL elements, select those whose
  // stereotype marks them as performance modeling elements.
  std::vector<const Node*> elements;
  for (const auto& diagram : model.diagrams()) {
    for (const auto& node : diagram->nodes()) {
      if (node->has_stereotype()) {
        elements.push_back(node.get());
      }
    }
  }
  return elements;
}

std::string Transformer::emit_globals(const Model& model) const {
  CppEmitter out;
  for (const auto* variable : model.globals()) {
    out.line(variable_cpp_type(variable->type) + " " + variable->name +
             " = 0;");
  }
  return out.text();
}

std::string Transformer::emit_cost_functions(const Model& model) const {
  // Dependency-order the functions so callees precede callers (the bodies
  // are plain C++ function definitions, Fig. 8a lines 31-54).
  std::map<std::string, std::set<std::string>> calls;
  for (const auto& fn : model.cost_functions()) {
    const auto body = parse_expr(fn.body, "cost function " + fn.name);
    for (const auto& callee : expr::called_user_functions(*body)) {
      if (model.cost_function(callee) != nullptr) {
        calls[fn.name].insert(callee);
      }
    }
  }
  std::vector<const uml::CostFunction*> ordered;
  std::set<std::string> emitted;
  const auto& functions = model.cost_functions();
  // Stable topological order: repeatedly take the first (model-order)
  // function whose callees are all emitted.
  while (ordered.size() < functions.size()) {
    bool progressed = false;
    for (const auto& fn : functions) {
      if (emitted.find(fn.name) != emitted.end()) {
        continue;
      }
      const auto& callees = calls[fn.name];
      const bool ready = std::all_of(
          callees.begin(), callees.end(), [&](const std::string& callee) {
            return emitted.find(callee) != emitted.end();
          });
      if (ready) {
        ordered.push_back(&fn);
        emitted.insert(fn.name);
        progressed = true;
      }
    }
    if (!progressed) {
      throw TransformError("cyclic cost-function dependencies");
    }
  }
  CppEmitter out;
  for (const auto* fn : ordered) {
    std::string params;
    for (const auto& parameter : fn->parameters) {
      if (!params.empty()) {
        params += ", ";
      }
      params += "double " + parameter;
    }
    const auto body = parse_expr(fn->body, "cost function " + fn->name);
    out.line("double " + fn->name + "(" + params + ") { return " +
             expr::to_cpp(*body) + "; }");
  }
  return out.text();
}

std::string Transformer::emit_locals(const Model& model) const {
  CppEmitter out;
  for (const auto* variable : model.locals()) {
    out.line("[[maybe_unused]] " + variable_cpp_type(variable->type) + " " +
             variable->name + " = " + initializer_cpp(*variable) + ";");
  }
  return out.text();
}

std::string Transformer::emit_declarations(const Model& model) const {
  const Context ctx(model);
  CppEmitter out;
  for (const auto* node : select_performance_elements(model)) {
    const std::string declaration = ctx.declaration(*node);
    if (!declaration.empty()) {
      out.line(declaration);
    }
  }
  return out.text();
}

std::string Transformer::emit_flow(const Model& model) const {
  const Context ctx(model);
  const ActivityDiagram* main = model.main_diagram();
  if (main == nullptr) {
    throw TransformError("model has no resolvable main diagram");
  }
  CppEmitter out;
  FlowEmitter flow(ctx, out);
  flow.emit_diagram(*main);
  return out.text();
}

std::string Transformer::transform(const Model& model) const {
  const Context ctx(model);
  const ActivityDiagram* main = model.main_diagram();
  if (main == nullptr) {
    throw TransformError("model has no resolvable main diagram");
  }

  // Diagrams whose elements are declared at function scope: everything
  // except ompparallel domains (declared inside the region lambdas).
  std::set<std::string> region_domains;
  for (const auto& diagram : model.diagrams()) {
    for (const auto& node : diagram->nodes()) {
      if (node->stereotype() == uml::stereo::kOmpParallel) {
        const auto domain = domain_diagrams(model, node->subdiagram_id());
        region_domains.insert(domain.begin(), domain.end());
      }
    }
  }

  CppEmitter out;
  out.line("// Generated by Performance Prophet — C++ representation of "
           "performance model '" +
           model.name() + "'.");
  out.line("// Regenerate from the UML model; do not edit.");
  out.line("#include <cmath>");
  out.line("#include <stdexcept>");
  out.line("#include <utility>");
  if (options_.emit_main) {
    out.line("#include <cstdio>");
    out.line("#include <cstdlib>");
  }
  out.blank();
  out.line("#include \"prophet/estimator/estimator.hpp\"");
  out.line("#include \"prophet/workload/runtime.hpp\"");
  out.blank();
  out.line("using prophet::workload::ActionPlus;");
  out.line("using prophet::workload::BarrierElement;");
  out.line("using prophet::workload::CollectiveElement;");
  out.line("using prophet::workload::CriticalElement;");
  out.line("using prophet::workload::OmpBarrierElement;");
  out.line("using prophet::workload::RecvElement;");
  out.line("using prophet::workload::SendElement;");
  out.line("using prophet::workload::WorkshareElement;");
  out.blank();
  if (options_.banners) {
    out.line("// -- System parameters (bound per estimation run) --");
  }
  out.line("namespace {");
  out.line("double np = 1;");
  out.line("double nt = 1;");
  out.line("double nn = 1;");
  out.line("double ppn = 1;");
  out.line("}  // namespace");
  out.blank();
  if (options_.banners) {
    out.line("// -- Global variables (Fig. 5 lines 9-12) --");
  }
  out.raw(emit_globals(model));
  out.blank();
  if (options_.banners) {
    out.line("// -- Cost functions (Fig. 5 lines 13-18) --");
  }
  out.raw(emit_cost_functions(model));
  out.blank();
  out.open("void prophet_init_globals() {");
  for (const auto* variable : model.globals()) {
    out.line(variable->name + " = " + initializer_cpp(*variable) + ";");
  }
  out.close();
  out.blank();
  out.open(
      "void prophet_bind_system(const prophet::machine::SystemParameters& "
      "sp) {");
  out.line("np = sp.processes;");
  out.line("nt = sp.threads_per_process;");
  out.line("nn = sp.nodes;");
  out.line("ppn = sp.processors_per_node;");
  out.close();
  out.blank();
  if (options_.banners) {
    out.line("// -- Program (Fig. 5 lines 19-35) --");
  }
  out.open("prophet::sim::Process " + options_.model_function +
           "(prophet::workload::ModelContext ctx) {");
  out.line("[[maybe_unused]] const int pid = ctx.pid;");
  out.line("[[maybe_unused]] const int tid = ctx.tid;");
  if (options_.banners) {
    out.line("// -- Local variables (lines 20-23) --");
  }
  {
    std::istringstream stream(emit_locals(model));
    std::string text_line;
    while (std::getline(stream, text_line)) {
      out.line(text_line);
    }
  }
  if (options_.banners) {
    out.line("// -- Performance modeling elements (lines 24-28) --");
  }
  for (const auto& diagram : model.diagrams()) {
    if (region_domains.find(diagram->id()) != region_domains.end()) {
      continue;  // declared inside the region lambda
    }
    for (const auto& node : diagram->nodes()) {
      if (!node->has_stereotype()) {
        continue;
      }
      const std::string declaration = ctx.declaration(*node);
      if (!declaration.empty()) {
        out.line(declaration);
      }
    }
  }
  if (options_.banners) {
    out.line("// -- Execution flow (lines 29-35) --");
  }
  {
    FlowEmitter flow(ctx, out);
    flow.emit_diagram(*main);
  }
  out.line("co_return;");
  out.close();
  out.blank();
  out.open("prophet::estimator::FunctionModel prophet_program() {");
  out.line("return prophet::estimator::FunctionModel(");
  out.line("    [](const prophet::machine::SystemParameters& sp) {");
  out.line("      prophet_bind_system(sp);");
  out.line("      prophet_init_globals();");
  out.line("    },");
  out.line("    [](prophet::workload::ModelContext ctx) {");
  out.line("      return " + options_.model_function + "(std::move(ctx));");
  out.line("    });");
  out.close();
  if (options_.emit_main) {
    out.blank();
    out.open("int main(int argc, char** argv) {");
    out.line("prophet::machine::SystemParameters sp;");
    out.line("if (argc > 1) sp.processes = std::atoi(argv[1]);");
    out.line("if (argc > 2) sp.nodes = std::atoi(argv[2]);");
    out.line("if (argc > 3) sp.processors_per_node = std::atoi(argv[3]);");
    out.line("if (argc > 4) sp.threads_per_process = std::atoi(argv[4]);");
    out.line("prophet::estimator::SimulationManager manager(sp);");
    out.line("auto program = prophet_program();");
    out.line("const auto report = manager.run(program);");
    out.line("std::printf(\"%s\", report.summary().c_str());");
    out.line("return 0;");
    out.close();
  }
  return out.text();
}

}  // namespace prophet::codegen
