#include "prophet/trace/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace prophet::trace {
namespace {

constexpr std::string_view kHeader = "# prophet-trace 1";

std::vector<std::string_view> split_tabs(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      fields.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

double parse_double(std::string_view text) {
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0') {
    throw std::runtime_error("trace: bad number '" + copy + "'");
  }
  return value;
}

int parse_int(std::string_view text) {
  return static_cast<int>(parse_double(text));
}

// Element names are free text (model authors pick them) but the trace
// format is line- and tab-structured, so the element field — the only
// free-text one — travels backslash-escaped.
std::string escape_element(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape_element(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\' && i + 1 < text.size()) {
      switch (text[++i]) {
        case 't':
          out += '\t';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case '\\':
          out += '\\';
          break;
        default:
          // Unknown escape: keep the character (tolerates pre-escaping
          // files, which never wrote backslash pairs on purpose).
          out += text[i];
      }
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::Compute:
      return "compute";
    case EventKind::Send:
      return "send";
    case EventKind::Receive:
      return "recv";
    case EventKind::Collective:
      return "collective";
    case EventKind::Barrier:
      return "barrier";
    case EventKind::Region:
      return "region";
  }
  return "unknown";
}

std::optional<EventKind> event_kind_from_string(std::string_view text) {
  static constexpr std::pair<std::string_view, EventKind> kMap[] = {
      {"compute", EventKind::Compute},       {"send", EventKind::Send},
      {"recv", EventKind::Receive},          {"collective", EventKind::Collective},
      {"barrier", EventKind::Barrier},       {"region", EventKind::Region},
  };
  for (const auto& [name, kind] : kMap) {
    if (name == text) {
      return kind;
    }
  }
  return std::nullopt;
}

void Trace::add(TraceEvent event) { events_.push_back(std::move(event)); }

double Trace::makespan() const {
  double makespan = 0;
  for (const auto& event : events_) {
    makespan = std::max(makespan, event.end);
  }
  return makespan;
}

std::map<std::string, ElementStats> Trace::by_element() const {
  std::map<std::string, ElementStats> stats;
  for (const auto& event : events_) {
    if (event.kind == EventKind::Region) {
      continue;  // container spans would double-count their content
    }
    auto& entry = stats[event.element];
    const double duration = event.duration();
    if (entry.count == 0) {
      entry.min = duration;
      entry.max = duration;
    } else {
      entry.min = std::min(entry.min, duration);
      entry.max = std::max(entry.max, duration);
    }
    ++entry.count;
    entry.total += duration;
  }
  return stats;
}

std::map<int, double> Trace::per_process_finish() const {
  std::map<int, double> finish;
  for (const auto& event : events_) {
    auto& value = finish[event.pid];
    value = std::max(value, event.end);
  }
  return finish;
}

std::map<int, double> Trace::per_process_busy() const {
  std::map<int, double> busy;
  for (const auto& event : events_) {
    if (event.kind == EventKind::Compute) {
      busy[event.pid] += event.duration();
    }
  }
  return busy;
}

std::string Trace::summary() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(6);
  out << "events:   " << events_.size() << '\n';
  out << "makespan: " << makespan() << " s\n";
  out << "-- elements (by total time) --\n";
  const auto stats = by_element();
  std::vector<std::pair<std::string, ElementStats>> rows(stats.begin(),
                                                         stats.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total > b.second.total;
  });
  for (const auto& [name, element] : rows) {
    out << "  " << name << ": count " << element.count << ", total "
        << element.total << " s, mean " << element.mean() << " s\n";
  }
  out << "-- processes --\n";
  const auto finish = per_process_finish();
  const auto busy = per_process_busy();
  for (const auto& [pid, end] : finish) {
    const auto busy_it = busy.find(pid);
    const double busy_time = busy_it == busy.end() ? 0.0 : busy_it->second;
    out << "  p" << pid << ": finish " << end << " s, busy " << busy_time
        << " s\n";
  }
  return out.str();
}

std::string Trace::gantt(std::size_t width) const {
  const double total = makespan();
  if (events_.empty()) {
    return "(empty trace)\n";
  }
  // A populated trace whose events all sit at time zero (instantaneous
  // barriers, zero-cost compute) still renders: every event lands in the
  // first column instead of dividing by a zero makespan.
  const double scale = total > 0 ? total : 1.0;
  // Lanes keyed by (pid, tid).
  std::map<std::pair<int, int>, std::string> lanes;
  for (const auto& event : events_) {
    lanes.try_emplace({event.pid, event.tid},
                      std::string(width, '.'));
  }
  auto glyph = [](EventKind kind) {
    switch (kind) {
      case EventKind::Compute:
        return '#';
      case EventKind::Send:
        return '>';
      case EventKind::Receive:
        return '<';
      case EventKind::Collective:
        return '*';
      case EventKind::Barrier:
        return '|';
      case EventKind::Region:
        return '.';
    }
    return '?';
  };
  for (const auto& event : events_) {
    if (event.kind == EventKind::Region) {
      continue;
    }
    auto& lane = lanes[{event.pid, event.tid}];
    auto clamp = [&](double t) {
      return std::min<std::size_t>(
          width - 1,
          static_cast<std::size_t>(t / scale * static_cast<double>(width)));
    };
    const std::size_t from = clamp(event.start);
    const std::size_t to = std::max(from, clamp(event.end));
    for (std::size_t i = from; i <= to; ++i) {
      lane[i] = glyph(event.kind);
    }
  }
  std::ostringstream out;
  out << "time 0 .. " << total << " s   (#=compute >=send <=recv "
      << "*=collective |=barrier)\n";
  for (const auto& [key, lane] : lanes) {
    out << 'p' << key.first << '.' << 't' << key.second << " [" << lane
        << "]\n";
  }
  return out.str();
}

std::string Trace::to_csv() const {
  std::ostringstream out;
  out << "start,end,pid,tid,uid,element,kind\n";
  out.precision(12);
  for (const auto& event : events_) {
    out << event.start << ',' << event.end << ',' << event.pid << ','
        << event.tid << ',' << event.uid << ',' << event.element << ','
        << to_string(event.kind) << '\n';
  }
  return out.str();
}

std::string Trace::serialize() const {
  std::ostringstream out;
  out << kHeader << '\n';
  out.precision(17);
  for (const auto& event : events_) {
    out << event.start << '\t' << event.end << '\t' << event.pid << '\t'
        << event.tid << '\t' << event.uid << '\t' << to_string(event.kind)
        << '\t' << escape_element(event.element) << '\n';
  }
  return out.str();
}

Trace Trace::deserialize(std::string_view text) {
  Trace trace;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    auto eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      eol = text.size();
    }
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      continue;
    }
    if (first) {
      if (line != kHeader) {
        throw std::runtime_error("trace: missing header line");
      }
      first = false;
      continue;
    }
    const auto fields = split_tabs(line);
    if (fields.size() != 7) {
      throw std::runtime_error("trace: malformed record '" +
                               std::string(line) + "'");
    }
    TraceEvent event;
    event.start = parse_double(fields[0]);
    event.end = parse_double(fields[1]);
    event.pid = parse_int(fields[2]);
    event.tid = parse_int(fields[3]);
    event.uid = parse_int(fields[4]);
    const auto kind = event_kind_from_string(fields[5]);
    if (!kind) {
      throw std::runtime_error("trace: unknown event kind '" +
                               std::string(fields[5]) + "'");
    }
    event.kind = *kind;
    event.element = unescape_element(fields[6]);
    trace.add(std::move(event));
  }
  return trace;
}

void Trace::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("trace: cannot open " + path);
  }
  out << serialize();
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("trace: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize(buffer.str());
}

}  // namespace prophet::trace
