#include "prophet/traverse/handlers.hpp"

#include <sstream>

namespace prophet::traverse {
namespace {

void write_tags(xml::Element& parent, const uml::Element& element) {
  for (const auto& tagged : element.tags()) {
    auto& tag = parent.add_element("tag");
    tag.set_attr("name", tagged.name);
    tag.set_attr("type", uml::to_string(uml::type_of(tagged.value)));
    const std::string text = uml::to_string(tagged.value);
    if (text.find_first_of("<>&\n") != std::string::npos) {
      tag.add_cdata(text);
    } else if (!text.empty()) {
      tag.add_text(text);
    }
  }
}

}  // namespace

XmlContentHandler::XmlContentHandler()
    : document_(xml::Document::with_root("prophet:model")) {}

void XmlContentHandler::visit(const Entity& entity) {
  switch (entity.kind) {
    case EntityKind::Model:
      if (entity.phase == Phase::Enter) {
        auto& root = document_.root();
        root.set_attr("name", entity.model->name());
        root.set_attr("main", entity.model->main_diagram_id());
        root.set_attr("schema", "1");
        // Profile is structural configuration, not tree content the
        // navigator yields; copy it directly.
        auto& profile = root.add_element("profile");
        profile.set_attr("name", entity.model->profile().name());
        for (const auto& stereotype :
             entity.model->profile().stereotypes()) {
          auto& st = profile.add_element("stereotype");
          st.set_attr("name", stereotype.name());
          st.set_attr("base", uml::to_string(stereotype.base()));
          for (const auto& tag : stereotype.tags()) {
            auto& td = st.add_element("tagdef");
            td.set_attr("name", tag.name);
            td.set_attr("type", uml::to_string(tag.type));
            if (tag.required) {
              td.set_attr("required", "true");
            }
          }
        }
        variables_ = &root.add_element("variables");
        functions_ = &root.add_element("functions");
        diagrams_ = &root.add_element("diagrams");
      }
      break;
    case EntityKind::Variable: {
      auto& node = variables_->add_element("variable");
      node.set_attr("name", entity.variable->name);
      node.set_attr("type", uml::to_string(entity.variable->type));
      node.set_attr("scope", uml::to_string(entity.variable->scope));
      if (!entity.variable->initializer.empty()) {
        node.set_attr("init", entity.variable->initializer);
      }
      break;
    }
    case EntityKind::CostFunction: {
      auto& node = functions_->add_element("function");
      node.set_attr("name", entity.cost_function->name);
      std::string params;
      for (const auto& parameter : entity.cost_function->parameters) {
        if (!params.empty()) {
          params += ',';
        }
        params += parameter;
      }
      node.set_attr("params", params);
      node.add_cdata(entity.cost_function->body);
      break;
    }
    case EntityKind::Diagram:
      if (entity.phase == Phase::Enter) {
        current_diagram_ = &diagrams_->add_element("diagram");
        current_diagram_->set_attr("id", entity.diagram->id());
        current_diagram_->set_attr("name", entity.diagram->name());
      } else {
        current_diagram_ = nullptr;
      }
      break;
    case EntityKind::Node: {
      auto& node = current_diagram_->add_element("node");
      node.set_attr("id", entity.node->id());
      node.set_attr("kind", uml::to_string(entity.node->kind()));
      node.set_attr("name", entity.node->name());
      if (entity.node->has_stereotype()) {
        node.set_attr("stereotype", entity.node->stereotype());
      }
      write_tags(node, *entity.node);
      break;
    }
    case EntityKind::Edge: {
      auto& edge = current_diagram_->add_element("edge");
      edge.set_attr("id", entity.edge->id());
      edge.set_attr("source", entity.edge->source());
      edge.set_attr("target", entity.edge->target());
      if (entity.edge->has_guard()) {
        edge.set_attr("guard", entity.edge->guard());
      }
      write_tags(edge, *entity.edge);
      break;
    }
  }
}

void StatisticsHandler::visit(const Entity& entity) {
  switch (entity.kind) {
    case EntityKind::Model:
      break;
    case EntityKind::Variable:
    case EntityKind::CostFunction:
      break;
    case EntityKind::Diagram:
      if (entity.phase == Phase::Enter) {
        ++diagrams_;
      }
      break;
    case EntityKind::Node:
      ++nodes_;
      tagged_values_ += entity.node->tags().size();
      by_node_kind_[std::string(uml::to_string(entity.node->kind()))] += 1;
      if (entity.node->has_stereotype()) {
        by_stereotype_[entity.node->stereotype()] += 1;
      }
      break;
    case EntityKind::Edge:
      ++edges_;
      tagged_values_ += entity.edge->tags().size();
      if (entity.edge->has_guard()) {
        ++guarded_edges_;
      }
      break;
  }
}

std::string StatisticsHandler::report() const {
  std::ostringstream out;
  out << "diagrams:      " << diagrams_ << '\n';
  out << "nodes:         " << nodes_ << '\n';
  out << "edges:         " << edges_ << " (" << guarded_edges_
      << " guarded)\n";
  out << "tagged values: " << tagged_values_ << '\n';
  out << "by stereotype:\n";
  for (const auto& [name, count] : by_stereotype_) {
    out << "  <<" << name << ">>: " << count << '\n';
  }
  out << "by node kind:\n";
  for (const auto& [name, count] : by_node_kind_) {
    out << "  " << name << ": " << count << '\n';
  }
  return out.str();
}

}  // namespace prophet::traverse
