#include "prophet/traverse/traverse.hpp"

namespace prophet::traverse {
namespace {

Entity model_entity(const uml::Model& model, Phase phase) {
  Entity entity;
  entity.kind = EntityKind::Model;
  entity.phase = phase;
  entity.model = &model;
  return entity;
}

Entity diagram_entity(const uml::Model& model,
                      const uml::ActivityDiagram& diagram, Phase phase) {
  Entity entity;
  entity.kind = EntityKind::Diagram;
  entity.phase = phase;
  entity.model = &model;
  entity.diagram = &diagram;
  return entity;
}

Entity node_entity(const uml::Model& model,
                   const uml::ActivityDiagram& diagram,
                   const uml::Node& node) {
  Entity entity;
  entity.kind = EntityKind::Node;
  entity.phase = Phase::Visit;
  entity.model = &model;
  entity.diagram = &diagram;
  entity.node = &node;
  return entity;
}

Entity edge_entity(const uml::Model& model,
                   const uml::ActivityDiagram& diagram,
                   const uml::ControlFlow& edge) {
  Entity entity;
  entity.kind = EntityKind::Edge;
  entity.phase = Phase::Visit;
  entity.model = &model;
  entity.diagram = &diagram;
  entity.edge = &edge;
  return entity;
}

Entity variable_entity(const uml::Model& model,
                       const uml::Variable& variable) {
  Entity entity;
  entity.kind = EntityKind::Variable;
  entity.phase = Phase::Visit;
  entity.model = &model;
  entity.variable = &variable;
  return entity;
}

Entity function_entity(const uml::Model& model,
                       const uml::CostFunction& fn) {
  Entity entity;
  entity.kind = EntityKind::CostFunction;
  entity.phase = Phase::Visit;
  entity.model = &model;
  entity.cost_function = &fn;
  return entity;
}

}  // namespace

std::string_view to_string(EntityKind kind) {
  switch (kind) {
    case EntityKind::Model:
      return "model";
    case EntityKind::Variable:
      return "variable";
    case EntityKind::CostFunction:
      return "function";
    case EntityKind::Diagram:
      return "diagram";
    case EntityKind::Node:
      return "node";
    case EntityKind::Edge:
      return "edge";
  }
  return "unknown";
}

std::string_view to_string(Phase phase) {
  switch (phase) {
    case Phase::Enter:
      return "enter";
    case Phase::Leave:
      return "leave";
    case Phase::Visit:
      return "visit";
  }
  return "unknown";
}

std::string Entity::label() const {
  switch (kind) {
    case EntityKind::Model:
      return model != nullptr ? model->name() : "";
    case EntityKind::Variable:
      return variable != nullptr ? variable->name : "";
    case EntityKind::CostFunction:
      return cost_function != nullptr ? cost_function->name : "";
    case EntityKind::Diagram:
      return diagram != nullptr ? diagram->id() : "";
    case EntityKind::Node:
      return node != nullptr ? node->id() : "";
    case EntityKind::Edge:
      return edge != nullptr ? edge->id() : "";
  }
  return "";
}

std::size_t Traverser::traverse(const uml::Model& model, Navigator& navigator,
                                ContentHandler& handler) {
  navigator.start(model);
  std::size_t visited = 0;
  // The Fig. 6 protocol, one element per iteration:
  //   1: navigationCommand()        -> navigator.advance()
  //   2: ce := getCurrentElement()  -> navigator.current()
  //   3: visitElement(ce)           -> handler.visit(ce)
  while (navigator.advance()) {
    const Entity& ce = navigator.current();
    handler.visit(ce);
    ++visited;
  }
  return visited;
}

void DepthFirstNavigator::start(const uml::Model& model) {
  sequence_.clear();
  position_ = 0;
  started_ = false;
  sequence_.push_back(model_entity(model, Phase::Enter));
  for (const auto& variable : model.variables()) {
    sequence_.push_back(variable_entity(model, variable));
  }
  for (const auto& fn : model.cost_functions()) {
    sequence_.push_back(function_entity(model, fn));
  }
  for (const auto& diagram : model.diagrams()) {
    sequence_.push_back(diagram_entity(model, *diagram, Phase::Enter));
    for (const auto& node : diagram->nodes()) {
      sequence_.push_back(node_entity(model, *diagram, *node));
    }
    for (const auto& edge : diagram->edges()) {
      sequence_.push_back(edge_entity(model, *diagram, *edge));
    }
    sequence_.push_back(diagram_entity(model, *diagram, Phase::Leave));
  }
  sequence_.push_back(model_entity(model, Phase::Leave));
}

bool DepthFirstNavigator::advance() {
  if (!started_) {
    started_ = true;
    return !sequence_.empty();
  }
  if (position_ + 1 >= sequence_.size()) {
    return false;
  }
  ++position_;
  return true;
}

const Entity& DepthFirstNavigator::current() const {
  return sequence_[position_];
}

void BreadthFirstNavigator::start(const uml::Model& model) {
  sequence_.clear();
  position_ = 0;
  started_ = false;
  sequence_.push_back(model_entity(model, Phase::Enter));
  for (const auto& variable : model.variables()) {
    sequence_.push_back(variable_entity(model, variable));
  }
  for (const auto& fn : model.cost_functions()) {
    sequence_.push_back(function_entity(model, fn));
  }
  for (const auto& diagram : model.diagrams()) {
    sequence_.push_back(diagram_entity(model, *diagram, Phase::Enter));
  }
  for (const auto& diagram : model.diagrams()) {
    for (const auto& node : diagram->nodes()) {
      sequence_.push_back(node_entity(model, *diagram, *node));
    }
  }
  for (const auto& diagram : model.diagrams()) {
    for (const auto& edge : diagram->edges()) {
      sequence_.push_back(edge_entity(model, *diagram, *edge));
    }
  }
  for (const auto& diagram : model.diagrams()) {
    sequence_.push_back(diagram_entity(model, *diagram, Phase::Leave));
  }
  sequence_.push_back(model_entity(model, Phase::Leave));
}

bool BreadthFirstNavigator::advance() {
  if (!started_) {
    started_ = true;
    return !sequence_.empty();
  }
  if (position_ + 1 >= sequence_.size()) {
    return false;
  }
  ++position_;
  return true;
}

const Entity& BreadthFirstNavigator::current() const {
  return sequence_[position_];
}

void RecordingHandler::visit(const Entity& entity) {
  log_.push_back(std::string(to_string(entity.phase)) + " " +
                 std::string(to_string(entity.kind)) + " " + entity.label());
}

void CountingHandler::visit(const Entity& entity) {
  counts_[static_cast<int>(entity.kind)] += 1;
  ++total_;
}

std::size_t CountingHandler::count(EntityKind kind) const {
  return counts_[static_cast<int>(kind)];
}

void OutlineHandler::visit(const Entity& entity) {
  if (entity.phase == Phase::Leave) {
    --depth_;
    return;
  }
  for (int i = 0; i < depth_; ++i) {
    text_ += "  ";
  }
  text_ += to_string(entity.kind);
  text_ += ' ';
  text_ += entity.label();
  if (entity.kind == EntityKind::Node && entity.node != nullptr) {
    text_ += " (";
    text_ += to_string(entity.node->kind());
    if (entity.node->has_stereotype()) {
      text_ += " <<" + entity.node->stereotype() + ">>";
    }
    text_ += ')';
    if (!entity.node->name().empty()) {
      text_ += " \"" + entity.node->name() + "\"";
    }
  }
  text_ += '\n';
  if (entity.phase == Phase::Enter) {
    ++depth_;
  }
}

}  // namespace prophet::traverse
