#include "prophet/uml/builder.hpp"

namespace prophet::uml {

NodeRef& NodeRef::cost(std::string expr) {
  node_->set_tag(tag::kCost, TagValue(std::move(expr)));
  return *this;
}

NodeRef& NodeRef::code(std::string fragment) {
  node_->set_tag(tag::kCode, TagValue(std::move(fragment)));
  return *this;
}

NodeRef& NodeRef::type(std::string value) {
  node_->set_tag(tag::kType, TagValue(std::move(value)));
  return *this;
}

NodeRef& NodeRef::time(double seconds) {
  node_->set_tag(tag::kTime, TagValue(seconds));
  return *this;
}

NodeRef& NodeRef::tag(std::string_view name, TagValue value) {
  node_->set_tag(name, std::move(value));
  return *this;
}

NodeRef DiagramBuilder::add_node(NodeKind kind, std::string name,
                                 std::string_view stereotype) {
  auto node = std::make_unique<Node>(owner_->next_id("n"), std::move(name),
                                     kind);
  if (!stereotype.empty()) {
    node->set_stereotype(std::string(stereotype));
  }
  return NodeRef(&diagram_->add_node(std::move(node)));
}

NodeRef DiagramBuilder::initial() {
  return add_node(NodeKind::Initial, "Initial");
}

NodeRef DiagramBuilder::final_node() {
  return add_node(NodeKind::Final, "Final");
}

NodeRef DiagramBuilder::decision(std::string name) {
  return add_node(NodeKind::Decision,
                  name.empty() ? "Decision" : std::move(name));
}

NodeRef DiagramBuilder::merge(std::string name) {
  return add_node(NodeKind::Merge, name.empty() ? "Merge" : std::move(name));
}

NodeRef DiagramBuilder::fork(std::string name) {
  return add_node(NodeKind::Fork, name.empty() ? "Fork" : std::move(name));
}

NodeRef DiagramBuilder::join(std::string name) {
  return add_node(NodeKind::Join, name.empty() ? "Join" : std::move(name));
}

NodeRef DiagramBuilder::action(std::string name) {
  return add_node(NodeKind::Action, std::move(name), stereo::kActionPlus);
}

NodeRef DiagramBuilder::activity(std::string name,
                                 const DiagramBuilder& subdiagram) {
  return activity(std::move(name), subdiagram.id());
}

NodeRef DiagramBuilder::activity(std::string name,
                                 std::string subdiagram_id) {
  NodeRef ref =
      add_node(NodeKind::Activity, std::move(name), stereo::kActivityPlus);
  ref.tag(tag::kDiagram, TagValue(std::move(subdiagram_id)));
  return ref;
}

NodeRef DiagramBuilder::loop(std::string name, const DiagramBuilder& body,
                             std::string iterations, std::string var) {
  return loop(std::move(name), body.id(), std::move(iterations),
              std::move(var));
}

NodeRef DiagramBuilder::loop(std::string name, std::string body_diagram_id,
                             std::string iterations, std::string var) {
  NodeRef ref = add_node(NodeKind::Loop, std::move(name), stereo::kLoopPlus);
  ref.tag(tag::kDiagram, TagValue(std::move(body_diagram_id)));
  ref.tag(tag::kIterations, TagValue(std::move(iterations)));
  ref.tag(tag::kLoopVar, TagValue(std::move(var)));
  return ref;
}

NodeRef DiagramBuilder::send(std::string name, std::string dest_expr,
                             std::string size_expr, std::int64_t msg_tag) {
  NodeRef ref = add_node(NodeKind::Action, std::move(name), stereo::kSend);
  ref.tag(tag::kDest, TagValue(std::move(dest_expr)));
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  ref.tag(tag::kMsgTag, TagValue(msg_tag));
  return ref;
}

NodeRef DiagramBuilder::recv(std::string name, std::string source_expr,
                             std::string size_expr, std::int64_t msg_tag) {
  NodeRef ref = add_node(NodeKind::Action, std::move(name), stereo::kRecv);
  ref.tag(tag::kSource, TagValue(std::move(source_expr)));
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  ref.tag(tag::kMsgTag, TagValue(msg_tag));
  return ref;
}

NodeRef DiagramBuilder::barrier(std::string name) {
  return add_node(NodeKind::Action, std::move(name), stereo::kBarrier);
}

NodeRef DiagramBuilder::broadcast(std::string name, std::string root_expr,
                                  std::string size_expr) {
  NodeRef ref =
      add_node(NodeKind::Action, std::move(name), stereo::kBroadcast);
  ref.tag(tag::kRoot, TagValue(std::move(root_expr)));
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  return ref;
}

NodeRef DiagramBuilder::reduce(std::string name, std::string root_expr,
                               std::string size_expr, std::string op) {
  NodeRef ref = add_node(NodeKind::Action, std::move(name), stereo::kReduce);
  ref.tag(tag::kRoot, TagValue(std::move(root_expr)));
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  ref.tag(tag::kOp, TagValue(std::move(op)));
  return ref;
}

NodeRef DiagramBuilder::allreduce(std::string name, std::string size_expr,
                                  std::string op) {
  NodeRef ref =
      add_node(NodeKind::Action, std::move(name), stereo::kAllReduce);
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  ref.tag(tag::kOp, TagValue(std::move(op)));
  return ref;
}

NodeRef DiagramBuilder::scatter(std::string name, std::string root_expr,
                                std::string size_expr) {
  NodeRef ref = add_node(NodeKind::Action, std::move(name), stereo::kScatter);
  ref.tag(tag::kRoot, TagValue(std::move(root_expr)));
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  return ref;
}

NodeRef DiagramBuilder::gather(std::string name, std::string root_expr,
                               std::string size_expr) {
  NodeRef ref = add_node(NodeKind::Action, std::move(name), stereo::kGather);
  ref.tag(tag::kRoot, TagValue(std::move(root_expr)));
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  return ref;
}

NodeRef DiagramBuilder::omp_parallel(std::string name,
                                     const DiagramBuilder& body,
                                     std::string num_threads_expr) {
  NodeRef ref =
      add_node(NodeKind::Activity, std::move(name), stereo::kOmpParallel);
  ref.tag(tag::kDiagram, TagValue(body.id()));
  ref.tag(tag::kNumThreads, TagValue(std::move(num_threads_expr)));
  return ref;
}

NodeRef DiagramBuilder::omp_for(std::string name, std::string iterations,
                                std::string itercost, std::string schedule,
                                std::int64_t chunk) {
  NodeRef ref = add_node(NodeKind::Action, std::move(name), stereo::kOmpFor);
  ref.tag(tag::kIterations, TagValue(std::move(iterations)));
  ref.tag(tag::kIterCost, TagValue(std::move(itercost)));
  ref.tag(tag::kSchedule, TagValue(std::move(schedule)));
  ref.tag(tag::kChunk, TagValue(chunk));
  return ref;
}

NodeRef DiagramBuilder::omp_critical(std::string name,
                                     const DiagramBuilder& body,
                                     std::string critical_name) {
  NodeRef ref =
      add_node(NodeKind::Activity, std::move(name), stereo::kOmpCritical);
  ref.tag(tag::kDiagram, TagValue(body.id()));
  ref.tag(tag::kCriticalName, TagValue(std::move(critical_name)));
  return ref;
}

NodeRef DiagramBuilder::omp_barrier(std::string name) {
  return add_node(NodeKind::Action, std::move(name), stereo::kOmpBarrier);
}

ControlFlow& DiagramBuilder::flow(const NodeRef& from, const NodeRef& to,
                                  std::string guard) {
  return flow(from.id(), to.id(), std::move(guard));
}

ControlFlow& DiagramBuilder::flow(std::string_view from_id,
                                  std::string_view to_id, std::string guard) {
  auto edge = std::make_unique<ControlFlow>(
      owner_->next_id("f"), std::string(from_id), std::string(to_id),
      std::move(guard));
  return diagram_->add_edge(std::move(edge));
}

void DiagramBuilder::sequence(std::initializer_list<NodeRef> nodes) {
  const NodeRef* previous = nullptr;
  for (const NodeRef& node : nodes) {
    if (previous != nullptr) {
      flow(*previous, node);
    }
    previous = &node;
  }
}

ModelBuilder::ModelBuilder(std::string name) : model_(std::move(name)) {
  model_.set_profile(standard_profile());
}

ModelBuilder& ModelBuilder::global(std::string name, VariableType type,
                                   std::string initializer) {
  model_.add_variable(Variable{std::move(name), type, VariableScope::Global,
                               std::move(initializer)});
  return *this;
}

ModelBuilder& ModelBuilder::local(std::string name, VariableType type,
                                  std::string initializer) {
  model_.add_variable(Variable{std::move(name), type, VariableScope::Local,
                               std::move(initializer)});
  return *this;
}

ModelBuilder& ModelBuilder::function(std::string name,
                                     std::vector<std::string> parameters,
                                     std::string body) {
  model_.add_cost_function(
      CostFunction{std::move(name), std::move(parameters), std::move(body)});
  return *this;
}

DiagramBuilder ModelBuilder::diagram(std::string name) {
  auto diagram =
      std::make_unique<ActivityDiagram>(next_id("d"), std::move(name));
  ActivityDiagram& stored = model_.add_diagram(std::move(diagram));
  return DiagramBuilder(this, &stored);
}

Model ModelBuilder::build() && { return std::move(model_); }

std::string ModelBuilder::next_id(std::string_view prefix) {
  std::size_t* counter = nullptr;
  if (prefix == "n") {
    counter = &next_node_;
  } else if (prefix == "f") {
    counter = &next_edge_;
  } else {
    counter = &next_diagram_;
  }
  return std::string(prefix) + std::to_string((*counter)++);
}

}  // namespace prophet::uml
