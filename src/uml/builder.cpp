#include "prophet/uml/builder.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "prophet/uml/profile.hpp"

namespace prophet::uml {

NodeRef& NodeRef::cost(std::string expr) {
  node_->set_tag(tag::kCost, TagValue(std::move(expr)));
  return *this;
}

NodeRef& NodeRef::code(std::string fragment) {
  node_->set_tag(tag::kCode, TagValue(std::move(fragment)));
  return *this;
}

NodeRef& NodeRef::type(std::string value) {
  node_->set_tag(tag::kType, TagValue(std::move(value)));
  return *this;
}

NodeRef& NodeRef::time(double seconds) {
  node_->set_tag(tag::kTime, TagValue(seconds));
  return *this;
}

NodeRef& NodeRef::tag(std::string_view name, TagValue value) {
  node_->set_tag(name, std::move(value));
  return *this;
}

EdgeRef& EdgeRef::prob(double probability) {
  if (!(probability >= 0.0 && probability <= 1.0)) {
    owner_->report(BuildSeverity::Error,
                   "edge " + edge_->id() + ": branch probability " +
                       std::to_string(probability) + " is outside [0, 1]");
  }
  edge_->set_tag(tag::kProb, TagValue(probability));
  return *this;
}

EdgeRef& EdgeRef::set_tag(std::string_view name, TagValue value) {
  edge_->set_tag(name, std::move(value));
  return *this;
}

NodeRef DiagramBuilder::add_node(NodeKind kind, std::string name,
                                 std::string_view stereotype) {
  auto node = std::make_unique<Node>(owner_->next_id("n"), std::move(name),
                                     kind);
  if (!stereotype.empty()) {
    node->set_stereotype(std::string(stereotype));
  }
  return NodeRef(&diagram_->add_node(std::move(node)));
}

NodeRef DiagramBuilder::initial() {
  return add_node(NodeKind::Initial, "Initial");
}

NodeRef DiagramBuilder::final_node() {
  return add_node(NodeKind::Final, "Final");
}

NodeRef DiagramBuilder::decision(std::string name) {
  return add_node(NodeKind::Decision,
                  name.empty() ? "Decision" : std::move(name));
}

NodeRef DiagramBuilder::merge(std::string name) {
  return add_node(NodeKind::Merge, name.empty() ? "Merge" : std::move(name));
}

NodeRef DiagramBuilder::fork(std::string name) {
  return add_node(NodeKind::Fork, name.empty() ? "Fork" : std::move(name));
}

NodeRef DiagramBuilder::join(std::string name) {
  return add_node(NodeKind::Join, name.empty() ? "Join" : std::move(name));
}

NodeRef DiagramBuilder::action(std::string name) {
  return add_node(NodeKind::Action, std::move(name), stereo::kActionPlus);
}

NodeRef DiagramBuilder::activity(std::string name,
                                 const DiagramBuilder& subdiagram) {
  return activity(std::move(name), subdiagram.id());
}

NodeRef DiagramBuilder::activity(std::string name,
                                 std::string subdiagram_id) {
  NodeRef ref =
      add_node(NodeKind::Activity, std::move(name), stereo::kActivityPlus);
  ref.tag(tag::kDiagram, TagValue(std::move(subdiagram_id)));
  return ref;
}

NodeRef DiagramBuilder::loop(std::string name, const DiagramBuilder& body,
                             std::string iterations, std::string var) {
  return loop(std::move(name), body.id(), std::move(iterations),
              std::move(var));
}

NodeRef DiagramBuilder::loop(std::string name, std::string body_diagram_id,
                             std::string iterations, std::string var) {
  NodeRef ref = add_node(NodeKind::Loop, std::move(name), stereo::kLoopPlus);
  ref.tag(tag::kDiagram, TagValue(std::move(body_diagram_id)));
  ref.tag(tag::kIterations, TagValue(std::move(iterations)));
  ref.tag(tag::kLoopVar, TagValue(std::move(var)));
  return ref;
}

NodeRef DiagramBuilder::send(std::string name, std::string dest_expr,
                             std::string size_expr, std::int64_t msg_tag) {
  NodeRef ref = add_node(NodeKind::Action, std::move(name), stereo::kSend);
  ref.tag(tag::kDest, TagValue(std::move(dest_expr)));
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  ref.tag(tag::kMsgTag, TagValue(msg_tag));
  return ref;
}

NodeRef DiagramBuilder::recv(std::string name, std::string source_expr,
                             std::string size_expr, std::int64_t msg_tag) {
  NodeRef ref = add_node(NodeKind::Action, std::move(name), stereo::kRecv);
  ref.tag(tag::kSource, TagValue(std::move(source_expr)));
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  ref.tag(tag::kMsgTag, TagValue(msg_tag));
  return ref;
}

NodeRef DiagramBuilder::barrier(std::string name) {
  return add_node(NodeKind::Action, std::move(name), stereo::kBarrier);
}

NodeRef DiagramBuilder::broadcast(std::string name, std::string root_expr,
                                  std::string size_expr) {
  NodeRef ref =
      add_node(NodeKind::Action, std::move(name), stereo::kBroadcast);
  ref.tag(tag::kRoot, TagValue(std::move(root_expr)));
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  return ref;
}

NodeRef DiagramBuilder::reduce(std::string name, std::string root_expr,
                               std::string size_expr, std::string op) {
  NodeRef ref = add_node(NodeKind::Action, std::move(name), stereo::kReduce);
  ref.tag(tag::kRoot, TagValue(std::move(root_expr)));
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  ref.tag(tag::kOp, TagValue(std::move(op)));
  return ref;
}

NodeRef DiagramBuilder::allreduce(std::string name, std::string size_expr,
                                  std::string op) {
  NodeRef ref =
      add_node(NodeKind::Action, std::move(name), stereo::kAllReduce);
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  ref.tag(tag::kOp, TagValue(std::move(op)));
  return ref;
}

NodeRef DiagramBuilder::scatter(std::string name, std::string root_expr,
                                std::string size_expr) {
  NodeRef ref = add_node(NodeKind::Action, std::move(name), stereo::kScatter);
  ref.tag(tag::kRoot, TagValue(std::move(root_expr)));
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  return ref;
}

NodeRef DiagramBuilder::gather(std::string name, std::string root_expr,
                               std::string size_expr) {
  NodeRef ref = add_node(NodeKind::Action, std::move(name), stereo::kGather);
  ref.tag(tag::kRoot, TagValue(std::move(root_expr)));
  ref.tag(tag::kSize, TagValue(std::move(size_expr)));
  return ref;
}

NodeRef DiagramBuilder::omp_parallel(std::string name,
                                     const DiagramBuilder& body,
                                     std::string num_threads_expr) {
  NodeRef ref =
      add_node(NodeKind::Activity, std::move(name), stereo::kOmpParallel);
  ref.tag(tag::kDiagram, TagValue(body.id()));
  ref.tag(tag::kNumThreads, TagValue(std::move(num_threads_expr)));
  return ref;
}

NodeRef DiagramBuilder::omp_for(std::string name, std::string iterations,
                                std::string itercost, std::string schedule,
                                std::int64_t chunk) {
  NodeRef ref = add_node(NodeKind::Action, std::move(name), stereo::kOmpFor);
  ref.tag(tag::kIterations, TagValue(std::move(iterations)));
  ref.tag(tag::kIterCost, TagValue(std::move(itercost)));
  ref.tag(tag::kSchedule, TagValue(std::move(schedule)));
  ref.tag(tag::kChunk, TagValue(chunk));
  return ref;
}

NodeRef DiagramBuilder::omp_critical(std::string name,
                                     const DiagramBuilder& body,
                                     std::string critical_name) {
  NodeRef ref =
      add_node(NodeKind::Activity, std::move(name), stereo::kOmpCritical);
  ref.tag(tag::kDiagram, TagValue(body.id()));
  ref.tag(tag::kCriticalName, TagValue(std::move(critical_name)));
  return ref;
}

NodeRef DiagramBuilder::omp_barrier(std::string name) {
  return add_node(NodeKind::Action, std::move(name), stereo::kOmpBarrier);
}

EdgeRef DiagramBuilder::flow(const NodeRef& from, const NodeRef& to,
                             std::string guard) {
  return flow(from.id(), to.id(), std::move(guard));
}

EdgeRef DiagramBuilder::flow(std::string_view from_id,
                             std::string_view to_id, std::string guard) {
  auto edge = std::make_unique<ControlFlow>(
      owner_->next_id("f"), std::string(from_id), std::string(to_id),
      std::move(guard));
  return EdgeRef(owner_, &diagram_->add_edge(std::move(edge)));
}

void DiagramBuilder::sequence(std::initializer_list<NodeRef> nodes) {
  const NodeRef* previous = nullptr;
  for (const NodeRef& node : nodes) {
    if (previous != nullptr) {
      flow(*previous, node);
    }
    previous = &node;
  }
}

// --- Build diagnostics ----------------------------------------------------

std::string BuildDiagnostic::to_string() const {
  return (severity == BuildSeverity::Error ? "error: " : "warning: ") +
         message;
}

namespace {

std::string join_diagnostics(const std::vector<BuildDiagnostic>& diagnostics) {
  std::ostringstream out;
  out << "model construction failed:";
  for (const auto& diagnostic : diagnostics) {
    out << "\n  " << diagnostic.to_string();
  }
  return out.str();
}

}  // namespace

BuildError::BuildError(std::vector<BuildDiagnostic> diagnostics)
    : std::runtime_error(join_diagnostics(diagnostics)),
      diagnostics_(std::move(diagnostics)) {}

// --- StepBuilder ----------------------------------------------------------

/// One entry of the scope stack.  Body-like frames (the root sequence and
/// loop/SPMD/critical bodies) chain steps inside `diagram` from `cursor`;
/// Branch frames write into the parent's diagram, tracking the decision,
/// the currently open arm, and the tails awaiting the merge.
struct StepBuilder::Frame {
  enum class Kind { Root, Loop, Spmd, Critical, Branch };

  Kind kind = Kind::Root;
  ActivityDiagram* diagram = nullptr;
  Node* cursor = nullptr;  // body frames: last node in the chain

  // Loop/Spmd/Critical: parameters for the node emitted at end_*().
  std::string name;
  std::string iterations;  // loop
  std::string var;         // loop
  std::string threads;     // spmd
  std::string lock;        // critical

  // Branch bookkeeping.
  struct Arm {
    Node* tail = nullptr;  // nullptr: empty arm, edge decision -> merge
    std::string guard;
    double prob = 0;
    bool has_prob = false;
  };
  Node* decision = nullptr;
  std::vector<Arm> tails;     // closed arms
  bool arm_open = false;
  Arm open_arm;               // guard/prob of the arm being filled
  Node* arm_cursor = nullptr; // last node of the open arm
};

StepBuilder::StepBuilder(ModelBuilder& owner, std::string diagram_name)
    : owner_(&owner) {
  DiagramBuilder diagram = owner.diagram(diagram_name);
  Frame frame;
  frame.kind = Frame::Kind::Root;
  frame.diagram = owner.model().diagram(diagram.id());
  frame.name = std::move(diagram_name);
  frame.cursor = &diagram.initial().node();
  frames_.push_back(std::move(frame));
  owner.note_sequence_opened(this, "sequence '" + frames_.back().name + "'");
}

StepBuilder::~StepBuilder() = default;

const std::string& StepBuilder::diagram_id() const {
  return frames_.front().diagram->id();
}

DiagramBuilder StepBuilder::current_diagram() {
  return DiagramBuilder(owner_, frames_.back().diagram);
}

void StepBuilder::report(std::string message) {
  owner_->report(BuildSeverity::Error, std::move(message));
}

StepBuilder& StepBuilder::attach(NodeRef node) {
  Frame& top = frames_.back();
  DiagramBuilder diagram = current_diagram();
  if (top.kind == Frame::Kind::Branch) {
    if (!top.arm_open) {
      report("step '" + node.node().name() + "' inside branch scope before "
             "when()/otherwise()");
      // Recover by opening an unguarded arm; build() still fails.
      top.arm_open = true;
      top.open_arm = {};
      top.arm_cursor = nullptr;
    }
    if (top.arm_cursor == nullptr) {
      EdgeRef edge =
          diagram.flow(top.decision->id(), node.id(), top.open_arm.guard);
      if (top.open_arm.has_prob) {
        edge.prob(top.open_arm.prob);
      }
    } else {
      diagram.flow(top.arm_cursor->id(), node.id());
    }
    top.arm_cursor = &node.node();
  } else {
    diagram.flow(top.cursor->id(), node.id());
    top.cursor = &node.node();
  }
  last_step_ = &node.node();
  return *this;
}

void StepBuilder::advance(Node& node) {
  Frame& top = frames_.back();
  if (top.kind == Frame::Kind::Branch) {
    top.arm_cursor = &node;
  } else {
    top.cursor = &node;
  }
}

StepBuilder& StepBuilder::compute(std::string name, std::string cost_expr) {
  NodeRef node = current_diagram().action(std::move(name));
  node.cost(std::move(cost_expr));
  return attach(node);
}

StepBuilder& StepBuilder::send(std::string name, std::string dest_expr,
                               std::string size_expr, std::int64_t msg_tag) {
  return attach(current_diagram().send(std::move(name), std::move(dest_expr),
                                       std::move(size_expr), msg_tag));
}

StepBuilder& StepBuilder::recv(std::string name, std::string source_expr,
                               std::string size_expr, std::int64_t msg_tag) {
  return attach(current_diagram().recv(std::move(name),
                                       std::move(source_expr),
                                       std::move(size_expr), msg_tag));
}

StepBuilder& StepBuilder::barrier(std::string name) {
  return attach(current_diagram().barrier(std::move(name)));
}

StepBuilder& StepBuilder::broadcast(std::string name, std::string root_expr,
                                    std::string size_expr) {
  return attach(current_diagram().broadcast(
      std::move(name), std::move(root_expr), std::move(size_expr)));
}

StepBuilder& StepBuilder::reduce(std::string name, std::string root_expr,
                                 std::string size_expr, std::string op) {
  return attach(current_diagram().reduce(std::move(name),
                                         std::move(root_expr),
                                         std::move(size_expr), std::move(op)));
}

StepBuilder& StepBuilder::allreduce(std::string name, std::string size_expr,
                                    std::string op) {
  return attach(current_diagram().allreduce(
      std::move(name), std::move(size_expr), std::move(op)));
}

StepBuilder& StepBuilder::scatter(std::string name, std::string root_expr,
                                  std::string size_expr) {
  return attach(current_diagram().scatter(
      std::move(name), std::move(root_expr), std::move(size_expr)));
}

StepBuilder& StepBuilder::gather(std::string name, std::string root_expr,
                                 std::string size_expr) {
  return attach(current_diagram().gather(
      std::move(name), std::move(root_expr), std::move(size_expr)));
}

StepBuilder& StepBuilder::omp_for(std::string name, std::string iterations,
                                  std::string itercost, std::string schedule,
                                  std::int64_t chunk) {
  return attach(current_diagram().omp_for(std::move(name),
                                          std::move(iterations),
                                          std::move(itercost),
                                          std::move(schedule), chunk));
}

StepBuilder& StepBuilder::call(std::string name,
                               const DiagramBuilder& subdiagram) {
  return call(std::move(name), subdiagram.id());
}

StepBuilder& StepBuilder::call(std::string name, std::string subdiagram_id) {
  return attach(current_diagram().activity(std::move(name),
                                           std::move(subdiagram_id)));
}

StepBuilder& StepBuilder::loop(std::string name, std::string body_diagram_id,
                               std::string iterations, std::string var) {
  return attach(current_diagram().loop(std::move(name),
                                       std::move(body_diagram_id),
                                       std::move(iterations),
                                       std::move(var)));
}

StepBuilder& StepBuilder::code(std::string fragment) {
  if (last_step_ == nullptr) {
    report("code() with no preceding step");
    return *this;
  }
  last_step_->set_tag(tag::kCode, TagValue(std::move(fragment)));
  return *this;
}

StepBuilder& StepBuilder::type(std::string value) {
  if (last_step_ == nullptr) {
    report("type() with no preceding step");
    return *this;
  }
  last_step_->set_tag(tag::kType, TagValue(std::move(value)));
  return *this;
}

StepBuilder& StepBuilder::tag(std::string_view name, TagValue value) {
  if (last_step_ == nullptr) {
    report("tag('" + std::string(name) + "') with no preceding step");
    return *this;
  }
  last_step_->set_tag(name, std::move(value));
  return *this;
}

StepBuilder& StepBuilder::begin_loop(std::string name, std::string iterations,
                                     std::string var) {
  DiagramBuilder body = owner_->diagram(name + ".body");
  Frame frame;
  frame.kind = Frame::Kind::Loop;
  frame.diagram = owner_->model().diagram(body.id());
  frame.name = std::move(name);
  frame.iterations = std::move(iterations);
  frame.var = std::move(var);
  frame.cursor = &body.initial().node();
  frames_.push_back(std::move(frame));
  return *this;
}

StepBuilder& StepBuilder::close_body(
    const std::function<NodeRef(DiagramBuilder&, Frame&)>& emit) {
  Frame body = std::move(frames_.back());
  DiagramBuilder body_diagram(owner_, body.diagram);
  NodeRef fin = body_diagram.final_node();
  body_diagram.flow(body.cursor->id(), fin.id());
  frames_.pop_back();
  DiagramBuilder parent = current_diagram();
  return attach(emit(parent, body));
}

StepBuilder& StepBuilder::end_loop() {
  if (frames_.back().kind != Frame::Kind::Loop) {
    report("end_loop() without an open loop scope");
    return *this;
  }
  return close_body([](DiagramBuilder& parent, Frame& body) {
    return parent.loop(body.name, body.diagram->id(), body.iterations,
                       body.var);
  });
}

StepBuilder& StepBuilder::begin_branch(std::string name) {
  NodeRef decision = current_diagram().decision(std::move(name));
  attach(decision);
  Frame frame;
  frame.kind = Frame::Kind::Branch;
  frame.diagram = frames_.back().diagram;
  frame.decision = &decision.node();
  frames_.push_back(std::move(frame));
  return *this;
}

void StepBuilder::close_arm() {
  Frame& top = frames_.back();
  if (!top.arm_open) {
    return;
  }
  Frame::Arm arm = top.open_arm;
  arm.tail = top.arm_cursor;
  top.tails.push_back(std::move(arm));
  top.arm_open = false;
  top.arm_cursor = nullptr;
}

StepBuilder& StepBuilder::when(std::string guard) {
  if (frames_.back().kind != Frame::Kind::Branch) {
    report("when() outside a branch scope");
    return *this;
  }
  if (guard.empty()) {
    report("when() with an empty guard (use otherwise() for the default "
           "arm)");
    guard = "else";
  }
  close_arm();
  Frame& top = frames_.back();
  top.arm_open = true;
  top.open_arm = {};
  top.open_arm.guard = std::move(guard);
  top.arm_cursor = nullptr;
  return *this;
}

StepBuilder& StepBuilder::when(std::string guard, double probability) {
  when(std::move(guard));
  Frame& top = frames_.back();
  if (top.kind == Frame::Kind::Branch && top.arm_open) {
    // Out-of-range values are diagnosed once, by EdgeRef::prob(), when
    // the arm's edge materializes.
    top.open_arm.prob = probability;
    top.open_arm.has_prob = true;
  }
  return *this;
}

StepBuilder& StepBuilder::otherwise() { return when("else"); }

StepBuilder& StepBuilder::otherwise(double probability) {
  return when("else", probability);
}

StepBuilder& StepBuilder::end_branch() {
  if (frames_.back().kind != Frame::Kind::Branch) {
    report("end_branch() without an open branch scope");
    return *this;
  }
  close_arm();
  Frame branch = std::move(frames_.back());
  frames_.pop_back();
  DiagramBuilder diagram = current_diagram();
  if (branch.tails.empty()) {
    report("branch scope '" + branch.decision->name() +
           "' closed without any when()/otherwise() arm");
  }
  NodeRef merge = diagram.merge();
  for (const Frame::Arm& arm : branch.tails) {
    if (arm.tail == nullptr) {
      EdgeRef edge = diagram.flow(branch.decision->id(), merge.id(),
                                  arm.guard);
      if (arm.has_prob) {
        edge.prob(arm.prob);
      }
    } else {
      diagram.flow(arm.tail->id(), merge.id());
    }
  }
  advance(merge.node());
  return *this;
}

StepBuilder& StepBuilder::begin_spmd(std::string name,
                                     std::string num_threads_expr) {
  DiagramBuilder body = owner_->diagram(name + ".body");
  Frame frame;
  frame.kind = Frame::Kind::Spmd;
  frame.diagram = owner_->model().diagram(body.id());
  frame.name = std::move(name);
  frame.threads = std::move(num_threads_expr);
  frame.cursor = &body.initial().node();
  frames_.push_back(std::move(frame));
  return *this;
}

StepBuilder& StepBuilder::end_spmd() {
  if (frames_.back().kind != Frame::Kind::Spmd) {
    report("end_spmd() without an open SPMD region scope");
    return *this;
  }
  return close_body([this](DiagramBuilder& parent, Frame& body) {
    return parent.omp_parallel(body.name,
                               DiagramBuilder(owner_, body.diagram),
                               body.threads);
  });
}

StepBuilder& StepBuilder::begin_critical(std::string name,
                                         std::string critical_name) {
  DiagramBuilder body = owner_->diagram(name + ".body");
  Frame frame;
  frame.kind = Frame::Kind::Critical;
  frame.diagram = owner_->model().diagram(body.id());
  frame.name = std::move(name);
  frame.lock = std::move(critical_name);
  frame.cursor = &body.initial().node();
  frames_.push_back(std::move(frame));
  return *this;
}

StepBuilder& StepBuilder::end_critical() {
  if (frames_.back().kind != Frame::Kind::Critical) {
    report("end_critical() without an open critical-section scope");
    return *this;
  }
  return close_body([this](DiagramBuilder& parent, Frame& body) {
    return parent.omp_critical(body.name,
                               DiagramBuilder(owner_, body.diagram),
                               body.lock);
  });
}

ModelBuilder& StepBuilder::done() {
  if (finished_) {
    report("done() called twice on sequence '" + frames_.front().name + "'");
    return *owner_;
  }
  // Scopes left open are misuse; close them structurally so downstream
  // tooling can still print the model, but record each one — build()
  // refuses the model anyway.
  while (frames_.size() > 1) {
    const Frame& top = frames_.back();
    switch (top.kind) {
      case Frame::Kind::Loop:
        report("unclosed loop scope '" + top.name + "'");
        end_loop();
        break;
      case Frame::Kind::Spmd:
        report("unclosed SPMD region scope '" + top.name + "'");
        end_spmd();
        break;
      case Frame::Kind::Critical:
        report("unclosed critical-section scope '" + top.name + "'");
        end_critical();
        break;
      case Frame::Kind::Branch:
        report("unclosed branch scope" +
               (top.decision->name().empty()
                    ? std::string()
                    : " '" + top.decision->name() + "'"));
        end_branch();
        break;
      case Frame::Kind::Root:
        break;
    }
  }
  DiagramBuilder diagram = current_diagram();
  NodeRef fin = diagram.final_node();
  diagram.flow(frames_.back().cursor->id(), fin.id());
  finished_ = true;
  owner_->note_sequence_finished(this);
  return *owner_;
}

// --- ModelBuilder ---------------------------------------------------------

ModelBuilder::ModelBuilder(std::string name) : model_(std::move(name)) {
  model_.set_profile(standard_profile());
}

ModelBuilder::~ModelBuilder() = default;

ModelBuilder& ModelBuilder::global(std::string name, VariableType type,
                                   std::string initializer) {
  model_.add_variable(Variable{std::move(name), type, VariableScope::Global,
                               std::move(initializer)});
  return *this;
}

ModelBuilder& ModelBuilder::local(std::string name, VariableType type,
                                  std::string initializer) {
  model_.add_variable(Variable{std::move(name), type, VariableScope::Local,
                               std::move(initializer)});
  return *this;
}

ModelBuilder& ModelBuilder::function(std::string name,
                                     std::vector<std::string> parameters,
                                     std::string body) {
  model_.add_cost_function(
      CostFunction{std::move(name), std::move(parameters), std::move(body)});
  return *this;
}

DiagramBuilder ModelBuilder::diagram(std::string name) {
  auto diagram =
      std::make_unique<ActivityDiagram>(next_id("d"), std::move(name));
  ActivityDiagram& stored = model_.add_diagram(std::move(diagram));
  return DiagramBuilder(this, &stored);
}

void ModelBuilder::report(BuildSeverity severity, std::string message) {
  diagnostics_.push_back({severity, std::move(message)});
}

void ModelBuilder::note_sequence_opened(const void* key, std::string label) {
  open_sequences_.emplace_back(key, std::move(label));
}

void ModelBuilder::note_sequence_finished(const void* key) {
  open_sequences_.erase(
      std::remove_if(open_sequences_.begin(), open_sequences_.end(),
                     [key](const auto& entry) { return entry.first == key; }),
      open_sequences_.end());
}

std::vector<BuildDiagnostic> ModelBuilder::validate() const {
  std::vector<BuildDiagnostic> diagnostics = diagnostics_;
  for (const auto& [key, label] : open_sequences_) {
    diagnostics.push_back(
        {BuildSeverity::Error, label + " was never finished with done()"});
  }

  // Duplicate diagram (activity) names make activity()/loop()-by-name
  // references and generated code ambiguous.
  std::set<std::string_view> seen;
  std::set<std::string_view> reported;
  for (const auto& diagram : model_.diagrams()) {
    if (!seen.insert(diagram->name()).second &&
        reported.insert(diagram->name()).second) {
      diagnostics.push_back({BuildSeverity::Error,
                             "duplicate activity diagram name '" +
                                 diagram->name() + "'"});
    }
  }

  // A send whose (message tag) class no recv ever matches — or a recv no
  // send ever feeds — is the classic copy-paste communication bug: the
  // message rots in the mailbox (or the recv deadlocks) at evaluation
  // time.  The check is per message tag across the whole model: partners
  // are usually guarded by pid expressions, so per-node matching is not
  // decidable here, but a tag with only one side present never matches.
  std::map<std::int64_t, std::pair<const Node*, const Node*>> comm;
  for (const auto& diagram : model_.diagrams()) {
    for (const auto& node : diagram->nodes()) {
      const bool is_send = node->stereotype() == stereo::kSend;
      const bool is_recv = node->stereotype() == stereo::kRecv;
      if (!is_send && !is_recv) {
        continue;
      }
      const auto msg_tag = static_cast<std::int64_t>(
          node->tag_number(tag::kMsgTag).value_or(0));
      auto& [send_node, recv_node] = comm[msg_tag];
      (is_send ? send_node : recv_node) = node.get();
    }
  }
  for (const auto& [msg_tag, nodes] : comm) {
    const auto& [send_node, recv_node] = nodes;
    if (send_node != nullptr && recv_node == nullptr) {
      diagnostics.push_back(
          {BuildSeverity::Error,
           "send '" + send_node->name() + "' (message tag " +
               std::to_string(msg_tag) +
               ") has no matching recv anywhere in the model"});
    } else if (recv_node != nullptr && send_node == nullptr) {
      diagnostics.push_back(
          {BuildSeverity::Error,
           "recv '" + recv_node->name() + "' (message tag " +
               std::to_string(msg_tag) +
               ") has no matching send anywhere in the model"});
    }
  }
  return diagnostics;
}

Model ModelBuilder::build() && {
  std::vector<BuildDiagnostic> diagnostics = validate();
  const bool has_error =
      std::any_of(diagnostics.begin(), diagnostics.end(),
                  [](const BuildDiagnostic& diagnostic) {
                    return diagnostic.severity == BuildSeverity::Error;
                  });
  if (has_error) {
    throw BuildError(std::move(diagnostics));
  }
  return std::move(model_);
}

Model ModelBuilder::build_unchecked() && { return std::move(model_); }

std::string ModelBuilder::next_id(std::string_view prefix) {
  std::size_t* counter = nullptr;
  if (prefix == "n") {
    counter = &next_node_;
  } else if (prefix == "f") {
    counter = &next_edge_;
  } else {
    counter = &next_diagram_;
  }
  return std::string(prefix) + std::to_string((*counter)++);
}

}  // namespace prophet::uml
