#include "prophet/uml/diagram.hpp"

#include <utility>

#include "prophet/uml/profile.hpp"

namespace prophet::uml {

std::string_view to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::Initial:
      return "initial";
    case NodeKind::Final:
      return "final";
    case NodeKind::Action:
      return "action";
    case NodeKind::Activity:
      return "activity";
    case NodeKind::Decision:
      return "decision";
    case NodeKind::Merge:
      return "merge";
    case NodeKind::Fork:
      return "fork";
    case NodeKind::Join:
      return "join";
    case NodeKind::Loop:
      return "loop";
  }
  return "unknown";
}

std::optional<NodeKind> node_kind_from_string(std::string_view text) {
  static constexpr std::pair<std::string_view, NodeKind> kMap[] = {
      {"initial", NodeKind::Initial}, {"final", NodeKind::Final},
      {"action", NodeKind::Action},   {"activity", NodeKind::Activity},
      {"decision", NodeKind::Decision}, {"merge", NodeKind::Merge},
      {"fork", NodeKind::Fork},       {"join", NodeKind::Join},
      {"loop", NodeKind::Loop},
  };
  for (const auto& [name, kind] : kMap) {
    if (name == text) {
      return kind;
    }
  }
  return std::nullopt;
}

std::string Node::subdiagram_id() const { return tag_string(tag::kDiagram); }

Node& ActivityDiagram::add_node(std::unique_ptr<Node> node) {
  nodes_.push_back(std::move(node));
  return *nodes_.back();
}

ControlFlow& ActivityDiagram::add_edge(std::unique_ptr<ControlFlow> edge) {
  edges_.push_back(std::move(edge));
  return *edges_.back();
}

const Node* ActivityDiagram::node(std::string_view id) const {
  for (const auto& node : nodes_) {
    if (node->id() == id) {
      return node.get();
    }
  }
  return nullptr;
}

Node* ActivityDiagram::node(std::string_view id) {
  return const_cast<Node*>(std::as_const(*this).node(id));
}

const Node* ActivityDiagram::initial() const {
  for (const auto& node : nodes_) {
    if (node->kind() == NodeKind::Initial) {
      return node.get();
    }
  }
  return nullptr;
}

std::vector<const ControlFlow*> ActivityDiagram::outgoing(
    std::string_view node_id) const {
  std::vector<const ControlFlow*> result;
  for (const auto& edge : edges_) {
    if (edge->source() == node_id) {
      result.push_back(edge.get());
    }
  }
  return result;
}

std::vector<const ControlFlow*> ActivityDiagram::incoming(
    std::string_view node_id) const {
  std::vector<const ControlFlow*> result;
  for (const auto& edge : edges_) {
    if (edge->target() == node_id) {
      result.push_back(edge.get());
    }
  }
  return result;
}

}  // namespace prophet::uml
