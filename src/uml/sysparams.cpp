#include "prophet/uml/sysparams.hpp"

#include <array>

namespace prophet::uml {

namespace {
constexpr std::array<std::string_view, 7> kNames{
    sysparam::kProcessId, sysparam::kThreadId,  sysparam::kElementUid,
    sysparam::kProcesses, sysparam::kThreads,   sysparam::kNodes,
    sysparam::kProcessorsPerNode,
};
}  // namespace

std::span<const std::string_view> system_parameter_names() { return kNames; }

bool is_system_parameter(std::string_view name) {
  for (const auto candidate : kNames) {
    if (candidate == name) {
      return true;
    }
  }
  return false;
}

}  // namespace prophet::uml
