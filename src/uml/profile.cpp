#include "prophet/uml/profile.hpp"

namespace prophet::uml {

std::string_view to_string(Metaclass metaclass) {
  switch (metaclass) {
    case Metaclass::Action:
      return "Action";
    case Metaclass::Activity:
      return "Activity";
    case Metaclass::ControlFlow:
      return "ControlFlow";
  }
  return "Unknown";
}

const TagDefinition* Stereotype::tag(std::string_view name) const {
  for (const auto& definition : tags_) {
    if (definition.name == name) {
      return &definition;
    }
  }
  return nullptr;
}

Stereotype& Profile::add(Stereotype stereotype) {
  stereotypes_.push_back(std::move(stereotype));
  return stereotypes_.back();
}

const Stereotype* Profile::find(std::string_view name) const {
  for (const auto& stereotype : stereotypes_) {
    if (stereotype.name() == name) {
      return &stereotype;
    }
  }
  return nullptr;
}

Profile standard_profile() {
  Profile profile("PerformanceProphet");

  auto str = [](std::string_view name, bool required = false) {
    return TagDefinition{std::string(name), TagType::String, required};
  };
  auto integer = [](std::string_view name, bool required = false) {
    return TagDefinition{std::string(name), TagType::Integer, required};
  };
  auto real = [](std::string_view name, bool required = false) {
    return TagDefinition{std::string(name), TagType::Real, required};
  };

  // Fig. 1a: <<action+>> with id/type/time, extended with the cost and
  // code associations of Fig. 7b/7c.
  profile.add(Stereotype(std::string(stereo::kActionPlus), Metaclass::Action,
                         {integer(tag::kId), str(tag::kType), real(tag::kTime),
                          str(tag::kCost), str(tag::kCode)}));

  profile.add(Stereotype(std::string(stereo::kActivityPlus),
                         Metaclass::Activity,
                         {integer(tag::kId), str(tag::kType), real(tag::kTime),
                          str(tag::kDiagram, /*required=*/true)}));

  profile.add(Stereotype(std::string(stereo::kLoopPlus), Metaclass::Activity,
                         {str(tag::kDiagram, /*required=*/true),
                          str(tag::kIterations, /*required=*/true),
                          str(tag::kLoopVar)}));

  // Message-passing building blocks [17,18].
  profile.add(Stereotype(std::string(stereo::kSend), Metaclass::Action,
                         {str(tag::kDest, /*required=*/true),
                          str(tag::kSize, /*required=*/true),
                          integer(tag::kMsgTag)}));
  profile.add(Stereotype(std::string(stereo::kRecv), Metaclass::Action,
                         {str(tag::kSource, /*required=*/true),
                          str(tag::kSize, /*required=*/true),
                          integer(tag::kMsgTag)}));
  profile.add(
      Stereotype(std::string(stereo::kBarrier), Metaclass::Action, {}));
  profile.add(Stereotype(std::string(stereo::kBroadcast), Metaclass::Action,
                         {str(tag::kRoot, /*required=*/true),
                          str(tag::kSize, /*required=*/true)}));
  profile.add(Stereotype(std::string(stereo::kReduce), Metaclass::Action,
                         {str(tag::kRoot, /*required=*/true),
                          str(tag::kSize, /*required=*/true), str(tag::kOp)}));
  profile.add(Stereotype(std::string(stereo::kAllReduce), Metaclass::Action,
                         {str(tag::kSize, /*required=*/true), str(tag::kOp)}));
  profile.add(Stereotype(std::string(stereo::kScatter), Metaclass::Action,
                         {str(tag::kRoot, /*required=*/true),
                          str(tag::kSize, /*required=*/true)}));
  profile.add(Stereotype(std::string(stereo::kGather), Metaclass::Action,
                         {str(tag::kRoot, /*required=*/true),
                          str(tag::kSize, /*required=*/true)}));

  // Shared-memory building blocks [17,18].
  profile.add(Stereotype(std::string(stereo::kOmpParallel),
                         Metaclass::Activity,
                         {str(tag::kDiagram, /*required=*/true),
                          str(tag::kNumThreads)}));
  profile.add(Stereotype(std::string(stereo::kOmpFor), Metaclass::Action,
                         {str(tag::kIterations, /*required=*/true),
                          str(tag::kIterCost, /*required=*/true),
                          str(tag::kSchedule), integer(tag::kChunk)}));
  profile.add(Stereotype(std::string(stereo::kOmpCritical),
                         Metaclass::Activity,
                         {str(tag::kDiagram, /*required=*/true),
                          str(tag::kCriticalName)}));
  profile.add(
      Stereotype(std::string(stereo::kOmpBarrier), Metaclass::Action, {}));

  return profile;
}

std::vector<std::string_view> expression_tags(std::string_view stereotype) {
  if (stereotype == stereo::kActionPlus) {
    return {tag::kCost};
  }
  if (stereotype == stereo::kLoopPlus) {
    return {tag::kIterations};
  }
  if (stereotype == stereo::kSend) {
    return {tag::kDest, tag::kSize};
  }
  if (stereotype == stereo::kRecv) {
    return {tag::kSource, tag::kSize};
  }
  if (stereotype == stereo::kBroadcast || stereotype == stereo::kReduce ||
      stereotype == stereo::kScatter || stereotype == stereo::kGather) {
    return {tag::kRoot, tag::kSize};
  }
  if (stereotype == stereo::kAllReduce) {
    return {tag::kSize};
  }
  if (stereotype == stereo::kOmpParallel) {
    return {tag::kNumThreads};
  }
  if (stereotype == stereo::kOmpFor) {
    return {tag::kIterations, tag::kIterCost};
  }
  return {};
}

}  // namespace prophet::uml
