#include "prophet/uml/model.hpp"

#include <utility>

namespace prophet::uml {

std::string_view to_string(VariableScope scope) {
  switch (scope) {
    case VariableScope::Global:
      return "global";
    case VariableScope::Local:
      return "local";
  }
  return "unknown";
}

std::string_view to_string(VariableType type) {
  switch (type) {
    case VariableType::Real:
      return "Real";
    case VariableType::Integer:
      return "Integer";
  }
  return "Unknown";
}

std::optional<VariableScope> variable_scope_from_string(
    std::string_view text) {
  if (text == "global") {
    return VariableScope::Global;
  }
  if (text == "local") {
    return VariableScope::Local;
  }
  return std::nullopt;
}

std::optional<VariableType> variable_type_from_string(std::string_view text) {
  if (text == "Real" || text == "Double") {
    return VariableType::Real;
  }
  if (text == "Integer") {
    return VariableType::Integer;
  }
  return std::nullopt;
}

const Variable* Model::variable(std::string_view name) const {
  for (const auto& variable : variables_) {
    if (variable.name == name) {
      return &variable;
    }
  }
  return nullptr;
}

std::vector<const Variable*> Model::globals() const {
  std::vector<const Variable*> result;
  for (const auto& variable : variables_) {
    if (variable.scope == VariableScope::Global) {
      result.push_back(&variable);
    }
  }
  return result;
}

std::vector<const Variable*> Model::locals() const {
  std::vector<const Variable*> result;
  for (const auto& variable : variables_) {
    if (variable.scope == VariableScope::Local) {
      result.push_back(&variable);
    }
  }
  return result;
}

const CostFunction* Model::cost_function(std::string_view name) const {
  for (const auto& fn : cost_functions_) {
    if (fn.name == name) {
      return &fn;
    }
  }
  return nullptr;
}

ActivityDiagram& Model::add_diagram(std::unique_ptr<ActivityDiagram> diagram) {
  if (diagrams_.empty() && main_diagram_id_.empty()) {
    main_diagram_id_ = diagram->id();
  }
  diagrams_.push_back(std::move(diagram));
  return *diagrams_.back();
}

const ActivityDiagram* Model::diagram(std::string_view id) const {
  for (const auto& diagram : diagrams_) {
    if (diagram->id() == id) {
      return diagram.get();
    }
  }
  return nullptr;
}

ActivityDiagram* Model::diagram(std::string_view id) {
  return const_cast<ActivityDiagram*>(std::as_const(*this).diagram(id));
}

const ActivityDiagram* Model::main_diagram() const {
  return diagram(main_diagram_id_);
}

const Node* Model::node(std::string_view id) const {
  for (const auto& diagram : diagrams_) {
    if (const Node* node = diagram->node(id)) {
      return node;
    }
  }
  return nullptr;
}

std::size_t Model::element_count() const {
  std::size_t count = 0;
  for (const auto& diagram : diagrams_) {
    count += 1 + diagram->node_count() + diagram->edge_count();
  }
  return count;
}

}  // namespace prophet::uml
