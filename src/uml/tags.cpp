#include "prophet/uml/tags.hpp"

#include <cstdlib>
#include <sstream>

namespace prophet::uml {

std::string_view to_string(TagType type) {
  switch (type) {
    case TagType::Integer:
      return "Integer";
    case TagType::Real:
      return "Real";
    case TagType::String:
      return "String";
    case TagType::Boolean:
      return "Boolean";
  }
  return "Unknown";
}

std::optional<TagType> tag_type_from_string(std::string_view text) {
  if (text == "Integer") {
    return TagType::Integer;
  }
  if (text == "Real" || text == "Double") {
    return TagType::Real;
  }
  if (text == "String") {
    return TagType::String;
  }
  if (text == "Boolean") {
    return TagType::Boolean;
  }
  return std::nullopt;
}

TagType type_of(const TagValue& value) {
  return static_cast<TagType>(value.index());
}

std::string to_string(const TagValue& value) {
  switch (type_of(value)) {
    case TagType::Integer:
      return std::to_string(std::get<std::int64_t>(value));
    case TagType::Real: {
      std::ostringstream out;
      out.precision(17);
      out << std::get<double>(value);
      return out.str();
    }
    case TagType::String:
      return std::get<std::string>(value);
    case TagType::Boolean:
      return std::get<bool>(value) ? "true" : "false";
  }
  return {};
}

std::optional<TagValue> parse_tag_value(TagType type, std::string_view text) {
  const std::string copy(text);
  switch (type) {
    case TagType::Integer: {
      char* end = nullptr;
      const long long value = std::strtoll(copy.c_str(), &end, 10);
      if (end == copy.c_str() || *end != '\0') {
        return std::nullopt;
      }
      return TagValue(static_cast<std::int64_t>(value));
    }
    case TagType::Real: {
      char* end = nullptr;
      const double value = std::strtod(copy.c_str(), &end);
      if (end == copy.c_str() || *end != '\0') {
        return std::nullopt;
      }
      return TagValue(value);
    }
    case TagType::String:
      return TagValue(copy);
    case TagType::Boolean:
      if (copy == "true" || copy == "1") {
        return TagValue(true);
      }
      if (copy == "false" || copy == "0") {
        return TagValue(false);
      }
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace prophet::uml
