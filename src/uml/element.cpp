#include "prophet/uml/element.hpp"

#include <algorithm>

namespace prophet::uml {

void Element::set_tag(std::string_view name, TagValue value) {
  for (auto& tagged : tags_) {
    if (tagged.name == name) {
      tagged.value = std::move(value);
      return;
    }
  }
  tags_.push_back({std::string(name), std::move(value)});
}

std::optional<TagValue> Element::tag(std::string_view name) const {
  for (const auto& tagged : tags_) {
    if (tagged.name == name) {
      return tagged.value;
    }
  }
  return std::nullopt;
}

std::string Element::tag_string(std::string_view name) const {
  if (auto value = tag(name)) {
    if (const auto* text = std::get_if<std::string>(&*value)) {
      return *text;
    }
  }
  return {};
}

std::optional<double> Element::tag_number(std::string_view name) const {
  if (auto value = tag(name)) {
    if (const auto* real = std::get_if<double>(&*value)) {
      return *real;
    }
    if (const auto* integer = std::get_if<std::int64_t>(&*value)) {
      return static_cast<double>(*integer);
    }
  }
  return std::nullopt;
}

bool Element::has_tag(std::string_view name) const {
  return tag(name).has_value();
}

bool Element::remove_tag(std::string_view name) {
  auto it = std::find_if(tags_.begin(), tags_.end(),
                         [&](const TaggedValue& t) { return t.name == name; });
  if (it == tags_.end()) {
    return false;
  }
  tags_.erase(it);
  return true;
}

}  // namespace prophet::uml
