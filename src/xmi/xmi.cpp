#include "prophet/xmi/xmi.hpp"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "prophet/xml/parser.hpp"
#include "prophet/xml/writer.hpp"

namespace prophet::xmi {
namespace {

using uml::Metaclass;
using uml::TagType;

std::string join(const std::vector<std::string>& parts, char separator) {
  std::string out;
  for (const auto& part : parts) {
    if (!out.empty()) {
      out += separator;
    }
    out += part;
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      if (start < text.size()) {
        parts.emplace_back(text.substr(start));
      }
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::optional<Metaclass> metaclass_from_string(std::string_view text) {
  if (text == "Action") {
    return Metaclass::Action;
  }
  if (text == "Activity") {
    return Metaclass::Activity;
  }
  if (text == "ControlFlow") {
    return Metaclass::ControlFlow;
  }
  return std::nullopt;
}

// --- Writing ---------------------------------------------------------------

void write_profile(xml::Element& parent, const uml::Profile& profile) {
  auto& node = parent.add_element("profile");
  node.set_attr("name", profile.name());
  for (const auto& stereotype : profile.stereotypes()) {
    auto& st = node.add_element("stereotype");
    st.set_attr("name", stereotype.name());
    st.set_attr("base", uml::to_string(stereotype.base()));
    for (const auto& tag : stereotype.tags()) {
      auto& td = st.add_element("tagdef");
      td.set_attr("name", tag.name);
      td.set_attr("type", uml::to_string(tag.type));
      if (tag.required) {
        td.set_attr("required", "true");
      }
    }
  }
}

void write_tags(xml::Element& parent, const uml::Element& element) {
  for (const auto& tagged : element.tags()) {
    auto& tag = parent.add_element("tag");
    tag.set_attr("name", tagged.name);
    tag.set_attr("type", uml::to_string(uml::type_of(tagged.value)));
    const std::string text = uml::to_string(tagged.value);
    // Code fragments may contain markup-significant characters and
    // meaningful whitespace; CDATA keeps them byte-exact.
    if (text.find_first_of("<>&\n") != std::string::npos) {
      tag.add_cdata(text);
    } else if (!text.empty()) {
      tag.add_text(text);
    }
  }
}

void write_diagram(xml::Element& parent, const uml::ActivityDiagram& diagram) {
  auto& node = parent.add_element("diagram");
  node.set_attr("id", diagram.id());
  node.set_attr("name", diagram.name());
  for (const auto& n : diagram.nodes()) {
    auto& element = node.add_element("node");
    element.set_attr("id", n->id());
    element.set_attr("kind", uml::to_string(n->kind()));
    element.set_attr("name", n->name());
    if (n->has_stereotype()) {
      element.set_attr("stereotype", n->stereotype());
    }
    write_tags(element, *n);
  }
  for (const auto& e : diagram.edges()) {
    auto& element = node.add_element("edge");
    element.set_attr("id", e->id());
    element.set_attr("source", e->source());
    element.set_attr("target", e->target());
    if (e->has_guard()) {
      element.set_attr("guard", e->guard());
    }
    write_tags(element, *e);
  }
}

// --- Reading ---------------------------------------------------------------

[[noreturn]] void fail(const std::string& message) { throw XmiError(message); }

std::string required_attr(const xml::Element& element, std::string_view name) {
  if (auto value = element.attr(name)) {
    return std::string(*value);
  }
  fail("element <" + element.name() + "> lacks required attribute '" +
       std::string(name) + "'");
}

uml::Profile read_profile(const xml::Element& node) {
  uml::Profile profile(node.attr_or("name", ""));
  for (const auto* st : node.children_named("stereotype")) {
    const std::string name = required_attr(*st, "name");
    const std::string base_text = required_attr(*st, "base");
    const auto base = metaclass_from_string(base_text);
    if (!base) {
      fail("unknown metaclass '" + base_text + "' in stereotype '" + name +
           "'");
    }
    uml::Stereotype stereotype(name, *base);
    for (const auto* td : st->children_named("tagdef")) {
      const std::string tag_name = required_attr(*td, "name");
      const std::string type_text = required_attr(*td, "type");
      const auto type = uml::tag_type_from_string(type_text);
      if (!type) {
        fail("unknown tag type '" + type_text + "' in stereotype '" + name +
             "'");
      }
      stereotype.add_tag(
          {tag_name, *type, td->attr_or("required", "false") == "true"});
    }
    profile.add(std::move(stereotype));
  }
  return profile;
}

void read_tags(const xml::Element& node, uml::Element& element) {
  for (const auto* tag : node.children_named("tag")) {
    const std::string name = required_attr(*tag, "name");
    const std::string type_text = required_attr(*tag, "type");
    const auto type = uml::tag_type_from_string(type_text);
    if (!type) {
      fail("unknown tag type '" + type_text + "' on tag '" + name + "'");
    }
    const auto value = uml::parse_tag_value(*type, tag->text());
    if (!value) {
      fail("tag '" + name + "' value '" + tag->text() +
           "' does not parse as " + type_text);
    }
    element.set_tag(name, *value);
  }
}

std::unique_ptr<uml::ActivityDiagram> read_diagram(const xml::Element& node) {
  auto diagram = std::make_unique<uml::ActivityDiagram>(
      required_attr(node, "id"), node.attr_or("name", ""));
  for (const auto* child : node.child_elements()) {
    if (child->name() == "node") {
      const std::string kind_text = required_attr(*child, "kind");
      const auto kind = uml::node_kind_from_string(kind_text);
      if (!kind) {
        fail("unknown node kind '" + kind_text + "'");
      }
      auto n = std::make_unique<uml::Node>(required_attr(*child, "id"),
                                           child->attr_or("name", ""), *kind);
      if (auto stereotype = child->attr("stereotype")) {
        n->set_stereotype(std::string(*stereotype));
      }
      read_tags(*child, *n);
      diagram->add_node(std::move(n));
    } else if (child->name() == "edge") {
      auto e = std::make_unique<uml::ControlFlow>(
          required_attr(*child, "id"), required_attr(*child, "source"),
          required_attr(*child, "target"), child->attr_or("guard", ""));
      read_tags(*child, *e);
      diagram->add_edge(std::move(e));
    } else {
      fail("unexpected element <" + child->name() + "> inside <diagram>");
    }
  }
  return diagram;
}

}  // namespace

xml::Document to_document(const uml::Model& model) {
  auto doc = xml::Document::with_root("prophet:model");
  auto& root = doc.root();
  root.set_attr("name", model.name());
  root.set_attr("main", model.main_diagram_id());
  root.set_attr("schema", std::to_string(kSchemaVersion));

  write_profile(root, model.profile());

  auto& variables = root.add_element("variables");
  for (const auto& variable : model.variables()) {
    auto& node = variables.add_element("variable");
    node.set_attr("name", variable.name);
    node.set_attr("type", uml::to_string(variable.type));
    node.set_attr("scope", uml::to_string(variable.scope));
    if (!variable.initializer.empty()) {
      node.set_attr("init", variable.initializer);
    }
  }

  auto& functions = root.add_element("functions");
  for (const auto& fn : model.cost_functions()) {
    auto& node = functions.add_element("function");
    node.set_attr("name", fn.name);
    node.set_attr("params", join(fn.parameters, ','));
    node.add_cdata(fn.body);
  }

  auto& diagrams = root.add_element("diagrams");
  for (const auto& diagram : model.diagrams()) {
    write_diagram(diagrams, *diagram);
  }
  return doc;
}

std::string to_xml(const uml::Model& model) {
  return xml::to_string(to_document(model));
}

void save(const uml::Model& model, const std::string& path) {
  xml::write_file(to_document(model), path);
}

uml::Model from_document(const xml::Document& doc) {
  if (!doc.has_root() || doc.root().name() != "prophet:model") {
    fail("not a prophet model document (root must be <prophet:model>)");
  }
  const auto& root = doc.root();
  // A declared schema must be a version this reader understands: a
  // malformed or future value would otherwise be silently ignored and
  // misread as schema 1.  Absent means 1 (pre-versioning documents).
  if (auto schema = root.attr("schema"); schema && !schema->empty()) {
    char* end = nullptr;
    const std::string text(*schema);
    const long version = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || version < 1) {
      fail("malformed schema version '" + text + "'");
    }
    if (version > kSchemaVersion) {
      fail("document schema version " + text +
           " is newer than this reader (max " +
           std::to_string(kSchemaVersion) + ")");
    }
  }
  uml::Model model(root.attr_or("name", ""));

  if (const auto* profile = root.child("profile")) {
    model.set_profile(read_profile(*profile));
  }

  if (const auto* variables = root.child("variables")) {
    for (const auto* node : variables->children_named("variable")) {
      const std::string type_text = required_attr(*node, "type");
      const std::string scope_text = required_attr(*node, "scope");
      const auto type = uml::variable_type_from_string(type_text);
      const auto scope = uml::variable_scope_from_string(scope_text);
      if (!type) {
        fail("unknown variable type '" + type_text + "'");
      }
      if (!scope) {
        fail("unknown variable scope '" + scope_text + "'");
      }
      model.add_variable(uml::Variable{required_attr(*node, "name"), *type,
                                       *scope, node->attr_or("init", "")});
    }
  }

  if (const auto* functions = root.child("functions")) {
    for (const auto* node : functions->children_named("function")) {
      model.add_cost_function(
          uml::CostFunction{required_attr(*node, "name"),
                            split(node->attr_or("params", ""), ','),
                            node->text()});
    }
  }

  if (const auto* diagrams = root.child("diagrams")) {
    for (const auto* node : diagrams->children_named("diagram")) {
      model.add_diagram(read_diagram(*node));
    }
  }

  if (auto main = root.attr("main"); main && !main->empty()) {
    model.set_main_diagram(std::string(*main));
  }
  return model;
}

uml::Model from_xml(std::string_view text) {
  return from_document(xml::parse(text));
}

uml::Model load(const std::string& path) {
  return from_document(xml::parse_file(path));
}

bool equivalent(const uml::Model& a, const uml::Model& b) {
  // Serializing both sides and comparing DOMs gives a total structural
  // comparison for free and guarantees `equivalent` can never drift from
  // what the writer actually persists.
  return xml::deep_equal(to_document(a), to_document(b));
}

}  // namespace prophet::xmi
