// Factories for the built-in workload library, plus their registration
// in Registry::builtin().
//
// Construction style: the linear/structured models use StepBuilder (the
// scope-checked layer), the generator-style ones (synthetic, random)
// drive DiagramBuilder directly.  Node-id assignment of the sample model
// is load-bearing: tests pin A1 to "n6" (the Fig. 8 numbering), so the
// SA sub-diagram is built before the main diagram, exactly like the
// paper presents it.
#include "prophet/models/builtins.hpp"

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "prophet/models/registry.hpp"
#include "prophet/sim/random.hpp"
#include "prophet/uml/builder.hpp"

namespace prophet::models {
namespace {

/// Full-precision numeric literal (std::to_string truncates to 6 decimal
/// places, which collapses small calibrated op times to "0.000000").
std::string number_literal(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

}  // namespace

uml::Model sample_model() {
  uml::ModelBuilder mb("SampleModel");
  // "variables GV and P are specified as global variables of the model"
  mb.global("GV", uml::VariableType::Real, "0");
  mb.global("P", uml::VariableType::Real, "16");
  // Cost functions in the spirit of Fig. 8a ("these cost functions are
  // not derived from a real-world program"); FSA2 takes pid (Fig. 8a).
  mb.function("FA1", {}, "0.000001 * P * P + 0.001");
  mb.function("FA2", {}, "0.5 * FA1()");
  mb.function("FA4", {}, "0.002");
  mb.function("FSA1", {}, "0.0001 * P");
  mb.function("FSA2", {"pid"}, "0.0005 * pid + 0.001");

  // Sub-diagram SA (the undocked diagram of Fig. 7a), built first so
  // node ids stay stable (SA1 = n2, ..., A1 = n6 — the Fig. 8 numbering).
  uml::StepBuilder sa(mb, "SA");
  sa.compute("SA1", "FSA1()")
      .tag(uml::tag::kId, uml::TagValue(std::int64_t{4}))
      .compute("SA2", "FSA2(pid)")
      .tag(uml::tag::kId, uml::TagValue(std::int64_t{5}))
      .done();

  uml::StepBuilder main(mb, "main");
  main.compute("A1", "FA1()")
      .code("GV = 3; P = 16;")
      .tag(uml::tag::kId, uml::TagValue(std::int64_t{1}))
      .begin_branch()
      .when("GV > 0")
      .call("SA", sa.diagram_id())
      .otherwise()
      .compute("A2", "FA2()")
      .tag(uml::tag::kId, uml::TagValue(std::int64_t{2}))
      .end_branch()
      .compute("A4", "FA4()")
      .tag(uml::tag::kId, uml::TagValue(std::int64_t{3}))
      .done();

  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.diagram_id());
  return model;
}

uml::Model kernel6_model(std::int64_t n, std::int64_t m, double flop_time) {
  uml::ModelBuilder mb("Kernel6");
  mb.global("N", uml::VariableType::Integer, std::to_string(n));
  mb.global("M", uml::VariableType::Integer, std::to_string(m));
  mb.global("c", uml::VariableType::Real, number_literal(flop_time));
  // TK6 = FK6(): M general-linear-recurrence sweeps of N*(N-1)/2 updates.
  mb.function("FK6", {}, "M * (N * (N - 1) / 2) * c");

  uml::StepBuilder main(mb, "main");
  main.compute("Kernel6", "FK6()").type("SAMPLE").done();
  return std::move(mb).build();
}

uml::Model kernel6_detailed_model(std::int64_t n, std::int64_t m,
                                  double flop_time) {
  uml::ModelBuilder mb("Kernel6Detailed");
  mb.global("N", uml::VariableType::Integer, std::to_string(n));
  mb.global("M", uml::VariableType::Integer, std::to_string(m));
  mb.global("c", uml::VariableType::Real, number_literal(flop_time));

  // The Fig. 3b loop nest: DO L = 1, M / DO i = 2, N / DO k = 1, i-1,
  // innermost body the W(i) multiply-add.  With the 0-based middle loop
  // variable i2 (i = i2+2), the inner trip count is i-1 = i2+1.
  uml::StepBuilder main(mb, "main");
  main.begin_loop("LLoop", "M", "L")
      .begin_loop("ILoop", "N - 1", "i2")
      .begin_loop("KLoop", "i2 + 1", "k")
      .compute("W", "c")
      .end_loop()
      .end_loop()
      .end_loop()
      .done();
  return std::move(mb).build();
}

uml::Model pingpong_model(double bytes, std::int64_t rounds) {
  uml::ModelBuilder mb("PingPong");
  mb.global("S", uml::VariableType::Real, number_literal(bytes));

  // One round: rank 0 sends then receives; rank 1 receives then sends.
  uml::StepBuilder main(mb, "main");
  main.begin_loop("Rounds", std::to_string(rounds))
      .begin_branch()
      .when("pid == 0")
      .send("Ping", "1", "S")
      .recv("PongRecv", "1", "S")
      .otherwise()
      .recv("PingRecv", "0", "S")
      .send("Pong", "0", "S")
      .end_branch()
      .end_loop()
      .done();
  return std::move(mb).build();
}

uml::Model synthetic_model(int activities, int actions) {
  uml::ModelBuilder mb("Synthetic");
  mb.global("P", uml::VariableType::Real, "8");
  mb.function("F0", {}, "0.0001 * P");
  mb.function("F1", {}, "F0() + 0.001");

  std::vector<std::string> sub_ids;
  sub_ids.reserve(static_cast<std::size_t>(activities));
  for (int a = 0; a < activities; ++a) {
    uml::DiagramBuilder sub = mb.diagram("sub" + std::to_string(a));
    uml::NodeRef previous = sub.initial();
    for (int i = 0; i < actions; ++i) {
      uml::NodeRef action =
          sub.action("A" + std::to_string(a) + "_" + std::to_string(i));
      action.cost(i % 2 == 0 ? "F0()" : "F1()");
      sub.flow(previous, action);
      previous = action;
    }
    uml::NodeRef fin = sub.final_node();
    sub.flow(previous, fin);
    sub_ids.push_back(sub.id());
  }

  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef previous = main.initial();
  for (int a = 0; a < activities; ++a) {
    uml::NodeRef activity =
        main.activity("Act" + std::to_string(a), sub_ids[static_cast<std::size_t>(a)]);
    main.flow(previous, activity);
    previous = activity;
  }
  // A final guarded branch exercises decision handling in every consumer.
  uml::NodeRef decision = main.decision();
  uml::NodeRef left = main.action("Tail0").cost("F0()");
  uml::NodeRef right = main.action("Tail1").cost("F1()");
  uml::NodeRef merge = main.merge();
  uml::NodeRef fin = main.final_node();
  main.flow(previous, decision);
  main.flow(decision, left, "P > 4");
  main.flow(decision, right, "else");
  main.flow(left, merge);
  main.flow(right, merge);
  main.flow(merge, fin);

  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  return model;
}

uml::Model random_model(std::uint64_t seed, int size) {
  sim::Rng rng(seed);
  uml::ModelBuilder mb("Random" + std::to_string(seed));
  mb.global("GA", uml::VariableType::Real,
            number_literal(rng.uniform(0.5, 4.0)));
  mb.global("GB", uml::VariableType::Real,
            number_literal(rng.uniform(-2.0, 2.0)));
  mb.global("GN", uml::VariableType::Integer,
            std::to_string(rng.uniform_int(2, 5)));
  mb.local("LV", uml::VariableType::Real, "GA + 1");
  mb.function("FBase", {}, number_literal(rng.uniform(1e-5, 1e-3)) +
                               " * GA + 1e-4");
  mb.function("FScaled", {"x"}, "FBase() * (x + 1)");
  mb.function("FPid", {"pid"}, "1e-4 * pid + FBase()");

  int made = 0;
  int diagram_counter = 0;
  // Leaf diagrams built first so composites can reference them.
  std::vector<std::string> leaves;

  auto leaf_sequence = [&](int actions) {
    uml::DiagramBuilder d =
        mb.diagram("leaf" + std::to_string(diagram_counter++));
    uml::NodeRef previous = d.initial();
    for (int i = 0; i < actions; ++i) {
      uml::NodeRef action =
          d.action("L" + std::to_string(diagram_counter) + "_" +
                   std::to_string(i));
      switch (rng.uniform_int(0, 3)) {
        case 0:
          action.cost("FBase()");
          break;
        case 1:
          action.cost("FScaled(" + std::to_string(rng.uniform_int(0, 3)) +
                      ")");
          break;
        case 2:
          action.cost("FPid(pid)");
          break;
        default:
          action.cost(number_literal(rng.uniform(1e-5, 1e-3)));
          break;
      }
      if (rng.bernoulli(0.25)) {
        action.code("GB = GA * " +
                    std::to_string(rng.uniform_int(1, 4)) + ";");
      }
      d.flow(previous, action);
      previous = action;
      ++made;
    }
    uml::NodeRef fin = d.final_node();
    d.flow(previous, fin);
    leaves.push_back(d.id());
    return d.id();
  };

  const int leaf_count = 2 + static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < leaf_count && made < size; ++i) {
    leaf_sequence(1 + static_cast<int>(rng.uniform_int(1, 4)));
  }

  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef previous = main.initial();
  int main_elements = 0;
  while (made < size || main_elements == 0) {
    const auto choice = rng.uniform_int(0, 3);
    if (choice == 0) {
      uml::NodeRef action = main.action("M" + std::to_string(made));
      action.cost("FScaled(GN)");
      main.flow(previous, action);
      previous = action;
      ++made;
      ++main_elements;
    } else if (choice == 1 && !leaves.empty()) {
      const auto& leaf =
          leaves[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(leaves.size()) - 1))];
      uml::NodeRef activity =
          main.activity("Act" + std::to_string(made), leaf);
      main.flow(previous, activity);
      previous = activity;
      ++made;
      ++main_elements;
    } else if (choice == 2 && !leaves.empty()) {
      const auto& leaf =
          leaves[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(leaves.size()) - 1))];
      uml::NodeRef loop =
          main.loop("Loop" + std::to_string(made), leaf,
                    std::to_string(rng.uniform_int(1, 4)), "it");
      main.flow(previous, loop);
      previous = loop;
      ++made;
      ++main_elements;
    } else {
      // Guarded decision with else edge; each branch a single action.
      uml::NodeRef decision = main.decision("D" + std::to_string(made));
      uml::NodeRef yes = main.action("Y" + std::to_string(made));
      yes.cost("FBase()");
      uml::NodeRef no = main.action("N" + std::to_string(made));
      no.cost("FBase() * 2");
      uml::NodeRef merge = main.merge();
      const char* guards[] = {"GB > 0", "GA > 1", "pid % 2 == 0",
                              "GN >= 3"};
      main.flow(previous, decision);
      main.flow(decision, yes,
                guards[rng.uniform_int(0, 3)]);
      main.flow(decision, no, "else");
      main.flow(yes, merge);
      main.flow(no, merge);
      previous = merge;
      made += 2;
      ++main_elements;
    }
  }
  uml::NodeRef fin = main.final_node();
  main.flow(previous, fin);

  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  return model;
}

uml::Model stencil2d_model(std::int64_t n, std::int64_t iters,
                           double flop_time) {
  uml::ModelBuilder mb("Stencil2D");
  mb.global("N", uml::VariableType::Integer, std::to_string(n));
  mb.global("ITERS", uml::VariableType::Integer, std::to_string(iters));
  mb.global("c", uml::VariableType::Real, number_literal(flop_time));
  // Block row distribution: each rank owns ceil(N / np) rows and updates
  // them at 5 flops per cell; one halo row is 8N bytes of doubles.
  mb.function("FRows", {}, "ceil(N / np)");
  mb.function("FInterior", {}, "FRows() * N * 5 * c");
  mb.function("FHalo", {}, "8 * N");

  uml::StepBuilder main(mb, "main");
  main.begin_loop("Sweep", "ITERS")
      .begin_branch()
      .when("pid > 0")
      .send("SendUp", "pid - 1", "FHalo()", 1)
      .otherwise()
      .end_branch()
      .begin_branch()
      .when("pid < np - 1")
      .send("SendDown", "pid + 1", "FHalo()", 2)
      .otherwise()
      .end_branch()
      .begin_branch()
      .when("pid < np - 1")
      .recv("RecvUp", "pid + 1", "FHalo()", 1)
      .otherwise()
      .end_branch()
      .begin_branch()
      .when("pid > 0")
      .recv("RecvDown", "pid - 1", "FHalo()", 2)
      .otherwise()
      .end_branch()
      .compute("Update", "FInterior()")
      .end_loop()
      .done();
  return std::move(mb).build();
}

uml::Model allreduce_model(double bytes, double flop_time) {
  uml::ModelBuilder mb("AllReduceRounds");
  mb.global("S", uml::VariableType::Real, number_literal(bytes));
  mb.global("c", uml::VariableType::Real, number_literal(flop_time));
  // Combining S bytes of doubles costs one flop per element.
  mb.function("FCombine", {}, "(S / 8) * c");

  // Bruck-style circular shift: round r sends to (pid + 2^r) mod np and
  // receives from (pid - 2^r) mod np; ceil(log2(np)) rounds reach
  // everyone for ANY np (2^r mod np is never 0 because 2^r < np), so no
  // rank ever messages itself.  np = 1 takes zero rounds.
  uml::StepBuilder main(mb, "main");
  main.compute("LocalReduce", "FCombine()")
      .begin_loop("Round", "ceil(log2(np))", "r")
      .send("ShiftSend", "(pid + pow(2, r)) % np", "S", 3)
      .recv("ShiftRecv", "(pid - pow(2, r) + np) % np", "S", 3)
      .compute("Combine", "FCombine()")
      .end_loop()
      .done();
  return std::move(mb).build();
}

uml::Model masterworker_model(std::int64_t tasks, double light_cost,
                              double heavy_cost, double task_bytes,
                              double result_bytes) {
  uml::ModelBuilder mb("MasterWorker");
  mb.global("T", uml::VariableType::Integer, std::to_string(tasks));
  mb.global("TB", uml::VariableType::Real, number_literal(task_bytes));
  mb.global("RB", uml::VariableType::Real, number_literal(result_bytes));
  mb.global("CL", uml::VariableType::Real, number_literal(light_cost));
  mb.global("CH", uml::VariableType::Real, number_literal(heavy_cost));
  // Block distribution of T tasks over the np-1 workers: worker p
  // (1-based) takes floor(T / W) tasks plus one of the T mod W leftovers.
  mb.function("FTasks", {"p"},
              "floor(T / (np - 1)) + ((p <= T % (np - 1)) ? 1 : 0)");

  // Every fourth task is heavy; the matching `prob` tags (0.25 / 0.75)
  // let the analytic backend take the expectation per task while the
  // simulator resolves the guard concretely — the two agree exactly
  // whenever a batch size is a multiple of the period.
  const auto task_mix = [](uml::StepBuilder& steps, const char* suffix) {
    steps.begin_branch()
        .when("t % 4 == 0", 0.25)
        .compute(std::string("Heavy") + suffix, "CH")
        .otherwise(0.75)
        .compute(std::string("Light") + suffix, "CL")
        .end_branch();
  };

  uml::StepBuilder main(mb, "main");
  main.begin_branch("Role");
  main.when("np == 1");  // the degenerate farm: grind everything locally
  main.begin_loop("LocalTasks", "T", "t");
  task_mix(main, "Local");
  main.end_loop();
  main.when("pid == 0");  // master: dispatch one batch per worker, collect
  main.begin_loop("Dispatch", "np - 1", "w");
  main.send("TaskBatch", "w + 1", "TB * FTasks(w + 1)", 10);
  main.end_loop();
  main.begin_loop("Collect", "np - 1", "w");
  main.recv("Result", "w + 1", "RB", 11);
  main.end_loop();
  main.otherwise();  // worker: receive my batch, grind it, send the result
  main.recv("TaskRecv", "0", "TB * FTasks(pid)", 10);
  main.begin_loop("Work", "FTasks(pid)", "t");
  task_mix(main, "");
  main.end_loop();
  main.send("ResultSend", "0", "RB", 11);
  main.end_branch();
  main.done();
  return std::move(mb).build();
}

uml::Model pipeline_model(std::int64_t items, double stage_cost,
                          double item_bytes) {
  uml::ModelBuilder mb("StagePipeline");
  mb.global("B", uml::VariableType::Integer, std::to_string(items));
  mb.global("C", uml::VariableType::Real, number_literal(stage_cost));
  mb.global("S", uml::VariableType::Real, number_literal(item_bytes));

  // Every rank is one stage; items stream rank -> rank + 1.  The first
  // stage only produces, the last only consumes; fill/drain skew makes
  // the makespan (np + B - 1) stage times deep.
  uml::StepBuilder main(mb, "main");
  main.begin_loop("Items", "B", "it")
      .begin_branch()
      .when("pid > 0")
      .recv("StageIn", "pid - 1", "S", 4)
      .otherwise()
      .end_branch()
      .compute("Stage", "C")
      .begin_branch()
      .when("pid < np - 1")
      .send("StageOut", "pid + 1", "S", 4)
      .otherwise()
      .end_branch()
      .end_loop()
      .done();
  return std::move(mb).build();
}

uml::Model spin_model(double trips) {
  uml::ModelBuilder mb("Spin");
  mb.global("TRIPS", uml::VariableType::Real, number_literal(trips));

  // The body cost references the loop variable, so the analytic walker
  // cannot prove iteration-independence and collapse the loop to O(1) —
  // both backends pay per trip, which is the point: this model exists to
  // exercise execution budgets, not to predict anything.
  uml::StepBuilder main(mb, "main");
  main.begin_loop("SpinLoop", "TRIPS", "it")
      .compute("Burn", "1e-12 * it")
      .end_loop()
      .done();
  return std::move(mb).build();
}

// --- Registration ---------------------------------------------------------

namespace {

double knob(const KnobValues& values, std::string_view name) {
  const auto it = values.find(name);
  if (it == values.end()) {
    // ModelInfo::make always passes a complete assignment; this guards
    // direct factory invocations with a partial map.
    throw std::invalid_argument("missing knob value '" + std::string(name) +
                                "'");
  }
  return it->second;
}

std::int64_t int_knob(const KnobValues& values, std::string_view name) {
  return static_cast<std::int64_t>(knob(values, name));
}

machine::SystemParameters with_processes(int np) {
  machine::SystemParameters params;
  params.processes = np;
  return params;
}

Registry make_builtin_registry() {
  Registry registry;
  registry.add({
      .name = "sample",
      .description = "the paper's Sec. 4 sample model (Fig. 7): guarded "
                     "branch into sub-activity SA, cost functions FA1..FSA2",
      .comm_pattern = "none",
      .scaling = "constant work per process; FSA2(pid) adds a linear "
                 "pid-dependent term",
      .knobs = {},
      .default_params = {},
      .default_grid = "np=1..8:*2 nodes=1,2 ppn=1,2",
      .factory = [](const KnobValues&) { return sample_model(); },
  });
  registry.add({
      .name = "kernel6",
      .description = "Livermore kernel 6 collapsed to one <<action+>> "
                     "with cost function FK6 (Fig. 3c)",
      .comm_pattern = "none",
      .scaling = "T = m * n * (n - 1) / 2 * c per process, embarrassingly "
                 "parallel",
      .knobs = {{"n", 64, "recurrence length (inner loop bound)"},
                {"m", 16, "number of sweeps (outer loop bound)"},
                {"c", 1e-8, "seconds per inner-loop operation"}},
      .default_params = {},
      .default_grid = "np=1..8:*2 nodes=1,2 ppn=1,2",
      .factory =
          [](const KnobValues& k) {
            return kernel6_model(int_knob(k, "n"), int_knob(k, "m"),
                                 knob(k, "c"));
          },
  });
  registry.add({
      .name = "kernel6-detailed",
      .description = "Livermore kernel 6 as the full three-level "
                     "<<loop+>> nest (Fig. 3b), one W update per "
                     "innermost trip",
      .comm_pattern = "none",
      .scaling = "m * n * (n - 1) / 2 modeled elements — the evaluation-"
                 "cost extreme the paper collapses away",
      .knobs = {{"n", 32, "recurrence length (inner loop bound)"},
                {"m", 4, "number of sweeps (outer loop bound)"},
                {"c", 1e-8, "seconds per inner-loop operation"}},
      .default_params = {},
      .default_grid = "np=1,4",
      .factory =
          [](const KnobValues& k) {
            return kernel6_detailed_model(int_knob(k, "n"), int_knob(k, "m"),
                                          knob(k, "c"));
          },
  });
  registry.add({
      .name = "pingpong",
      .description = "two ranks exchanging `rounds` ping-pong message "
                     "pairs of `bytes` each",
      .comm_pattern = "point-to-point request/reply between ranks 0 and 1",
      .scaling = "T = 2 * rounds * (latency + bytes / bandwidth + "
                 "overhead); needs np = 2",
      .knobs = {{"bytes", 1024, "message payload in bytes"},
                {"rounds", 8, "number of ping-pong exchanges"}},
      .default_params = with_processes(2),
      .default_grid = "np=2 nodes=1,2 ppn=1,2",
      .factory =
          [](const KnobValues& k) {
            return pingpong_model(knob(k, "bytes"), int_knob(k, "rounds"));
          },
  });
  registry.add({
      .name = "synthetic",
      .description = "deterministic activity/action lattice exercising "
                     "composite traversal (bench workload)",
      .comm_pattern = "none",
      .scaling = "activities * actions sequential cost-function calls",
      .knobs = {{"activities", 4, "number of <<activity+>> sub-diagrams"},
                {"actions", 8, "<<action+>> elements per sub-diagram"}},
      .default_params = {},
      .default_grid = "np=1,4 nodes=1,2",
      .factory =
          [](const KnobValues& k) {
            return synthetic_model(static_cast<int>(knob(k, "activities")),
                                   static_cast<int>(knob(k, "actions")));
          },
  });
  registry.add({
      .name = "random",
      .description = "seeded random structured model (sequences, guarded "
                     "decisions, nested activities, counted loops) — the "
                     "property-test workload",
      .comm_pattern = "none",
      .scaling = "~`size` performance elements; deterministic per seed",
      .knobs = {{"seed", 42, "RNG seed selecting the model shape"},
                {"size", 20, "approximate number of performance elements"}},
      .default_params = {},
      .default_grid = "np=1,3,8 nodes=1,2",
      .factory =
          [](const KnobValues& k) {
            return random_model(
                static_cast<std::uint64_t>(knob(k, "seed")),
                static_cast<int>(knob(k, "size")));
          },
  });
  registry.add({
      .name = "stencil2d",
      .description = "2-D Jacobi stencil, 1-D row decomposition: per "
                     "sweep each rank trades one halo row with both "
                     "neighbours, then updates ceil(n/np) rows",
      .comm_pattern = "1-D halo exchange (non-blocking sends, then recvs, "
                      "per sweep)",
      .scaling = "T ~ iters * (ceil(n/np) * n * 5c + 2 * (latency + "
                 "8n/bandwidth)); compute shrinks with np, halo does not",
      .knobs = {{"n", 128, "grid edge length (n x n cells)"},
                {"iters", 8, "number of Jacobi sweeps"},
                {"c", 1e-7, "seconds per cell flop"}},
      .default_params = with_processes(4),
      .default_grid = "np=1..8:*2 nodes=1,2 ppn=1,2",
      .factory =
          [](const KnobValues& k) {
            return stencil2d_model(int_knob(k, "n"), int_knob(k, "iters"),
                                   knob(k, "c"));
          },
  });
  registry.add({
      .name = "allreduce",
      .description = "allreduce decomposed into explicit Bruck-style "
                     "circular-shift rounds (send/recv/combine), any np",
      .comm_pattern = "ceil(log2(np)) circular-shift rounds: round r "
                      "sends to (pid + 2^r) mod np",
      .scaling = "T ~ ceil(log2(np)) * (latency + bytes/bandwidth + "
                 "bytes/8 * c)",
      .knobs = {{"bytes", 65536, "reduction payload in bytes"},
                {"c", 1e-9, "seconds per combined element (8 bytes)"}},
      // ppn=8 keeps the default grid out of the oversubscribed regime:
      // the rounds are transfer-dominated, where the analytic node-
      // bottleneck bound is loosest (see docs/analytic.md).
      .default_params = with_processes(4),
      .default_grid = "np=1..8 nodes=1,2,4 ppn=8",
      .factory =
          [](const KnobValues& k) {
            return allreduce_model(knob(k, "bytes"), knob(k, "c"));
          },
  });
  registry.add({
      .name = "masterworker",
      .description = "probabilistic task farm: rank 0 dispatches block "
                     "task batches, workers grind heavy/light tasks "
                     "(prob-tagged 1:3 mix) and return results",
      .comm_pattern = "star: master send/recv with every worker; no "
                      "worker-to-worker traffic",
      .scaling = "T ~ ceil(tasks/(np-1)) * (0.25 heavy + 0.75 light); "
                 "np = 1 runs the farm locally",
      .knobs = {{"tasks", 240, "total task count"},
                {"light", 2e-4, "seconds per light task (prob 0.75)"},
                {"heavy", 8e-4, "seconds per heavy task (prob 0.25)"},
                {"task_bytes", 512, "payload per task in the batch message"},
                {"result_bytes", 64, "result message size"}},
      .default_params = with_processes(4),
      .default_grid = "np=1..8 nodes=1,2",
      .factory =
          [](const KnobValues& k) {
            return masterworker_model(int_knob(k, "tasks"),
                                      knob(k, "light"), knob(k, "heavy"),
                                      knob(k, "task_bytes"),
                                      knob(k, "result_bytes"));
          },
  });
  registry.add({
      .name = "pipeline",
      .description = "stage-parallel dataflow: every rank is one stage, "
                     "`items` stream rank -> rank+1 with fill/drain skew",
      .comm_pattern = "nearest-neighbour forward chain (rank i -> i+1), "
                      "one message per item per hop",
      .scaling = "T ~ (np + items - 1) * stage_cost + transfer costs; "
                 "throughput saturates at one item per stage_cost",
      .knobs = {{"items", 32, "items streamed through the pipeline"},
                {"stage_cost", 2e-4, "seconds of compute per stage"},
                {"bytes", 4096, "bytes forwarded per item"}},
      .default_params = with_processes(4),
      .default_grid = "np=1..8:*2 nodes=1,2 ppn=1,2",
      .factory =
          [](const KnobValues& k) {
            return pipeline_model(int_knob(k, "items"),
                                  knob(k, "stage_cost"), knob(k, "bytes"));
          },
  });
  registry.add({
      .name = "spin",
      .description = "diagnostic runaway loop (hidden): `trips` "
                     "iterations whose cost depends on the loop variable, "
                     "so no backend can collapse it — exercise for "
                     "execution budgets and timeouts",
      .comm_pattern = "none",
      .scaling = "evaluation time proportional to trips; with trips=1e12 "
                 "it only terminates by tripping a guard limit",
      .knobs = {{"trips", 1000, "loop iteration count"}},
      .default_params = {},
      .default_grid = "np=1",
      .factory = [](const KnobValues& k) {
        return spin_model(knob(k, "trips"));
      },
      .hidden = true,
  });
  return registry;
}

}  // namespace

const Registry& Registry::builtin() {
  static const Registry registry = make_builtin_registry();
  return registry;
}

}  // namespace prophet::models
