#include "prophet/models/registry.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace prophet::models {
namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

std::string knob_list(const ModelInfo& info) {
  std::string out;
  for (const Knob& knob : info.knobs) {
    if (!out.empty()) {
      out += ", ";
    }
    out += knob.name;
  }
  return out.empty() ? "none" : out;
}

/// Compact numeric rendering for listings: integers without trailing
/// zeros, everything else in shortest round-trip form.
std::string format_value(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

uml::Model ModelInfo::make(const KnobValues& overrides) const {
  KnobValues merged;
  for (const Knob& knob : knobs) {
    merged[knob.name] = knob.value;
  }
  for (const auto& [name, value] : overrides) {
    const auto it = merged.find(name);
    if (it == merged.end()) {
      throw std::invalid_argument("model '@" + this->name +
                                  "' has no knob '" + name +
                                  "' (knobs: " + knob_list(*this) + ")");
    }
    it->second = value;
  }
  return factory(merged);
}

bool is_reference(std::string_view text) {
  return !text.empty() && text.front() == '@';
}

ModelReference parse_reference(std::string_view text) {
  const std::string original(text);
  if (!is_reference(text)) {
    throw std::invalid_argument("'" + original +
                                "' is not a model reference (expected "
                                "@name or @name(knob=value, ...))");
  }
  text.remove_prefix(1);
  ModelReference reference;
  const auto paren = text.find('(');
  if (paren == std::string_view::npos) {
    reference.name = std::string(trim(text));
    if (reference.name.empty()) {
      throw std::invalid_argument("model reference '" + original +
                                  "' has an empty name");
    }
    return reference;
  }
  reference.name = std::string(trim(text.substr(0, paren)));
  if (reference.name.empty()) {
    throw std::invalid_argument("model reference '" + original +
                                "' has an empty name");
  }
  std::string_view args = text.substr(paren + 1);
  if (args.empty() || args.back() != ')') {
    throw std::invalid_argument("model reference '" + original +
                                "' is missing the closing ')'");
  }
  args.remove_suffix(1);
  while (!args.empty()) {
    const auto comma = args.find(',');
    std::string_view item = trim(args.substr(0, comma));
    args = comma == std::string_view::npos ? std::string_view{}
                                           : args.substr(comma + 1);
    if (item.empty()) {
      throw std::invalid_argument("model reference '" + original +
                                  "' has an empty knob assignment");
    }
    const auto equals = item.find('=');
    if (equals == std::string_view::npos) {
      throw std::invalid_argument("knob assignment '" + std::string(item) +
                                  "' in '" + original +
                                  "' is not of the form knob=value");
    }
    const std::string name(trim(item.substr(0, equals)));
    const std::string value_text(trim(item.substr(equals + 1)));
    if (name.empty() || value_text.empty()) {
      throw std::invalid_argument("knob assignment '" + std::string(item) +
                                  "' in '" + original +
                                  "' is not of the form knob=value");
    }
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') {
      throw std::invalid_argument("knob '" + name + "' in '" + original +
                                  "': '" + value_text +
                                  "' is not a number");
    }
    if (!reference.knobs.emplace(name, value).second) {
      throw std::invalid_argument("knob '" + name + "' in '" + original +
                                  "' is assigned twice");
    }
  }
  return reference;
}

Registry& Registry::add(ModelInfo info) {
  if (info.name.empty()) {
    throw std::invalid_argument("registry entries need a name");
  }
  if (!info.factory) {
    throw std::invalid_argument("registry entry '" + info.name +
                                "' has no factory");
  }
  if (find(info.name) != nullptr) {
    throw std::invalid_argument("registry already has a model named '" +
                                info.name + "'");
  }
  entries_.push_back(std::move(info));
  return *this;
}

const ModelInfo* Registry::find(std::string_view name) const {
  for (const ModelInfo& entry : entries_) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

const ModelInfo& Registry::at(std::string_view name) const {
  const ModelInfo* entry = find(name);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown built-in model '@" +
                                std::string(name) +
                                "' (available: " + available() + ")");
  }
  return *entry;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const ModelInfo& entry : entries_) {
    if (entry.hidden) {
      continue;
    }
    out.push_back(entry.name);
  }
  return out;
}

uml::Model Registry::make(std::string_view reference) const {
  const ModelReference parsed = parse_reference(reference);
  return at(parsed.name).make(parsed.knobs);
}

std::string Registry::available() const {
  std::string out;
  for (const ModelInfo& entry : entries_) {
    if (entry.hidden) {
      continue;
    }
    if (!out.empty()) {
      out += ", ";
    }
    out += "@" + entry.name;
  }
  return out;
}

std::string Registry::describe() const {
  std::ostringstream out;
  for (const ModelInfo& entry : entries_) {
    if (entry.hidden) {
      continue;
    }
    out << "@" << entry.name << "\n";
    out << "  " << entry.description << "\n";
    out << "  comm:    " << entry.comm_pattern << "\n";
    out << "  scaling: " << entry.scaling << "\n";
    out << "  knobs:   ";
    if (entry.knobs.empty()) {
      out << "none";
    } else {
      bool first = true;
      for (const Knob& knob : entry.knobs) {
        if (!first) {
          out << ", ";
        }
        first = false;
        out << knob.name << "=" << format_value(knob.value) << " ("
            << knob.description << ")";
      }
    }
    out << "\n";
    out << "  grid:    " << entry.default_grid << "\n";
  }
  return out.str();
}

}  // namespace prophet::models
