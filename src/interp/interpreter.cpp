#include "prophet/interp/interpreter.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <set>
#include <utility>

#include "prophet/expr/compile.hpp"
#include "prophet/expr/eval.hpp"
#include "prophet/expr/parser.hpp"
#include "prophet/uml/sysparams.hpp"

namespace prophet::interp {
namespace {

using uml::ActivityDiagram;
using uml::Model;
using uml::Node;
using uml::NodeKind;
using workload::ModelContext;

/// One `name = expression;` assignment of an associated code fragment
/// (parse-time form; lowered to a CompiledAssignment).
struct Assignment {
  std::string target;
  expr::ExprPtr value;
};

/// Integer-typed model variables truncate on assignment, exactly like the
/// `long` variables the code generator emits.
double coerce(uml::VariableType type, double value) {
  if (type == uml::VariableType::Integer) {
    return std::trunc(value);
  }
  return value;
}

/// Lexical scope of a model walker: the slot frame (copied by value so
/// fork branches and loop bodies snapshot their bindings) plus the base
/// of the per-process local storage for code-fragment writes, which
/// bypass loop shadowing exactly like the tree walker's locals map did.
struct Scope {
  std::vector<double*> frame;
  double* locals = nullptr;  // slot-indexed per-process storage, may be null
};

/// Splits a code fragment into `name = expr` assignments.
std::vector<Assignment> parse_code_fragment(const std::string& text,
                                            const std::string& where) {
  std::vector<Assignment> assignments;
  std::size_t start = 0;
  while (start < text.size()) {
    auto end = text.find(';', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    std::string statement = text.substr(start, end - start);
    start = end + 1;
    // Trim whitespace.
    const auto first = statement.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) {
      continue;
    }
    const auto last = statement.find_last_not_of(" \t\r\n");
    statement = statement.substr(first, last - first + 1);
    const auto equals = statement.find('=');
    // Reject '==' and missing '='.
    if (equals == std::string::npos || equals + 1 >= statement.size() ||
        statement[equals + 1] == '=') {
      throw InterpretError("code fragment at " + where +
                           ": statement '" + statement +
                           "' is not an assignment");
    }
    std::string target = statement.substr(0, equals);
    const auto target_end = target.find_last_not_of(" \t\r\n");
    target = target.substr(0, target_end + 1);
    try {
      assignments.push_back(
          {target, expr::parse(statement.substr(equals + 1))});
    } catch (const expr::SyntaxError& error) {
      throw InterpretError("code fragment at " + where + ": " +
                           error.what());
    }
  }
  return assignments;
}

/// The loop-variable name bound by a <<loop+>> node ("i" by default).
std::string loop_var_name(const Node& node) {
  std::string var = node.tag_string(uml::tag::kLoopVar);
  if (var.empty()) {
    var = "i";
  }
  return var;
}

}  // namespace

/// The immutable compiled form of a model.  Everything here is written
/// once, by the constructor, and only read afterwards — interpreters on
/// different threads share one Program without synchronization.
///
/// All expressions are lowered to slot-resolved bytecode against one
/// model-wide SymbolTable: declared variables, loop variables and the
/// structural system parameters (np/nt/nn/ppn) are slots; pid/tid/uid
/// are per-evaluation ambients (with slot fallbacks when a model name
/// shadows them); cost functions compile against the same slot space
/// plus their positional parameters, so one run-level frame serves every
/// function call.
class Interpreter::Program {
 public:
  std::optional<Model> owned;  // set by the owning compile() overload
  const Model* model = nullptr;

  /// A fragment assignment with its write target resolved at compile
  /// time (the tree walker resolved it per execution through two maps).
  struct CompiledAssignment {
    enum class Target { Local, Global, Undeclared };
    std::string name;
    Target target = Target::Undeclared;
    expr::Slot slot = 0;
    bool coerce_int = false;
    expr::Compiled value;
  };

  /// Everything the walker needs at one node, pre-resolved: uid plus the
  /// compiled programs of its expression tags and code fragment.
  struct NodePrograms {
    int uid = 0;
    std::optional<expr::Compiled> cost;
    std::optional<expr::Compiled> dest;
    std::optional<expr::Compiled> source;
    std::optional<expr::Compiled> size;
    std::optional<expr::Compiled> root;
    std::optional<expr::Compiled> iterations;
    std::optional<expr::Compiled> itercost;
    std::optional<expr::Compiled> num_threads;
    std::vector<CompiledAssignment> fragment;
    expr::Slot loop_var_slot = 0;  // Loop nodes only
  };

  /// Pre-parsed model variable (declaration order preserved).
  struct CompiledVariable {
    std::string name;
    expr::Slot slot = 0;
    uml::VariableScope scope = uml::VariableScope::Global;
    uml::VariableType type = uml::VariableType::Real;
    std::optional<expr::Compiled> initializer;  // absent: zero-init
  };

  expr::SymbolTable node_table;  // slots + pid/tid/uid ambients
  std::size_t nslots = 0;
  expr::Slot slot_np = 0, slot_nt = 0, slot_nn = 0, slot_ppn = 0;

  std::vector<CompiledVariable> variables;
  std::vector<expr::Compiled> functions;       // indexed by function id
  std::map<std::string, int> function_ids;     // introspection
  std::map<const Node*, NodePrograms> nodes;
  std::map<const uml::ControlFlow*, expr::Compiled> guards;
  std::map<std::string, int> uids;             // uid_of introspection

  double expr_compile_seconds = 0;
  std::size_t expr_programs = 0;

  explicit Program(const Model& m) : model(&m) {
    // ---- Phase 1: parse (error order matches the tree-walking build).
    struct ParsedVariable {
      const uml::Variable* decl = nullptr;
      expr::ExprPtr initializer;
    };
    std::vector<ParsedVariable> parsed_variables;
    for (const auto& variable : m.variables()) {
      ParsedVariable parsed;
      parsed.decl = &variable;
      if (!variable.initializer.empty()) {
        parsed.initializer = parse_checked(
            variable.initializer, "initializer of variable " + variable.name);
      }
      parsed_variables.push_back(std::move(parsed));
    }
    struct ParsedFunction {
      const uml::CostFunction* decl = nullptr;
      expr::ExprPtr body;
    };
    std::vector<ParsedFunction> parsed_functions;
    for (const auto& fn : m.cost_functions()) {
      parsed_functions.push_back(
          {&fn, parse_checked(fn.body, "cost function " + fn.name)});
    }
    // uid assignment: explicit `id` tags win; the rest get sequential
    // numbers skipping claimed values.
    std::set<int> claimed;
    for (const auto& diagram : m.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        if (auto id = node->tag(uml::tag::kId)) {
          if (const auto* value = std::get_if<std::int64_t>(&*id)) {
            uids[node->id()] = static_cast<int>(*value);
            claimed.insert(static_cast<int>(*value));
          }
        }
      }
    }
    int next = 1;
    std::map<const uml::ControlFlow*, expr::ExprPtr> parsed_guards;
    for (const auto& diagram : m.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        if (uids.find(node->id()) != uids.end()) {
          continue;
        }
        while (claimed.find(next) != claimed.end()) {
          ++next;
        }
        uids[node->id()] = next;
        claimed.insert(next);
      }
      for (const auto& edge : diagram->edges()) {
        if (edge->has_guard() && !edge->is_else()) {
          parsed_guards.emplace(edge.get(),
                                parse_checked(edge->guard(),
                                              "guard of edge " + edge->id()));
        }
      }
    }
    struct ParsedTag {
      std::string_view tag;
      expr::ExprPtr value;
    };
    std::map<const Node*, std::vector<ParsedTag>> parsed_tags;
    std::map<const Node*, std::vector<Assignment>> parsed_fragments;
    for (const auto& diagram : m.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        for (const auto tag_name :
             uml::expression_tags(node->stereotype())) {
          if (!node->has_tag(tag_name)) {
            continue;
          }
          const std::string text = node->tag_string(tag_name);
          if (text.empty()) {
            continue;
          }
          parsed_tags[node.get()].push_back(
              {tag_name,
               parse_checked(text, "tag '" + std::string(tag_name) +
                                       "' of node " + node->id())});
        }
        // <<action+>> cost tag is optional rather than an expression tag
        // with fixed semantics — handled by expression_tags already.
        if (node->has_tag(uml::tag::kCode)) {
          const std::string code = node->tag_string(uml::tag::kCode);
          if (!code.empty()) {
            parsed_fragments.emplace(node.get(),
                                     parse_code_fragment(
                                         code, "node " + node->id()));
          }
        }
        // Composite nodes must reference existing diagrams.
        if ((node->kind() == NodeKind::Activity ||
             node->kind() == NodeKind::Loop) &&
            m.diagram(node->subdiagram_id()) == nullptr) {
          throw InterpretError("node " + node->id() +
                               " references unknown diagram '" +
                               node->subdiagram_id() + "'");
        }
      }
    }
    if (m.main_diagram() == nullptr) {
      throw InterpretError("model has no resolvable main diagram");
    }

    // ---- Phase 2: build the slot space.  Every name that any dynamic
    // scope could bind gets exactly one slot; resolution precedence is
    // realized by which storage a frame entry points at.
    expr::SymbolTable base;
    slot_np = base.add_variable(std::string(uml::sysparam::kProcesses));
    slot_nt = base.add_variable(std::string(uml::sysparam::kThreads));
    slot_nn = base.add_variable(std::string(uml::sysparam::kNodes));
    slot_ppn =
        base.add_variable(std::string(uml::sysparam::kProcessorsPerNode));
    for (const auto& variable : m.variables()) {
      base.add_variable(variable.name);
    }
    for (const auto& diagram : m.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        if (node->kind() == NodeKind::Loop) {
          base.add_variable(loop_var_name(*node));
        }
      }
    }
    for (const auto& fn : m.cost_functions()) {
      function_ids[fn.name] = base.add_function(fn.name);
    }
    nslots = base.slot_count();

    node_table = base;
    node_table.bind_ambient(std::string(uml::sysparam::kProcessId),
                            expr::Ambient::Pid);
    node_table.bind_ambient(std::string(uml::sysparam::kThreadId),
                            expr::Ambient::Tid);
    node_table.bind_ambient(std::string(uml::sysparam::kElementUid),
                            expr::Ambient::Uid);

    // ---- Phase 3: lower everything to bytecode.
    for (auto& parsed : parsed_variables) {
      CompiledVariable compiled;
      compiled.name = parsed.decl->name;
      compiled.slot = *base.slot_of(parsed.decl->name);
      compiled.scope = parsed.decl->scope;
      compiled.type = parsed.decl->type;
      if (parsed.initializer != nullptr) {
        compiled.initializer = compile_timed(*parsed.initializer, node_table);
      }
      variables.push_back(std::move(compiled));
    }
    functions.reserve(parsed_functions.size());
    for (auto& parsed : parsed_functions) {
      // Function bodies see their parameters, globals and the structural
      // system parameters — never pid/tid/uid or locals, mirroring the
      // file-scope C++ functions of Fig. 8a.
      expr::SymbolTable fn_table = base;
      for (const auto& parameter : parsed.decl->parameters) {
        fn_table.add_parameter(parameter);
      }
      functions.push_back(compile_timed(*parsed.body, fn_table));
    }
    for (auto& [edge, guard] : parsed_guards) {
      guards.emplace(edge, compile_timed(*guard, node_table));
    }
    for (const auto& diagram : m.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        NodePrograms programs;
        programs.uid = uids.at(node->id());
        if (node->kind() == NodeKind::Loop) {
          programs.loop_var_slot = *base.slot_of(loop_var_name(*node));
        }
        if (const auto tags = parsed_tags.find(node.get());
            tags != parsed_tags.end()) {
          for (auto& [tag, value] : tags->second) {
            if (auto* member = tag_member(programs, tag)) {
              *member = compile_timed(*value, node_table);
            }
          }
        }
        if (const auto fragment = parsed_fragments.find(node.get());
            fragment != parsed_fragments.end()) {
          for (auto& assignment : fragment->second) {
            programs.fragment.push_back(
                compile_assignment(assignment, base, m));
          }
        }
        nodes.emplace(node.get(), std::move(programs));
      }
    }
  }

  [[nodiscard]] const NodePrograms& at(const Node& node) const {
    return nodes.at(&node);
  }

 private:
  static std::optional<expr::Compiled>* tag_member(NodePrograms& programs,
                                                   std::string_view tag) {
    if (tag == uml::tag::kCost) {
      return &programs.cost;
    }
    if (tag == uml::tag::kIterations) {
      return &programs.iterations;
    }
    if (tag == uml::tag::kDest) {
      return &programs.dest;
    }
    if (tag == uml::tag::kSource) {
      return &programs.source;
    }
    if (tag == uml::tag::kSize) {
      return &programs.size;
    }
    if (tag == uml::tag::kRoot) {
      return &programs.root;
    }
    if (tag == uml::tag::kNumThreads) {
      return &programs.num_threads;
    }
    if (tag == uml::tag::kIterCost) {
      return &programs.itercost;
    }
    return nullptr;  // no evaluation site reads other expression tags
  }

  [[nodiscard]] CompiledAssignment compile_assignment(
      Assignment& assignment, const expr::SymbolTable& base,
      const Model& m) {
    CompiledAssignment compiled;
    compiled.name = assignment.target;
    compiled.value = compile_timed(*assignment.value, node_table);
    // Static write-target resolution: the tree walker consulted the
    // per-process locals map first, then the globals map — both hold
    // exactly the declared variables of that scope.
    bool local = false;
    bool global = false;
    for (const auto& variable : m.variables()) {
      if (variable.name != assignment.target) {
        continue;
      }
      local = local || variable.scope == uml::VariableScope::Local;
      global = global || variable.scope == uml::VariableScope::Global;
    }
    if (local || global) {
      compiled.target = local ? CompiledAssignment::Target::Local
                              : CompiledAssignment::Target::Global;
      compiled.slot = *base.slot_of(assignment.target);
    }
    if (const uml::Variable* declared = m.variable(assignment.target)) {
      compiled.coerce_int = declared->type == uml::VariableType::Integer;
    }
    return compiled;
  }

  [[nodiscard]] expr::Compiled compile_timed(const expr::Expr& ast,
                                             const expr::SymbolTable& table) {
    const auto start = std::chrono::steady_clock::now();
    expr::Compiled program = expr::compile(ast, table);
    expr_compile_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    ++expr_programs;
    return program;
  }

  static expr::ExprPtr parse_checked(const std::string& text,
                                     const std::string& where) {
    try {
      return expr::parse(text);
    } catch (const expr::SyntaxError& error) {
      throw InterpretError(where + ": " + error.what());
    }
  }
};

/// Per-run state + the walking machinery over a shared immutable Program.
struct Interpreter::Impl final : expr::UserFunctions {
  std::shared_ptr<const Program> program;
  const Model* model = nullptr;  // == program->model, cached

  // Per-run state.  Globals live in a slot-indexed array shared by all
  // modeled processes of the run; the run frame binds global and
  // structural slots for cost-function bodies and as the template every
  // process frame starts from.
  std::vector<double> global_values;
  std::vector<double*> run_frame;
  double np = 1, nt = 1, nn = 1, ppn = 1;
  mutable int call_depth = 0;

  explicit Impl(std::shared_ptr<const Program> p)
      : program(std::move(p)), model(program->model) {
    // Pre-run frame: structural parameters at their defaults, globals
    // unbound (cost functions called before a run see exactly what the
    // tree walker's empty globals map gave them).
    global_values.assign(program->nslots, 0.0);
    run_frame.assign(program->nslots, nullptr);
    run_frame[program->slot_np] = &np;
    run_frame[program->slot_nt] = &nt;
    run_frame[program->slot_nn] = &nn;
    run_frame[program->slot_ppn] = &ppn;
  }

  // ---------------------------------------------------------------------
  // Expression evaluation
  // ---------------------------------------------------------------------

  [[nodiscard]] expr::EvalContext make_context(
      std::span<double* const> frame, int pid, int tid, int uid) const {
    expr::EvalContext ctx;
    ctx.frame = frame;
    ctx.functions = this;
    ctx.pid = static_cast<double>(pid);
    ctx.tid = static_cast<double>(tid);
    ctx.uid = static_cast<double>(uid);
    return ctx;
  }

  /// expr::UserFunctions: invoked by the VM for cost-function calls.
  /// Function bodies evaluate against the run frame (globals +
  /// structural parameters) plus the call's argument span.
  [[nodiscard]] double call(int id,
                            std::span<const double> args) const override {
    if (call_depth > 64) {
      throw InterpretError("cost-function call depth exceeded (cycle?)");
    }
    ++call_depth;
    expr::EvalContext ctx;
    ctx.frame = run_frame;
    ctx.args = args;
    ctx.functions = this;
    const double result = program->functions[static_cast<std::size_t>(id)]
                              .eval(ctx);
    --call_depth;
    return result;
  }

  /// Evaluates an optional tag program; absent tags are 0.0, evaluation
  /// errors carry the node/tag context (tree-walker message format).
  [[nodiscard]] double eval_tag(const std::optional<expr::Compiled>& tag,
                                std::string_view tag_name, const Node& node,
                                int uid, const Scope& scope,
                                const ModelContext& ctx) const {
    if (!tag.has_value()) {
      return 0.0;
    }
    try {
      return tag->eval(make_context(scope.frame, ctx.pid, ctx.tid, uid));
    } catch (const expr::EvalError& error) {
      throw InterpretError("node " + node.id() + ", tag '" +
                           std::string(tag_name) + "': " + error.what());
    }
  }

  void run_fragment(const Program::NodePrograms& programs, const Node& node,
                    Scope& scope, const ModelContext& ctx) {
    for (const auto& assignment : programs.fragment) {
      double value = 0;
      try {
        value = assignment.value.eval(
            make_context(scope.frame, ctx.pid, ctx.tid, programs.uid));
      } catch (const expr::EvalError& error) {
        throw InterpretError("code fragment at node " + node.id() + ": " +
                             error.what());
      }
      if (assignment.coerce_int) {
        value = std::trunc(value);
      }
      using Target = Program::CompiledAssignment::Target;
      switch (assignment.target) {
        case Target::Local:
          if (scope.locals != nullptr) {
            scope.locals[assignment.slot] = value;
            continue;
          }
          break;  // no locals in scope: undeclared here
        case Target::Global:
          global_values[assignment.slot] = value;
          continue;
        case Target::Undeclared:
          break;
      }
      throw InterpretError("code fragment at node " + node.id() +
                           " assigns undeclared variable '" +
                           assignment.name + "'");
    }
  }

  // ---------------------------------------------------------------------
  // Run-time walking
  // ---------------------------------------------------------------------

  void start_run(const machine::SystemParameters& params) {
    np = params.processes;
    nt = params.threads_per_process;
    nn = params.nodes;
    ppn = params.processors_per_node;
    global_values.assign(program->nslots, 0.0);
    run_frame.assign(program->nslots, nullptr);
    run_frame[program->slot_np] = &np;
    run_frame[program->slot_nt] = &nt;
    run_frame[program->slot_nn] = &nn;
    run_frame[program->slot_ppn] = &ppn;
    // Globals initialize in declaration order and become visible one by
    // one — a forward reference falls through to the system parameters
    // or errors, exactly like the tree walker's growing globals map.
    for (const auto& variable : program->variables) {
      if (variable.scope != uml::VariableScope::Global) {
        continue;
      }
      double value = 0;
      if (variable.initializer.has_value()) {
        value = variable.initializer->eval(make_context(run_frame, 0, 0, 0));
      }
      global_values[variable.slot] = coerce(variable.type, value);
      run_frame[variable.slot] = &global_values[variable.slot];
    }
  }

  sim::Process run_process(ModelContext ctx) {
    // Per-process locals, initialized in declaration order; the storage
    // lives in this coroutine frame for the process's whole lifetime.
    std::vector<double> local_values(program->nslots, 0.0);
    Scope scope;
    scope.frame = run_frame;
    scope.locals = local_values.data();
    for (const auto& variable : program->variables) {
      if (variable.scope != uml::VariableScope::Local) {
        continue;
      }
      double value = 0;
      if (variable.initializer.has_value()) {
        value = variable.initializer->eval(
            make_context(scope.frame, ctx.pid, ctx.tid, 0));
      }
      local_values[variable.slot] = coerce(variable.type, value);
      scope.frame[variable.slot] = &local_values[variable.slot];
    }
    co_await run_diagram(ctx, *model->main_diagram(), scope);
  }

  /// Walks a diagram from its initial node to a final node (or a dead
  /// end).  `scope` is taken by value: the slot frame is snapshot,
  /// locals stay shared through the storage pointers.
  sim::Process run_diagram(ModelContext ctx, const ActivityDiagram& diagram,
                           Scope scope) {
    const Node* initial = diagram.initial();
    if (initial == nullptr) {
      throw InterpretError("diagram " + diagram.id() + " has no initial node");
    }
    co_await walk(ctx, diagram, *initial, scope, nullptr);
  }

  /// Walks from `start` until a Final node (stop == nullptr) or until a
  /// Join node is reached (its id is written to *stop, and the join node
  /// is not executed).  Used both for whole diagrams and fork branches.
  sim::Process walk(ModelContext ctx, const ActivityDiagram& diagram,
                    const Node& start, Scope scope, std::string* stop) {
    const Node* node = &start;
    // Guard against unstructured cycles (the checker warns; the
    // interpreter must not hang).
    std::uint64_t steps = 0;
    const std::uint64_t limit =
        1000000ULL + 1000ULL * diagram.node_count();
    while (node != nullptr) {
      if (++steps > limit) {
        throw InterpretError("diagram " + diagram.id() +
                             ": walk exceeded step limit (unstructured "
                             "cycle without <<loop+>>?)");
      }
      if (stop != nullptr && node->kind() == NodeKind::Join) {
        *stop = node->id();
        co_return;
      }
      if (node->kind() == NodeKind::Fork) {
        // Run the branches to their common join, then continue from the
        // join's successor.
        std::string join_id;
        co_await execute_fork(ctx, diagram, *node, scope, &join_id);
        const Node* join = diagram.node(join_id);
        const auto after = diagram.outgoing(join->id());
        if (after.empty()) {
          co_return;
        }
        if (after.size() > 1) {
          throw InterpretError("join " + join->id() +
                               " has multiple outgoing edges");
        }
        node = diagram.node(after[0]->target());
        continue;
      }
      co_await execute_node(ctx, diagram, *node, scope);
      if (node->kind() == NodeKind::Final) {
        co_return;
      }
      node = next_node(ctx, diagram, *node, scope);
    }
  }

  const Node* next_node(const ModelContext& ctx,
                        const ActivityDiagram& diagram, const Node& node,
                        const Scope& scope) {
    const auto outgoing = diagram.outgoing(node.id());
    if (node.kind() == NodeKind::Decision) {
      const uml::ControlFlow* chosen = nullptr;
      const uml::ControlFlow* fallback = nullptr;
      const int uid = program->at(node).uid;
      for (const auto* edge : outgoing) {
        if (edge->is_else()) {
          if (fallback == nullptr) {
            fallback = edge;
          }
          continue;
        }
        const auto guard_it = program->guards.find(edge);
        if (guard_it == program->guards.end()) {
          continue;  // unguarded edge out of a decision: never taken
        }
        if (expr::truthy(guard_it->second.eval(
                make_context(scope.frame, ctx.pid, ctx.tid, uid)))) {
          chosen = edge;
          break;
        }
      }
      if (chosen == nullptr) {
        chosen = fallback;
      }
      if (chosen == nullptr) {
        throw InterpretError("decision " + node.id() +
                             ": no guard holds and no 'else' edge");
      }
      return diagram.node(chosen->target());
    }
    if (outgoing.empty()) {
      return nullptr;  // dead end; connectivity rule warns about this
    }
    if (outgoing.size() > 1) {
      throw InterpretError("node " + node.id() +
                           " has multiple unguarded outgoing edges");
    }
    return diagram.node(outgoing[0]->target());
  }

  sim::Process execute_node(ModelContext ctx,
                            [[maybe_unused]] const ActivityDiagram& diagram,
                            const Node& node, Scope& scope) {
    switch (node.kind()) {
      case NodeKind::Initial:
      case NodeKind::Final:
      case NodeKind::Merge:
      case NodeKind::Join:
      case NodeKind::Decision:
        co_return;
      case NodeKind::Fork:
        co_return;  // handled inline by walk()
      case NodeKind::Action:
        co_await execute_action(ctx, node, scope);
        co_return;
      case NodeKind::Activity:
        co_await execute_activity(ctx, node, scope);
        co_return;
      case NodeKind::Loop:
        co_await execute_loop(ctx, node, scope);
        co_return;
    }
  }

  sim::Process execute_fork(ModelContext ctx, const ActivityDiagram& diagram,
                            const Node& node, Scope& scope,
                            std::string* join_out) {
    const auto outgoing = diagram.outgoing(node.id());
    std::vector<std::string> joins(outgoing.size());
    std::vector<sim::ProcessRef> branches;
    branches.reserve(outgoing.size());
    for (std::size_t i = 0; i < outgoing.size(); ++i) {
      const Node* target = diagram.node(outgoing[i]->target());
      if (target == nullptr) {
        throw InterpretError("fork " + node.id() + ": dangling edge");
      }
      // Branches share locals (generated code captures them by
      // reference) and snapshot the slot frame.
      branches.push_back(ctx.engine->spawn(
          walk(ctx, diagram, *target, scope, &joins[i])));
    }
    for (const auto& branch : branches) {
      co_await branch;
    }
    for (std::size_t i = 1; i < joins.size(); ++i) {
      if (joins[i] != joins[0]) {
        throw InterpretError("fork " + node.id() +
                             ": branches reach different joins ('" +
                             joins[0] + "' vs '" + joins[i] + "')");
      }
    }
    if (joins.empty() || joins[0].empty()) {
      throw InterpretError("fork " + node.id() +
                           ": branches do not reach a join");
    }
    *join_out = joins[0];
  }

  sim::Process execute_action(ModelContext ctx, const Node& node,
                              Scope& scope) {
    const Program::NodePrograms& programs = program->at(node);
    run_fragment(programs, node, scope, ctx);
    const int uid = programs.uid;
    const std::string& stereotype = node.stereotype();
    if (stereotype == uml::stereo::kActionPlus || stereotype.empty()) {
      double cost = 0;
      if (programs.cost.has_value()) {
        cost = eval_tag(programs.cost, uml::tag::kCost, node, uid, scope,
                        ctx);
      } else if (auto time = node.tag_number(uml::tag::kTime)) {
        cost = *time;
      }
      workload::ActionPlus element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid, cost);
    } else if (stereotype == uml::stereo::kSend) {
      const int dest = static_cast<int>(eval_tag(
          programs.dest, uml::tag::kDest, node, uid, scope, ctx));
      const double bytes = eval_tag(programs.size, uml::tag::kSize, node,
                                    uid, scope, ctx);
      const int tag = static_cast<int>(
          node.tag_number(uml::tag::kMsgTag).value_or(0));
      workload::SendElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid, dest, bytes, tag);
    } else if (stereotype == uml::stereo::kRecv) {
      const int source = static_cast<int>(eval_tag(
          programs.source, uml::tag::kSource, node, uid, scope, ctx));
      const double bytes = eval_tag(programs.size, uml::tag::kSize, node,
                                    uid, scope, ctx);
      const int tag = static_cast<int>(
          node.tag_number(uml::tag::kMsgTag).value_or(0));
      workload::RecvElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid, source, bytes, tag);
    } else if (stereotype == uml::stereo::kBarrier) {
      workload::BarrierElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid);
    } else if (stereotype == uml::stereo::kBroadcast ||
               stereotype == uml::stereo::kReduce ||
               stereotype == uml::stereo::kAllReduce ||
               stereotype == uml::stereo::kScatter ||
               stereotype == uml::stereo::kGather) {
      const double bytes = eval_tag(programs.size, uml::tag::kSize, node,
                                    uid, scope, ctx);
      const int root =
          node.has_tag(uml::tag::kRoot)
              ? static_cast<int>(eval_tag(programs.root, uml::tag::kRoot,
                                          node, uid, scope, ctx))
              : 0;
      workload::CollectiveElement element(ctx, node.name(),
                                          collective_kind(stereotype));
      co_await element.execute(uid, ctx.pid, ctx.tid, bytes, root);
    } else if (stereotype == uml::stereo::kOmpFor) {
      const double iterations = eval_tag(
          programs.iterations, uml::tag::kIterations, node, uid, scope, ctx);
      const double itercost = eval_tag(
          programs.itercost, uml::tag::kIterCost, node, uid, scope, ctx);
      std::string schedule = node.tag_string(uml::tag::kSchedule);
      if (schedule.empty()) {
        schedule = "static";
      }
      const auto chunk = static_cast<std::int64_t>(
          node.tag_number(uml::tag::kChunk).value_or(0));
      workload::WorkshareElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid, iterations, itercost,
                               schedule, chunk);
    } else if (stereotype == uml::stereo::kOmpBarrier) {
      workload::OmpBarrierElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid);
    } else {
      throw InterpretError("node " + node.id() + ": unsupported stereotype <<" +
                           stereotype + ">> on an action node");
    }
  }

  static workload::CollectiveKind collective_kind(
      const std::string& stereotype) {
    if (stereotype == uml::stereo::kBroadcast) {
      return workload::CollectiveKind::Broadcast;
    }
    if (stereotype == uml::stereo::kReduce) {
      return workload::CollectiveKind::Reduce;
    }
    if (stereotype == uml::stereo::kAllReduce) {
      return workload::CollectiveKind::AllReduce;
    }
    if (stereotype == uml::stereo::kScatter) {
      return workload::CollectiveKind::Scatter;
    }
    return workload::CollectiveKind::Gather;
  }

  sim::Process execute_activity(ModelContext ctx, const Node& node,
                                Scope& scope) {
    const Program::NodePrograms& programs = program->at(node);
    run_fragment(programs, node, scope, ctx);
    const int uid = programs.uid;
    const ActivityDiagram* sub = model->diagram(node.subdiagram_id());
    const std::string& stereotype = node.stereotype();
    if (stereotype == uml::stereo::kOmpParallel) {
      const int threads =
          programs.num_threads.has_value()
              ? static_cast<int>(eval_tag(programs.num_threads,
                                          uml::tag::kNumThreads, node, uid,
                                          scope, ctx))
              : static_cast<int>(nt);
      Scope body_scope = scope;  // frame snapshot; shared locals storage
      co_await workload::parallel_region(
          ctx, threads, uid, node.name(),
          [this, sub, body_scope](ModelContext tctx) -> sim::Process {
            return run_diagram(tctx, *sub, body_scope);
          });
    } else if (stereotype == uml::stereo::kOmpCritical) {
      std::string lock = node.tag_string(uml::tag::kCriticalName);
      if (lock.empty()) {
        lock = "default";
      }
      workload::CriticalElement element(ctx, node.name(), lock);
      Scope body_scope = scope;
      ModelContext body_ctx = ctx;
      co_await element.execute(uid, ctx.pid, ctx.tid,
                               [this, sub, body_scope,
                                body_ctx]() -> sim::Process {
                                 return run_diagram(body_ctx, *sub,
                                                    body_scope);
                               });
    } else {
      // <<activity+>> (or unstereotyped composite): run content inline,
      // recording a region span (ActivityPlus).
      workload::ActivityPlus element(ctx, node.name());
      const double started = element.begin(uid);
      co_await run_diagram(ctx, *sub, scope);
      element.end(uid, started);
    }
  }

  sim::Process execute_loop(ModelContext ctx, const Node& node,
                            Scope& scope) {
    const Program::NodePrograms& programs = program->at(node);
    run_fragment(programs, node, scope, ctx);
    const ActivityDiagram* body = model->diagram(node.subdiagram_id());
    const double raw = eval_tag(programs.iterations, uml::tag::kIterations,
                                node, programs.uid, scope, ctx);
    if (std::isnan(raw) || raw < 0) {
      throw InterpretError("loop " + node.id() +
                           ": iteration count is negative or NaN");
    }
    const auto iterations = static_cast<std::int64_t>(raw);
    // The loop variable's storage lives in this coroutine frame; the
    // body scope's slot rebinding shadows any outer binding of the same
    // name and is dropped with the snapshot when the loop exits.
    double loop_value = 0;
    Scope iteration_scope = scope;
    iteration_scope.frame[programs.loop_var_slot] = &loop_value;
    for (std::int64_t k = 0; k < iterations; ++k) {
      loop_value = static_cast<double>(k);
      co_await run_diagram(ctx, *body, iteration_scope);
    }
  }
};

std::shared_ptr<const Interpreter::Program> Interpreter::compile(
    const uml::Model& model) {
  return std::make_shared<const Program>(model);
}

std::shared_ptr<const Interpreter::Program> Interpreter::compile(
    uml::Model&& model) {
  // Parse first (borrowing), then move the model in.  The compiled state
  // keys nodes and edges by pointer; both are heap-allocated and owned
  // through the model's diagram list, so they are stable across the
  // move, and re-pointing the model itself after the move is safe.
  auto program = std::make_shared<Program>(model);
  program->owned.emplace(std::move(model));
  program->model = &*program->owned;
  return program;
}

Interpreter::ProgramStats Interpreter::stats(const Program& program) {
  return {program.expr_compile_seconds, program.expr_programs};
}

Interpreter::Interpreter(const uml::Model& model)
    : impl_(std::make_unique<Impl>(compile(model))) {}

Interpreter::Interpreter(uml::Model&& model)
    : impl_(std::make_unique<Impl>(compile(std::move(model)))) {}

Interpreter::Interpreter(std::shared_ptr<const Program> program) {
  if (program == nullptr) {
    throw InterpretError("null program");
  }
  impl_ = std::make_unique<Impl>(std::move(program));
}

Interpreter::~Interpreter() = default;

void Interpreter::on_run_start(const machine::SystemParameters& params) {
  impl_->start_run(params);
}

sim::Process Interpreter::process_main(workload::ModelContext ctx) {
  return impl_->run_process(std::move(ctx));
}

double Interpreter::global(const std::string& name) const {
  for (const auto& variable : impl_->program->variables) {
    if (variable.scope == uml::VariableScope::Global &&
        variable.name == name &&
        impl_->run_frame[variable.slot] ==
            &impl_->global_values[variable.slot]) {
      // Bound == initialized by a run, matching the tree walker's
      // populate-on-start_run globals map.
      return impl_->global_values[variable.slot];
    }
  }
  throw InterpretError("unknown global '" + name + "'");
}

double Interpreter::call_cost_function(const std::string& name,
                                       const std::vector<double>& args,
                                       int pid, int tid, int uid) const {
  (void)pid;
  (void)tid;
  (void)uid;
  const auto it = impl_->program->function_ids.find(name);
  if (it == impl_->program->function_ids.end()) {
    throw InterpretError("unknown cost function '" + name + "'");
  }
  return impl_->call(it->second, args);
}

int Interpreter::uid_of(const std::string& node_id) const {
  const auto it = impl_->program->uids.find(node_id);
  if (it == impl_->program->uids.end()) {
    throw InterpretError("unknown node id '" + node_id + "'");
  }
  return it->second;
}

}  // namespace prophet::interp
