#include "prophet/interp/interpreter.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <utility>

#include "prophet/expr/eval.hpp"
#include "prophet/expr/parser.hpp"
#include "prophet/uml/sysparams.hpp"

namespace prophet::interp {
namespace {

using uml::ActivityDiagram;
using uml::Model;
using uml::Node;
using uml::NodeKind;
using workload::ModelContext;

/// One `name = expression;` assignment of an associated code fragment.
struct Assignment {
  std::string target;
  expr::ExprPtr value;
};

/// Pre-parsed cost function.
struct ParsedFunction {
  std::vector<std::string> parameters;
  expr::ExprPtr body;
};

/// Pre-parsed variable declaration.
struct ParsedVariable {
  std::string name;
  uml::VariableScope scope = uml::VariableScope::Global;
  uml::VariableType type = uml::VariableType::Real;
  expr::ExprPtr initializer;  // may be null (zero-init)
};

/// Integer-typed model variables truncate on assignment, exactly like the
/// `long` variables the code generator emits.
double coerce(uml::VariableType type, double value) {
  if (type == uml::VariableType::Integer) {
    return std::trunc(value);
  }
  return value;
}

/// Lexical scope of a model walker: shared locals + walker-private loop
/// bindings (see interpreter.hpp for the exact sharing rules).
struct Scope {
  std::map<std::string, double>* locals = nullptr;
  std::vector<std::pair<std::string, double>> loop_bindings;
};

/// Splits a code fragment into `name = expr` assignments.
std::vector<Assignment> parse_code_fragment(const std::string& text,
                                            const std::string& where) {
  std::vector<Assignment> assignments;
  std::size_t start = 0;
  while (start < text.size()) {
    auto end = text.find(';', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    std::string statement = text.substr(start, end - start);
    start = end + 1;
    // Trim whitespace.
    const auto first = statement.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) {
      continue;
    }
    const auto last = statement.find_last_not_of(" \t\r\n");
    statement = statement.substr(first, last - first + 1);
    const auto equals = statement.find('=');
    // Reject '==' and missing '='.
    if (equals == std::string::npos || equals + 1 >= statement.size() ||
        statement[equals + 1] == '=') {
      throw InterpretError("code fragment at " + where +
                           ": statement '" + statement +
                           "' is not an assignment");
    }
    std::string target = statement.substr(0, equals);
    const auto target_end = target.find_last_not_of(" \t\r\n");
    target = target.substr(0, target_end + 1);
    try {
      assignments.push_back(
          {target, expr::parse(statement.substr(equals + 1))});
    } catch (const expr::SyntaxError& error) {
      throw InterpretError("code fragment at " + where + ": " +
                           error.what());
    }
  }
  return assignments;
}

}  // namespace

/// The immutable pre-parsed form of a model.  Everything here is written
/// once, by the constructor, and only read afterwards — interpreters on
/// different threads share one Program without synchronization.
class Interpreter::Program {
 public:
  std::optional<Model> owned;  // set by the owning compile() overload
  const Model* model = nullptr;

  // Pre-parsed expressions, keyed by element/edge id and tag name.
  std::map<std::string, std::map<std::string, expr::ExprPtr>> node_exprs;
  std::map<std::string, expr::ExprPtr> guards;  // edge id -> guard
  std::map<std::string, std::vector<Assignment>> fragments;
  std::map<std::string, ParsedFunction> functions;
  std::vector<ParsedVariable> variables;
  std::map<std::string, int> uids;

  explicit Program(const Model& m) : model(&m) {
    for (const auto& variable : m.variables()) {
      ParsedVariable parsed;
      parsed.name = variable.name;
      parsed.scope = variable.scope;
      parsed.type = variable.type;
      if (!variable.initializer.empty()) {
        parsed.initializer = parse_checked(
            variable.initializer, "initializer of variable " + variable.name);
      }
      variables.push_back(std::move(parsed));
    }
    for (const auto& fn : m.cost_functions()) {
      functions.emplace(
          fn.name,
          ParsedFunction{fn.parameters,
                         parse_checked(fn.body, "cost function " + fn.name)});
    }
    // uid assignment: explicit `id` tags win; the rest get sequential
    // numbers skipping claimed values.
    std::set<int> claimed;
    for (const auto& diagram : m.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        if (auto id = node->tag(uml::tag::kId)) {
          if (const auto* value = std::get_if<std::int64_t>(&*id)) {
            uids[node->id()] = static_cast<int>(*value);
            claimed.insert(static_cast<int>(*value));
          }
        }
      }
    }
    int next = 1;
    for (const auto& diagram : m.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        if (uids.find(node->id()) != uids.end()) {
          continue;
        }
        while (claimed.find(next) != claimed.end()) {
          ++next;
        }
        uids[node->id()] = next;
        claimed.insert(next);
      }
      for (const auto& edge : diagram->edges()) {
        if (edge->has_guard() && !edge->is_else()) {
          guards.emplace(edge->id(),
                         parse_checked(edge->guard(),
                                       "guard of edge " + edge->id()));
        }
      }
    }
    for (const auto& diagram : m.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        for (const auto tag_name :
             uml::expression_tags(node->stereotype())) {
          if (!node->has_tag(tag_name)) {
            continue;
          }
          const std::string text = node->tag_string(tag_name);
          if (text.empty()) {
            continue;
          }
          node_exprs[node->id()].emplace(
              std::string(tag_name),
              parse_checked(text, "tag '" + std::string(tag_name) +
                                      "' of node " + node->id()));
        }
        // <<action+>> cost tag is optional rather than an expression tag
        // with fixed semantics — handled by expression_tags already.
        if (node->has_tag(uml::tag::kCode)) {
          const std::string code = node->tag_string(uml::tag::kCode);
          if (!code.empty()) {
            fragments.emplace(node->id(),
                              parse_code_fragment(code, "node " +
                                                            node->id()));
          }
        }
        // Composite nodes must reference existing diagrams.
        if ((node->kind() == NodeKind::Activity ||
             node->kind() == NodeKind::Loop) &&
            m.diagram(node->subdiagram_id()) == nullptr) {
          throw InterpretError("node " + node->id() +
                               " references unknown diagram '" +
                               node->subdiagram_id() + "'");
        }
      }
    }
    if (m.main_diagram() == nullptr) {
      throw InterpretError("model has no resolvable main diagram");
    }
  }

  static expr::ExprPtr parse_checked(const std::string& text,
                                     const std::string& where) {
    try {
      return expr::parse(text);
    } catch (const expr::SyntaxError& error) {
      throw InterpretError(where + ": " + error.what());
    }
  }
};

/// Per-run state + the walking machinery over a shared immutable Program.
struct Interpreter::Impl {
  std::shared_ptr<const Program> program;
  const Model* model = nullptr;  // == program->model, cached

  // Per-run state.
  std::map<std::string, double> globals;  // shared across processes
  double np = 1, nt = 1, nn = 1, ppn = 1;
  mutable int call_depth = 0;

  explicit Impl(std::shared_ptr<const Program> p)
      : program(std::move(p)), model(program->model) {}

  // ---------------------------------------------------------------------
  // Expression evaluation
  // ---------------------------------------------------------------------

  /// Environment for element-level expressions (cost tags, guards,
  /// code-fragment right-hand sides).
  class NodeEnv final : public expr::Environment {
   public:
    NodeEnv(const Impl& impl, const Scope& scope, int pid, int tid, int uid)
        : impl_(&impl), scope_(&scope), pid_(pid), tid_(tid), uid_(uid) {}

    [[nodiscard]] std::optional<double> variable(
        std::string_view name) const override {
      // Innermost loop binding wins.
      const auto& bindings = scope_->loop_bindings;
      for (auto it = bindings.rbegin(); it != bindings.rend(); ++it) {
        if (it->first == name) {
          return it->second;
        }
      }
      if (scope_->locals != nullptr) {
        if (const auto it = scope_->locals->find(std::string(name));
            it != scope_->locals->end()) {
          return it->second;
        }
      }
      if (const auto it = impl_->globals.find(std::string(name));
          it != impl_->globals.end()) {
        return it->second;
      }
      return impl_->system_parameter(name, pid_, tid_, uid_);
    }

    [[nodiscard]] std::optional<double> call(
        std::string_view name, std::span<const double> args) const override {
      return impl_->call_function(name, args);
    }

   private:
    const Impl* impl_;
    const Scope* scope_;
    int pid_;
    int tid_;
    int uid_;
  };

  /// Environment inside a cost-function body: parameters, globals and the
  /// structural system parameters only (pid/tid/uid must be passed as
  /// parameters, mirroring the file-scope C++ functions of Fig. 8a).
  class FunctionEnv final : public expr::Environment {
   public:
    FunctionEnv(const Impl& impl, const ParsedFunction& fn,
                std::span<const double> args)
        : impl_(&impl), fn_(&fn), args_(args) {}

    [[nodiscard]] std::optional<double> variable(
        std::string_view name) const override {
      for (std::size_t i = 0; i < fn_->parameters.size(); ++i) {
        if (fn_->parameters[i] == name) {
          return i < args_.size() ? args_[i] : 0.0;
        }
      }
      if (const auto it = impl_->globals.find(std::string(name));
          it != impl_->globals.end()) {
        return it->second;
      }
      return impl_->structural_parameter(name);
    }

    [[nodiscard]] std::optional<double> call(
        std::string_view name, std::span<const double> args) const override {
      return impl_->call_function(name, args);
    }

   private:
    const Impl* impl_;
    const ParsedFunction* fn_;
    std::span<const double> args_;
  };

  [[nodiscard]] std::optional<double> structural_parameter(
      std::string_view name) const {
    if (name == uml::sysparam::kProcesses) {
      return np;
    }
    if (name == uml::sysparam::kThreads) {
      return nt;
    }
    if (name == uml::sysparam::kNodes) {
      return nn;
    }
    if (name == uml::sysparam::kProcessorsPerNode) {
      return ppn;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<double> system_parameter(std::string_view name,
                                                       int pid, int tid,
                                                       int uid) const {
    if (name == uml::sysparam::kProcessId) {
      return static_cast<double>(pid);
    }
    if (name == uml::sysparam::kThreadId) {
      return static_cast<double>(tid);
    }
    if (name == uml::sysparam::kElementUid) {
      return static_cast<double>(uid);
    }
    return structural_parameter(name);
  }

  [[nodiscard]] std::optional<double> call_function(
      std::string_view name, std::span<const double> args) const {
    const auto it = program->functions.find(std::string(name));
    if (it == program->functions.end()) {
      return std::nullopt;  // fall back to expr built-ins
    }
    if (call_depth > 64) {
      throw InterpretError("cost-function call depth exceeded (cycle?)");
    }
    ++call_depth;
    const FunctionEnv env(*this, it->second, args);
    const double result = expr::evaluate(*it->second.body, env);
    --call_depth;
    return result;
  }

  [[nodiscard]] double eval_node_expr(const Node& node,
                                      std::string_view tag_name,
                                      const Scope& scope,
                                      const ModelContext& ctx) const {
    const auto node_it = program->node_exprs.find(node.id());
    if (node_it == program->node_exprs.end()) {
      return 0.0;
    }
    const auto tag_it = node_it->second.find(std::string(tag_name));
    if (tag_it == node_it->second.end()) {
      return 0.0;
    }
    const NodeEnv env(*this, scope, ctx.pid, ctx.tid, program->uids.at(node.id()));
    try {
      return expr::evaluate(*tag_it->second, env);
    } catch (const expr::EvalError& error) {
      throw InterpretError("node " + node.id() + ", tag '" +
                           std::string(tag_name) + "': " + error.what());
    }
  }

  [[nodiscard]] bool has_node_expr(const Node& node,
                                   std::string_view tag_name) const {
    const auto node_it = program->node_exprs.find(node.id());
    return node_it != program->node_exprs.end() &&
           node_it->second.find(std::string(tag_name)) !=
               node_it->second.end();
  }

  void run_fragment(const Node& node, Scope& scope, const ModelContext& ctx) {
    const auto it = program->fragments.find(node.id());
    if (it == program->fragments.end()) {
      return;
    }
    const NodeEnv env(*this, scope, ctx.pid, ctx.tid, program->uids.at(node.id()));
    for (const auto& assignment : it->second) {
      double value = 0;
      try {
        value = expr::evaluate(*assignment.value, env);
      } catch (const expr::EvalError& error) {
        throw InterpretError("code fragment at node " + node.id() + ": " +
                             error.what());
      }
      const uml::Variable* declared = model->variable(assignment.target);
      if (declared != nullptr) {
        value = coerce(declared->type, value);
      }
      if (scope.locals != nullptr) {
        if (const auto local = scope.locals->find(assignment.target);
            local != scope.locals->end()) {
          local->second = value;
          continue;
        }
      }
      if (const auto global = globals.find(assignment.target);
          global != globals.end()) {
        global->second = value;
        continue;
      }
      throw InterpretError("code fragment at node " + node.id() +
                           " assigns undeclared variable '" +
                           assignment.target + "'");
    }
  }

  // ---------------------------------------------------------------------
  // Run-time walking
  // ---------------------------------------------------------------------

  void start_run(const machine::SystemParameters& params) {
    np = params.processes;
    nt = params.threads_per_process;
    nn = params.nodes;
    ppn = params.processors_per_node;
    globals.clear();
    Scope scope;  // no locals during global initialization
    for (const auto& variable : program->variables) {
      if (variable.scope != uml::VariableScope::Global) {
        continue;
      }
      double value = 0;
      if (variable.initializer != nullptr) {
        const NodeEnv env(*this, scope, 0, 0, 0);
        value = expr::evaluate(*variable.initializer, env);
      }
      globals[variable.name] = coerce(variable.type, value);
    }
  }

  sim::Process run_process(ModelContext ctx) {
    // Per-process locals, initialized in declaration order.
    std::map<std::string, double> locals;
    Scope scope;
    scope.locals = &locals;
    for (const auto& variable : program->variables) {
      if (variable.scope != uml::VariableScope::Local) {
        continue;
      }
      double value = 0;
      if (variable.initializer != nullptr) {
        const NodeEnv env(*this, scope, ctx.pid, ctx.tid, 0);
        value = expr::evaluate(*variable.initializer, env);
      }
      locals[variable.name] = coerce(variable.type, value);
    }
    co_await run_diagram(ctx, *model->main_diagram(), scope);
  }

  /// Walks a diagram from its initial node to a final node (or a dead
  /// end).  `scope` is taken by value: loop bindings are snapshot,
  /// locals stay shared through the pointer.
  sim::Process run_diagram(ModelContext ctx, const ActivityDiagram& diagram,
                           Scope scope) {
    const Node* initial = diagram.initial();
    if (initial == nullptr) {
      throw InterpretError("diagram " + diagram.id() + " has no initial node");
    }
    co_await walk(ctx, diagram, *initial, scope, nullptr);
  }

  /// Walks from `start` until a Final node (stop == nullptr) or until a
  /// Join node is reached (its id is written to *stop, and the join node
  /// is not executed).  Used both for whole diagrams and fork branches.
  sim::Process walk(ModelContext ctx, const ActivityDiagram& diagram,
                    const Node& start, Scope scope, std::string* stop) {
    const Node* node = &start;
    // Guard against unstructured cycles (the checker warns; the
    // interpreter must not hang).
    std::uint64_t steps = 0;
    const std::uint64_t limit =
        1000000ULL + 1000ULL * diagram.node_count();
    while (node != nullptr) {
      if (++steps > limit) {
        throw InterpretError("diagram " + diagram.id() +
                             ": walk exceeded step limit (unstructured "
                             "cycle without <<loop+>>?)");
      }
      if (stop != nullptr && node->kind() == NodeKind::Join) {
        *stop = node->id();
        co_return;
      }
      if (node->kind() == NodeKind::Fork) {
        // Run the branches to their common join, then continue from the
        // join's successor.
        std::string join_id;
        co_await execute_fork(ctx, diagram, *node, scope, &join_id);
        const Node* join = diagram.node(join_id);
        const auto after = diagram.outgoing(join->id());
        if (after.empty()) {
          co_return;
        }
        if (after.size() > 1) {
          throw InterpretError("join " + join->id() +
                               " has multiple outgoing edges");
        }
        node = diagram.node(after[0]->target());
        continue;
      }
      co_await execute_node(ctx, diagram, *node, scope);
      if (node->kind() == NodeKind::Final) {
        co_return;
      }
      node = next_node(ctx, diagram, *node, scope);
    }
  }

  const Node* next_node(const ModelContext& ctx,
                        const ActivityDiagram& diagram, const Node& node,
                        const Scope& scope) {
    const auto outgoing = diagram.outgoing(node.id());
    if (node.kind() == NodeKind::Decision) {
      const uml::ControlFlow* chosen = nullptr;
      const uml::ControlFlow* fallback = nullptr;
      for (const auto* edge : outgoing) {
        if (edge->is_else()) {
          if (fallback == nullptr) {
            fallback = edge;
          }
          continue;
        }
        const auto guard_it = program->guards.find(edge->id());
        if (guard_it == program->guards.end()) {
          continue;  // unguarded edge out of a decision: never taken
        }
        const NodeEnv env(*this, scope, ctx.pid, ctx.tid,
                          program->uids.at(node.id()));
        if (expr::truthy(expr::evaluate(*guard_it->second, env))) {
          chosen = edge;
          break;
        }
      }
      if (chosen == nullptr) {
        chosen = fallback;
      }
      if (chosen == nullptr) {
        throw InterpretError("decision " + node.id() +
                             ": no guard holds and no 'else' edge");
      }
      return diagram.node(chosen->target());
    }
    if (outgoing.empty()) {
      return nullptr;  // dead end; connectivity rule warns about this
    }
    if (outgoing.size() > 1) {
      throw InterpretError("node " + node.id() +
                           " has multiple unguarded outgoing edges");
    }
    return diagram.node(outgoing[0]->target());
  }

  sim::Process execute_node(ModelContext ctx,
                            [[maybe_unused]] const ActivityDiagram& diagram,
                            const Node& node, Scope& scope) {
    switch (node.kind()) {
      case NodeKind::Initial:
      case NodeKind::Final:
      case NodeKind::Merge:
      case NodeKind::Join:
      case NodeKind::Decision:
        co_return;
      case NodeKind::Fork:
        co_return;  // handled inline by walk()
      case NodeKind::Action:
        co_await execute_action(ctx, node, scope);
        co_return;
      case NodeKind::Activity:
        co_await execute_activity(ctx, node, scope);
        co_return;
      case NodeKind::Loop:
        co_await execute_loop(ctx, node, scope);
        co_return;
    }
  }

  sim::Process execute_fork(ModelContext ctx, const ActivityDiagram& diagram,
                            const Node& node, Scope& scope,
                            std::string* join_out) {
    const auto outgoing = diagram.outgoing(node.id());
    std::vector<std::string> joins(outgoing.size());
    std::vector<sim::ProcessRef> branches;
    branches.reserve(outgoing.size());
    for (std::size_t i = 0; i < outgoing.size(); ++i) {
      const Node* target = diagram.node(outgoing[i]->target());
      if (target == nullptr) {
        throw InterpretError("fork " + node.id() + ": dangling edge");
      }
      // Branches share locals (generated code captures them by
      // reference) and snapshot the loop bindings.
      branches.push_back(ctx.engine->spawn(
          walk(ctx, diagram, *target, scope, &joins[i])));
    }
    for (const auto& branch : branches) {
      co_await branch;
    }
    for (std::size_t i = 1; i < joins.size(); ++i) {
      if (joins[i] != joins[0]) {
        throw InterpretError("fork " + node.id() +
                             ": branches reach different joins ('" +
                             joins[0] + "' vs '" + joins[i] + "')");
      }
    }
    if (joins.empty() || joins[0].empty()) {
      throw InterpretError("fork " + node.id() +
                           ": branches do not reach a join");
    }
    *join_out = joins[0];
  }

  sim::Process execute_action(ModelContext ctx, const Node& node,
                              Scope& scope) {
    run_fragment(node, scope, ctx);
    const int uid = program->uids.at(node.id());
    const std::string& stereotype = node.stereotype();
    if (stereotype == uml::stereo::kActionPlus || stereotype.empty()) {
      double cost = 0;
      if (has_node_expr(node, uml::tag::kCost)) {
        cost = eval_node_expr(node, uml::tag::kCost, scope, ctx);
      } else if (auto time = node.tag_number(uml::tag::kTime)) {
        cost = *time;
      }
      workload::ActionPlus element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid, cost);
    } else if (stereotype == uml::stereo::kSend) {
      const int dest = static_cast<int>(
          eval_node_expr(node, uml::tag::kDest, scope, ctx));
      const double bytes = eval_node_expr(node, uml::tag::kSize, scope, ctx);
      const int tag = static_cast<int>(
          node.tag_number(uml::tag::kMsgTag).value_or(0));
      workload::SendElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid, dest, bytes, tag);
    } else if (stereotype == uml::stereo::kRecv) {
      const int source = static_cast<int>(
          eval_node_expr(node, uml::tag::kSource, scope, ctx));
      const double bytes = eval_node_expr(node, uml::tag::kSize, scope, ctx);
      const int tag = static_cast<int>(
          node.tag_number(uml::tag::kMsgTag).value_or(0));
      workload::RecvElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid, source, bytes, tag);
    } else if (stereotype == uml::stereo::kBarrier) {
      workload::BarrierElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid);
    } else if (stereotype == uml::stereo::kBroadcast ||
               stereotype == uml::stereo::kReduce ||
               stereotype == uml::stereo::kAllReduce ||
               stereotype == uml::stereo::kScatter ||
               stereotype == uml::stereo::kGather) {
      const double bytes = eval_node_expr(node, uml::tag::kSize, scope, ctx);
      const int root =
          node.has_tag(uml::tag::kRoot)
              ? static_cast<int>(
                    eval_node_expr(node, uml::tag::kRoot, scope, ctx))
              : 0;
      workload::CollectiveElement element(ctx, node.name(),
                                          collective_kind(stereotype));
      co_await element.execute(uid, ctx.pid, ctx.tid, bytes, root);
    } else if (stereotype == uml::stereo::kOmpFor) {
      const double iterations =
          eval_node_expr(node, uml::tag::kIterations, scope, ctx);
      const double itercost =
          eval_node_expr(node, uml::tag::kIterCost, scope, ctx);
      std::string schedule = node.tag_string(uml::tag::kSchedule);
      if (schedule.empty()) {
        schedule = "static";
      }
      const auto chunk = static_cast<std::int64_t>(
          node.tag_number(uml::tag::kChunk).value_or(0));
      workload::WorkshareElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid, iterations, itercost,
                               schedule, chunk);
    } else if (stereotype == uml::stereo::kOmpBarrier) {
      workload::OmpBarrierElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid);
    } else {
      throw InterpretError("node " + node.id() + ": unsupported stereotype <<" +
                           stereotype + ">> on an action node");
    }
  }

  static workload::CollectiveKind collective_kind(
      const std::string& stereotype) {
    if (stereotype == uml::stereo::kBroadcast) {
      return workload::CollectiveKind::Broadcast;
    }
    if (stereotype == uml::stereo::kReduce) {
      return workload::CollectiveKind::Reduce;
    }
    if (stereotype == uml::stereo::kAllReduce) {
      return workload::CollectiveKind::AllReduce;
    }
    if (stereotype == uml::stereo::kScatter) {
      return workload::CollectiveKind::Scatter;
    }
    return workload::CollectiveKind::Gather;
  }

  sim::Process execute_activity(ModelContext ctx, const Node& node,
                                Scope& scope) {
    run_fragment(node, scope, ctx);
    const int uid = program->uids.at(node.id());
    const ActivityDiagram* sub = model->diagram(node.subdiagram_id());
    const std::string& stereotype = node.stereotype();
    if (stereotype == uml::stereo::kOmpParallel) {
      const int threads =
          node.has_tag(uml::tag::kNumThreads) &&
                  !node.tag_string(uml::tag::kNumThreads).empty()
              ? static_cast<int>(eval_node_expr(node, uml::tag::kNumThreads,
                                                scope, ctx))
              : static_cast<int>(nt);
      Scope body_scope = scope;  // loop-binding snapshot; shared locals
      co_await workload::parallel_region(
          ctx, threads, uid, node.name(),
          [this, sub, body_scope](ModelContext tctx) -> sim::Process {
            return run_diagram(tctx, *sub, body_scope);
          });
    } else if (stereotype == uml::stereo::kOmpCritical) {
      std::string lock = node.tag_string(uml::tag::kCriticalName);
      if (lock.empty()) {
        lock = "default";
      }
      workload::CriticalElement element(ctx, node.name(), lock);
      Scope body_scope = scope;
      ModelContext body_ctx = ctx;
      co_await element.execute(uid, ctx.pid, ctx.tid,
                               [this, sub, body_scope,
                                body_ctx]() -> sim::Process {
                                 return run_diagram(body_ctx, *sub,
                                                    body_scope);
                               });
    } else {
      // <<activity+>> (or unstereotyped composite): run content inline,
      // recording a region span (ActivityPlus).
      workload::ActivityPlus element(ctx, node.name());
      const double started = element.begin(uid);
      co_await run_diagram(ctx, *sub, scope);
      element.end(uid, started);
    }
  }

  sim::Process execute_loop(ModelContext ctx, const Node& node,
                            Scope& scope) {
    run_fragment(node, scope, ctx);
    const ActivityDiagram* body = model->diagram(node.subdiagram_id());
    const double raw =
        eval_node_expr(node, uml::tag::kIterations, scope, ctx);
    if (std::isnan(raw) || raw < 0) {
      throw InterpretError("loop " + node.id() +
                           ": iteration count is negative or NaN");
    }
    const auto iterations = static_cast<std::int64_t>(raw);
    std::string var = node.tag_string(uml::tag::kLoopVar);
    if (var.empty()) {
      var = "i";
    }
    Scope iteration_scope = scope;
    iteration_scope.loop_bindings.emplace_back(var, 0.0);
    for (std::int64_t k = 0; k < iterations; ++k) {
      iteration_scope.loop_bindings.back().second = static_cast<double>(k);
      co_await run_diagram(ctx, *body, iteration_scope);
    }
  }
};

std::shared_ptr<const Interpreter::Program> Interpreter::compile(
    const uml::Model& model) {
  return std::make_shared<const Program>(model);
}

std::shared_ptr<const Interpreter::Program> Interpreter::compile(
    uml::Model&& model) {
  // Parse first (borrowing), then move the model in.  The parsed state
  // holds no pointers into the Model (string keys only) and diagrams are
  // heap-allocated, so re-pointing after the move is safe.
  auto program = std::make_shared<Program>(model);
  program->owned.emplace(std::move(model));
  program->model = &*program->owned;
  return program;
}

Interpreter::Interpreter(const uml::Model& model)
    : impl_(std::make_unique<Impl>(compile(model))) {}

Interpreter::Interpreter(uml::Model&& model)
    : impl_(std::make_unique<Impl>(compile(std::move(model)))) {}

Interpreter::Interpreter(std::shared_ptr<const Program> program) {
  if (program == nullptr) {
    throw InterpretError("null program");
  }
  impl_ = std::make_unique<Impl>(std::move(program));
}

Interpreter::~Interpreter() = default;

void Interpreter::on_run_start(const machine::SystemParameters& params) {
  impl_->start_run(params);
}

sim::Process Interpreter::process_main(workload::ModelContext ctx) {
  return impl_->run_process(std::move(ctx));
}

double Interpreter::global(const std::string& name) const {
  const auto it = impl_->globals.find(name);
  if (it == impl_->globals.end()) {
    throw InterpretError("unknown global '" + name + "'");
  }
  return it->second;
}

double Interpreter::call_cost_function(const std::string& name,
                                       const std::vector<double>& args,
                                       int pid, int tid, int uid) const {
  (void)pid;
  (void)tid;
  (void)uid;
  const auto result = impl_->call_function(name, args);
  if (!result) {
    throw InterpretError("unknown cost function '" + name + "'");
  }
  return *result;
}

int Interpreter::uid_of(const std::string& node_id) const {
  const auto it = impl_->program->uids.find(node_id);
  if (it == impl_->program->uids.end()) {
    throw InterpretError("unknown node id '" + node_id + "'");
  }
  return it->second;
}

}  // namespace prophet::interp
