#include "prophet/interp/interpreter.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "prophet/expr/compile.hpp"
#include "prophet/expr/eval.hpp"

namespace prophet::interp {
namespace {

using uml::ActivityDiagram;
using uml::Model;
using uml::Node;
using uml::NodeKind;
using workload::ModelContext;

/// Integer-typed model variables truncate on assignment, exactly like the
/// `long` variables the code generator emits.
double coerce(uml::VariableType type, double value) {
  if (type == uml::VariableType::Integer) {
    return std::trunc(value);
  }
  return value;
}

/// Lexical scope of a model walker: the slot frame (copied by value so
/// fork branches and loop bodies snapshot their bindings) plus the base
/// of the per-process local storage for code-fragment writes, which
/// bypass loop shadowing exactly like the tree walker's locals map did.
struct Scope {
  std::vector<double*> frame;
  double* locals = nullptr;  // slot-indexed per-process storage, may be null
};

}  // namespace

/// Per-run state + the walking machinery over a shared immutable
/// lower::ModelProgram.  All lowering (slot space, bytecode, resolved
/// fragments) lives in the shared program; only run-level bindings and
/// the coroutine walkers live here.
struct Interpreter::Impl final : expr::UserFunctions {
  using NodePrograms = lower::NodePrograms;
  using CompiledAssignment = lower::CompiledAssignment;

  std::shared_ptr<const Program> program;
  const Model* model = nullptr;  // == &program->model(), cached

  // Per-run state.  Globals live in a slot-indexed array shared by all
  // modeled processes of the run; the run frame binds global and
  // structural slots for cost-function bodies and as the template every
  // process frame starts from.
  std::vector<double> global_values;
  std::vector<double*> run_frame;
  double np = 1, nt = 1, nn = 1, ppn = 1;
  mutable int call_depth = 0;
  obs::ExprCounters* expr_counters = nullptr;  // null: counting disabled
  guard::Budget* budget = nullptr;             // null: unguarded

  explicit Impl(std::shared_ptr<const Program> p)
      : program(std::move(p)), model(&program->model()) {
    // Pre-run frame: structural parameters at their defaults, globals
    // unbound (cost functions called before a run see exactly what the
    // tree walker's empty globals map gave them).
    global_values.assign(program->slot_count(), 0.0);
    run_frame.assign(program->slot_count(), nullptr);
    run_frame[program->np_slot()] = &np;
    run_frame[program->nt_slot()] = &nt;
    run_frame[program->nn_slot()] = &nn;
    run_frame[program->ppn_slot()] = &ppn;
  }

  // ---------------------------------------------------------------------
  // Expression evaluation
  // ---------------------------------------------------------------------

  [[nodiscard]] expr::EvalContext make_context(
      std::span<double* const> frame, int pid, int tid, int uid) const {
    expr::EvalContext ctx;
    ctx.frame = frame;
    ctx.functions = this;
    ctx.pid = static_cast<double>(pid);
    ctx.tid = static_cast<double>(tid);
    ctx.uid = static_cast<double>(uid);
    ctx.counters = expr_counters;
    ctx.budget = budget;
    return ctx;
  }

  /// expr::UserFunctions: invoked by the VM for cost-function calls.
  /// Function bodies evaluate against the run frame (globals +
  /// structural parameters) plus the call's argument span.
  [[nodiscard]] double call(int id,
                            std::span<const double> args) const override {
    if (call_depth > 64) {
      throw InterpretError("cost-function call depth exceeded (cycle?)");
    }
    ++call_depth;
    expr::EvalContext ctx;
    ctx.frame = run_frame;
    ctx.args = args;
    ctx.functions = this;
    ctx.counters = expr_counters;
    ctx.budget = budget;
    const double result = program->functions()[static_cast<std::size_t>(id)]
                              .eval(ctx);
    --call_depth;
    return result;
  }

  /// Evaluates an optional tag program; absent tags are 0.0, evaluation
  /// errors carry the node/tag context (tree-walker message format).
  [[nodiscard]] double eval_tag(const std::optional<expr::Compiled>& tag,
                                std::string_view tag_name, const Node& node,
                                int uid, const Scope& scope,
                                const ModelContext& ctx) const {
    if (!tag.has_value()) {
      return 0.0;
    }
    try {
      return tag->eval(make_context(scope.frame, ctx.pid, ctx.tid, uid));
    } catch (const expr::EvalError& error) {
      throw InterpretError("node " + node.id() + ", tag '" +
                           std::string(tag_name) + "': " + error.what());
    }
  }

  void run_fragment(const NodePrograms& programs, const Node& node,
                    Scope& scope, const ModelContext& ctx) {
    for (const auto& assignment : programs.fragment) {
      double value = 0;
      try {
        value = assignment.value.eval(
            make_context(scope.frame, ctx.pid, ctx.tid, programs.uid));
      } catch (const expr::EvalError& error) {
        throw InterpretError("code fragment at node " + node.id() + ": " +
                             error.what());
      }
      if (assignment.coerce_int) {
        value = std::trunc(value);
      }
      using Target = CompiledAssignment::Target;
      switch (assignment.target) {
        case Target::Local:
          if (scope.locals != nullptr) {
            scope.locals[assignment.slot] = value;
            continue;
          }
          break;  // no locals in scope: undeclared here
        case Target::Global:
          global_values[assignment.slot] = value;
          continue;
        case Target::Undeclared:
          break;
      }
      throw InterpretError("code fragment at node " + node.id() +
                           " assigns undeclared variable '" +
                           assignment.name + "'");
    }
  }

  // ---------------------------------------------------------------------
  // Run-time walking
  // ---------------------------------------------------------------------

  void start_run(const machine::SystemParameters& params) {
    np = params.processes;
    nt = params.threads_per_process;
    nn = params.nodes;
    ppn = params.processors_per_node;
    global_values.assign(program->slot_count(), 0.0);
    run_frame.assign(program->slot_count(), nullptr);
    run_frame[program->np_slot()] = &np;
    run_frame[program->nt_slot()] = &nt;
    run_frame[program->nn_slot()] = &nn;
    run_frame[program->ppn_slot()] = &ppn;
    // Globals initialize in declaration order and become visible one by
    // one — a forward reference falls through to the system parameters
    // or errors, exactly like the tree walker's growing globals map.
    for (const auto& variable : program->variables()) {
      if (variable.scope != uml::VariableScope::Global) {
        continue;
      }
      double value = 0;
      if (variable.initializer.has_value()) {
        value = variable.initializer->eval(make_context(run_frame, 0, 0, 0));
      }
      global_values[variable.slot] = coerce(variable.type, value);
      run_frame[variable.slot] = &global_values[variable.slot];
    }
  }

  sim::Process run_process(ModelContext ctx) {
    // Per-process locals, initialized in declaration order; the storage
    // lives in this coroutine frame for the process's whole lifetime.
    std::vector<double> local_values(program->slot_count(), 0.0);
    Scope scope;
    scope.frame = run_frame;
    scope.locals = local_values.data();
    for (const auto& variable : program->variables()) {
      if (variable.scope != uml::VariableScope::Local) {
        continue;
      }
      double value = 0;
      if (variable.initializer.has_value()) {
        value = variable.initializer->eval(
            make_context(scope.frame, ctx.pid, ctx.tid, 0));
      }
      local_values[variable.slot] = coerce(variable.type, value);
      scope.frame[variable.slot] = &local_values[variable.slot];
    }
    co_await run_diagram(ctx, *model->main_diagram(), scope);
  }

  /// Walks a diagram from its initial node to a final node (or a dead
  /// end).  `scope` is taken by value: the slot frame is snapshot,
  /// locals stay shared through the storage pointers.
  sim::Process run_diagram(ModelContext ctx, const ActivityDiagram& diagram,
                           Scope scope) {
    const Node* initial = diagram.initial();
    if (initial == nullptr) {
      throw InterpretError("diagram " + diagram.id() + " has no initial node");
    }
    co_await walk(ctx, diagram, *initial, scope, nullptr);
  }

  /// Walks from `start` until a Final node (stop == nullptr) or until a
  /// Join node is reached (its id is written to *stop, and the join node
  /// is not executed).  Used both for whole diagrams and fork branches.
  sim::Process walk(ModelContext ctx, const ActivityDiagram& diagram,
                    const Node& start, Scope scope, std::string* stop) {
    const Node* node = &start;
    // Guard against unstructured cycles (the checker warns; the
    // interpreter must not hang).
    std::uint64_t steps = 0;
    const std::uint64_t limit =
        1000000ULL + 1000ULL * diagram.node_count();
    while (node != nullptr) {
      if (++steps > limit) {
        throw InterpretError("diagram " + diagram.id() +
                             ": walk exceeded step limit (unstructured "
                             "cycle without <<loop+>>?)");
      }
      if (stop != nullptr && node->kind() == NodeKind::Join) {
        *stop = node->id();
        co_return;
      }
      if (node->kind() == NodeKind::Fork) {
        // Run the branches to their common join, then continue from the
        // join's successor.
        std::string join_id;
        co_await execute_fork(ctx, diagram, *node, scope, &join_id);
        const Node* join = diagram.node(join_id);
        const auto after = diagram.outgoing(join->id());
        if (after.empty()) {
          co_return;
        }
        if (after.size() > 1) {
          throw InterpretError("join " + join->id() +
                               " has multiple outgoing edges");
        }
        node = diagram.node(after[0]->target());
        continue;
      }
      co_await execute_node(ctx, diagram, *node, scope);
      if (node->kind() == NodeKind::Final) {
        co_return;
      }
      node = next_node(ctx, diagram, *node, scope);
    }
  }

  const Node* next_node(const ModelContext& ctx,
                        const ActivityDiagram& diagram, const Node& node,
                        const Scope& scope) {
    const auto outgoing = diagram.outgoing(node.id());
    if (node.kind() == NodeKind::Decision) {
      const uml::ControlFlow* chosen = nullptr;
      const uml::ControlFlow* fallback = nullptr;
      const int uid = program->at(node).uid;
      for (const auto* edge : outgoing) {
        if (edge->is_else()) {
          if (fallback == nullptr) {
            fallback = edge;
          }
          continue;
        }
        const expr::Compiled* guard = program->guard(*edge);
        if (guard == nullptr) {
          continue;  // unguarded edge out of a decision: never taken
        }
        if (expr::truthy(guard->eval(
                make_context(scope.frame, ctx.pid, ctx.tid, uid)))) {
          chosen = edge;
          break;
        }
      }
      if (chosen == nullptr) {
        chosen = fallback;
      }
      if (chosen == nullptr) {
        throw InterpretError("decision " + node.id() +
                             ": no guard holds and no 'else' edge");
      }
      return diagram.node(chosen->target());
    }
    if (outgoing.empty()) {
      return nullptr;  // dead end; connectivity rule warns about this
    }
    if (outgoing.size() > 1) {
      throw InterpretError("node " + node.id() +
                           " has multiple unguarded outgoing edges");
    }
    return diagram.node(outgoing[0]->target());
  }

  sim::Process execute_node(ModelContext ctx,
                            [[maybe_unused]] const ActivityDiagram& diagram,
                            const Node& node, Scope& scope) {
    switch (node.kind()) {
      case NodeKind::Initial:
      case NodeKind::Final:
      case NodeKind::Merge:
      case NodeKind::Join:
      case NodeKind::Decision:
        co_return;
      case NodeKind::Fork:
        co_return;  // handled inline by walk()
      case NodeKind::Action:
        co_await execute_action(ctx, node, scope);
        co_return;
      case NodeKind::Activity:
        co_await execute_activity(ctx, node, scope);
        co_return;
      case NodeKind::Loop:
        co_await execute_loop(ctx, node, scope);
        co_return;
    }
  }

  sim::Process execute_fork(ModelContext ctx, const ActivityDiagram& diagram,
                            const Node& node, Scope& scope,
                            std::string* join_out) {
    const auto outgoing = diagram.outgoing(node.id());
    std::vector<std::string> joins(outgoing.size());
    std::vector<sim::ProcessRef> branches;
    branches.reserve(outgoing.size());
    for (std::size_t i = 0; i < outgoing.size(); ++i) {
      const Node* target = diagram.node(outgoing[i]->target());
      if (target == nullptr) {
        throw InterpretError("fork " + node.id() + ": dangling edge");
      }
      // Branches share locals (generated code captures them by
      // reference) and snapshot the slot frame.
      branches.push_back(ctx.engine->spawn(
          walk(ctx, diagram, *target, scope, &joins[i])));
    }
    for (const auto& branch : branches) {
      co_await branch;
    }
    for (std::size_t i = 1; i < joins.size(); ++i) {
      if (joins[i] != joins[0]) {
        throw InterpretError("fork " + node.id() +
                             ": branches reach different joins ('" +
                             joins[0] + "' vs '" + joins[i] + "')");
      }
    }
    if (joins.empty() || joins[0].empty()) {
      throw InterpretError("fork " + node.id() +
                           ": branches do not reach a join");
    }
    *join_out = joins[0];
  }

  sim::Process execute_action(ModelContext ctx, const Node& node,
                              Scope& scope) {
    const NodePrograms& programs = program->at(node);
    run_fragment(programs, node, scope, ctx);
    const int uid = programs.uid;
    const std::string& stereotype = node.stereotype();
    if (stereotype == uml::stereo::kActionPlus || stereotype.empty()) {
      double cost = 0;
      if (programs.cost().has_value()) {
        cost = eval_tag(programs.cost(), uml::tag::kCost, node, uid, scope,
                        ctx);
      } else if (auto time = node.tag_number(uml::tag::kTime)) {
        cost = *time;
      }
      workload::ActionPlus element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid, cost);
    } else if (stereotype == uml::stereo::kSend) {
      const int dest = static_cast<int>(eval_tag(
          programs.dest(), uml::tag::kDest, node, uid, scope, ctx));
      const double bytes = eval_tag(programs.size(), uml::tag::kSize, node,
                                    uid, scope, ctx);
      const int tag = static_cast<int>(
          node.tag_number(uml::tag::kMsgTag).value_or(0));
      workload::SendElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid, dest, bytes, tag);
    } else if (stereotype == uml::stereo::kRecv) {
      const int source = static_cast<int>(eval_tag(
          programs.source(), uml::tag::kSource, node, uid, scope, ctx));
      const double bytes = eval_tag(programs.size(), uml::tag::kSize, node,
                                    uid, scope, ctx);
      const int tag = static_cast<int>(
          node.tag_number(uml::tag::kMsgTag).value_or(0));
      workload::RecvElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid, source, bytes, tag);
    } else if (stereotype == uml::stereo::kBarrier) {
      workload::BarrierElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid);
    } else if (stereotype == uml::stereo::kBroadcast ||
               stereotype == uml::stereo::kReduce ||
               stereotype == uml::stereo::kAllReduce ||
               stereotype == uml::stereo::kScatter ||
               stereotype == uml::stereo::kGather) {
      const double bytes = eval_tag(programs.size(), uml::tag::kSize, node,
                                    uid, scope, ctx);
      const int root =
          node.has_tag(uml::tag::kRoot)
              ? static_cast<int>(eval_tag(programs.root(), uml::tag::kRoot,
                                          node, uid, scope, ctx))
              : 0;
      workload::CollectiveElement element(ctx, node.name(),
                                          collective_kind(stereotype));
      co_await element.execute(uid, ctx.pid, ctx.tid, bytes, root);
    } else if (stereotype == uml::stereo::kOmpFor) {
      const double iterations = eval_tag(
          programs.iterations(), uml::tag::kIterations, node, uid, scope, ctx);
      const double itercost = eval_tag(
          programs.itercost(), uml::tag::kIterCost, node, uid, scope, ctx);
      std::string schedule = node.tag_string(uml::tag::kSchedule);
      if (schedule.empty()) {
        schedule = "static";
      }
      const auto chunk = static_cast<std::int64_t>(
          node.tag_number(uml::tag::kChunk).value_or(0));
      workload::WorkshareElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid, iterations, itercost,
                               schedule, chunk);
    } else if (stereotype == uml::stereo::kOmpBarrier) {
      workload::OmpBarrierElement element(ctx, node.name());
      co_await element.execute(uid, ctx.pid, ctx.tid);
    } else {
      throw InterpretError("node " + node.id() + ": unsupported stereotype <<" +
                           stereotype + ">> on an action node");
    }
  }

  static workload::CollectiveKind collective_kind(
      const std::string& stereotype) {
    if (stereotype == uml::stereo::kBroadcast) {
      return workload::CollectiveKind::Broadcast;
    }
    if (stereotype == uml::stereo::kReduce) {
      return workload::CollectiveKind::Reduce;
    }
    if (stereotype == uml::stereo::kAllReduce) {
      return workload::CollectiveKind::AllReduce;
    }
    if (stereotype == uml::stereo::kScatter) {
      return workload::CollectiveKind::Scatter;
    }
    return workload::CollectiveKind::Gather;
  }

  sim::Process execute_activity(ModelContext ctx, const Node& node,
                                Scope& scope) {
    const NodePrograms& programs = program->at(node);
    run_fragment(programs, node, scope, ctx);
    const int uid = programs.uid;
    const ActivityDiagram* sub = model->diagram(node.subdiagram_id());
    const std::string& stereotype = node.stereotype();
    if (stereotype == uml::stereo::kOmpParallel) {
      const int threads =
          programs.num_threads().has_value()
              ? static_cast<int>(eval_tag(programs.num_threads(),
                                          uml::tag::kNumThreads, node, uid,
                                          scope, ctx))
              : static_cast<int>(nt);
      Scope body_scope = scope;  // frame snapshot; shared locals storage
      co_await workload::parallel_region(
          ctx, threads, uid, node.name(),
          [this, sub, body_scope](ModelContext tctx) -> sim::Process {
            return run_diagram(tctx, *sub, body_scope);
          });
    } else if (stereotype == uml::stereo::kOmpCritical) {
      std::string lock = node.tag_string(uml::tag::kCriticalName);
      if (lock.empty()) {
        lock = "default";
      }
      workload::CriticalElement element(ctx, node.name(), lock);
      Scope body_scope = scope;
      ModelContext body_ctx = ctx;
      co_await element.execute(uid, ctx.pid, ctx.tid,
                               [this, sub, body_scope,
                                body_ctx]() -> sim::Process {
                                 return run_diagram(body_ctx, *sub,
                                                    body_scope);
                               });
    } else {
      // <<activity+>> (or unstereotyped composite): run content inline,
      // recording a region span (ActivityPlus).
      workload::ActivityPlus element(ctx, node.name());
      const double started = element.begin(uid);
      co_await run_diagram(ctx, *sub, scope);
      element.end(uid, started);
    }
  }

  sim::Process execute_loop(ModelContext ctx, const Node& node,
                            Scope& scope) {
    const NodePrograms& programs = program->at(node);
    run_fragment(programs, node, scope, ctx);
    const ActivityDiagram* body = model->diagram(node.subdiagram_id());
    const double raw = eval_tag(programs.iterations(), uml::tag::kIterations,
                                node, programs.uid, scope, ctx);
    if (std::isnan(raw) || raw < 0) {
      throw InterpretError("loop " + node.id() +
                           ": iteration count is negative or NaN");
    }
    const auto iterations = static_cast<std::int64_t>(raw);
    // The loop variable's storage lives in this coroutine frame; the
    // body scope's slot rebinding shadows any outer binding of the same
    // name and is dropped with the snapshot when the loop exits.
    double loop_value = 0;
    Scope iteration_scope = scope;
    iteration_scope.frame[programs.loop_var_slot] = &loop_value;
    for (std::int64_t k = 0; k < iterations; ++k) {
      // Charge every trip: a zero-cost body never yields to the engine
      // (hold(0) is ready immediately), so without this charge a spin
      // loop would be invisible to the event budget and the deadline.
      if (budget != nullptr) {
        budget->charge_loop_trips(1, "interp-loop");
      }
      loop_value = static_cast<double>(k);
      co_await run_diagram(ctx, *body, iteration_scope);
    }
  }
};

std::shared_ptr<const Interpreter::Program> Interpreter::compile(
    const uml::Model& model) {
  try {
    return lower::lower(model);
  } catch (const lower::LowerError& error) {
    throw InterpretError(error.what());
  }
}

std::shared_ptr<const Interpreter::Program> Interpreter::compile(
    uml::Model&& model) {
  try {
    return lower::lower(std::move(model));
  } catch (const lower::LowerError& error) {
    throw InterpretError(error.what());
  }
}

Interpreter::Interpreter(const uml::Model& model)
    : impl_(std::make_unique<Impl>(compile(model))) {}

Interpreter::Interpreter(uml::Model&& model)
    : impl_(std::make_unique<Impl>(compile(std::move(model)))) {}

Interpreter::Interpreter(std::shared_ptr<const Program> program) {
  if (program == nullptr) {
    throw InterpretError("null program");
  }
  impl_ = std::make_unique<Impl>(std::move(program));
}

Interpreter::~Interpreter() = default;

void Interpreter::on_run_start(const machine::SystemParameters& params) {
  impl_->start_run(params);
}

sim::Process Interpreter::process_main(workload::ModelContext ctx) {
  return impl_->run_process(std::move(ctx));
}

void Interpreter::set_expr_counters(obs::ExprCounters* counters) {
  impl_->expr_counters = counters;
}

void Interpreter::set_budget(guard::Budget* budget) {
  impl_->budget = budget;
}

double Interpreter::global(const std::string& name) const {
  for (const auto& variable : impl_->program->variables()) {
    if (variable.scope == uml::VariableScope::Global &&
        variable.name == name &&
        impl_->run_frame[variable.slot] ==
            &impl_->global_values[variable.slot]) {
      // Bound == initialized by a run, matching the tree walker's
      // populate-on-start_run globals map.
      return impl_->global_values[variable.slot];
    }
  }
  throw InterpretError("unknown global '" + name + "'");
}

double Interpreter::call_cost_function(const std::string& name,
                                       const std::vector<double>& args,
                                       int pid, int tid, int uid) const {
  (void)pid;
  (void)tid;
  (void)uid;
  const auto id = impl_->program->function_id(name);
  if (!id.has_value()) {
    throw InterpretError("unknown cost function '" + name + "'");
  }
  return impl_->call(*id, args);
}

int Interpreter::uid_of(const std::string& node_id) const {
  try {
    return impl_->program->uid_of(node_id);
  } catch (const lower::LowerError& error) {
    throw InterpretError(error.what());
  }
}

}  // namespace prophet::interp
