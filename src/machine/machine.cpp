#include "prophet/machine/machine.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "prophet/xml/parser.hpp"
#include "prophet/xml/writer.hpp"

namespace prophet::machine {
namespace {

double attr_double(const xml::Element& element, std::string_view name,
                   double fallback) {
  if (auto text = element.attr(name)) {
    char* end = nullptr;
    const std::string copy(*text);
    const double value = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() && *end == '\0') {
      return value;
    }
    throw std::invalid_argument("sp: attribute '" + std::string(name) +
                                "' is not a number: " + copy);
  }
  return fallback;
}

int attr_int(const xml::Element& element, std::string_view name,
             int fallback) {
  return static_cast<int>(attr_double(element, name, fallback));
}

}  // namespace

void SystemParameters::validate() const {
  auto require = [](bool condition, const char* message) {
    if (!condition) {
      throw std::invalid_argument(std::string("system parameters: ") +
                                  message);
    }
  };
  require(nodes >= 1, "nodes must be >= 1");
  require(processors_per_node >= 1, "processors_per_node must be >= 1");
  require(processes >= 1, "processes must be >= 1");
  require(threads_per_process >= 1, "threads_per_process must be >= 1");
  require(cpu_speed > 0, "cpu_speed must be > 0");
  require(network_latency >= 0, "network_latency must be >= 0");
  require(network_bandwidth > 0, "network_bandwidth must be > 0");
  require(network_overhead >= 0, "network_overhead must be >= 0");
  require(memory_latency >= 0, "memory_latency must be >= 0");
  require(memory_bandwidth > 0, "memory_bandwidth must be > 0");
  require(barrier_latency >= 0, "barrier_latency must be >= 0");
}

xml::Document SystemParameters::to_xml() const {
  auto doc = xml::Document::with_root("sp");
  auto& root = doc.root();
  auto num = [](double value) {
    std::ostringstream out;
    out.precision(17);
    out << value;
    return out.str();
  };
  root.set_attr("nodes", std::to_string(nodes));
  root.set_attr("ppn", std::to_string(processors_per_node));
  root.set_attr("processes", std::to_string(processes));
  root.set_attr("threads", std::to_string(threads_per_process));
  auto& network = root.add_element("network");
  network.set_attr("latency", num(network_latency));
  network.set_attr("bandwidth", num(network_bandwidth));
  network.set_attr("overhead", num(network_overhead));
  auto& memory = root.add_element("memory");
  memory.set_attr("latency", num(memory_latency));
  memory.set_attr("bandwidth", num(memory_bandwidth));
  auto& cpu = root.add_element("cpu");
  cpu.set_attr("speed", num(cpu_speed));
  auto& sync = root.add_element("sync");
  sync.set_attr("barrier_latency", num(barrier_latency));
  return doc;
}

SystemParameters SystemParameters::from_xml(const xml::Document& doc) {
  if (!doc.has_root() || doc.root().name() != "sp") {
    throw std::invalid_argument("not an SP document (root must be <sp>)");
  }
  const auto& root = doc.root();
  SystemParameters params;
  params.nodes = attr_int(root, "nodes", params.nodes);
  params.processors_per_node = attr_int(root, "ppn",
                                        params.processors_per_node);
  params.processes = attr_int(root, "processes", params.processes);
  params.threads_per_process = attr_int(root, "threads",
                                        params.threads_per_process);
  if (const auto* network = root.child("network")) {
    params.network_latency =
        attr_double(*network, "latency", params.network_latency);
    params.network_bandwidth =
        attr_double(*network, "bandwidth", params.network_bandwidth);
    params.network_overhead =
        attr_double(*network, "overhead", params.network_overhead);
  }
  if (const auto* memory = root.child("memory")) {
    params.memory_latency =
        attr_double(*memory, "latency", params.memory_latency);
    params.memory_bandwidth =
        attr_double(*memory, "bandwidth", params.memory_bandwidth);
  }
  if (const auto* cpu = root.child("cpu")) {
    params.cpu_speed = attr_double(*cpu, "speed", params.cpu_speed);
  }
  if (const auto* sync = root.child("sync")) {
    params.barrier_latency =
        attr_double(*sync, "barrier_latency", params.barrier_latency);
  }
  params.validate();
  return params;
}

void SystemParameters::save(const std::string& path) const {
  xml::write_file(to_xml(), path);
}

SystemParameters SystemParameters::load(const std::string& path) {
  return from_xml(xml::parse_file(path));
}

MachineModel::MachineModel(sim::Engine& engine, SystemParameters params)
    : engine_(&engine), params_(params) {
  params_.validate();
  nodes_.reserve(static_cast<std::size_t>(params_.nodes));
  for (int i = 0; i < params_.nodes; ++i) {
    nodes_.push_back(std::make_unique<sim::Facility>(
        engine, "node" + std::to_string(i), params_.processors_per_node));
  }
}

int node_of(const SystemParameters& params, int pid) {
  if (pid < 0 || pid >= params.processes) {
    throw std::out_of_range("pid " + std::to_string(pid) +
                            " outside [0, processes)");
  }
  // Block distribution: ceil(np / nn) consecutive ranks per node.
  const int per_node = (params.processes + params.nodes - 1) / params.nodes;
  return pid / per_node;
}

double message_time(const SystemParameters& params, int src_pid, int dst_pid,
                    double bytes) {
  if (node_of(params, src_pid) == node_of(params, dst_pid)) {
    return params.memory_latency + bytes / params.memory_bandwidth;
  }
  return params.network_latency + bytes / params.network_bandwidth;
}

double collective_round_time(const SystemParameters& params, double bytes) {
  // A round of a tree collective is dominated by the slowest link, which
  // is inter-node as soon as more than one node participates.
  if (params.nodes > 1) {
    return params.network_latency + bytes / params.network_bandwidth;
  }
  return params.memory_latency + bytes / params.memory_bandwidth;
}

int tree_rounds(int n) {
  int rounds = 0;
  int reach = 1;
  while (reach < n) {
    reach *= 2;
    ++rounds;
  }
  return rounds;
}

double barrier_time(const SystemParameters& params) {
  return tree_rounds(params.processes) * params.barrier_latency;
}

int MachineModel::node_of(int pid) const {
  return machine::node_of(params_, pid);
}

sim::Facility& MachineModel::node(int index) {
  return *nodes_.at(static_cast<std::size_t>(index));
}

const sim::Facility& MachineModel::node(int index) const {
  return *nodes_.at(static_cast<std::size_t>(index));
}

double MachineModel::message_time(int src_pid, int dst_pid,
                                  double bytes) const {
  return machine::message_time(params_, src_pid, dst_pid, bytes);
}

double MachineModel::collective_round_time(double bytes) const {
  return machine::collective_round_time(params_, bytes);
}

std::string MachineModel::utilization_report() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  for (const auto& node : nodes_) {
    out << node->name() << ": utilization " << node->utilization()
        << ", completions " << node->completions() << ", mean queue "
        << node->mean_queue_length() << '\n';
  }
  return out.str();
}

}  // namespace prophet::machine
