#include "prophet/estimator/estimator.hpp"

#include <sstream>

namespace prophet::estimator {

std::string PredictionReport::summary() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(12);
  out << "predicted time: " << predicted_time << " s\n";
  out << "processes:      " << processes << '\n';
  out << "engine events:  " << events << '\n';
  for (const auto& [pid, finish] : per_process_finish) {
    out << "  p" << pid << " finished at " << finish << " s\n";
  }
  if (!machine_report.empty()) {
    out << "-- machine --\n" << machine_report;
  }
  return out.str();
}

SimulationManager::SimulationManager(machine::SystemParameters params,
                                     EstimationOptions options)
    : params_(params), options_(options) {
  params_.validate();
}

PredictionReport SimulationManager::run(ProgramModel& model) const {
  sim::Engine engine;
  machine::MachineModel machine(engine, params_);
  workload::Communicator comm(engine, machine);
  PredictionReport report;
  report.processes = params_.processes;

  // Per-run counter blocks, folded into the registry at the end.  The
  // expr block is installed on the model for the run's duration; the
  // guard resets it even when the run throws (the model outlives this
  // call and must not keep a pointer into our stack).
  obs::SimCounters sim_counters;
  obs::ExprCounters expr_counters;
  const bool metrics = options_.metrics != nullptr;
  struct ResetExprCounters {
    ProgramModel* model;
    ~ResetExprCounters() {
      if (model != nullptr) {
        model->set_expr_counters(nullptr);
      }
    }
  } reset{metrics ? &model : nullptr};
  if (metrics) {
    model.set_expr_counters(&expr_counters);
  }

  // Execution guard: a caller-owned budget wins; otherwise any active
  // limits get a run-local one.  It is installed on both cooperative
  // layers — the engine (per-event charge) and the model (loop trips,
  // expression-VM instructions) — and detached from the model before
  // returning, throwing paths included.
  guard::Budget local_budget(options_.limits);
  guard::Budget* budget = options_.budget != nullptr ? options_.budget
                          : options_.limits.any()    ? &local_budget
                                                     : nullptr;
  struct ResetBudget {
    ProgramModel* model;
    ~ResetBudget() {
      if (model != nullptr) {
        model->set_budget(nullptr);
      }
    }
  } reset_budget{budget != nullptr ? &model : nullptr};
  if (budget != nullptr) {
    engine.set_budget(budget);
    model.set_budget(budget);
  }

  model.on_run_start(params_);

  // One wrapper process per modeled process records its finish time.
  std::map<int, double> finish;
  auto wrapper = [&model, &finish](workload::ModelContext ctx)
      -> sim::Process {
    const int pid = ctx.pid;
    co_await model.process_main(ctx);
    finish[pid] = ctx.engine->now();
  };

  for (int pid = 0; pid < params_.processes; ++pid) {
    workload::ModelContext ctx;
    ctx.engine = &engine;
    ctx.machine = &machine;
    ctx.comm = &comm;
    ctx.trace = options_.collect_trace ? &report.trace : nullptr;
    ctx.counters = metrics ? &sim_counters : nullptr;
    ctx.pid = pid;
    ctx.tid = 0;
    engine.spawn(wrapper(ctx));
  }

  engine.run();

  report.predicted_time = engine.now();
  report.per_process_finish = std::move(finish);
  report.events = engine.events_processed();
  if (options_.collect_machine_report) {
    report.machine_report = machine.utilization_report();
  }
  if (metrics) {
    // Every engine event is one coroutine resumption — the simulated
    // analogue of a context switch.
    sim_counters.context_switches = engine.events_processed();
    options_.metrics->fold("sim.", sim_counters);
    options_.metrics->counter("sim.runs").add(1);
    options_.metrics->fold("expr.", expr_counters);
  }
  return report;
}

}  // namespace prophet::estimator
