#include "prophet/estimator/backend.hpp"

namespace prophet::estimator {

BackendSet backends_of(BackendKind kind) {
  BackendSet set;
  switch (kind) {
    case BackendKind::Simulation:
      set.sim = true;
      break;
    case BackendKind::Analytic:
      set.analytic = true;
      break;
    case BackendKind::Codegen:
      set.codegen = true;
      break;
    case BackendKind::Both:
      set.sim = set.analytic = true;
      break;
    case BackendKind::SimCodegen:
      set.sim = set.codegen = true;
      break;
    case BackendKind::AnalyticCodegen:
      set.analytic = set.codegen = true;
      break;
    case BackendKind::All:
      set.sim = set.analytic = set.codegen = true;
      break;
  }
  return set;
}

std::string_view to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::Simulation:
      return "sim";
    case BackendKind::Analytic:
      return "analytic";
    case BackendKind::Codegen:
      return "codegen";
    case BackendKind::Both:
      return "both";
    case BackendKind::SimCodegen:
      return "sim+codegen";
    case BackendKind::AnalyticCodegen:
      return "analytic+codegen";
    case BackendKind::All:
      return "all";
  }
  return "unknown";
}

std::optional<BackendKind> backend_from_string(std::string_view text) {
  if (text == "sim" || text == "simulation") {
    return BackendKind::Simulation;
  }
  if (text == "analytic") {
    return BackendKind::Analytic;
  }
  if (text == "codegen") {
    return BackendKind::Codegen;
  }
  if (text == "both" || text == "sim+analytic" || text == "analytic+sim") {
    return BackendKind::Both;
  }
  if (text == "sim+codegen" || text == "codegen+sim") {
    return BackendKind::SimCodegen;
  }
  if (text == "analytic+codegen" || text == "codegen+analytic") {
    return BackendKind::AnalyticCodegen;
  }
  if (text == "all") {
    return BackendKind::All;
  }
  return std::nullopt;
}

std::vector<PredictionReport> PreparedModel::estimate_batch(
    std::span<const machine::SystemParameters> params,
    const EstimationOptions& options) const {
  std::vector<PredictionReport> reports;
  reports.reserve(params.size());
  for (const auto& lane : params) {
    reports.push_back(estimate(lane, options));
  }
  return reports;
}

PredictionReport Backend::estimate(const uml::Model& model,
                                   const machine::SystemParameters& params,
                                   const EstimationOptions& options) const {
  return prepare(model)->estimate(params, options);
}

}  // namespace prophet::estimator
