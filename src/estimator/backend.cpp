#include "prophet/estimator/backend.hpp"

namespace prophet::estimator {

std::string_view to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::Simulation:
      return "sim";
    case BackendKind::Analytic:
      return "analytic";
    case BackendKind::Both:
      return "both";
  }
  return "unknown";
}

std::optional<BackendKind> backend_from_string(std::string_view text) {
  if (text == "sim" || text == "simulation") {
    return BackendKind::Simulation;
  }
  if (text == "analytic") {
    return BackendKind::Analytic;
  }
  if (text == "both") {
    return BackendKind::Both;
  }
  return std::nullopt;
}

PredictionReport Backend::estimate(const uml::Model& model,
                                   const machine::SystemParameters& params,
                                   const EstimationOptions& options) const {
  return prepare(model)->estimate(params, options);
}

}  // namespace prophet::estimator
