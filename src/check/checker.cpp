#include "prophet/check/checker.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "prophet/expr/analysis.hpp"
#include "prophet/expr/parser.hpp"
#include "prophet/uml/sysparams.hpp"

namespace prophet::check {
namespace {

using uml::ActivityDiagram;
using uml::ControlFlow;
using uml::Model;
using uml::Node;
using uml::NodeKind;

std::string loc_diagram(const ActivityDiagram& diagram) {
  return "diagram " + diagram.id() + " (" + diagram.name() + ")";
}

std::string loc_node(const ActivityDiagram& diagram, const Node& node) {
  std::string out = loc_diagram(diagram) + " / node " + node.id();
  if (!node.name().empty()) {
    out += " (" + node.name() + ")";
  }
  return out;
}

std::string loc_edge(const ActivityDiagram& diagram, const ControlFlow& edge) {
  return loc_diagram(diagram) + " / edge " + edge.id();
}

bool is_identifier(std::string_view text) {
  if (text.empty()) {
    return false;
  }
  if (!std::isalpha(static_cast<unsigned char>(text[0])) && text[0] != '_') {
    return false;
  }
  return std::all_of(text.begin(), text.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  });
}

/// A node that carries performance semantics (selected by the Fig. 5
/// algorithm's stereotype filter, lines 1-8).
bool is_performance_element(const Node& node) {
  return node.has_stereotype();
}

/// Loop variables visible inside each diagram, accounting for nesting: a
/// diagram used as a loop body sees the loop's variable plus everything
/// visible at the loop's site.  Computed by fixpoint propagation so deeply
/// nested loop bodies accumulate all enclosing variables.
std::map<std::string, std::set<std::string>> visible_loop_vars(
    const Model& model) {
  std::map<std::string, std::set<std::string>> visible;
  for (const auto& diagram : model.diagrams()) {
    visible[diagram->id()];  // ensure entry
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& diagram : model.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        const std::string sub = node->subdiagram_id();
        if (sub.empty() || visible.find(sub) == visible.end()) {
          continue;
        }
        std::set<std::string> wanted = visible[diagram->id()];
        if (node->kind() == NodeKind::Loop) {
          const std::string var = node->tag_string(uml::tag::kLoopVar);
          if (!var.empty()) {
            wanted.insert(var);
          }
        }
        auto& target = visible[sub];
        for (const auto& name : wanted) {
          if (target.insert(name).second) {
            changed = true;
          }
        }
      }
    }
  }
  return visible;
}

// --- Rules -------------------------------------------------------------------

class MainDiagramRule final : public Rule {
 public:
  MainDiagramRule()
      : Rule("main-diagram", "the model has a resolvable main diagram",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    if (model.diagrams().empty()) {
      ctx.report("model " + model.name(), "model contains no diagrams");
      return;
    }
    if (model.main_diagram_id().empty()) {
      ctx.report("model " + model.name(), "no main diagram designated");
      return;
    }
    if (model.main_diagram() == nullptr) {
      ctx.report("model " + model.name(),
                 "main diagram '" + model.main_diagram_id() + "' not found");
    }
  }
};

class UniqueIdsRule final : public Rule {
 public:
  UniqueIdsRule()
      : Rule("unique-ids",
             "diagram, node and edge ids are unique across the model",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    std::map<std::string, std::string> seen;  // id -> location
    auto claim = [&](const std::string& id, std::string location) {
      auto [it, inserted] = seen.emplace(id, location);
      if (!inserted) {
        ctx.report(std::move(location),
                   "id '" + id + "' already used at " + it->second);
      }
    };
    for (const auto& diagram : model.diagrams()) {
      claim(diagram->id(), loc_diagram(*diagram));
      for (const auto& node : diagram->nodes()) {
        claim(node->id(), loc_node(*diagram, *node));
      }
      for (const auto& edge : diagram->edges()) {
        claim(edge->id(), loc_edge(*diagram, *edge));
      }
    }
  }
};

class InitialNodeRule final : public Rule {
 public:
  InitialNodeRule()
      : Rule("initial-node", "each diagram has exactly one initial node",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    for (const auto& diagram : model.diagrams()) {
      std::size_t count = 0;
      for (const auto& node : diagram->nodes()) {
        if (node->kind() == NodeKind::Initial) {
          ++count;
        }
      }
      if (count == 0) {
        ctx.report(loc_diagram(*diagram), "diagram has no initial node");
      } else if (count > 1) {
        ctx.report(loc_diagram(*diagram),
                   "diagram has " + std::to_string(count) +
                       " initial nodes; exactly one is required");
      }
    }
  }
};

class InitialFinalEdgesRule final : public Rule {
 public:
  InitialFinalEdgesRule()
      : Rule("initial-final-edges",
             "initial nodes have one outgoing and no incoming edge; final "
             "nodes have no outgoing edges",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    for (const auto& diagram : model.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        const auto in = diagram->incoming(node->id()).size();
        const auto out = diagram->outgoing(node->id()).size();
        if (node->kind() == NodeKind::Initial) {
          if (in != 0) {
            ctx.report(loc_node(*diagram, *node),
                       "initial node has incoming edges");
          }
          if (out != 1) {
            ctx.report(loc_node(*diagram, *node),
                       "initial node must have exactly one outgoing edge, "
                       "has " +
                           std::to_string(out));
          }
        } else if (node->kind() == NodeKind::Final && out != 0) {
          ctx.report(loc_node(*diagram, *node),
                     "final node has outgoing edges");
        }
      }
    }
  }
};

class EdgeEndpointsRule final : public Rule {
 public:
  EdgeEndpointsRule()
      : Rule("edge-endpoints",
             "every edge connects two nodes of its own diagram",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    for (const auto& diagram : model.diagrams()) {
      for (const auto& edge : diagram->edges()) {
        if (diagram->node(edge->source()) == nullptr) {
          ctx.report(loc_edge(*diagram, *edge),
                     "source '" + edge->source() + "' not in diagram");
        }
        if (diagram->node(edge->target()) == nullptr) {
          ctx.report(loc_edge(*diagram, *edge),
                     "target '" + edge->target() + "' not in diagram");
        }
        if (edge->source() == edge->target()) {
          ctx.report(Severity::Warning, loc_edge(*diagram, *edge),
                     "self-loop edge");
        }
      }
    }
  }
};

class ConnectivityRule final : public Rule {
 public:
  ConnectivityRule()
      : Rule("connectivity",
             "non-initial nodes have predecessors; non-final nodes have "
             "successors",
             Severity::Warning) {}
  void run(const Model& model, RuleContext& ctx) const override {
    for (const auto& diagram : model.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        const auto in = diagram->incoming(node->id()).size();
        const auto out = diagram->outgoing(node->id()).size();
        if (node->kind() != NodeKind::Initial && in == 0) {
          ctx.report(loc_node(*diagram, *node), "node has no incoming edge");
        }
        if (node->kind() != NodeKind::Final && out == 0) {
          ctx.report(loc_node(*diagram, *node), "node has no outgoing edge");
        }
      }
    }
  }
};

class ReachabilityRule final : public Rule {
 public:
  ReachabilityRule()
      : Rule("node-reachable",
             "every node is reachable from the diagram's initial node",
             Severity::Warning) {}
  void run(const Model& model, RuleContext& ctx) const override {
    for (const auto& diagram : model.diagrams()) {
      const Node* initial = diagram->initial();
      if (initial == nullptr) {
        continue;  // initial-node rule reports this
      }
      std::set<std::string> reached;
      std::vector<std::string> frontier{initial->id()};
      reached.insert(initial->id());
      while (!frontier.empty()) {
        const std::string id = std::move(frontier.back());
        frontier.pop_back();
        for (const auto* edge : diagram->outgoing(id)) {
          if (reached.insert(edge->target()).second) {
            frontier.push_back(edge->target());
          }
        }
      }
      for (const auto& node : diagram->nodes()) {
        if (reached.find(node->id()) == reached.end()) {
          ctx.report(loc_node(*diagram, *node),
                     "node unreachable from initial node");
        }
      }
    }
  }
};

class DecisionGuardsRule final : public Rule {
 public:
  DecisionGuardsRule()
      : Rule("decision-guards",
             "decision nodes have >=2 guarded outgoing edges, at most one "
             "'else', and parseable guards",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    for (const auto& diagram : model.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        if (node->kind() != NodeKind::Decision) {
          continue;
        }
        const auto outgoing = diagram->outgoing(node->id());
        if (outgoing.size() < 2) {
          ctx.report(loc_node(*diagram, *node),
                     "decision node needs at least two outgoing edges, has " +
                         std::to_string(outgoing.size()));
        }
        std::size_t else_count = 0;
        for (const auto* edge : outgoing) {
          if (!edge->has_guard()) {
            ctx.report(loc_edge(*diagram, *edge),
                       "edge leaving a decision node lacks a guard");
            continue;
          }
          if (edge->is_else()) {
            ++else_count;
            continue;
          }
          if (!expr::parses(edge->guard())) {
            ctx.report(loc_edge(*diagram, *edge),
                       "guard '" + edge->guard() + "' does not parse");
          }
        }
        if (else_count > 1) {
          ctx.report(loc_node(*diagram, *node),
                     "decision node has multiple 'else' edges");
        }
        if (else_count == 0) {
          ctx.report(Severity::Warning, loc_node(*diagram, *node),
                     "decision node has no 'else' edge; execution stalls when "
                     "no guard holds");
        }
      }
    }
  }
};

class GuardContextRule final : public Rule {
 public:
  GuardContextRule()
      : Rule("guard-context",
             "guards only appear on edges leaving decision nodes",
             Severity::Warning) {}
  void run(const Model& model, RuleContext& ctx) const override {
    for (const auto& diagram : model.diagrams()) {
      for (const auto& edge : diagram->edges()) {
        if (!edge->has_guard()) {
          continue;
        }
        const Node* source = diagram->node(edge->source());
        if (source != nullptr && source->kind() != NodeKind::Decision) {
          ctx.report(loc_edge(*diagram, *edge),
                     "guard on edge leaving a non-decision node is ignored");
        }
      }
    }
  }
};

class StereotypeKnownRule final : public Rule {
 public:
  StereotypeKnownRule()
      : Rule("stereotype-known",
             "applied stereotypes are defined in the model's profile",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    for (const auto& diagram : model.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        if (node->has_stereotype() &&
            model.profile().find(node->stereotype()) == nullptr) {
          ctx.report(loc_node(*diagram, *node),
                     "stereotype <<" + node->stereotype() +
                         ">> not defined in profile '" +
                         model.profile().name() + "'");
        }
      }
    }
  }
};

class TagConformanceRule final : public Rule {
 public:
  TagConformanceRule()
      : Rule("tag-conformance",
             "tagged values conform to the stereotype's tag definitions",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    for (const auto& diagram : model.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        if (!node->has_stereotype()) {
          continue;
        }
        const uml::Stereotype* stereotype =
            model.profile().find(node->stereotype());
        if (stereotype == nullptr) {
          continue;  // stereotype-known rule reports this
        }
        for (const auto& tagged : node->tags()) {
          const uml::TagDefinition* definition = stereotype->tag(tagged.name);
          if (definition == nullptr) {
            ctx.report(Severity::Warning, loc_node(*diagram, *node),
                       "tag '" + tagged.name + "' not defined for <<" +
                           node->stereotype() + ">>");
            continue;
          }
          if (uml::type_of(tagged.value) != definition->type) {
            ctx.report(loc_node(*diagram, *node),
                       "tag '" + tagged.name + "' has type " +
                           std::string(uml::to_string(
                               uml::type_of(tagged.value))) +
                           ", profile declares " +
                           std::string(uml::to_string(definition->type)));
          }
        }
        for (const auto& definition : stereotype->tags()) {
          if (definition.required && !node->has_tag(definition.name)) {
            ctx.report(loc_node(*diagram, *node),
                       "required tag '" + definition.name + "' of <<" +
                           node->stereotype() + ">> is missing");
          }
        }
      }
    }
  }
};

class ExpressionTagsRule final : public Rule {
 public:
  ExpressionTagsRule()
      : Rule("expression-tags",
             "expression-valued tags contain parseable expressions",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    for (const auto& diagram : model.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        for (const auto tag_name : uml::expression_tags(node->stereotype())) {
          if (!node->has_tag(tag_name)) {
            continue;
          }
          const std::string text = node->tag_string(tag_name);
          if (text.empty()) {
            continue;
          }
          try {
            (void)expr::parse(text);
          } catch (const expr::SyntaxError& error) {
            ctx.report(loc_node(*diagram, *node),
                       "tag '" + std::string(tag_name) + "' = '" + text +
                           "': " + error.what());
          }
        }
      }
    }
  }
};

class ExpressionVisibilityRule final : public Rule {
 public:
  ExpressionVisibilityRule()
      : Rule("expression-visibility",
             "identifiers used by element expressions are declared variables, "
             "loop variables, system parameters, or defined cost functions",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    const auto loop_vars = visible_loop_vars(model);
    for (const auto& diagram : model.diagrams()) {
      const auto vars_it = loop_vars.find(diagram->id());
      for (const auto& node : diagram->nodes()) {
        for (const auto tag_name : uml::expression_tags(node->stereotype())) {
          check_expression(model, *diagram, *node,
                           node->tag_string(tag_name),
                           vars_it == loop_vars.end()
                               ? std::set<std::string>{}
                               : vars_it->second,
                           ctx);
        }
      }
      // Guards use the same namespace.
      for (const auto& edge : diagram->edges()) {
        if (edge->has_guard() && !edge->is_else()) {
          check_guard(model, *diagram, *edge,
                      vars_it == loop_vars.end() ? std::set<std::string>{}
                                                 : vars_it->second,
                      ctx);
        }
      }
    }
  }

 private:
  static bool visible_variable(const Model& model,
                               const std::set<std::string>& loop_vars,
                               const std::string& name) {
    return model.variable(name) != nullptr ||
           uml::is_system_parameter(name) ||
           loop_vars.find(name) != loop_vars.end();
  }

  void check_names(const Model& model, const std::string& location,
                   const std::string& text,
                   const std::set<std::string>& loop_vars,
                   RuleContext& ctx) const {
    expr::ExprPtr parsed;
    try {
      parsed = expr::parse(text);
    } catch (const expr::SyntaxError&) {
      return;  // expression-tags rule reports this
    }
    for (const auto& name : expr::free_variables(*parsed)) {
      if (!visible_variable(model, loop_vars, name)) {
        ctx.report(location, "unknown variable '" + name + "' in '" + text +
                                 "'");
      }
    }
    for (const auto& name : expr::called_user_functions(*parsed)) {
      if (model.cost_function(name) == nullptr) {
        ctx.report(location,
                   "undefined cost function '" + name + "' in '" + text +
                       "'");
      }
    }
  }

  void check_expression(const Model& model, const ActivityDiagram& diagram,
                        const Node& node, const std::string& text,
                        const std::set<std::string>& loop_vars,
                        RuleContext& ctx) const {
    if (text.empty()) {
      return;
    }
    check_names(model, loc_node(diagram, node), text, loop_vars, ctx);
  }

  void check_guard(const Model& model, const ActivityDiagram& diagram,
                   const ControlFlow& edge, const std::set<std::string>& vars,
                   RuleContext& ctx) const {
    check_names(model, loc_edge(diagram, edge), edge.guard(), vars, ctx);
  }
};

class CostFunctionsRule final : public Rule {
 public:
  CostFunctionsRule()
      : Rule("cost-functions",
             "cost-function bodies parse, reference only parameters, "
             "globals, system parameters and other cost functions, and have "
             "no cyclic dependencies",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    std::map<std::string, std::set<std::string>> calls;
    std::set<std::string> names;
    for (const auto& fn : model.cost_functions()) {
      if (!names.insert(fn.name).second) {
        ctx.report("function " + fn.name, "duplicate cost-function name");
      }
    }
    for (const auto& fn : model.cost_functions()) {
      const std::string location = "function " + fn.name;
      if (!is_identifier(fn.name)) {
        ctx.report(location, "name is not a valid identifier");
      }
      expr::ExprPtr body;
      try {
        body = expr::parse(fn.body);
      } catch (const expr::SyntaxError& error) {
        ctx.report(location, std::string("body does not parse: ") +
                                 error.what());
        continue;
      }
      for (const auto& name : expr::free_variables(*body)) {
        const bool is_param =
            std::find(fn.parameters.begin(), fn.parameters.end(), name) !=
            fn.parameters.end();
        const uml::Variable* variable = model.variable(name);
        // Generated cost functions live at file scope (Fig. 8a) and can
        // only see globals, never the model function's locals.
        const bool is_global =
            variable != nullptr &&
            variable->scope == uml::VariableScope::Global;
        if (!is_param && !is_global && !uml::is_system_parameter(name)) {
          if (variable != nullptr) {
            ctx.report(location, "references local variable '" + name +
                                     "'; cost functions can only use globals "
                                     "and parameters");
          } else {
            ctx.report(location, "unknown variable '" + name + "'");
          }
        }
      }
      auto& callees = calls[fn.name];
      for (const auto& name : expr::called_user_functions(*body)) {
        if (model.cost_function(name) == nullptr) {
          ctx.report(location, "calls undefined function '" + name + "'");
        } else {
          callees.insert(name);
        }
      }
    }
    // Cycle detection over the call graph (iterative DFS with colors).
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    for (const auto& fn : model.cost_functions()) {
      if (color[fn.name] != 0) {
        continue;
      }
      std::vector<std::pair<std::string, std::size_t>> stack{{fn.name, 0}};
      color[fn.name] = 1;
      while (!stack.empty()) {
        auto& [name, next] = stack.back();
        const auto& callees = calls[name];
        if (next >= callees.size()) {
          color[name] = 2;
          stack.pop_back();
          continue;
        }
        auto it = callees.begin();
        std::advance(it, next);
        ++next;
        const std::string& callee = *it;
        if (color[callee] == 1) {
          ctx.report("function " + name,
                     "cyclic cost-function dependency via '" + callee + "'");
        } else if (color[callee] == 0) {
          color[callee] = 1;
          stack.push_back({callee, 0});
        }
      }
    }
  }
};

class SubdiagramsRule final : public Rule {
 public:
  SubdiagramsRule()
      : Rule("subdiagrams",
             "composite nodes reference existing diagrams and the diagram "
             "hierarchy is acyclic",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    // diagram id -> set of sub-diagram ids referenced from it
    std::map<std::string, std::set<std::string>> references;
    for (const auto& diagram : model.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        const bool composite = node->kind() == NodeKind::Activity ||
                               node->kind() == NodeKind::Loop;
        const std::string sub = node->subdiagram_id();
        if (!composite) {
          continue;
        }
        if (sub.empty()) {
          ctx.report(loc_node(*diagram, *node),
                     "composite node lacks a 'diagram' tag");
          continue;
        }
        if (model.diagram(sub) == nullptr) {
          ctx.report(loc_node(*diagram, *node),
                     "references unknown diagram '" + sub + "'");
          continue;
        }
        references[diagram->id()].insert(sub);
      }
    }
    // Cycle check over diagram references.
    std::map<std::string, int> color;
    for (const auto& diagram : model.diagrams()) {
      if (color[diagram->id()] != 0) {
        continue;
      }
      std::vector<std::pair<std::string, std::size_t>> stack{
          {diagram->id(), 0}};
      color[diagram->id()] = 1;
      while (!stack.empty()) {
        auto& [id, next] = stack.back();
        const auto& subs = references[id];
        if (next >= subs.size()) {
          color[id] = 2;
          stack.pop_back();
          continue;
        }
        auto it = subs.begin();
        std::advance(it, next);
        ++next;
        if (color[*it] == 1) {
          ctx.report("diagram " + id,
                     "cyclic diagram nesting via '" + *it + "'");
        } else if (color[*it] == 0) {
          color[*it] = 1;
          stack.push_back({*it, 0});
        }
      }
    }
  }
};

class ForkJoinRule final : public Rule {
 public:
  ForkJoinRule()
      : Rule("fork-join",
             "forks have >=2 outgoing edges, joins >=2 incoming, and each "
             "diagram balances forks with joins",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    for (const auto& diagram : model.diagrams()) {
      std::size_t forks = 0;
      std::size_t joins = 0;
      for (const auto& node : diagram->nodes()) {
        if (node->kind() == NodeKind::Fork) {
          ++forks;
          const auto out = diagram->outgoing(node->id()).size();
          if (out < 2) {
            ctx.report(loc_node(*diagram, *node),
                       "fork needs at least two outgoing edges, has " +
                           std::to_string(out));
          }
        } else if (node->kind() == NodeKind::Join) {
          ++joins;
          const auto in = diagram->incoming(node->id()).size();
          if (in < 2) {
            ctx.report(loc_node(*diagram, *node),
                       "join needs at least two incoming edges, has " +
                           std::to_string(in));
          }
        }
      }
      if (forks != joins) {
        ctx.report(Severity::Warning, loc_diagram(*diagram),
                   "diagram has " + std::to_string(forks) + " fork(s) but " +
                       std::to_string(joins) + " join(s)");
      }
    }
  }
};

class VariablesRule final : public Rule {
 public:
  VariablesRule()
      : Rule("variables",
             "variable names are unique, valid identifiers, do not shadow "
             "system parameters, and initializers parse",
             Severity::Error) {}
  void run(const Model& model, RuleContext& ctx) const override {
    std::set<std::string> seen;
    for (const auto& variable : model.variables()) {
      const std::string location = "variable " + variable.name;
      if (!is_identifier(variable.name)) {
        ctx.report(location, "name is not a valid identifier");
      }
      if (!seen.insert(variable.name).second) {
        ctx.report(location, "duplicate variable name");
      }
      if (uml::is_system_parameter(variable.name)) {
        ctx.report(location, "name shadows system parameter '" +
                                 variable.name + "'");
      }
      if (model.cost_function(variable.name) != nullptr) {
        ctx.report(location, "name collides with a cost function");
      }
      if (!variable.initializer.empty() &&
          !expr::parses(variable.initializer)) {
        ctx.report(location, "initializer '" + variable.initializer +
                                 "' does not parse");
      }
    }
  }
};

class ElementNamesRule final : public Rule {
 public:
  ElementNamesRule()
      : Rule("element-names",
             "performance modeling elements have non-empty, distinct names "
             "(they become C++ identifiers)",
             Severity::Warning) {}
  void run(const Model& model, RuleContext& ctx) const override {
    std::map<std::string, std::string> seen;  // name -> location
    for (const auto& diagram : model.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        if (!is_performance_element(*node)) {
          continue;
        }
        if (node->name().empty()) {
          ctx.report(loc_node(*diagram, *node),
                     "performance modeling element has no name");
          continue;
        }
        auto [it, inserted] = seen.emplace(node->name(),
                                           loc_node(*diagram, *node));
        if (!inserted) {
          ctx.report(loc_node(*diagram, *node),
                     "element name '" + node->name() +
                         "' also used at " + it->second +
                         "; generated identifiers will be disambiguated");
        }
      }
    }
  }
};

}  // namespace

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::Error:
      return "error";
    case Severity::Warning:
      return "warning";
    case Severity::Info:
      return "info";
  }
  return "unknown";
}

std::optional<Severity> severity_from_string(std::string_view text) {
  if (text == "error") {
    return Severity::Error;
  }
  if (text == "warning") {
    return Severity::Warning;
  }
  if (text == "info") {
    return Severity::Info;
  }
  return std::nullopt;
}

std::string Diagnostic::to_string() const {
  return std::string(check::to_string(severity)) + " [" + rule + "] " +
         location + ": " + message;
}

void Diagnostics::add(Diagnostic diagnostic) {
  items_.push_back(std::move(diagnostic));
}

std::size_t Diagnostics::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(items_.begin(), items_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::Error;
      }));
}

std::size_t Diagnostics::warning_count() const {
  return static_cast<std::size_t>(
      std::count_if(items_.begin(), items_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::Warning;
      }));
}

std::vector<const Diagnostic*> Diagnostics::from_rule(
    std::string_view rule) const {
  std::vector<const Diagnostic*> result;
  for (const auto& diagnostic : items_) {
    if (diagnostic.rule == rule) {
      result.push_back(&diagnostic);
    }
  }
  return result;
}

std::string Diagnostics::to_string() const {
  std::ostringstream out;
  for (const auto& diagnostic : items_) {
    out << diagnostic.to_string() << '\n';
  }
  return out.str();
}

void RuleContext::report(std::string location, std::string message) {
  report(severity_, std::move(location), std::move(message));
}

void RuleContext::report(Severity severity, std::string location,
                         std::string message) {
  // An MCF override to a *lower* severity also caps explicit reports, so
  // demoting a rule to "warning" reliably silences its errors.
  if (severity < severity_) {
    severity = severity_;
  }
  sink_->add(Diagnostic{severity, rule_, std::move(location),
                        std::move(message)});
}

ModelChecker::ModelChecker() : ModelChecker(true) {}

ModelChecker::ModelChecker(bool load_standard_rules) {
  if (load_standard_rules) {
    register_standard_rules(*this);
  }
}

ModelChecker ModelChecker::empty() { return ModelChecker(false); }

void ModelChecker::add(std::unique_ptr<Rule> rule) {
  for (auto& entry : entries_) {
    if (entry.rule->name() == rule->name()) {
      entry.rule = std::move(rule);
      return;
    }
  }
  entries_.push_back(Entry{std::move(rule), true, std::nullopt});
}

bool ModelChecker::set_enabled(std::string_view rule, bool enabled) {
  for (auto& entry : entries_) {
    if (entry.rule->name() == rule) {
      entry.enabled = enabled;
      return true;
    }
  }
  return false;
}

bool ModelChecker::set_severity(std::string_view rule, Severity severity) {
  for (auto& entry : entries_) {
    if (entry.rule->name() == rule) {
      entry.severity_override = severity;
      return true;
    }
  }
  return false;
}

bool ModelChecker::is_enabled(std::string_view rule) const {
  for (const auto& entry : entries_) {
    if (entry.rule->name() == rule) {
      return entry.enabled;
    }
  }
  return false;
}

std::vector<std::string> ModelChecker::rule_names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& entry : entries_) {
    names.push_back(entry.rule->name());
  }
  return names;
}

void ModelChecker::configure(const xml::Document& mcf) {
  if (!mcf.has_root() || mcf.root().name() != "mcf") {
    configuration_notes_.push_back("MCF root element must be <mcf>");
    return;
  }
  for (const auto* rule : mcf.root().children_named("rule")) {
    const std::string name = rule->attr_or("name", "");
    if (name.empty()) {
      configuration_notes_.push_back("MCF <rule> without name attribute");
      continue;
    }
    bool known = false;
    if (auto enabled = rule->attr("enabled")) {
      known = set_enabled(name, *enabled == "true");
    }
    if (auto severity_text = rule->attr("severity")) {
      if (auto severity = severity_from_string(*severity_text)) {
        known = set_severity(name, *severity) || known;
      } else {
        configuration_notes_.push_back("MCF rule '" + name +
                                       "': unknown severity '" +
                                       std::string(*severity_text) + "'");
      }
    }
    if (!known && !rule->has_attr("enabled") &&
        !rule->has_attr("severity")) {
      known = is_enabled(name);
    }
    if (!known) {
      bool exists = false;
      for (const auto& entry : entries_) {
        exists = exists || entry.rule->name() == name;
      }
      if (!exists) {
        configuration_notes_.push_back("MCF references unknown rule '" +
                                       name + "'");
      }
    }
  }
}

Diagnostics ModelChecker::check(const uml::Model& model) const {
  Diagnostics diagnostics;
  for (const auto& note : configuration_notes_) {
    diagnostics.add(Diagnostic{Severity::Info, "mcf", "configuration", note});
  }
  for (const auto& entry : entries_) {
    if (!entry.enabled) {
      continue;
    }
    const Severity severity =
        entry.severity_override.value_or(entry.rule->default_severity());
    RuleContext ctx(diagnostics, entry.rule->name(), severity);
    entry.rule->run(model, ctx);
  }
  return diagnostics;
}

void register_standard_rules(ModelChecker& checker) {
  checker.add(std::make_unique<MainDiagramRule>());
  checker.add(std::make_unique<UniqueIdsRule>());
  checker.add(std::make_unique<InitialNodeRule>());
  checker.add(std::make_unique<InitialFinalEdgesRule>());
  checker.add(std::make_unique<EdgeEndpointsRule>());
  checker.add(std::make_unique<ConnectivityRule>());
  checker.add(std::make_unique<ReachabilityRule>());
  checker.add(std::make_unique<DecisionGuardsRule>());
  checker.add(std::make_unique<GuardContextRule>());
  checker.add(std::make_unique<StereotypeKnownRule>());
  checker.add(std::make_unique<TagConformanceRule>());
  checker.add(std::make_unique<ExpressionTagsRule>());
  checker.add(std::make_unique<ExpressionVisibilityRule>());
  checker.add(std::make_unique<CostFunctionsRule>());
  checker.add(std::make_unique<SubdiagramsRule>());
  checker.add(std::make_unique<ForkJoinRule>());
  checker.add(std::make_unique<VariablesRule>());
  checker.add(std::make_unique<ElementNamesRule>());
}

}  // namespace prophet::check
