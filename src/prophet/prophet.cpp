#include "prophet/prophet.hpp"

#include <sstream>

#include "prophet/interp/interpreter.hpp"
#include "prophet/sim/random.hpp"
#include "prophet/xmi/xmi.hpp"

namespace prophet {
namespace {

/// Full-precision numeric literal (std::to_string truncates to 6 decimal
/// places, which collapses small calibrated op times to "0.000000").
std::string number_literal(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

}  // namespace

Prophet::Prophet(uml::Model model) : model_(std::move(model)) {}

Prophet Prophet::load(const std::string& path) {
  return Prophet(xmi::load(path));
}

void Prophet::save(const std::string& path) const {
  xmi::save(model_, path);
}

check::Diagnostics Prophet::check() const {
  const check::ModelChecker checker;
  return checker.check(model_);
}

check::Diagnostics Prophet::check(const xml::Document& mcf) const {
  check::ModelChecker checker;
  checker.configure(mcf);
  return checker.check(model_);
}

std::string Prophet::transform(codegen::TransformOptions options) const {
  const codegen::Transformer transformer(std::move(options));
  return transformer.transform(model_);
}

estimator::PredictionReport Prophet::estimate(
    machine::SystemParameters params,
    estimator::EstimationOptions options) const {
  interp::Interpreter interpreter(model_);
  const estimator::SimulationManager manager(params, options);
  return manager.run(interpreter);
}

namespace models {

uml::Model sample_model() {
  uml::ModelBuilder mb("SampleModel");
  // "variables GV and P are specified as global variables of the model"
  mb.global("GV", uml::VariableType::Real, "0");
  mb.global("P", uml::VariableType::Real, "16");
  // Cost functions in the spirit of Fig. 8a ("these cost functions are
  // not derived from a real-world program"); FSA2 takes pid (Fig. 8a).
  mb.function("FA1", {}, "0.000001 * P * P + 0.001");
  mb.function("FA2", {}, "0.5 * FA1()");
  mb.function("FA4", {}, "0.002");
  mb.function("FSA1", {}, "0.0001 * P");
  mb.function("FSA2", {"pid"}, "0.0005 * pid + 0.001");

  // Sub-diagram SA (the undocked diagram of Fig. 7a).
  uml::DiagramBuilder sa = mb.diagram("SA");
  // Main activity diagram.  Created after SA so ids are stable, but made
  // the main diagram explicitly.
  uml::DiagramBuilder main = mb.diagram("main");

  uml::NodeRef sa_init = sa.initial();
  uml::NodeRef sa1 = sa.action("SA1").cost("FSA1()");
  sa1.tag(uml::tag::kId, uml::TagValue(std::int64_t{4}));
  uml::NodeRef sa2 = sa.action("SA2").cost("FSA2(pid)");
  sa2.tag(uml::tag::kId, uml::TagValue(std::int64_t{5}));
  uml::NodeRef sa_final = sa.final_node();
  sa.sequence({sa_init, sa1, sa2, sa_final});

  uml::NodeRef init = main.initial();
  uml::NodeRef a1 = main.action("A1").cost("FA1()").code("GV = 3; P = 16;");
  a1.tag(uml::tag::kId, uml::TagValue(std::int64_t{1}));
  uml::NodeRef decision = main.decision();
  uml::NodeRef sa_node = main.activity("SA", sa);
  uml::NodeRef a2 = main.action("A2").cost("FA2()");
  a2.tag(uml::tag::kId, uml::TagValue(std::int64_t{2}));
  uml::NodeRef merge = main.merge();
  uml::NodeRef a4 = main.action("A4").cost("FA4()");
  a4.tag(uml::tag::kId, uml::TagValue(std::int64_t{3}));
  uml::NodeRef fin = main.final_node();
  main.flow(init, a1);
  main.flow(a1, decision);
  main.flow(decision, sa_node, "GV > 0");
  main.flow(decision, a2, "else");
  main.flow(sa_node, merge);
  main.flow(a2, merge);
  main.flow(merge, a4);
  main.flow(a4, fin);

  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  return model;
}

uml::Model kernel6_model(std::int64_t n, std::int64_t m, double flop_time) {
  uml::ModelBuilder mb("Kernel6");
  mb.global("N", uml::VariableType::Integer, std::to_string(n));
  mb.global("M", uml::VariableType::Integer, std::to_string(m));
  mb.global("c", uml::VariableType::Real, number_literal(flop_time));
  // TK6 = FK6(): M general-linear-recurrence sweeps of N*(N-1)/2 updates.
  mb.function("FK6", {}, "M * (N * (N - 1) / 2) * c");

  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef kernel = main.action("Kernel6").cost("FK6()");
  kernel.type("SAMPLE");
  uml::NodeRef fin = main.final_node();
  main.sequence({init, kernel, fin});
  return std::move(mb).build();
}

uml::Model kernel6_detailed_model(std::int64_t n, std::int64_t m,
                                  double flop_time) {
  uml::ModelBuilder mb("Kernel6Detailed");
  mb.global("N", uml::VariableType::Integer, std::to_string(n));
  mb.global("M", uml::VariableType::Integer, std::to_string(m));
  mb.global("c", uml::VariableType::Real, number_literal(flop_time));

  // Innermost body: the W(i) update of Fig. 3a, one multiply-add.
  uml::DiagramBuilder body = mb.diagram("body");
  {
    uml::NodeRef init = body.initial();
    uml::NodeRef w = body.action("W").cost("c");
    uml::NodeRef fin = body.final_node();
    body.sequence({init, w, fin});
  }
  // DO k = 1, i-1 — with the 0-based middle loop variable i2 (i = i2+2),
  // the inner trip count is i-1 = i2+1.
  uml::DiagramBuilder kloop = mb.diagram("kloop");
  {
    uml::NodeRef init = kloop.initial();
    uml::NodeRef loop = kloop.loop("KLoop", body, "i2 + 1", "k");
    uml::NodeRef fin = kloop.final_node();
    kloop.sequence({init, loop, fin});
  }
  // DO i = 2, N
  uml::DiagramBuilder iloop = mb.diagram("iloop");
  {
    uml::NodeRef init = iloop.initial();
    uml::NodeRef loop = iloop.loop("ILoop", kloop, "N - 1", "i2");
    uml::NodeRef fin = iloop.final_node();
    iloop.sequence({init, loop, fin});
  }
  // DO L = 1, M
  uml::DiagramBuilder main = mb.diagram("main");
  {
    uml::NodeRef init = main.initial();
    uml::NodeRef loop = main.loop("LLoop", iloop, "M", "L");
    uml::NodeRef fin = main.final_node();
    main.sequence({init, loop, fin});
  }
  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  return model;
}

uml::Model pingpong_model(double bytes, std::int64_t rounds) {
  uml::ModelBuilder mb("PingPong");
  mb.global("S", uml::VariableType::Real, number_literal(bytes));

  // One round: rank 0 sends then receives; rank 1 receives then sends.
  uml::DiagramBuilder round = mb.diagram("round");
  {
    uml::NodeRef init = round.initial();
    uml::NodeRef decision = round.decision();
    uml::NodeRef ping = round.send("Ping", "1", "S");
    uml::NodeRef pong_recv = round.recv("PongRecv", "1", "S");
    uml::NodeRef ping_recv = round.recv("PingRecv", "0", "S");
    uml::NodeRef pong = round.send("Pong", "0", "S");
    uml::NodeRef merge = round.merge();
    uml::NodeRef fin = round.final_node();
    round.flow(init, decision);
    round.flow(decision, ping, "pid == 0");
    round.flow(decision, ping_recv, "else");
    round.flow(ping, pong_recv);
    round.flow(pong_recv, merge);
    round.flow(ping_recv, pong);
    round.flow(pong, merge);
    round.flow(merge, fin);
  }
  uml::DiagramBuilder main = mb.diagram("main");
  {
    uml::NodeRef init = main.initial();
    uml::NodeRef loop = main.loop("Rounds", round, std::to_string(rounds));
    uml::NodeRef fin = main.final_node();
    main.sequence({init, loop, fin});
  }
  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  return model;
}

uml::Model synthetic_model(int activities, int actions) {
  uml::ModelBuilder mb("Synthetic");
  mb.global("P", uml::VariableType::Real, "8");
  mb.function("F0", {}, "0.0001 * P");
  mb.function("F1", {}, "F0() + 0.001");

  std::vector<std::string> sub_ids;
  sub_ids.reserve(static_cast<std::size_t>(activities));
  for (int a = 0; a < activities; ++a) {
    uml::DiagramBuilder sub = mb.diagram("sub" + std::to_string(a));
    uml::NodeRef previous = sub.initial();
    for (int i = 0; i < actions; ++i) {
      uml::NodeRef action =
          sub.action("A" + std::to_string(a) + "_" + std::to_string(i));
      action.cost(i % 2 == 0 ? "F0()" : "F1()");
      sub.flow(previous, action);
      previous = action;
    }
    uml::NodeRef fin = sub.final_node();
    sub.flow(previous, fin);
    sub_ids.push_back(sub.id());
  }

  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef previous = main.initial();
  for (int a = 0; a < activities; ++a) {
    uml::NodeRef activity =
        main.activity("Act" + std::to_string(a), sub_ids[static_cast<std::size_t>(a)]);
    main.flow(previous, activity);
    previous = activity;
  }
  // A final guarded branch exercises decision handling in every consumer.
  uml::NodeRef decision = main.decision();
  uml::NodeRef left = main.action("Tail0").cost("F0()");
  uml::NodeRef right = main.action("Tail1").cost("F1()");
  uml::NodeRef merge = main.merge();
  uml::NodeRef fin = main.final_node();
  main.flow(previous, decision);
  main.flow(decision, left, "P > 4");
  main.flow(decision, right, "else");
  main.flow(left, merge);
  main.flow(right, merge);
  main.flow(merge, fin);

  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  return model;
}

uml::Model random_model(std::uint64_t seed, int size) {
  sim::Rng rng(seed);
  uml::ModelBuilder mb("Random" + std::to_string(seed));
  mb.global("GA", uml::VariableType::Real,
            number_literal(rng.uniform(0.5, 4.0)));
  mb.global("GB", uml::VariableType::Real,
            number_literal(rng.uniform(-2.0, 2.0)));
  mb.global("GN", uml::VariableType::Integer,
            std::to_string(rng.uniform_int(2, 5)));
  mb.local("LV", uml::VariableType::Real, "GA + 1");
  mb.function("FBase", {}, number_literal(rng.uniform(1e-5, 1e-3)) +
                               " * GA + 1e-4");
  mb.function("FScaled", {"x"}, "FBase() * (x + 1)");
  mb.function("FPid", {"pid"}, "1e-4 * pid + FBase()");

  int made = 0;
  int diagram_counter = 0;
  // Leaf diagrams built first so composites can reference them.
  std::vector<std::string> leaves;

  auto leaf_sequence = [&](int actions) {
    uml::DiagramBuilder d =
        mb.diagram("leaf" + std::to_string(diagram_counter++));
    uml::NodeRef previous = d.initial();
    for (int i = 0; i < actions; ++i) {
      uml::NodeRef action =
          d.action("L" + std::to_string(diagram_counter) + "_" +
                   std::to_string(i));
      switch (rng.uniform_int(0, 3)) {
        case 0:
          action.cost("FBase()");
          break;
        case 1:
          action.cost("FScaled(" + std::to_string(rng.uniform_int(0, 3)) +
                      ")");
          break;
        case 2:
          action.cost("FPid(pid)");
          break;
        default:
          action.cost(number_literal(rng.uniform(1e-5, 1e-3)));
          break;
      }
      if (rng.bernoulli(0.25)) {
        action.code("GB = GA * " +
                    std::to_string(rng.uniform_int(1, 4)) + ";");
      }
      d.flow(previous, action);
      previous = action;
      ++made;
    }
    uml::NodeRef fin = d.final_node();
    d.flow(previous, fin);
    leaves.push_back(d.id());
    return d.id();
  };

  const int leaf_count = 2 + static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < leaf_count && made < size; ++i) {
    leaf_sequence(1 + static_cast<int>(rng.uniform_int(1, 4)));
  }

  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef previous = main.initial();
  int main_elements = 0;
  while (made < size || main_elements == 0) {
    const auto choice = rng.uniform_int(0, 3);
    if (choice == 0) {
      uml::NodeRef action = main.action("M" + std::to_string(made));
      action.cost("FScaled(GN)");
      main.flow(previous, action);
      previous = action;
      ++made;
      ++main_elements;
    } else if (choice == 1 && !leaves.empty()) {
      const auto& leaf =
          leaves[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(leaves.size()) - 1))];
      uml::NodeRef activity =
          main.activity("Act" + std::to_string(made), leaf);
      main.flow(previous, activity);
      previous = activity;
      ++made;
      ++main_elements;
    } else if (choice == 2 && !leaves.empty()) {
      const auto& leaf =
          leaves[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(leaves.size()) - 1))];
      uml::NodeRef loop =
          main.loop("Loop" + std::to_string(made), leaf,
                    std::to_string(rng.uniform_int(1, 4)), "it");
      main.flow(previous, loop);
      previous = loop;
      ++made;
      ++main_elements;
    } else {
      // Guarded decision with else edge; each branch a single action.
      uml::NodeRef decision = main.decision("D" + std::to_string(made));
      uml::NodeRef yes = main.action("Y" + std::to_string(made));
      yes.cost("FBase()");
      uml::NodeRef no = main.action("N" + std::to_string(made));
      no.cost("FBase() * 2");
      uml::NodeRef merge = main.merge();
      const char* guards[] = {"GB > 0", "GA > 1", "pid % 2 == 0",
                              "GN >= 3"};
      main.flow(previous, decision);
      main.flow(decision, yes,
                guards[rng.uniform_int(0, 3)]);
      main.flow(decision, no, "else");
      main.flow(yes, merge);
      main.flow(no, merge);
      previous = merge;
      made += 2;
      ++main_elements;
    }
  }
  uml::NodeRef fin = main.final_node();
  main.flow(previous, fin);

  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  return model;
}

}  // namespace models
}  // namespace prophet
