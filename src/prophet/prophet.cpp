#include "prophet/prophet.hpp"

#include "prophet/interp/interpreter.hpp"
#include "prophet/xmi/xmi.hpp"

namespace prophet {

Prophet::Prophet(uml::Model model) : model_(std::move(model)) {}

Prophet Prophet::load(const std::string& path) {
  return Prophet(xmi::load(path));
}

void Prophet::save(const std::string& path) const {
  xmi::save(model_, path);
}

check::Diagnostics Prophet::check() const {
  const check::ModelChecker checker;
  return checker.check(model_);
}

check::Diagnostics Prophet::check(const xml::Document& mcf) const {
  check::ModelChecker checker;
  checker.configure(mcf);
  return checker.check(model_);
}

std::string Prophet::transform(codegen::TransformOptions options) const {
  const codegen::Transformer transformer(std::move(options));
  return transformer.transform(model_);
}

estimator::PredictionReport Prophet::estimate(
    machine::SystemParameters params,
    estimator::EstimationOptions options) const {
  interp::Interpreter interpreter(model_);
  const estimator::SimulationManager manager(params, options);
  return manager.run(interpreter);
}

}  // namespace prophet
