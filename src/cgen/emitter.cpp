#include "prophet/cgen/emitter.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "prophet/cgen/abi.hpp"
#include "prophet/uml/model.hpp"

namespace prophet::cgen {
namespace {

using expr::Op;
using uml::ActivityDiagram;
using uml::Node;
using uml::NodeKind;

/// A double as a C++ literal that round-trips bit-exactly (hexfloat; the
/// NaN/infinity special cases have no literal spelling).
std::string double_literal(double value) {
  if (std::isnan(value)) {
    return "std::numeric_limits<double>::quiet_NaN()";
  }
  if (std::isinf(value)) {
    return value > 0 ? "std::numeric_limits<double>::infinity()"
                     : "(-std::numeric_limits<double>::infinity())";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  if (buffer[0] == '-') {
    return "(" + std::string(buffer) + ")";
  }
  return buffer;
}

/// Escapes text into a C++ string-literal body.  Control bytes use
/// three-digit octal escapes (always exactly three digits, so a
/// following literal digit can never be absorbed into the escape).
std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20 || c == 0x7f) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\%03o", c);
          out += buffer;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

/// The evaluation environment a transliterated expression runs in: which
/// frame expression C++ slots load through, and the ambient pid/tid/uid
/// expressions (mirroring interp's make_context call sites).
struct ExprEnv {
  std::string frame;        // e.g. "f.s" or "g_run_frame"
  std::string pid = "0.0";  // C++ expression yielding double
  std::string tid = "0.0";
  std::string uid = "0.0";
  bool has_args = false;  // inside a cost-function body (args/nargs)
};

/// Net stack effect of one instruction (operands popped -> result
/// pushed), mirroring the VM's documented [-pop +push] contract.
int stack_delta(const expr::Instr& instr) {
  switch (instr.op) {
    case Op::PushConst:
    case Op::LoadSlot:
    case Op::LoadSlotOrPid:
    case Op::LoadSlotOrTid:
    case Op::LoadSlotOrUid:
    case Op::LoadArg:
    case Op::LoadPid:
    case Op::LoadTid:
    case Op::LoadUid:
      return 1;
    case Op::Neg:
    case Op::Not:
    case Op::ToBool:
    case Op::Abs:
    case Op::Ceil:
    case Op::Cos:
    case Op::Exp:
    case Op::Floor:
    case Op::Log:
    case Op::Log10:
    case Op::Log2:
    case Op::Round:
    case Op::Sin:
    case Op::Sqrt:
    case Op::Tan:
    case Op::Tanh:
    case Op::Jump:
      return 0;
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Mod:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
    case Op::Eq:
    case Op::Ne:
    case Op::Max:
    case Op::Min:
    case Op::Pow:
    case Op::JumpIfFalse:
    case Op::JumpIfTrue:
      return -1;
    case Op::CallUser:
      return 1 - static_cast<int>(instr.b);
    case Op::Throw:
      return 0;  // no successors
  }
  return 0;
}

/// Transliterates one compiled expression into a C++ expression string:
/// either the folded constant literal, or an immediately-invoked lambda
/// whose body is the bytecode as straight-line statements — one operand
/// stack local per compile-time stack position, `goto` for the VM's jump
/// targets.  The arithmetic reproduces the VM operation for operation,
/// so results (and EvalError messages) are bit-identical.
class ExprTransliterator {
 public:
  ExprTransliterator(const expr::Compiled& program, const ExprEnv& env,
                     std::string indent)
      : program_(program), env_(env), indent_(std::move(indent)) {}

  [[nodiscard]] std::string emit() {
    if (const auto folded = program_.constant()) {
      return double_literal(*folded);
    }
    compute_heights();
    std::ostringstream body;
    const std::string inner = indent_ + "  ";
    body << "[&]() -> double {\n";
    for (std::size_t k = 0; k < program_.max_stack(); ++k) {
      body << inner << "double s" << k << " = 0.0;\n";
    }
    const auto code = program_.code();
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (target_[i]) {
        body << indent_ << " L" << i << ":;\n";
      }
      if (height_[i] < 0) {
        continue;  // unreachable (dead code behind Throw/Jump)
      }
      body << inner << statement(code[i], i, height_[i]) << "\n";
    }
    if (target_[code.size()]) {
      body << indent_ << " L" << code.size() << ":;\n";
    }
    if (height_[code.size()] > 0) {
      body << inner << "return s" << (height_[code.size()] - 1) << ";\n";
    } else {
      body << inner << "return 0.0;  // unreachable: program always throws\n";
    }
    body << indent_ << "}()";
    return body.str();
  }

 private:
  /// Abstract interpretation of stack heights: the VM's compiler emits
  /// programs where every instruction has one consistent entry height,
  /// so a single flow-propagation pass assigns each its stack locals.
  void compute_heights() {
    const auto code = program_.code();
    height_.assign(code.size() + 1, -1);
    target_.assign(code.size() + 1, false);
    std::vector<std::size_t> work;
    height_[0] = 0;
    if (!code.empty()) {
      work.push_back(0);
    }
    auto relax = [&](std::size_t index, int h) {
      if (index > code.size()) {
        return;
      }
      if (height_[index] < 0) {
        height_[index] = h;
        if (index < code.size()) {
          work.push_back(index);
        }
      }
    };
    while (!work.empty()) {
      const std::size_t i = work.back();
      work.pop_back();
      const expr::Instr& instr = code[i];
      const int out = height_[i] + stack_delta(instr);
      switch (instr.op) {
        case Op::Jump:
          target_[static_cast<std::size_t>(instr.a)] = true;
          relax(static_cast<std::size_t>(instr.a), out);
          break;
        case Op::JumpIfFalse:
        case Op::JumpIfTrue:
          target_[static_cast<std::size_t>(instr.a)] = true;
          relax(static_cast<std::size_t>(instr.a), out);
          relax(i + 1, out);
          break;
        case Op::Throw:
          break;  // terminates this path
        default:
          relax(i + 1, out);
          break;
      }
    }
  }

  [[nodiscard]] std::string slot_ref(std::int32_t slot) const {
    return env_.frame + "[" + std::to_string(slot) + "]";
  }

  [[nodiscard]] static std::string stack(int k) {
    return "s" + std::to_string(k);
  }

  [[nodiscard]] std::string unary(int h, std::string_view fn) const {
    return stack(h - 1) + " = std::" + std::string(fn) + "(" + stack(h - 1) +
           ");";
  }

  [[nodiscard]] std::string binary_op(int h, std::string_view op) const {
    return stack(h - 2) + " = " + stack(h - 2) + " " + std::string(op) + " " +
           stack(h - 1) + ";";
  }

  [[nodiscard]] std::string binary_fn(int h, std::string_view fn) const {
    return stack(h - 2) + " = std::" + std::string(fn) + "(" + stack(h - 2) +
           ", " + stack(h - 1) + ");";
  }

  [[nodiscard]] std::string compare(int h, std::string_view op) const {
    return stack(h - 2) + " = " + stack(h - 2) + " " + std::string(op) + " " +
           stack(h - 1) + " ? 1.0 : 0.0;";
  }

  [[nodiscard]] std::string load_fallback(const expr::Instr& instr, int h,
                                          const std::string& ambient) const {
    return "{ const double* p = " + slot_ref(instr.a) + "; " + stack(h) +
           " = p != nullptr ? *p : " + ambient + "; }";
  }

  /// The C++ statement for one instruction entered at stack height `h`.
  [[nodiscard]] std::string statement(const expr::Instr& instr,
                                      std::size_t index, int h) const {
    const auto strings = program_.strings();
    switch (instr.op) {
      case Op::PushConst:
        return stack(h) + " = " + double_literal(instr.value) + ";";
      case Op::LoadSlot:
        return stack(h) + " = load_slot(" + slot_ref(instr.a) + ", \"" +
               escape(strings[instr.b]) + "\");";
      case Op::LoadSlotOrPid:
        return load_fallback(instr, h, env_.pid);
      case Op::LoadSlotOrTid:
        return load_fallback(instr, h, env_.tid);
      case Op::LoadSlotOrUid:
        return load_fallback(instr, h, env_.uid);
      case Op::LoadArg:
        if (!env_.has_args) {
          // Node-scope evaluations pass no argument span: every LoadArg
          // falls past the arity, exactly like the VM.
          return stack(h) + " = 0.0;";
        }
        return stack(h) + " = static_cast<std::size_t>(" +
               std::to_string(instr.a) + ") < nargs ? args[" +
               std::to_string(instr.a) + "] : 0.0;";
      case Op::LoadPid:
        return stack(h) + " = " + env_.pid + ";";
      case Op::LoadTid:
        return stack(h) + " = " + env_.tid + ";";
      case Op::LoadUid:
        return stack(h) + " = " + env_.uid + ";";
      case Op::Neg:
        return stack(h - 1) + " = -" + stack(h - 1) + ";";
      case Op::Not:
        return stack(h - 1) + " = " + stack(h - 1) +
               " != 0.0 ? 0.0 : 1.0;";
      case Op::Add:
        return binary_op(h, "+");
      case Op::Sub:
        return binary_op(h, "-");
      case Op::Mul:
        return binary_op(h, "*");
      case Op::Div:
        return binary_op(h, "/");
      case Op::Mod:
        return binary_fn(h, "fmod");
      case Op::Lt:
        return compare(h, "<");
      case Op::Le:
        return compare(h, "<=");
      case Op::Gt:
        return compare(h, ">");
      case Op::Ge:
        return compare(h, ">=");
      case Op::Eq:
        return compare(h, "==");
      case Op::Ne:
        return compare(h, "!=");
      case Op::ToBool:
        return stack(h - 1) + " = " + stack(h - 1) +
               " != 0.0 ? 1.0 : 0.0;";
      case Op::Jump:
        return "goto L" + std::to_string(instr.a) + ";";
      case Op::JumpIfFalse:
        return "if (!(" + stack(h - 1) + " != 0.0)) goto L" +
               std::to_string(instr.a) + ";";
      case Op::JumpIfTrue:
        return "if (" + stack(h - 1) + " != 0.0) goto L" +
               std::to_string(instr.a) + ";";
      case Op::CallUser: {
        const int argc = instr.b;
        if (argc == 0) {
          return stack(h) + " = fn" + std::to_string(instr.a) +
                 "(nullptr, 0);";
        }
        std::string args;
        for (int k = 0; k < argc; ++k) {
          if (k != 0) {
            args += ", ";
          }
          args += stack(h - argc + k);
        }
        return "{ const double call_args[] = {" + args + "}; " +
               stack(h - argc) + " = fn" + std::to_string(instr.a) +
               "(call_args, " + std::to_string(argc) + "); }";
      }
      case Op::Throw:
        return "throw_eval(\"" + escape(strings[instr.a]) + "\");";
      case Op::Abs:
        return unary(h, "fabs");
      case Op::Ceil:
        return unary(h, "ceil");
      case Op::Cos:
        return unary(h, "cos");
      case Op::Exp:
        return unary(h, "exp");
      case Op::Floor:
        return unary(h, "floor");
      case Op::Log:
        return unary(h, "log");
      case Op::Log10:
        return unary(h, "log10");
      case Op::Log2:
        return unary(h, "log2");
      case Op::Max:
        return binary_fn(h, "fmax");
      case Op::Min:
        return binary_fn(h, "fmin");
      case Op::Pow:
        return binary_fn(h, "pow");
      case Op::Round:
        return unary(h, "round");
      case Op::Sin:
        return unary(h, "sin");
      case Op::Sqrt:
        return unary(h, "sqrt");
      case Op::Tan:
        return unary(h, "tan");
      case Op::Tanh:
        return unary(h, "tanh");
    }
    (void)index;
    return ";";
  }

  const expr::Compiled& program_;
  const ExprEnv& env_;
  std::string indent_;
  std::vector<int> height_;
  std::vector<bool> target_;
};

std::string emit_expr(const expr::Compiled& program, const ExprEnv& env,
                      const std::string& indent) {
  return ExprTransliterator(program, env, indent).emit();
}

/// Emits the full evaluator translation unit for one lowered model.
class Emitter {
 public:
  explicit Emitter(const lower::ModelProgram& program)
      : program_(program), model_(program.model()) {
    const auto& diagrams = model_.diagrams();
    for (std::size_t d = 0; d < diagrams.size(); ++d) {
      const ActivityDiagram* diagram = diagrams[d].get();
      diagram_index_[diagram->id()] = static_cast<int>(d);
      auto& nodes = node_index_[diagram];
      const auto& list = diagram->nodes();
      for (std::size_t i = 0; i < list.size(); ++i) {
        nodes[list[i]->id()] = static_cast<int>(i);
      }
    }
  }

  [[nodiscard]] std::string emit() {
    preamble();
    forward_declarations();
    cost_functions();
    for (std::size_t d = 0; d < model_.diagrams().size(); ++d) {
      diagram_walker(static_cast<int>(d), *model_.diagrams()[d]);
    }
    run_entry_points();
    abi_glue();
    return out_.str();
  }

 private:
  /// The walker-scope expression environment (interp's make_context for
  /// node-scope evaluations: process frame + ambient pid/tid + node uid).
  [[nodiscard]] ExprEnv node_env(int uid) const {
    ExprEnv env;
    env.frame = "f.s";
    env.pid = "static_cast<double>(ctx.pid)";
    env.tid = "static_cast<double>(ctx.tid)";
    env.uid = std::to_string(uid) + ".0";
    return env;
  }

  /// Run-frame environment (global initializers, cost-function bodies:
  /// pid/tid/uid all zero, exactly like interp's run-scope contexts).
  [[nodiscard]] static ExprEnv run_env(bool has_args) {
    ExprEnv env;
    env.frame = "g_run_frame";
    env.has_args = has_args;
    return env;
  }

  [[nodiscard]] int node_index(const ActivityDiagram& diagram,
                               std::string_view id) const {
    const auto& nodes = node_index_.at(&diagram);
    const auto it = nodes.find(std::string(id));
    return it == nodes.end() ? -1 : it->second;
  }

  [[nodiscard]] int diagram_of(std::string_view id) const {
    const auto it = diagram_index_.find(std::string(id));
    return it == diagram_index_.end() ? -1 : it->second;
  }

  void preamble() {
    out_ << "// Generated by the Performance Prophet cgen backend.  "
            "Do not edit.\n"
         << "//\n"
         << "// Specialized evaluator for model '" << escape(model_.name())
         << "': every diagram\n"
         << "// is a switch-based coroutine state machine and every "
            "expression program is\n"
         << "// transliterated bytecode — semantics (and bits) match the "
            "interpreter.\n"
         << "#include <cmath>\n"
         << "#include <cstddef>\n"
         << "#include <cstdint>\n"
         << "#include <limits>\n"
         << "#include <new>\n"
         << "#include <optional>\n"
         << "#include <stdexcept>\n"
         << "#include <string>\n"
         << "#include <vector>\n"
         << "\n"
         << "#include \"prophet/cgen/abi.hpp\"\n"
         << "#include \"prophet/estimator/estimator.hpp\"\n"
         << "#include \"prophet/guard/guard.hpp\"\n"
         << "#include \"prophet/machine/machine.hpp\"\n"
         << "#include \"prophet/sim/engine.hpp\"\n"
         << "#include \"prophet/workload/runtime.hpp\"\n"
         << "\n"
         << "namespace {\n"
         << "\n"
         << "constexpr std::size_t kSlots = " << program_.slot_count()
         << ";\n"
         << "\n"
         << "/// Stand-in for expr::EvalError: nothing in this unit runs "
            "the VM, so the\n"
         << "/// lazily-compiled resolution errors are thrown (and caught "
            "at tag sites)\n"
         << "/// as this local type with the VM's exact messages.\n"
         << "struct CgenEvalError : std::runtime_error {\n"
         << "  using std::runtime_error::runtime_error;\n"
         << "};\n"
         << "\n"
         << "[[noreturn]] void throw_eval(const char* message) {\n"
         << "  throw CgenEvalError(message);\n"
         << "}\n"
         << "\n"
         << "double load_slot(const double* bound, const char* message) {\n"
         << "  if (bound == nullptr) {\n"
         << "    throw_eval(message);\n"
         << "  }\n"
         << "  return *bound;\n"
         << "}\n"
         << "\n"
         << "/// Slot frame, copied by value so fork branches and loop "
            "bodies snapshot\n"
         << "/// their bindings (interp's Scope).\n"
         << "struct Frame {\n"
         << "  double* s[kSlots];\n"
         << "};\n"
         << "\n"
         << "// Per-run state.  thread_local so concurrent estimate() "
            "calls (each on its\n"
         << "// own thread) share nothing mutable.\n"
         << "thread_local double g_np = 1, g_nt = 1, g_nn = 1, g_ppn = 1;\n"
         << "thread_local double g_globals[kSlots];\n"
         << "thread_local double* g_run_frame[kSlots];\n"
         << "thread_local prophet::guard::Budget* g_budget = nullptr;\n"
         << "thread_local int g_call_depth = 0;\n"
         << "\n";
  }

  void forward_declarations() {
    for (std::size_t id = 0; id < program_.functions().size(); ++id) {
      out_ << "double fn" << id
           << "(const double* args, std::size_t nargs);\n";
    }
    for (std::size_t d = 0; d < model_.diagrams().size(); ++d) {
      out_ << "prophet::sim::Process walk_d" << d
           << "(prophet::workload::ModelContext ctx, Frame f, double* "
              "locals, int start, int* stop);\n"
           << "prophet::sim::Process run_d" << d
           << "(prophet::workload::ModelContext ctx, Frame f, double* "
              "locals);\n";
    }
    out_ << "\n";
  }

  void cost_functions() {
    const auto functions = program_.functions();
    const ExprEnv env = run_env(/*has_args=*/true);
    for (std::size_t id = 0; id < functions.size(); ++id) {
      out_ << "double fn" << id
           << "(const double* args, std::size_t nargs) {\n"
           << "  (void)args;\n"
           << "  (void)nargs;\n"
           << "  if (g_call_depth > 64) {\n"
           << "    throw std::runtime_error(\n"
           << "        \"cost-function call depth exceeded (cycle?)\");\n"
           << "  }\n"
           << "  ++g_call_depth;\n"
           << "  const double result = " << emit_expr(functions[id], env, "  ")
           << ";\n"
           << "  --g_call_depth;\n"
           << "  return result;\n"
           << "}\n\n";
    }
  }

  /// One statement block evaluating optional tag `kind` of `node` into
  /// `variable` (declared by the caller), with interp's eval_tag error
  /// wrapping; absent tags leave the variable at 0.0.
  void tag_eval(const Node& node, const lower::NodePrograms& programs,
                lower::TagKind kind, std::string_view tag_name,
                const std::string& variable, const std::string& indent) {
    const auto& tag = programs.tag(kind);
    if (!tag.has_value()) {
      return;
    }
    if (tag->constant().has_value()) {
      out_ << indent << variable << " = "
           << double_literal(*tag->constant()) << ";\n";
      return;
    }
    const ExprEnv env = node_env(programs.uid);
    out_ << indent << "try {\n"
         << indent << "  " << variable << " = "
         << emit_expr(*tag, env, indent + "  ") << ";\n"
         << indent << "} catch (const CgenEvalError& error) {\n"
         << indent << "  throw std::runtime_error(std::string(\"node "
         << escape(node.id()) << ", tag '" << escape(tag_name)
         << "': \") + error.what());\n"
         << indent << "}\n";
  }

  /// The node's code fragment (interp's run_fragment), statement for
  /// statement: evaluate, coerce, store by resolved target.
  void fragment(const Node& node, const lower::NodePrograms& programs,
                const std::string& indent) {
    for (const auto& assignment : programs.fragment) {
      const ExprEnv env = node_env(programs.uid);
      out_ << indent << "{\n"
           << indent << "  double value = 0.0;\n"
           << indent << "  try {\n"
           << indent << "    value = "
           << emit_expr(assignment.value, env, indent + "    ") << ";\n"
           << indent << "  } catch (const CgenEvalError& error) {\n"
           << indent
           << "    throw std::runtime_error(std::string(\"code fragment at "
              "node "
           << escape(node.id()) << ": \") + error.what());\n"
           << indent << "  }\n";
      if (assignment.coerce_int) {
        out_ << indent << "  value = std::trunc(value);\n";
      }
      using Target = lower::CompiledAssignment::Target;
      switch (assignment.target) {
        case Target::Local:
          out_ << indent << "  locals[" << assignment.slot
               << "] = value;\n";
          break;
        case Target::Global:
          out_ << indent << "  g_globals[" << assignment.slot
               << "] = value;\n";
          break;
        case Target::Undeclared:
          out_ << indent << "  (void)value;\n"
               << indent
               << "  throw std::runtime_error(\"code fragment at node "
               << escape(node.id()) << " assigns undeclared variable '"
               << escape(assignment.name) << "'\");\n";
          break;
      }
      out_ << indent << "}\n";
    }
  }

  /// Successor dispatch for non-decision nodes (interp's next_node).
  void next_node(const ActivityDiagram& diagram, const Node& node,
                 const std::string& indent) {
    const auto outgoing = diagram.outgoing(node.id());
    if (outgoing.empty()) {
      out_ << indent << "node = -1;  // dead end\n" << indent << "break;\n";
      return;
    }
    if (outgoing.size() > 1) {
      out_ << indent << "throw std::runtime_error(\"node "
           << escape(node.id())
           << " has multiple unguarded outgoing edges\");\n";
      return;
    }
    out_ << indent
         << "node = " << node_index(diagram, outgoing[0]->target()) << ";\n"
         << indent << "break;\n";
  }

  /// Guarded successor dispatch for Decision nodes: compiled guards in
  /// edge order, first else edge as fallback (interp's next_node).
  void decision_dispatch(const ActivityDiagram& diagram, const Node& node,
                         const std::string& indent) {
    const auto outgoing = diagram.outgoing(node.id());
    const int uid = program_.at(node).uid;
    const uml::ControlFlow* fallback = nullptr;
    for (const auto* edge : outgoing) {
      if (edge->is_else()) {
        if (fallback == nullptr) {
          fallback = edge;
        }
        continue;
      }
      const expr::Compiled* guard = program_.guard(*edge);
      if (guard == nullptr) {
        continue;  // unguarded edge out of a decision: never taken
      }
      out_ << indent << "if ((" << emit_expr(*guard, node_env(uid), indent)
           << ") != 0.0) {\n"
           << indent
           << "  node = " << node_index(diagram, edge->target()) << ";\n"
           << indent << "  break;\n" << indent << "}\n";
    }
    if (fallback != nullptr) {
      out_ << indent
           << "node = " << node_index(diagram, fallback->target()) << ";\n"
           << indent << "break;\n";
    } else {
      out_ << indent << "throw std::runtime_error(\"decision "
           << escape(node.id())
           << ": no guard holds and no 'else' edge\");\n";
    }
  }

  void action_case(const ActivityDiagram& diagram, const Node& node,
                   const std::string& indent) {
    const lower::NodePrograms& programs = program_.at(node);
    const int uid = programs.uid;
    fragment(node, programs, indent);
    const std::string& stereotype = node.stereotype();
    const std::string name = "\"" + escape(node.name()) + "\"";
    const std::string exec_prefix =
        "co_await element.execute(" + std::to_string(uid) +
        ", ctx.pid, ctx.tid";
    if (stereotype == uml::stereo::kActionPlus || stereotype.empty()) {
      out_ << indent << "double cost = 0.0;\n";
      if (programs.cost().has_value()) {
        tag_eval(node, programs, lower::TagKind::Cost, uml::tag::kCost,
                 "cost", indent);
      } else if (const auto time = node.tag_number(uml::tag::kTime)) {
        out_ << indent << "cost = " << double_literal(*time) << ";\n";
      }
      out_ << indent << "prophet::workload::ActionPlus element(ctx, " << name
           << ");\n"
           << indent << exec_prefix << ", cost);\n";
    } else if (stereotype == uml::stereo::kSend) {
      out_ << indent << "double dest = 0.0;\n";
      tag_eval(node, programs, lower::TagKind::Dest, uml::tag::kDest, "dest",
               indent);
      out_ << indent << "double bytes = 0.0;\n";
      tag_eval(node, programs, lower::TagKind::Size, uml::tag::kSize, "bytes",
               indent);
      const auto tag = static_cast<int>(
          node.tag_number(uml::tag::kMsgTag).value_or(0));
      out_ << indent << "prophet::workload::SendElement element(ctx, " << name
           << ");\n"
           << indent << exec_prefix << ", static_cast<int>(dest), bytes, "
           << tag << ");\n";
    } else if (stereotype == uml::stereo::kRecv) {
      out_ << indent << "double source = 0.0;\n";
      tag_eval(node, programs, lower::TagKind::Source, uml::tag::kSource,
               "source", indent);
      out_ << indent << "double bytes = 0.0;\n";
      tag_eval(node, programs, lower::TagKind::Size, uml::tag::kSize, "bytes",
               indent);
      const auto tag = static_cast<int>(
          node.tag_number(uml::tag::kMsgTag).value_or(0));
      out_ << indent << "prophet::workload::RecvElement element(ctx, " << name
           << ");\n"
           << indent << exec_prefix << ", static_cast<int>(source), bytes, "
           << tag << ");\n";
    } else if (stereotype == uml::stereo::kBarrier) {
      out_ << indent << "prophet::workload::BarrierElement element(ctx, "
           << name << ");\n"
           << indent << exec_prefix << ");\n";
    } else if (stereotype == uml::stereo::kBroadcast ||
               stereotype == uml::stereo::kReduce ||
               stereotype == uml::stereo::kAllReduce ||
               stereotype == uml::stereo::kScatter ||
               stereotype == uml::stereo::kGather) {
      out_ << indent << "double bytes = 0.0;\n";
      tag_eval(node, programs, lower::TagKind::Size, uml::tag::kSize, "bytes",
               indent);
      out_ << indent << "double root = 0.0;\n";
      if (node.has_tag(uml::tag::kRoot)) {
        tag_eval(node, programs, lower::TagKind::Root, uml::tag::kRoot,
                 "root", indent);
      }
      out_ << indent << "prophet::workload::CollectiveElement element(ctx, "
           << name << ", prophet::workload::CollectiveKind::"
           << collective_kind(stereotype) << ");\n"
           << indent << exec_prefix
           << ", bytes, static_cast<int>(root));\n";
    } else if (stereotype == uml::stereo::kOmpFor) {
      out_ << indent << "double iterations = 0.0;\n";
      tag_eval(node, programs, lower::TagKind::Iterations,
               uml::tag::kIterations, "iterations", indent);
      out_ << indent << "double itercost = 0.0;\n";
      tag_eval(node, programs, lower::TagKind::IterCost, uml::tag::kIterCost,
               "itercost", indent);
      std::string schedule = node.tag_string(uml::tag::kSchedule);
      if (schedule.empty()) {
        schedule = "static";
      }
      const auto chunk = static_cast<std::int64_t>(
          node.tag_number(uml::tag::kChunk).value_or(0));
      out_ << indent << "prophet::workload::WorkshareElement element(ctx, "
           << name << ");\n"
           << indent << exec_prefix << ", iterations, itercost, \""
           << escape(schedule) << "\", " << chunk << "LL);\n";
    } else if (stereotype == uml::stereo::kOmpBarrier) {
      out_ << indent << "prophet::workload::OmpBarrierElement element(ctx, "
           << name << ");\n"
           << indent << exec_prefix << ");\n";
    } else {
      out_ << indent << "throw std::runtime_error(\"node "
           << escape(node.id()) << ": unsupported stereotype <<"
           << escape(stereotype) << ">> on an action node\");\n";
      return;  // unreachable successor
    }
    next_node(diagram, node, indent);
  }

  [[nodiscard]] static std::string_view collective_kind(
      const std::string& stereotype) {
    if (stereotype == uml::stereo::kBroadcast) {
      return "Broadcast";
    }
    if (stereotype == uml::stereo::kReduce) {
      return "Reduce";
    }
    if (stereotype == uml::stereo::kAllReduce) {
      return "AllReduce";
    }
    if (stereotype == uml::stereo::kScatter) {
      return "Scatter";
    }
    return "Gather";
  }

  void activity_case(const ActivityDiagram& diagram, const Node& node,
                     const std::string& indent) {
    const lower::NodePrograms& programs = program_.at(node);
    const int uid = programs.uid;
    fragment(node, programs, indent);
    const int sub = diagram_of(node.subdiagram_id());
    if (sub < 0) {
      // lower() rejects unresolvable references; defensive for direct use.
      out_ << indent << "throw std::runtime_error(\"node "
           << escape(node.id()) << ": unresolved sub-diagram '"
           << escape(node.subdiagram_id()) << "'\");\n";
      return;
    }
    const std::string& stereotype = node.stereotype();
    const std::string name = "\"" + escape(node.name()) + "\"";
    if (stereotype == uml::stereo::kOmpParallel) {
      if (programs.num_threads().has_value()) {
        out_ << indent << "double threads_value = 0.0;\n";
        tag_eval(node, programs, lower::TagKind::NumThreads,
                 uml::tag::kNumThreads, "threads_value", indent);
        out_ << indent
             << "const int threads = static_cast<int>(threads_value);\n";
      } else {
        out_ << indent << "const int threads = static_cast<int>(g_nt);\n";
      }
      out_ << indent << "co_await prophet::workload::parallel_region(\n"
           << indent << "    ctx, threads, " << uid << ", " << name << ",\n"
           << indent
           << "    [f, locals](prophet::workload::ModelContext tctx)\n"
           << indent << "        -> prophet::sim::Process {\n"
           << indent << "      return run_d" << sub
           << "(tctx, f, locals);\n"
           << indent << "    });\n";
    } else if (stereotype == uml::stereo::kOmpCritical) {
      std::string lock = node.tag_string(uml::tag::kCriticalName);
      if (lock.empty()) {
        lock = "default";
      }
      out_ << indent << "prophet::workload::CriticalElement element(ctx, "
           << name << ", \"" << escape(lock) << "\");\n"
           << indent << "prophet::workload::ModelContext body_ctx = ctx;\n"
           << indent << "co_await element.execute(" << uid
           << ", ctx.pid, ctx.tid,\n"
           << indent
           << "    [f, locals, body_ctx]() -> prophet::sim::Process {\n"
           << indent << "      return run_d" << sub
           << "(body_ctx, f, locals);\n"
           << indent << "    });\n";
    } else {
      out_ << indent << "prophet::workload::ActivityPlus element(ctx, "
           << name << ");\n"
           << indent << "const double started = element.begin(" << uid
           << ");\n"
           << indent << "co_await run_d" << sub << "(ctx, f, locals);\n"
           << indent << "element.end(" << uid << ", started);\n";
    }
    next_node(diagram, node, indent);
  }

  void loop_case(const ActivityDiagram& diagram, const Node& node,
                 const std::string& indent) {
    const lower::NodePrograms& programs = program_.at(node);
    fragment(node, programs, indent);
    const int body = diagram_of(node.subdiagram_id());
    if (body < 0) {
      out_ << indent << "throw std::runtime_error(\"node "
           << escape(node.id()) << ": unresolved sub-diagram '"
           << escape(node.subdiagram_id()) << "'\");\n";
      return;
    }
    out_ << indent << "double raw = 0.0;\n";
    tag_eval(node, programs, lower::TagKind::Iterations,
             uml::tag::kIterations, "raw", indent);
    out_ << indent << "if (std::isnan(raw) || raw < 0) {\n"
         << indent << "  throw std::runtime_error(\"loop "
         << escape(node.id()) << ": iteration count is negative or NaN\");\n"
         << indent << "}\n"
         << indent
         << "const auto iterations = static_cast<std::int64_t>(raw);\n"
         << indent << "double loop_value = 0;\n"
         << indent << "Frame lf = f;\n"
         << indent << "lf.s[" << programs.loop_var_slot
         << "] = &loop_value;\n"
         << indent
         << "for (std::int64_t k = 0; k < iterations; ++k) {\n"
         << indent << "  if (g_budget != nullptr) {\n"
         << indent << "    g_budget->charge_loop_trips(1, \"cgen-loop\");\n"
         << indent << "  }\n"
         << indent << "  loop_value = static_cast<double>(k);\n"
         << indent << "  co_await run_d" << body << "(ctx, lf, locals);\n"
         << indent << "}\n";
    next_node(diagram, node, indent);
  }

  void fork_case(const ActivityDiagram& diagram, const Node& node, int di,
                 const std::string& indent) {
    const auto outgoing = diagram.outgoing(node.id());
    const std::size_t branches = outgoing.size();
    if (branches == 0) {
      out_ << indent << "throw std::runtime_error(\"fork "
           << escape(node.id()) << ": branches do not reach a join\");\n";
      return;
    }
    out_ << indent << "int joins[" << branches << "];\n"
         << indent << "for (std::size_t b = 0; b < " << branches
         << "; ++b) {\n"
         << indent << "  joins[b] = -1;\n" << indent << "}\n"
         << indent << "{\n"
         << indent << "  std::vector<prophet::sim::ProcessRef> branches;\n"
         << indent << "  branches.reserve(" << branches << ");\n";
    for (std::size_t b = 0; b < branches; ++b) {
      const int target = node_index(diagram, outgoing[b]->target());
      if (target < 0) {
        out_ << indent << "  throw std::runtime_error(\"fork "
             << escape(node.id()) << ": dangling edge\");\n";
        break;  // interp throws here; later branches never spawn
      }
      out_ << indent << "  branches.push_back(ctx.engine->spawn(walk_d" << di
           << "(ctx, f, locals, " << target << ", &joins[" << b
           << "])));\n";
    }
    out_ << indent << "  for (const auto& branch : branches) {\n"
         << indent << "    co_await branch;\n"
         << indent << "  }\n"
         << indent << "}\n";
    for (std::size_t b = 1; b < branches; ++b) {
      out_ << indent << "if (joins[" << b << "] != joins[0]) {\n"
           << indent << "  throw std::runtime_error(std::string(\"fork "
           << escape(node.id())
           << ": branches reach different joins ('\") + node_id_d" << di
           << "(joins[0]) + \"' vs '\" + node_id_d" << di << "(joins[" << b
           << "]) + \"')\");\n"
           << indent << "}\n";
    }
    out_ << indent << "if (joins[0] < 0) {\n"
         << indent << "  throw std::runtime_error(\"fork "
         << escape(node.id()) << ": branches do not reach a join\");\n"
         << indent << "}\n"
         << indent << "switch (joins[0]) {\n";
    const auto& nodes = diagram.nodes();
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      if (nodes[j]->kind() != NodeKind::Join) {
        continue;
      }
      const auto after = diagram.outgoing(nodes[j]->id());
      out_ << indent << "  case " << j << ":\n";
      if (after.empty()) {
        out_ << indent << "    co_return;\n";
      } else if (after.size() > 1) {
        out_ << indent << "    throw std::runtime_error(\"join "
             << escape(nodes[j]->id()) << " has multiple outgoing edges\");\n";
      } else {
        out_ << indent
             << "    node = " << node_index(diagram, after[0]->target())
             << ";\n"
             << indent << "    break;\n";
      }
    }
    out_ << indent << "  default:\n"
         << indent << "    node = -1;\n"
         << indent << "    break;\n"
         << indent << "}\n"
         << indent << "break;\n";
  }

  void diagram_walker(int di, const ActivityDiagram& diagram) {
    const auto& nodes = diagram.nodes();
    // Node-id lookup for fork/join diagnostics (indices back to element
    // ids, so generated messages match the interpreter's).
    out_ << "const char* node_id_d" << di << "(int node) {\n"
         << "  switch (node) {\n";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out_ << "    case " << i << ":\n"
           << "      return \"" << escape(nodes[i]->id()) << "\";\n";
    }
    out_ << "    default:\n"
         << "      return \"\";\n"
         << "  }\n"
         << "}\n\n";

    const std::uint64_t limit = 1000000ULL + 1000ULL * diagram.node_count();
    out_ << "// Diagram '" << escape(diagram.id())
         << "': interp::Interpreter's walk, specialized.\n"
         << "prophet::sim::Process walk_d" << di
         << "(prophet::workload::ModelContext ctx, Frame f, double* locals, "
            "int start, int* stop) {\n"
         << "  (void)locals;\n"
         << "  (void)stop;\n"
         << "  int node = start;\n"
         << "  std::uint64_t steps = 0;\n"
         << "  while (node >= 0) {\n"
         << "    if (++steps > " << limit << "ULL) {\n"
         << "      throw std::runtime_error(\n"
         << "          \"diagram " << escape(diagram.id())
         << ": walk exceeded step limit (unstructured \"\n"
         << "          \"cycle without <<loop+>>?)\");\n"
         << "    }\n"
         << "    switch (node) {\n";
    const std::string indent = "        ";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Node& node = *nodes[i];
      out_ << "      case " << i << ": {  // " << kind_name(node.kind())
           << " '" << escape(node.id()) << "'\n";
      switch (node.kind()) {
        case NodeKind::Initial:
        case NodeKind::Merge:
          next_node(diagram, node, indent);
          break;
        case NodeKind::Final:
          out_ << indent << "co_return;\n";
          break;
        case NodeKind::Join:
          out_ << indent << "if (stop != nullptr) {\n"
               << indent << "  *stop = " << i << ";\n"
               << indent << "  co_return;\n"
               << indent << "}\n";
          next_node(diagram, node, indent);
          break;
        case NodeKind::Decision:
          decision_dispatch(diagram, node, indent);
          break;
        case NodeKind::Fork:
          fork_case(diagram, node, di, indent);
          break;
        case NodeKind::Action:
          action_case(diagram, node, indent);
          break;
        case NodeKind::Activity:
          activity_case(diagram, node, indent);
          break;
        case NodeKind::Loop:
          loop_case(diagram, node, indent);
          break;
      }
      out_ << "      }\n";
    }
    out_ << "      default:\n"
         << "        node = -1;\n"
         << "        break;\n"
         << "    }\n"
         << "  }\n"
         << "  co_return;\n"
         << "}\n\n";

    out_ << "prophet::sim::Process run_d" << di
         << "(prophet::workload::ModelContext ctx, Frame f, double* locals) "
            "{\n";
    const Node* initial = diagram.initial();
    if (initial == nullptr) {
      out_ << "  throw std::runtime_error(\"diagram "
           << escape(diagram.id()) << " has no initial node\");\n"
           << "  co_return;  // unreachable; makes this a coroutine\n";
    } else {
      out_ << "  co_await walk_d" << di << "(ctx, f, locals, "
           << node_index(diagram, initial->id()) << ", nullptr);\n";
    }
    out_ << "}\n\n";
  }

  [[nodiscard]] static std::string_view kind_name(NodeKind kind) {
    switch (kind) {
      case NodeKind::Initial:
        return "initial";
      case NodeKind::Final:
        return "final";
      case NodeKind::Action:
        return "action";
      case NodeKind::Activity:
        return "activity";
      case NodeKind::Decision:
        return "decision";
      case NodeKind::Merge:
        return "merge";
      case NodeKind::Fork:
        return "fork";
      case NodeKind::Join:
        return "join";
      case NodeKind::Loop:
        return "loop";
    }
    return "node";
  }

  void run_entry_points() {
    // start_run: interp's run-start, specialized — bind structural
    // slots, zero globals, initialize in declaration order (each global
    // becomes visible to the next initializer).
    out_ << "void start_run(const prophet::machine::SystemParameters& "
            "params) {\n"
         << "  g_np = static_cast<double>(params.processes);\n"
         << "  g_nt = static_cast<double>(params.threads_per_process);\n"
         << "  g_nn = static_cast<double>(params.nodes);\n"
         << "  g_ppn = static_cast<double>(params.processors_per_node);\n"
         << "  for (std::size_t i = 0; i < kSlots; ++i) {\n"
         << "    g_globals[i] = 0.0;\n"
         << "    g_run_frame[i] = nullptr;\n"
         << "  }\n"
         << "  g_run_frame[" << program_.np_slot() << "] = &g_np;\n"
         << "  g_run_frame[" << program_.nt_slot() << "] = &g_nt;\n"
         << "  g_run_frame[" << program_.nn_slot() << "] = &g_nn;\n"
         << "  g_run_frame[" << program_.ppn_slot() << "] = &g_ppn;\n";
    const ExprEnv globals_env = run_env(/*has_args=*/false);
    for (const auto& variable : program_.variables()) {
      if (variable.scope != uml::VariableScope::Global) {
        continue;
      }
      out_ << "  {  // global '" << escape(variable.name) << "'\n"
           << "    double value = 0.0;\n";
      if (variable.initializer.has_value()) {
        out_ << "    value = "
             << emit_expr(*variable.initializer, globals_env, "    ")
             << ";\n";
      }
      if (variable.type == uml::VariableType::Integer) {
        out_ << "    value = std::trunc(value);\n";
      }
      out_ << "    g_globals[" << variable.slot << "] = value;\n"
           << "    g_run_frame[" << variable.slot << "] = &g_globals["
           << variable.slot << "];\n"
           << "  }\n";
    }
    out_ << "}\n\n";

    // run_process: per-process locals in this coroutine frame,
    // initialized in declaration order, then walk the main diagram.
    const int main_diagram = diagram_of(model_.main_diagram_id());
    out_ << "prophet::sim::Process run_process("
            "prophet::workload::ModelContext ctx) {\n"
         << "  double local_values[kSlots] = {};\n"
         << "  (void)local_values;\n"
         << "  Frame f;\n"
         << "  for (std::size_t i = 0; i < kSlots; ++i) {\n"
         << "    f.s[i] = g_run_frame[i];\n"
         << "  }\n";
    ExprEnv locals_env = run_env(/*has_args=*/false);
    locals_env.frame = "f.s";
    locals_env.pid = "static_cast<double>(ctx.pid)";
    locals_env.tid = "static_cast<double>(ctx.tid)";
    for (const auto& variable : program_.variables()) {
      if (variable.scope != uml::VariableScope::Local) {
        continue;
      }
      out_ << "  {  // local '" << escape(variable.name) << "'\n"
           << "    double value = 0.0;\n";
      if (variable.initializer.has_value()) {
        out_ << "    value = "
             << emit_expr(*variable.initializer, locals_env, "    ")
             << ";\n";
      }
      if (variable.type == uml::VariableType::Integer) {
        out_ << "    value = std::trunc(value);\n";
      }
      out_ << "    local_values[" << variable.slot << "] = value;\n"
           << "    f.s[" << variable.slot << "] = &local_values["
           << variable.slot << "];\n"
           << "  }\n";
    }
    out_ << "  co_await run_d" << main_diagram
         << "(ctx, f, local_values);\n"
         << "}\n\n";
  }

  void abi_glue() {
    out_ << R"(class GeneratedModel final : public prophet::estimator::ProgramModel {
 public:
  void on_run_start(
      const prophet::machine::SystemParameters& params) override {
    start_run(params);
  }

  [[nodiscard]] prophet::sim::Process process_main(
      prophet::workload::ModelContext ctx) override {
    return run_process(ctx);
  }

  void set_budget(prophet::guard::Budget* budget) override {
    g_budget = budget;
  }
};

/// Heap storage behind CgenResult's pointers; freed by prophet_cgen_free.
struct ResultStorage {
  std::vector<std::int32_t> pids;
  std::vector<double> times;
  std::string machine_report;
  std::string message;
  std::string stage;
};

void fill_usage(prophet::cgen::CgenResult* result,
                const prophet::guard::Usage& usage) {
  result->usage_sim_events = usage.sim_events;
  result->usage_vm_instructions = usage.vm_instructions;
  result->usage_replay_events = usage.replay_events;
  result->usage_loop_trips = usage.loop_trips;
  result->usage_elapsed_seconds = usage.elapsed_seconds;
}

}  // namespace

// The TU compiles with -fvisibility=hidden; only these three entry
// points opt back into the dynamic symbol table.
#define PROPHET_CGEN_EXPORT extern "C" __attribute__((visibility("default")))

PROPHET_CGEN_EXPORT std::uint32_t prophet_cgen_abi_version() {
  return prophet::cgen::kCgenAbiVersion;
}

PROPHET_CGEN_EXPORT void prophet_cgen_free(prophet::cgen::CgenResult* result) {
  if (result != nullptr && result->owner != nullptr) {
    delete static_cast<ResultStorage*>(result->owner);
    result->owner = nullptr;
  }
}

PROPHET_CGEN_EXPORT std::int32_t prophet_cgen_run(
    const prophet::cgen::CgenParams* params,
    prophet::cgen::CgenResult* result) {
  if (params == nullptr || result == nullptr) {
    return prophet::cgen::kCgenError;
  }
  *result = prophet::cgen::CgenResult{};
  auto* storage = new (std::nothrow) ResultStorage;
  if (storage == nullptr) {
    return prophet::cgen::kCgenError;
  }
  result->owner = storage;
  const auto fail = [&](std::int32_t status, const char* message) {
    storage->message = message;
    result->message = storage->message.c_str();
    result->stage = storage->stage.c_str();
    result->status = status;
    return status;
  };
  try {
    prophet::machine::SystemParameters system;
    system.nodes = params->nodes;
    system.processors_per_node = params->processors_per_node;
    system.processes = params->processes;
    system.threads_per_process = params->threads_per_process;
    system.cpu_speed = params->cpu_speed;
    system.network_latency = params->network_latency;
    system.network_bandwidth = params->network_bandwidth;
    system.network_overhead = params->network_overhead;
    system.memory_latency = params->memory_latency;
    system.memory_bandwidth = params->memory_bandwidth;
    system.barrier_latency = params->barrier_latency;

    prophet::guard::Limits limits;
    limits.wall_seconds = params->wall_seconds;
    limits.max_sim_events = params->max_sim_events;
    limits.max_vm_instructions = params->max_vm_instructions;
    limits.max_replay_events = params->max_replay_events;
    limits.max_loop_trips = params->max_loop_trips;

    std::optional<prophet::guard::Budget> budget;
    if (limits.any() || params->cancel_poll != nullptr ||
        params->cancel_at_sim_event != 0) {
      budget.emplace(limits);
      if (params->cancel_poll != nullptr) {
        budget->bind_external_cancel(params->cancel_poll,
                                     params->cancel_context);
      }
      if (params->cancel_at_sim_event != 0) {
        budget->cancel_at_sim_event(params->cancel_at_sim_event);
      }
    }

    prophet::estimator::EstimationOptions options;
    options.collect_trace = false;
    options.collect_machine_report = params->collect_machine_report != 0;
    if (budget.has_value()) {
      options.budget = &*budget;
    }

    g_call_depth = 0;
    GeneratedModel model;
    const prophet::estimator::SimulationManager manager(system, options);
    prophet::estimator::PredictionReport report = manager.run(model);

    storage->pids.reserve(report.per_process_finish.size());
    storage->times.reserve(report.per_process_finish.size());
    for (const auto& [pid, finish] : report.per_process_finish) {
      storage->pids.push_back(pid);
      storage->times.push_back(finish);
    }
    storage->machine_report = report.machine_report;
    result->predicted_time = report.predicted_time;
    result->events = report.events;
    result->processes = report.processes;
    result->finish_pids = storage->pids.data();
    result->finish_times = storage->times.data();
    result->finish_count = storage->pids.size();
    result->machine_report = storage->machine_report.c_str();
    result->message = "";
    result->status = prophet::cgen::kCgenOk;
    return result->status;
  } catch (const prophet::guard::ResourceExhausted& error) {
    result->limit = static_cast<std::int32_t>(error.limit());
    storage->stage = error.stage();
    fill_usage(result, error.usage());
    return fail(prophet::cgen::kCgenResourceExhausted, error.what());
  } catch (const prophet::guard::Cancelled& error) {
    result->limit = static_cast<std::int32_t>(error.limit());
    storage->stage = error.stage();
    fill_usage(result, error.usage());
    return fail(prophet::cgen::kCgenCancelled, error.what());
  } catch (const std::exception& error) {
    return fail(prophet::cgen::kCgenError, error.what());
  } catch (...) {
    return fail(prophet::cgen::kCgenError,
                "unknown error in generated evaluator");
  }
}
)";
  }

  const lower::ModelProgram& program_;
  const uml::Model& model_;
  std::ostringstream out_;
  std::map<std::string, int, std::less<>> diagram_index_;
  std::map<const ActivityDiagram*, std::map<std::string, int, std::less<>>>
      node_index_;
};

}  // namespace

std::string emit_evaluator(const lower::ModelProgram& program) {
  return Emitter(program).emit();
}

}  // namespace prophet::cgen
