#include "prophet/cgen/toolchain.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "prophet/cgen/abi.hpp"
#include "prophet/guard/guard.hpp"

// Configure-time defaults (CMake defines these for prophet_cgen); the
// empty fallbacks keep the TU compilable standalone.
#ifndef PROPHET_SOURCE_DIR
#define PROPHET_SOURCE_DIR ""
#endif
#ifndef PROPHET_BINARY_DIR
#define PROPHET_BINARY_DIR ""
#endif
#ifndef PROPHET_EXTRA_CXX_FLAGS
#define PROPHET_EXTRA_CXX_FLAGS ""
#endif

namespace prophet::cgen {

namespace fs = std::filesystem;

std::string compiler_command() {
  const char* cxx = std::getenv("CXX");
  if (cxx != nullptr && cxx[0] != '\0') {
    return cxx;
  }
  return "g++";
}

std::string extra_cxx_flags(std::string_view fallback) {
  const char* flags = std::getenv("PROPHET_EXTRA_CXX_FLAGS");
  if (flags != nullptr) {
    return flags;
  }
  return std::string(fallback);
}

std::vector<std::string> runtime_archives(std::string_view binary_dir) {
  // Link order matters for single-pass archive resolution: dependents
  // before dependencies.
  static constexpr std::string_view kModules[] = {
      "estimator", "workload", "machine", "obs",
      "trace",     "sim",      "guard",   "xml",
  };
  std::vector<std::string> archives;
  archives.reserve(std::size(kModules));
  for (const auto module : kModules) {
    archives.push_back(std::string(binary_dir) + "/src/" +
                       std::string(module) + "/libprophet_" +
                       std::string(module) + ".a");
  }
  return archives;
}

std::string compile_command(const CompileSpec& spec) {
  std::ostringstream command;
  command << compiler_command() << " -std=c++20 " << spec.optimization;
  if (spec.shared_object) {
    // -ffp-contract=off: no FMA contraction in the generated evaluator,
    // whose arithmetic must be bit-identical to the VM's (compiled the
    // same way).  -fvisibility=hidden keeps everything but the explicit
    // extern "C" entry points out of the dynamic symbol table.
    command << " -fPIC -shared -ffp-contract=off -fvisibility=hidden";
  }
  const std::string extra = extra_cxx_flags(spec.extra_flags_fallback);
  if (!extra.empty()) {
    command << " " << extra;
  }
  command << " -I" << spec.include_dir << " " << spec.source_path;
  for (const auto& archive : spec.archives) {
    command << " " << archive;
  }
  command << " -o " << spec.output_path;
  if (spec.shared_object) {
    command << " -ldl";
  }
  command << " 2>&1";
  return command.str();
}

int run_command(const std::string& command, std::string* output) {
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    if (output != nullptr) {
      *output = "popen failed";
    }
    return -1;
  }
  char buffer[512];
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) {
    if (output != nullptr) {
      *output += buffer;
    }
  }
  return pclose(pipe);
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

namespace {

std::string default_cache_dir() {
  const char* env = std::getenv("PROPHET_CGEN_CACHE");
  if (env != nullptr && env[0] != '\0') {
    return env;
  }
  std::error_code ec;
  const fs::path temp = fs::temp_directory_path(ec);
  if (ec) {
    return "prophet-cgen-cache";
  }
  return (temp / "prophet-cgen-cache").string();
}

std::string hex64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// Trims toolchain output for error messages: enough to diagnose, not
/// the compiler's whole template backtrace.
std::string head_of(const std::string& text, std::size_t max_bytes = 4096) {
  if (text.size() <= max_bytes) {
    return text;
  }
  return text.substr(0, max_bytes) + "\n... (toolchain output truncated)";
}

}  // namespace

CompileOutcome compile_shared_object(const std::string& source,
                                     const ToolchainOptions& options) {
  const std::string include_dir =
      options.include_dir.empty() ? std::string(PROPHET_SOURCE_DIR) + "/include"
                                  : options.include_dir;
  const std::string binary_dir =
      options.binary_dir.empty() ? std::string(PROPHET_BINARY_DIR)
                                 : options.binary_dir;
  const std::string fallback = options.extra_flags_fallback.empty()
                                   ? std::string(PROPHET_EXTRA_CXX_FLAGS)
                                   : options.extra_flags_fallback;
  const std::string cache_dir =
      options.cache_dir.empty() ? default_cache_dir() : options.cache_dir;

  CompileSpec spec;
  spec.include_dir = include_dir;
  spec.archives = runtime_archives(binary_dir);
  spec.shared_object = true;
  spec.extra_flags_fallback = fallback;

  // Cache key: the source, the command that would build it (with the
  // real paths substituted out so the key depends on the command shape,
  // not the yet-unknown hashed file names), and the ABI version.
  spec.source_path = "<source>";
  spec.output_path = "<object>";
  const std::string shape = compile_command(spec);
  std::ostringstream key;
  key << "abi=" << kCgenAbiVersion << "\n"
      << shape << "\n"
      << source;
  const std::string hash = hex64(fnv1a64(key.str()));

  std::error_code ec;
  fs::create_directories(cache_dir, ec);
  const fs::path base = fs::path(cache_dir) / ("prophet_cgen_" + hash);
  const fs::path source_path = base.string() + ".cpp";
  const fs::path object_path = base.string() + ".so";

  CompileOutcome outcome;
  outcome.object_path = object_path.string();
  if (fs::exists(object_path, ec)) {
    outcome.cache_hit = true;
    return outcome;
  }

  if (options.fault_plan != nullptr) {
    options.fault_plan->visit("cgen-compile");
  }

  {
    std::ofstream out(source_path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      throw CgenError("cannot write generated source " +
                      source_path.string());
    }
    out << source;
  }

  // Compile to a process-unique temporary, then rename into place:
  // rename within one directory is atomic, so a concurrent producer of
  // the same key leaves a valid object either way.
  const fs::path temp_object =
      base.string() + ".tmp" +
      std::to_string(static_cast<unsigned long>(::getpid())) + ".so";
  spec.source_path = source_path.string();
  spec.output_path = temp_object.string();
  const std::string command = compile_command(spec);

  const auto started = std::chrono::steady_clock::now();
  std::string output;
  const int status = run_command(command, &output);
  outcome.compile_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  if (status != 0) {
    fs::remove(temp_object, ec);
    if (output.find("not found") != std::string::npos ||
        output.find("No such file") != std::string::npos) {
      throw CgenError("no usable C++ toolchain ('" + compiler_command() +
                      "'): " + head_of(output));
    }
    throw CgenError("generated evaluator failed to compile (status " +
                    std::to_string(status) + "):\n" + head_of(output));
  }
  fs::rename(temp_object, object_path, ec);
  if (ec) {
    fs::remove(temp_object, ec);
    // A concurrent producer may have won the rename; the object is
    // valid either way as long as it exists now.
    if (!fs::exists(object_path, ec)) {
      throw CgenError("cannot install compiled evaluator " +
                      object_path.string());
    }
  }
  return outcome;
}

}  // namespace prophet::cgen
