#include "prophet/cgen/backend.hpp"

#include <dlfcn.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "prophet/analytic/backend.hpp"
#include "prophet/cgen/abi.hpp"
#include "prophet/cgen/emitter.hpp"
#include "prophet/guard/guard.hpp"

namespace prophet::cgen {

namespace {

/// RAII dlopen handle.  RTLD_LOCAL keeps each evaluator's symbols
/// private (two loaded models must not resolve into each other);
/// RTLD_NOW surfaces unresolved symbols at prepare() time as a
/// structured error instead of a mid-estimate abort.
class SharedObject {
 public:
  explicit SharedObject(const std::string& path)
      : handle_(dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL)) {
    if (handle_ == nullptr) {
      const char* reason = dlerror();
      throw CgenError("cannot load generated evaluator " + path + ": " +
                      (reason != nullptr ? reason : "unknown dlopen error"));
    }
  }

  ~SharedObject() {
    if (handle_ != nullptr) {
      dlclose(handle_);
    }
  }

  SharedObject(const SharedObject&) = delete;
  SharedObject& operator=(const SharedObject&) = delete;

  template <typename Fn>
  [[nodiscard]] Fn symbol(const char* name) const {
    void* address = dlsym(handle_, name);
    if (address == nullptr) {
      throw CgenError(std::string("generated evaluator lacks symbol '") +
                      name + "' (not a prophet cgen object?)");
    }
    return reinterpret_cast<Fn>(address);
  }

 private:
  void* handle_ = nullptr;
};

/// C-compatible poll over the host budget, bound into the shared
/// object's budget via guard::Budget::bind_external_cancel.
int poll_host_budget(void* context) {
  return static_cast<const guard::Budget*>(context)->cancel_requested() ? 1
                                                                        : 0;
}

/// Remaining headroom of one numeric limit: an untouched limit passes
/// through, a partially consumed one shrinks (the shared object's
/// ledger starts at zero), an exhausted one clamps to 1 so the very
/// first charge trips.
std::uint64_t remaining_limit(std::uint64_t limit, std::uint64_t used) {
  if (limit == 0) {
    return 0;
  }
  return used < limit ? limit - used : 1;
}

}  // namespace

struct CodegenPrepared::Impl {
  lower::ModelProgramPtr program;
  std::unique_ptr<SharedObject> object;
  CgenRunFn run = nullptr;
  CgenFreeFn free = nullptr;
  std::string object_path;
  double prepare_seconds = 0;
  bool cache_hit = false;
};

CodegenPrepared::CodegenPrepared(lower::ModelProgramPtr program,
                                 const CodegenOptions& options)
    : impl_(std::make_unique<Impl>()) {
  if (program == nullptr) {
    throw CgenError("null model program");
  }
  const auto started = std::chrono::steady_clock::now();
  impl_->program = std::move(program);
  const std::string source = emit_evaluator(*impl_->program);
  const CompileOutcome compiled =
      compile_shared_object(source, options.toolchain);
  impl_->object_path = compiled.object_path;
  impl_->cache_hit = compiled.cache_hit;
  impl_->object = std::make_unique<SharedObject>(compiled.object_path);
  const auto version =
      impl_->object->symbol<CgenAbiVersionFn>(kCgenAbiVersionSymbol);
  if (version() != kCgenAbiVersion) {
    throw CgenError("generated evaluator ABI mismatch (object " +
                    std::to_string(version()) + ", host " +
                    std::to_string(kCgenAbiVersion) + ")");
  }
  impl_->run = impl_->object->symbol<CgenRunFn>(kCgenRunSymbol);
  impl_->free = impl_->object->symbol<CgenFreeFn>(kCgenFreeSymbol);
  impl_->prepare_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
}

CodegenPrepared::~CodegenPrepared() = default;

estimator::PredictionReport CodegenPrepared::estimate(
    const machine::SystemParameters& params,
    const estimator::EstimationOptions& options) const {
  CgenParams request;
  request.nodes = params.nodes;
  request.processors_per_node = params.processors_per_node;
  request.processes = params.processes;
  request.threads_per_process = params.threads_per_process;
  request.cpu_speed = params.cpu_speed;
  request.network_latency = params.network_latency;
  request.network_bandwidth = params.network_bandwidth;
  request.network_overhead = params.network_overhead;
  request.memory_latency = params.memory_latency;
  request.memory_bandwidth = params.memory_bandwidth;
  request.barrier_latency = params.barrier_latency;
  request.collect_machine_report = options.collect_machine_report ? 1 : 0;

  // Guard transfer: a caller-owned budget is projected onto the ABI —
  // numeric limits shrink by what the host ledger already consumed, the
  // wall deadline becomes the remaining seconds (so a parent sweep's
  // deadline binds too), cancellation is bridged by a poll, and an armed
  // mid-run cancel re-arms on the far side.  Bare limits pass through.
  if (options.budget != nullptr) {
    const guard::Budget& budget = *options.budget;
    const guard::Limits& limits = budget.limits();
    const guard::Usage used = budget.usage();
    request.max_sim_events =
        remaining_limit(limits.max_sim_events, used.sim_events);
    request.max_vm_instructions =
        remaining_limit(limits.max_vm_instructions, used.vm_instructions);
    request.max_replay_events =
        remaining_limit(limits.max_replay_events, used.replay_events);
    request.max_loop_trips =
        remaining_limit(limits.max_loop_trips, used.loop_trips);
    if (const auto remaining = budget.remaining_wall_seconds()) {
      request.wall_seconds = *remaining > 1e-9 ? *remaining : 1e-9;
    }
    request.cancel_at_sim_event = budget.armed_cancel_at_sim_event();
    request.cancel_poll = &poll_host_budget;
    request.cancel_context =
        const_cast<void*>(static_cast<const void*>(options.budget));
  } else {
    request.wall_seconds = options.limits.wall_seconds;
    request.max_sim_events = options.limits.max_sim_events;
    request.max_vm_instructions = options.limits.max_vm_instructions;
    request.max_replay_events = options.limits.max_replay_events;
    request.max_loop_trips = options.limits.max_loop_trips;
  }

  CgenResult result;
  impl_->run(&request, &result);

  // Copy out before freeing the object-owned storage.
  estimator::PredictionReport report;
  guard::Usage usage;
  usage.sim_events = result.usage_sim_events;
  usage.vm_instructions = result.usage_vm_instructions;
  usage.replay_events = result.usage_replay_events;
  usage.loop_trips = result.usage_loop_trips;
  usage.elapsed_seconds = result.usage_elapsed_seconds;
  const std::string message =
      result.message != nullptr ? result.message : "";
  const std::string stage = result.stage != nullptr ? result.stage : "";
  const auto limit = static_cast<guard::LimitKind>(result.limit);
  const std::int32_t status = result.status;
  if (status == kCgenOk) {
    report.predicted_time = result.predicted_time;
    report.events = result.events;
    report.processes = result.processes;
    for (std::size_t i = 0; i < result.finish_count; ++i) {
      report.per_process_finish[result.finish_pids[i]] =
          result.finish_times[i];
    }
    if (result.machine_report != nullptr) {
      report.machine_report = result.machine_report;
    }
  }
  impl_->free(&result);

  switch (status) {
    case kCgenOk:
      return report;
    case kCgenResourceExhausted:
      throw guard::ResourceExhausted(message, limit, stage, usage);
    case kCgenCancelled:
      throw guard::Cancelled(message, limit, stage, usage);
    default:
      throw CgenError(message.empty() ? "generated evaluator failed"
                                      : message);
  }
}

lower::ModelProgramPtr CodegenPrepared::lowering() const {
  return impl_->program;
}

double CodegenPrepared::prepare_seconds() const {
  return impl_->prepare_seconds;
}

bool CodegenPrepared::cache_hit() const { return impl_->cache_hit; }

const std::string& CodegenPrepared::object_path() const {
  return impl_->object_path;
}

std::unique_ptr<estimator::PreparedModel> CodegenBackend::prepare(
    lower::ModelProgramPtr program) const {
  return std::make_unique<CodegenPrepared>(std::move(program), options_);
}

std::unique_ptr<estimator::Backend> make_backend(estimator::BackendKind kind,
                                                 CodegenOptions options) {
  if (kind == estimator::BackendKind::Codegen) {
    return std::make_unique<CodegenBackend>(std::move(options));
  }
  return analytic::make_backend(kind);
}

}  // namespace prophet::cgen
