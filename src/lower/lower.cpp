#include "prophet/lower/lower.hpp"

#include <chrono>
#include <set>
#include <utility>

#include "prophet/expr/eval.hpp"
#include "prophet/expr/parser.hpp"
#include "prophet/uml/sysparams.hpp"

namespace prophet::lower {
namespace {

using uml::Model;
using uml::Node;
using uml::NodeKind;

/// One `name = expression;` assignment of an associated code fragment
/// (parse-time form; lowered to a CompiledAssignment).
struct Assignment {
  std::string target;
  expr::ExprPtr value;
};

/// The tag-name -> TagKind dispatch table.  Adding an expression tag is
/// one row here (plus its TagKind value) — both backends pick it up
/// through the shared NodePrograms array, no per-backend edits.
struct TagRow {
  std::string_view name;
  TagKind kind;
};

constexpr TagRow kTagTable[] = {
    {uml::tag::kCost, TagKind::Cost},
    {uml::tag::kDest, TagKind::Dest},
    {uml::tag::kSource, TagKind::Source},
    {uml::tag::kSize, TagKind::Size},
    {uml::tag::kRoot, TagKind::Root},
    {uml::tag::kIterations, TagKind::Iterations},
    {uml::tag::kIterCost, TagKind::IterCost},
    {uml::tag::kNumThreads, TagKind::NumThreads},
};
static_assert(std::size(kTagTable) == kTagKindCount,
              "every TagKind needs exactly one table row");

/// Splits a code fragment into `name = expr` assignments.
std::vector<Assignment> parse_code_fragment(const std::string& text,
                                            const std::string& where) {
  std::vector<Assignment> assignments;
  std::size_t start = 0;
  while (start < text.size()) {
    auto end = text.find(';', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    std::string statement = text.substr(start, end - start);
    start = end + 1;
    // Trim whitespace.
    const auto first = statement.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) {
      continue;
    }
    const auto last = statement.find_last_not_of(" \t\r\n");
    statement = statement.substr(first, last - first + 1);
    const auto equals = statement.find('=');
    // Reject '==' and missing '='.
    if (equals == std::string::npos || equals + 1 >= statement.size() ||
        statement[equals + 1] == '=') {
      throw LowerError("code fragment at " + where + ": statement '" +
                       statement + "' is not an assignment");
    }
    std::string target = statement.substr(0, equals);
    const auto target_end = target.find_last_not_of(" \t\r\n");
    target = target.substr(0, target_end + 1);
    try {
      assignments.push_back(
          {target, expr::parse(statement.substr(equals + 1))});
    } catch (const expr::SyntaxError& error) {
      throw LowerError("code fragment at " + where + ": " + error.what());
    }
  }
  return assignments;
}

/// The loop-variable name bound by a <<loop+>> node ("i" by default).
std::string loop_var_name(const Node& node) {
  std::string var = node.tag_string(uml::tag::kLoopVar);
  if (var.empty()) {
    var = "i";
  }
  return var;
}

expr::ExprPtr parse_checked(const std::string& text,
                            const std::string& where) {
  try {
    return expr::parse(text);
  } catch (const expr::SyntaxError& error) {
    throw LowerError(where + ": " + error.what());
  }
}

}  // namespace

std::optional<TagKind> tag_kind(std::string_view name) {
  for (const auto& row : kTagTable) {
    if (row.name == name) {
      return row.kind;
    }
  }
  return std::nullopt;  // no evaluation site reads other expression tags
}

std::string_view tag_name(TagKind kind) {
  for (const auto& row : kTagTable) {
    if (row.kind == kind) {
      return row.name;
    }
  }
  return {};  // unreachable: the static_assert pins full coverage
}

ModelProgram::ModelProgram(const uml::Model& model) : model_(&model) {
  const Model& m = model;

  // Times one expr::compile call and folds it into the stats.
  const auto compile_timed = [this](const expr::Expr& ast,
                                    const expr::SymbolTable& table) {
    const auto start = std::chrono::steady_clock::now();
    expr::Compiled program = expr::compile(ast, table);
    stats_.expr_compile_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    ++stats_.expr_programs;
    stats_.bytecode_bytes += program.size() * sizeof(expr::Instr);
    return program;
  };

  // ---- Phase 1: parse (error order matches the historical builds).
  struct ParsedVariable {
    const uml::Variable* decl = nullptr;
    expr::ExprPtr initializer;
  };
  std::vector<ParsedVariable> parsed_variables;
  for (const auto& variable : m.variables()) {
    ParsedVariable parsed;
    parsed.decl = &variable;
    if (!variable.initializer.empty()) {
      parsed.initializer = parse_checked(
          variable.initializer, "initializer of variable " + variable.name);
    }
    parsed_variables.push_back(std::move(parsed));
  }
  struct ParsedFunction {
    const uml::CostFunction* decl = nullptr;
    expr::ExprPtr body;
  };
  std::vector<ParsedFunction> parsed_functions;
  for (const auto& fn : m.cost_functions()) {
    parsed_functions.push_back(
        {&fn, parse_checked(fn.body, "cost function " + fn.name)});
  }
  // uid assignment: explicit `id` tags win; the rest get sequential
  // numbers skipping claimed values.
  std::set<int> claimed;
  for (const auto& diagram : m.diagrams()) {
    for (const auto& node : diagram->nodes()) {
      if (auto id = node->tag(uml::tag::kId)) {
        if (const auto* value = std::get_if<std::int64_t>(&*id)) {
          uids_[node->id()] = static_cast<int>(*value);
          claimed.insert(static_cast<int>(*value));
        }
      }
    }
  }
  int next = 1;
  std::map<const uml::ControlFlow*, expr::ExprPtr> parsed_guards;
  for (const auto& diagram : m.diagrams()) {
    for (const auto& node : diagram->nodes()) {
      if (uids_.find(node->id()) == uids_.end()) {
        while (claimed.find(next) != claimed.end()) {
          ++next;
        }
        uids_[node->id()] = next;
        claimed.insert(next);
      }
    }
    for (const auto& edge : diagram->edges()) {
      if (edge->has_guard() && !edge->is_else()) {
        parsed_guards.emplace(edge.get(),
                              parse_checked(edge->guard(),
                                            "guard of edge " + edge->id()));
      }
    }
  }
  struct ParsedTag {
    TagKind kind = TagKind::Cost;
    expr::ExprPtr value;
  };
  std::map<const Node*, std::vector<ParsedTag>> parsed_tags;
  std::map<const Node*, std::vector<Assignment>> parsed_fragments;
  for (const auto& diagram : m.diagrams()) {
    for (const auto& node : diagram->nodes()) {
      for (const auto name : uml::expression_tags(node->stereotype())) {
        if (!node->has_tag(name)) {
          continue;
        }
        const std::string text = node->tag_string(name);
        if (text.empty()) {
          continue;
        }
        expr::ExprPtr parsed =
            parse_checked(text, "tag '" + std::string(name) + "' of node " +
                                    node->id());
        if (const auto kind = tag_kind(name)) {
          parsed_tags[node.get()].push_back({*kind, std::move(parsed)});
        }
      }
      if (node->has_tag(uml::tag::kCode)) {
        const std::string code = node->tag_string(uml::tag::kCode);
        if (!code.empty()) {
          parsed_fragments.emplace(
              node.get(), parse_code_fragment(code, "node " + node->id()));
        }
      }
      // Composite nodes must reference existing diagrams.
      if ((node->kind() == NodeKind::Activity ||
           node->kind() == NodeKind::Loop) &&
          m.diagram(node->subdiagram_id()) == nullptr) {
        throw LowerError("node " + node->id() +
                         " references unknown diagram '" +
                         node->subdiagram_id() + "'");
      }
    }
  }
  if (m.main_diagram() == nullptr) {
    throw LowerError("model has no resolvable main diagram");
  }

  // ---- Phase 2: build the slot space.  Every name that any dynamic
  // scope could bind gets exactly one slot; resolution precedence is
  // realized by which storage a frame entry points at.
  expr::SymbolTable base;
  slot_np_ = base.add_variable(std::string(uml::sysparam::kProcesses));
  slot_nt_ = base.add_variable(std::string(uml::sysparam::kThreads));
  slot_nn_ = base.add_variable(std::string(uml::sysparam::kNodes));
  slot_ppn_ =
      base.add_variable(std::string(uml::sysparam::kProcessorsPerNode));
  for (const auto& variable : m.variables()) {
    base.add_variable(variable.name);
  }
  for (const auto& diagram : m.diagrams()) {
    for (const auto& node : diagram->nodes()) {
      if (node->kind() == NodeKind::Loop) {
        base.add_variable(loop_var_name(*node));
      }
    }
  }
  for (const auto& fn : m.cost_functions()) {
    function_ids_[fn.name] = base.add_function(fn.name);
  }
  nslots_ = base.slot_count();

  node_table_ = base;
  node_table_.bind_ambient(std::string(uml::sysparam::kProcessId),
                           expr::Ambient::Pid);
  node_table_.bind_ambient(std::string(uml::sysparam::kThreadId),
                           expr::Ambient::Tid);
  node_table_.bind_ambient(std::string(uml::sysparam::kElementUid),
                           expr::Ambient::Uid);

  // ---- Phase 3: lower everything to bytecode.
  for (auto& parsed : parsed_variables) {
    CompiledVariable compiled;
    compiled.name = parsed.decl->name;
    compiled.slot = *base.slot_of(parsed.decl->name);
    compiled.scope = parsed.decl->scope;
    compiled.type = parsed.decl->type;
    if (parsed.initializer != nullptr) {
      compiled.initializer = compile_timed(*parsed.initializer, node_table_);
    }
    variables_.push_back(std::move(compiled));
  }
  functions_.reserve(parsed_functions.size());
  for (auto& parsed : parsed_functions) {
    // Function bodies see their parameters, globals and the structural
    // system parameters — never pid/tid/uid or locals, mirroring the
    // file-scope C++ functions of Fig. 8a.
    expr::SymbolTable fn_table = base;
    for (const auto& parameter : parsed.decl->parameters) {
      fn_table.add_parameter(parameter);
    }
    functions_.push_back(compile_timed(*parsed.body, fn_table));
  }
  for (auto& [edge, guard] : parsed_guards) {
    guards_.emplace(edge, compile_timed(*guard, node_table_));
  }
  for (const auto& diagram : m.diagrams()) {
    for (const auto& node : diagram->nodes()) {
      NodePrograms programs;
      programs.uid = uids_.at(node->id());
      if (node->kind() == NodeKind::Loop) {
        programs.loop_var_slot = *base.slot_of(loop_var_name(*node));
      }
      if (const auto tags = parsed_tags.find(node.get());
          tags != parsed_tags.end()) {
        for (auto& [kind, value] : tags->second) {
          programs.tags[static_cast<std::size_t>(kind)] =
              compile_timed(*value, node_table_);
        }
      }
      if (const auto fragment = parsed_fragments.find(node.get());
          fragment != parsed_fragments.end()) {
        for (auto& assignment : fragment->second) {
          CompiledAssignment compiled;
          compiled.name = assignment.target;
          compiled.value = compile_timed(*assignment.value, node_table_);
          // Static write-target resolution: the tree walker consulted
          // the per-process locals map first, then the globals map —
          // both hold exactly the declared variables of that scope.
          bool local = false;
          bool global = false;
          for (const auto& variable : m.variables()) {
            if (variable.name != assignment.target) {
              continue;
            }
            local = local || variable.scope == uml::VariableScope::Local;
            global = global || variable.scope == uml::VariableScope::Global;
          }
          if (local || global) {
            compiled.target = local ? CompiledAssignment::Target::Local
                                    : CompiledAssignment::Target::Global;
            compiled.slot = *base.slot_of(assignment.target);
          }
          if (const uml::Variable* declared =
                  m.variable(assignment.target)) {
            compiled.coerce_int =
                declared->type == uml::VariableType::Integer;
          }
          ++stats_.fragment_assignments;
          programs.fragment.push_back(std::move(compiled));
        }
      }
      nodes_.emplace(node.get(), std::move(programs));
    }
  }

  stats_.nodes = nodes_.size();
  stats_.slots = nslots_;
  stats_.guards = guards_.size();
  stats_.functions = functions_.size();
  stats_.variables = variables_.size();
}

std::optional<int> ModelProgram::function_id(std::string_view name) const {
  const auto it = function_ids_.find(name);
  if (it == function_ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const expr::Compiled* ModelProgram::guard(
    const uml::ControlFlow& edge) const {
  const auto it = guards_.find(&edge);
  return it == guards_.end() ? nullptr : &it->second;
}

int ModelProgram::uid_of(const std::string& node_id) const {
  const auto it = uids_.find(node_id);
  if (it == uids_.end()) {
    throw LowerError("unknown node id '" + node_id + "'");
  }
  return it->second;
}

ModelProgramPtr lower(const uml::Model& model) {
  return std::make_shared<const ModelProgram>(model);
}

ModelProgramPtr lower(uml::Model&& model) {
  // Lower first (borrowing), then move the model in.  The lowered state
  // keys nodes and edges by pointer; both are heap-allocated and owned
  // through the model's diagram list, so they are stable across the
  // move, and re-pointing the model itself after the move is safe.
  auto program = std::make_shared<ModelProgram>(model);
  program->owned_.emplace(std::move(model));
  program->model_ = &*program->owned_;
  return program;
}

}  // namespace prophet::lower
