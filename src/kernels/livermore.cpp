#include "prophet/kernels/livermore.hpp"

#include <chrono>
#include <vector>

namespace prophet::kernels {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

KernelResult kernel1(std::size_t n, int repetitions) {
  std::vector<double> x(n, 0.0);
  std::vector<double> y(n, 0.5);
  std::vector<double> z(n + 11, 0.25);
  const double q = 0.05;
  const double r = 0.02;
  const double t = 0.01;
  const auto start = Clock::now();
  for (int rep = 0; rep < repetitions; ++rep) {
    for (std::size_t k = 0; k < n; ++k) {
      x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
    }
  }
  KernelResult result;
  result.seconds = seconds_since(start);
  for (const double value : x) {
    result.checksum += value;
  }
  result.operations =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(repetitions);
  return result;
}

KernelResult kernel2(std::size_t n, int repetitions) {
  // ICCG excerpt: the classic kernel halves the active vector each pass.
  std::vector<double> x(2 * n, 0.01);
  std::vector<double> v(2 * n, 0.002);
  std::uint64_t operations = 0;
  const auto start = Clock::now();
  for (int rep = 0; rep < repetitions; ++rep) {
    std::size_t ipntp = 0;
    std::size_t ii = n;
    while (ii > 1) {
      const std::size_t ipnt = ipntp;
      ipntp += ii;
      ii /= 2;
      std::size_t i = ipntp;
      for (std::size_t k = ipnt + 1; k < ipntp; k += 2) {
        ++i;
        if (i < x.size() && k + 1 < x.size()) {
          x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
          ++operations;
        }
      }
    }
  }
  KernelResult result;
  result.seconds = seconds_since(start);
  for (const double value : x) {
    result.checksum += value;
  }
  result.operations = operations;
  return result;
}

KernelResult kernel3(std::size_t n, int repetitions) {
  std::vector<double> x(n, 0.5);
  std::vector<double> z(n, 0.25);
  double q = 0;
  const auto start = Clock::now();
  for (int rep = 0; rep < repetitions; ++rep) {
    for (std::size_t k = 0; k < n; ++k) {
      q += z[k] * x[k];
    }
  }
  KernelResult result;
  result.seconds = seconds_since(start);
  result.checksum = q;
  result.operations =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(repetitions);
  return result;
}

KernelResult kernel6(std::size_t n, std::size_t m) {
  // Row-major B, initialized small so W stays finite.
  std::vector<double> w(n, 0.0);
  std::vector<double> b(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1e-4 * static_cast<double>(i + 1);
    for (std::size_t k = 0; k < n; ++k) {
      b[i * n + k] = 1e-6 * static_cast<double>((i + k) % 7 + 1);
    }
  }
  const auto start = Clock::now();
  for (std::size_t l = 0; l < m; ++l) {
    for (std::size_t i = 1; i < n; ++i) {
      double acc = w[i];
      const double* row = &b[i * n];
      for (std::size_t k = 0; k < i; ++k) {
        acc += row[k] * w[i - k - 1];
      }
      w[i] = acc;
    }
  }
  KernelResult result;
  result.seconds = seconds_since(start);
  for (const double value : w) {
    result.checksum += value;
  }
  result.operations = kernel6_operations(n, m);
  return result;
}

std::uint64_t kernel6_operations(std::size_t n, std::size_t m) {
  return static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
         static_cast<std::uint64_t>(n - 1) / 2;
}

double calibrate_kernel6_op_time(std::size_t n, std::size_t m) {
  // Warm up once, then measure.
  (void)kernel6(n, m);
  const KernelResult result = kernel6(n, m);
  if (result.operations == 0) {
    return 0;
  }
  return result.seconds / static_cast<double>(result.operations);
}

}  // namespace prophet::kernels
