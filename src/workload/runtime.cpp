#include "prophet/workload/runtime.hpp"

#include <cmath>
#include <stdexcept>

namespace prophet::workload {

using machine::tree_rounds;

Communicator::Communicator(sim::Engine& engine,
                           machine::MachineModel& machine)
    : engine_(&engine),
      machine_(&machine),
      barrier_(engine, machine.params().processes) {}

sim::Mailbox& Communicator::mailbox(int dst, int src, int tag) {
  const auto key = std::make_tuple(dst, src, tag);
  auto it = mailboxes_.find(key);
  if (it == mailboxes_.end()) {
    auto name = "mb." + std::to_string(dst) + "." + std::to_string(src) +
                "." + std::to_string(tag);
    it = mailboxes_
             .emplace(key,
                      std::make_unique<sim::Mailbox>(*engine_, std::move(name)))
             .first;
  }
  return *it->second;
}

sim::Facility& Communicator::critical_section(const std::string& name) {
  auto it = criticals_.find(name);
  if (it == criticals_.end()) {
    it = criticals_
             .emplace(name, std::make_unique<sim::Facility>(
                                *engine_, "critical." + name, 1))
             .first;
  }
  return *it->second;
}

// --- ActionPlus ---------------------------------------------------------------

ActionPlus::ActionPlus(ModelContext& ctx, std::string name)
    : ctx_(&ctx), name_(std::move(name)) {}

sim::Process ActionPlus::execute(int uid, int pid, int tid, double cost) {
  if (cost < 0 || std::isnan(cost)) {
    throw std::invalid_argument("ActionPlus '" + name_ +
                                "': negative or NaN cost");
  }
  sim::Engine& engine = *ctx_->engine;
  const double start = engine.now();
  sim::Facility& processor = ctx_->machine->processor_of(pid);
  co_await processor.acquire();
  co_await engine.hold(ctx_->machine->compute_time(cost));
  processor.release();
  const double end = engine.now();
  ++executions_;
  total_time_ += end - start;
  ctx_->record(start, end, pid, tid, uid, name_, trace::EventKind::Compute);
}

// --- ActivityPlus -------------------------------------------------------------

ActivityPlus::ActivityPlus(ModelContext& ctx, std::string name)
    : ctx_(&ctx), name_(std::move(name)) {}

double ActivityPlus::begin(int uid) {
  (void)uid;
  return ctx_->engine->now();
}

void ActivityPlus::end(int uid, double started) {
  ctx_->record(started, ctx_->engine->now(), ctx_->pid, ctx_->tid, uid,
               name_, trace::EventKind::Region);
}

// --- Message passing ------------------------------------------------------------

SendElement::SendElement(ModelContext& ctx, std::string name)
    : ctx_(&ctx), name_(std::move(name)) {}

sim::Process SendElement::execute(int uid, int pid, int tid, int dest,
                                  double bytes, int tag) {
  sim::Engine& engine = *ctx_->engine;
  const double start = engine.now();
  if (ctx_->counters != nullptr) {
    ++ctx_->counters->messages;
  }
  // Sender-side CPU overhead (the `o` of LogGP).
  co_await engine.hold(ctx_->machine->send_overhead());
  sim::Message message;
  message.source = pid;
  message.tag = tag;
  message.size = bytes;
  ctx_->comm->mailbox(dest, pid, tag).send(message);
  ctx_->record(start, engine.now(), pid, tid, uid, name_, trace::EventKind::Send);
}

RecvElement::RecvElement(ModelContext& ctx, std::string name)
    : ctx_(&ctx), name_(std::move(name)) {}

sim::Process RecvElement::execute(int uid, int pid, int tid, int source,
                                  double bytes, int tag) {
  sim::Engine& engine = *ctx_->engine;
  const double start = engine.now();
  const sim::Message message =
      co_await ctx_->comm->mailbox(pid, source, tag).receive();
  // The message was injected at `sent_at` and needs `message_time` on the
  // wire; wait out whatever remains.
  const double transfer =
      ctx_->machine->message_time(source, pid, message.size);
  const double arrival = message.sent_at + transfer;
  if (arrival > engine.now()) {
    co_await engine.hold(arrival - engine.now());
  }
  ctx_->record(start, engine.now(), pid, tid, uid, name_, trace::EventKind::Receive);
  (void)bytes;
}

BarrierElement::BarrierElement(ModelContext& ctx, std::string name)
    : ctx_(&ctx), name_(std::move(name)) {}

sim::Process BarrierElement::execute(int uid, int pid, int tid) {
  sim::Engine& engine = *ctx_->engine;
  const double start = engine.now();
  if (ctx_->counters != nullptr) {
    ++ctx_->counters->barriers;
  }
  co_await ctx_->comm->process_barrier().arrive();
  const double rounds = tree_rounds(ctx_->np());
  co_await engine.hold(rounds * ctx_->machine->params().barrier_latency);
  ctx_->record(start, engine.now(), pid, tid, uid, name_, trace::EventKind::Barrier);
}

std::string_view to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::Broadcast:
      return "broadcast";
    case CollectiveKind::Reduce:
      return "reduce";
    case CollectiveKind::AllReduce:
      return "allreduce";
    case CollectiveKind::Scatter:
      return "scatter";
    case CollectiveKind::Gather:
      return "gather";
  }
  return "unknown";
}

CollectiveElement::CollectiveElement(ModelContext& ctx, std::string name,
                                     CollectiveKind kind)
    : ctx_(&ctx), name_(std::move(name)), kind_(kind) {}

double CollectiveElement::model_time(const machine::SystemParameters& params,
                                     CollectiveKind kind, int n,
                                     double bytes) {
  if (n <= 1) {
    return 0;
  }
  const double round = machine::collective_round_time(params, bytes);
  switch (kind) {
    case CollectiveKind::Broadcast:
    case CollectiveKind::Reduce:
      return tree_rounds(n) * round;
    case CollectiveKind::AllReduce:
      return 2.0 * tree_rounds(n) * round;
    case CollectiveKind::Scatter:
    case CollectiveKind::Gather:
      // Root sends/receives n-1 messages of bytes/n each, sequentially.
      return static_cast<double>(n - 1) *
             machine::collective_round_time(params,
                                            bytes / static_cast<double>(n));
  }
  return 0;
}

double CollectiveElement::model_time(const machine::MachineModel& machine,
                                     CollectiveKind kind, int n,
                                     double bytes) {
  return model_time(machine.params(), kind, n, bytes);
}

sim::Process CollectiveElement::execute(int uid, int pid, int tid,
                                        double bytes, int root) {
  sim::Engine& engine = *ctx_->engine;
  const double start = engine.now();
  if (ctx_->counters != nullptr) {
    ++ctx_->counters->messages;
  }
  co_await ctx_->comm->process_barrier().arrive();
  co_await engine.hold(
      model_time(*ctx_->machine, kind_, ctx_->np(), bytes));
  ctx_->record(start, engine.now(), pid, tid, uid, name_,
               trace::EventKind::Collective);
  (void)root;
}

// --- Shared memory ---------------------------------------------------------------

sim::Process parallel_region(ModelContext ctx, int num_threads, int uid,
                             std::string name,
                             std::function<sim::Process(ModelContext)> body) {
  if (num_threads < 1) {
    throw std::invalid_argument("parallel region '" + name +
                                "': num_threads must be >= 1");
  }
  sim::Engine& engine = *ctx.engine;
  const double start = engine.now();
  RegionState region;
  region.num_threads = num_threads;
  region.barrier = std::make_unique<BarrierGate>(engine, num_threads);
  std::vector<sim::ProcessRef> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int tid = 0; tid < num_threads; ++tid) {
    ModelContext thread_ctx = ctx;
    thread_ctx.tid = tid;
    thread_ctx.region = &region;
    threads.push_back(engine.spawn(body(thread_ctx)));
  }
  for (const auto& thread : threads) {
    co_await thread;  // implicit barrier at region end
  }
  ctx.record(start, engine.now(), ctx.pid, ctx.tid, uid, name, trace::EventKind::Region);
}

WorkshareElement::WorkshareElement(ModelContext& ctx, std::string name)
    : ctx_(&ctx), name_(std::move(name)) {}

std::int64_t WorkshareElement::static_share(std::int64_t iterations,
                                            int threads, int tid) {
  // Balanced blocks: the first (iterations % threads) threads get one
  // extra iteration.
  const std::int64_t base = iterations / threads;
  const std::int64_t extra = iterations % threads;
  return base + (tid < extra ? 1 : 0);
}

double WorkshareElement::model_compute(double iterations, double itercost,
                                       const std::string& schedule,
                                       std::int64_t chunk, int threads,
                                       int tid) {
  const auto total = static_cast<std::int64_t>(iterations);
  if (schedule == "dynamic") {
    // Dynamic scheduling balances perfectly but pays a dispatch overhead
    // per chunk; model the per-thread share as total/threads plus the
    // thread's share of chunk dispatch costs.
    const std::int64_t chunk_size = chunk > 0 ? chunk : 1;
    const double chunks =
        std::ceil(static_cast<double>(total) /
                  static_cast<double>(chunk_size)) /
        static_cast<double>(threads);
    constexpr double kDispatchOverhead = 1e-7;
    return static_cast<double>(total) / threads * itercost +
           chunks * kDispatchOverhead;
  }
  return static_cast<double>(static_share(total, threads, tid)) * itercost;
}

sim::Process WorkshareElement::execute(int uid, int pid, int tid,
                                       double iterations, double itercost,
                                       const std::string& schedule,
                                       std::int64_t chunk) {
  sim::Engine& engine = *ctx_->engine;
  const double start = engine.now();
  const int threads =
      ctx_->region != nullptr ? ctx_->region->num_threads : 1;
  const double compute =
      model_compute(iterations, itercost, schedule, chunk, threads, tid);
  sim::Facility& processor = ctx_->machine->processor_of(pid);
  co_await processor.acquire();
  co_await engine.hold(ctx_->machine->compute_time(compute));
  processor.release();
  // Implicit barrier at the end of a worksharing construct.
  if (ctx_->region != nullptr) {
    co_await ctx_->region->barrier->arrive();
  }
  ctx_->record(start, engine.now(), pid, tid, uid, name_, trace::EventKind::Compute);
}

CriticalElement::CriticalElement(ModelContext& ctx, std::string name,
                                 std::string critical_name)
    : ctx_(&ctx),
      name_(std::move(name)),
      critical_name_(std::move(critical_name)) {}

sim::Process CriticalElement::execute(int uid, int pid, int tid,
                                      std::function<sim::Process()> body) {
  sim::Engine& engine = *ctx_->engine;
  const double start = engine.now();
  sim::Facility& lock = ctx_->comm->critical_section(critical_name_);
  co_await lock.acquire();
  co_await body();
  lock.release();
  ctx_->record(start, engine.now(), pid, tid, uid, name_, trace::EventKind::Region);
}

OmpBarrierElement::OmpBarrierElement(ModelContext& ctx, std::string name)
    : ctx_(&ctx), name_(std::move(name)) {}

sim::Process OmpBarrierElement::execute(int uid, int pid, int tid) {
  sim::Engine& engine = *ctx_->engine;
  const double start = engine.now();
  if (ctx_->counters != nullptr) {
    ++ctx_->counters->barriers;
  }
  if (ctx_->region != nullptr) {
    co_await ctx_->region->barrier->arrive();
  }
  ctx_->record(start, engine.now(), pid, tid, uid, name_, trace::EventKind::Barrier);
}

// --- fork/join ---------------------------------------------------------------------

sim::Process fork_join(ModelContext ctx,
                       std::vector<std::function<sim::Process()>> branches) {
  sim::Engine& engine = *ctx.engine;
  std::vector<sim::ProcessRef> refs;
  refs.reserve(branches.size());
  for (auto& branch : branches) {
    refs.push_back(engine.spawn(branch()));
  }
  for (const auto& ref : refs) {
    co_await ref;
  }
}

}  // namespace prophet::workload
