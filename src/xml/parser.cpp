#include "prophet/xml/parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace prophet::xml {
namespace {

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// Cursor over the input with line/column tracking.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  [[nodiscard]] bool starts_with(std::string_view prefix) const {
    return text_.substr(pos_, prefix.size()) == prefix;
  }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  /// Everything not yet consumed.  Views returned from here stay valid
  /// for the parse (the cursor never mutates the input), which is what
  /// lets the parser hand out names/values without copying them first.
  [[nodiscard]] std::string_view rest() const { return text_.substr(pos_); }

  void skip(std::size_t n) {
    advance_by(std::min(n, text_.size() - pos_));
  }

  /// Advances over the next `n` characters (which must exist) in one
  /// step, updating line/column by scanning the run for newlines instead
  /// of dispatching per character.
  void advance_by(std::size_t n) {
    const std::string_view run = text_.substr(pos_, n);
    std::size_t newlines = 0;
    std::size_t last_newline = 0;
    for (std::size_t at = run.find('\n'); at != std::string_view::npos;
         at = run.find('\n', at + 1)) {
      ++newlines;
      last_newline = at;
    }
    if (newlines > 0) {
      line_ += newlines;
      column_ = run.size() - last_newline;
    } else {
      column_ += run.size();
    }
    pos_ += run.size();
  }

  void skip_space() {
    while (!at_end() && is_space(peek())) {
      advance();
    }
  }

  /// Consumes up to (and including) `terminator`; returns the consumed
  /// prefix excluding the terminator, as a view over the input.  Throws
  /// when the terminator is absent.
  std::string_view consume_until(std::string_view terminator,
                                 std::string_view what) {
    const std::size_t at = text_.find(terminator, pos_);
    if (at == std::string_view::npos) {
      advance_by(text_.size() - pos_);
      fail(std::string("unterminated ") + std::string(what));
    }
    const std::string_view out = text_.substr(pos_, at - pos_);
    advance_by(out.size() + terminator.size());
    return out;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, line_, column_);
  }

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : cursor_(text) {}

  Document parse_document() {
    Document doc;
    parse_prolog(doc);
    skip_misc();
    if (cursor_.at_end() || cursor_.peek() != '<') {
      cursor_.fail("expected root element");
    }
    doc.set_root(parse_element());
    skip_misc();
    if (!cursor_.at_end()) {
      cursor_.fail("content after root element");
    }
    return doc;
  }

 private:
  void parse_prolog(Document& doc) {
    cursor_.skip_space();
    if (!cursor_.starts_with("<?xml")) {
      return;
    }
    cursor_.skip(5);
    const std::string_view decl =
        cursor_.consume_until("?>", "XML declaration");
    // Extract version/encoding pseudo-attributes, tolerantly.
    auto extract = [&decl](std::string_view key) -> std::string {
      const auto pos = decl.find(key);
      if (pos == std::string_view::npos) {
        return {};
      }
      auto quote = decl.find_first_of("\"'", pos);
      if (quote == std::string_view::npos) {
        return {};
      }
      const char q = decl[quote];
      const auto end = decl.find(q, quote + 1);
      if (end == std::string_view::npos) {
        return {};
      }
      return std::string(decl.substr(quote + 1, end - quote - 1));
    };
    if (auto v = extract("version"); !v.empty()) {
      doc.set_version(v);
    }
    if (auto e = extract("encoding"); !e.empty()) {
      doc.set_encoding(e);
    }
  }

  /// Skips whitespace, comments and processing instructions between
  /// top-level constructs.
  void skip_misc() {
    for (;;) {
      cursor_.skip_space();
      if (cursor_.starts_with("<!--")) {
        cursor_.skip(4);
        cursor_.consume_until("-->", "comment");
      } else if (cursor_.starts_with("<?")) {
        cursor_.skip(2);
        cursor_.consume_until("?>", "processing instruction");
      } else if (cursor_.starts_with("<!DOCTYPE")) {
        cursor_.fail("DOCTYPE declarations are not supported");
      } else {
        return;
      }
    }
  }

  /// Zero-copy: the returned view aliases the input text.
  std::string_view parse_name() {
    const std::string_view rest = cursor_.rest();
    if (rest.empty() || !is_name_start(rest.front())) {
      cursor_.fail("expected name");
    }
    std::size_t length = 1;
    while (length < rest.size() && is_name_char(rest[length])) {
      ++length;
    }
    cursor_.advance_by(length);
    return rest.substr(0, length);
  }

  std::string parse_attribute_value() {
    if (cursor_.at_end() ||
        (cursor_.peek() != '"' && cursor_.peek() != '\'')) {
      cursor_.fail("expected quoted attribute value");
    }
    const char quote = cursor_.advance();
    // The raw value is a contiguous run of the input ending at the
    // closing quote; find it in one scan instead of copying per char.
    const std::string_view rest = cursor_.rest();
    const std::size_t close = rest.find(quote);
    if (close == std::string_view::npos) {
      cursor_.advance_by(rest.size());
      cursor_.fail("unterminated attribute value");
    }
    const std::string_view raw = rest.substr(0, close);
    if (const std::size_t lt = raw.find('<'); lt != std::string_view::npos) {
      cursor_.advance_by(lt);
      cursor_.fail("'<' in attribute value");
    }
    cursor_.advance_by(close + 1);  // value + closing quote
    return decode_entities(raw);
  }

  std::string decode_entities(std::string_view raw) {
    // Fast path: values and text runs almost never contain entity
    // references — one scan, one copy, no per-character dispatch.
    if (raw.find('&') == std::string_view::npos) {
      return std::string(raw);
    }
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const auto semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        cursor_.fail("unterminated entity reference");
      }
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out += '&';
      } else if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else if (!entity.empty() && entity[0] == '#') {
        out += decode_char_reference(entity.substr(1));
      } else {
        cursor_.fail("unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi;
    }
    return out;
  }

  std::string decode_char_reference(std::string_view digits) {
    int base = 10;
    if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
      base = 16;
      digits.remove_prefix(1);
    }
    if (digits.empty()) {
      cursor_.fail("empty character reference");
    }
    unsigned long code = 0;
    for (char c : digits) {
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (base == 16 && c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (base == 16 && c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        cursor_.fail("malformed character reference");
      }
      code = code * static_cast<unsigned long>(base) +
             static_cast<unsigned long>(digit);
      if (code > 0x10FFFF) {
        cursor_.fail("character reference out of range");
      }
    }
    // Encode as UTF-8.
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  std::unique_ptr<Element> parse_element() {
    // Caller guarantees cursor is at '<'.
    // Element nesting recurses through parse_content(); a hostile
    // document of the form "<a><a><a>..." would otherwise turn parser
    // recursion into stack exhaustion (a crash, not an error).  No sane
    // model comes near the bound.
    if (++depth_ > kMaxDepth) {
      cursor_.fail("element nesting deeper than " +
                   std::to_string(kMaxDepth) + " levels");
    }
    cursor_.advance();  // '<'
    auto element = std::make_unique<Element>(parse_name());
    // Attributes.
    for (;;) {
      cursor_.skip_space();
      if (cursor_.at_end()) {
        cursor_.fail("unterminated start tag for <" + element->name() + ">");
      }
      if (cursor_.peek() == '>' || cursor_.starts_with("/>")) {
        break;
      }
      const std::string_view attr_name = parse_name();
      cursor_.skip_space();
      if (cursor_.at_end() || cursor_.peek() != '=') {
        cursor_.fail("expected '=' after attribute name '" +
                     std::string(attr_name) + "'");
      }
      cursor_.advance();
      cursor_.skip_space();
      if (element->has_attr(attr_name)) {
        cursor_.fail("duplicate attribute '" + std::string(attr_name) + "'");
      }
      element->set_attr(attr_name, parse_attribute_value());
    }
    if (cursor_.starts_with("/>")) {
      cursor_.skip(2);
      --depth_;
      return element;
    }
    cursor_.advance();  // '>'
    parse_content(*element);
    --depth_;
    return element;
  }

  void parse_content(Element& element) {
    std::string pending_text;
    auto flush_text = [&]() {
      if (pending_text.empty()) {
        return;
      }
      // Whitespace-only runs between elements are formatting noise from
      // pretty-printing; keep only runs with substance.
      const bool all_space =
          std::all_of(pending_text.begin(), pending_text.end(),
                      [](char c) { return is_space(c); });
      if (!all_space) {
        element.add_text(decode_entities(pending_text));
      }
      pending_text.clear();
    };

    for (;;) {
      if (cursor_.at_end()) {
        cursor_.fail("unterminated element <" + element.name() + ">");
      }
      if (cursor_.starts_with("</")) {
        flush_text();
        cursor_.skip(2);
        const std::string_view closing = parse_name();
        if (closing != element.name()) {
          cursor_.fail("mismatched end tag </" + std::string(closing) +
                       ">, expected </" + element.name() + ">");
        }
        cursor_.skip_space();
        if (cursor_.at_end() || cursor_.peek() != '>') {
          cursor_.fail("malformed end tag");
        }
        cursor_.advance();
        return;
      }
      if (cursor_.starts_with("<!--")) {
        flush_text();
        cursor_.skip(4);
        element.add_comment(
            std::string(cursor_.consume_until("-->", "comment")));
        continue;
      }
      if (cursor_.starts_with("<![CDATA[")) {
        flush_text();
        cursor_.skip(9);
        element.add_cdata(
            std::string(cursor_.consume_until("]]>", "CDATA section")));
        continue;
      }
      if (cursor_.starts_with("<?")) {
        flush_text();
        cursor_.skip(2);
        cursor_.consume_until("?>", "processing instruction");
        continue;
      }
      if (cursor_.peek() == '<') {
        flush_text();
        element.add_child(parse_element());
        continue;
      }
      // Bulk text run: everything up to the next markup (or input end —
      // the unterminated-element error fires on the next iteration).
      // peek() != '<' here, so the run is non-empty and the loop makes
      // progress.
      const std::string_view rest = cursor_.rest();
      std::size_t run = rest.find('<');
      if (run == std::string_view::npos) {
        run = rest.size();
      }
      pending_text.append(rest.substr(0, run));
      cursor_.advance_by(run);
    }
  }

  /// Maximum element nesting depth; generous for real models, small
  /// enough that recursion stays far from the thread's stack limit.
  static constexpr std::size_t kMaxDepth = 256;

  Cursor cursor_;
  std::size_t depth_ = 0;
};

}  // namespace

ParseError::ParseError(std::string message, std::size_t line,
                       std::size_t column)
    : std::runtime_error("xml parse error at " + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

Document parse(std::string_view text) {
  return Parser(text).parse_document();
}

Document parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open file: " + path);
  }
  // Read straight into the final buffer (sized up front) instead of
  // growing through a stringstream and copying out of it.
  in.seekg(0, std::ios::end);
  const std::streampos size = in.tellg();
  std::string text;
  if (size > 0) {
    text.resize(static_cast<std::size_t>(size));
    in.seekg(0, std::ios::beg);
    in.read(text.data(), size);
  }
  return parse(text);
}

}  // namespace prophet::xml
