#include "prophet/xml/parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace prophet::xml {
namespace {

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// Cursor over the input with line/column tracking.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  [[nodiscard]] bool starts_with(std::string_view prefix) const {
    return text_.substr(pos_, prefix.size()) == prefix;
  }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip(std::size_t n) {
    for (std::size_t i = 0; i < n && !at_end(); ++i) {
      advance();
    }
  }

  void skip_space() {
    while (!at_end() && is_space(peek())) {
      advance();
    }
  }

  /// Consumes up to (and including) `terminator`; returns the consumed
  /// prefix excluding the terminator. Throws when the terminator is absent.
  std::string consume_until(std::string_view terminator,
                            std::string_view what) {
    std::string out;
    while (!at_end()) {
      if (starts_with(terminator)) {
        skip(terminator.size());
        return out;
      }
      out += advance();
    }
    fail(std::string("unterminated ") + std::string(what));
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, line_, column_);
  }

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : cursor_(text) {}

  Document parse_document() {
    Document doc;
    parse_prolog(doc);
    skip_misc();
    if (cursor_.at_end() || cursor_.peek() != '<') {
      cursor_.fail("expected root element");
    }
    doc.set_root(parse_element());
    skip_misc();
    if (!cursor_.at_end()) {
      cursor_.fail("content after root element");
    }
    return doc;
  }

 private:
  void parse_prolog(Document& doc) {
    cursor_.skip_space();
    if (!cursor_.starts_with("<?xml")) {
      return;
    }
    cursor_.skip(5);
    const std::string decl = cursor_.consume_until("?>", "XML declaration");
    // Extract version/encoding pseudo-attributes, tolerantly.
    auto extract = [&decl](std::string_view key) -> std::string {
      const auto pos = decl.find(key);
      if (pos == std::string::npos) {
        return {};
      }
      auto quote = decl.find_first_of("\"'", pos);
      if (quote == std::string::npos) {
        return {};
      }
      const char q = decl[quote];
      const auto end = decl.find(q, quote + 1);
      if (end == std::string::npos) {
        return {};
      }
      return decl.substr(quote + 1, end - quote - 1);
    };
    if (auto v = extract("version"); !v.empty()) {
      doc.set_version(v);
    }
    if (auto e = extract("encoding"); !e.empty()) {
      doc.set_encoding(e);
    }
  }

  /// Skips whitespace, comments and processing instructions between
  /// top-level constructs.
  void skip_misc() {
    for (;;) {
      cursor_.skip_space();
      if (cursor_.starts_with("<!--")) {
        cursor_.skip(4);
        cursor_.consume_until("-->", "comment");
      } else if (cursor_.starts_with("<?")) {
        cursor_.skip(2);
        cursor_.consume_until("?>", "processing instruction");
      } else if (cursor_.starts_with("<!DOCTYPE")) {
        cursor_.fail("DOCTYPE declarations are not supported");
      } else {
        return;
      }
    }
  }

  std::string parse_name() {
    if (cursor_.at_end() || !is_name_start(cursor_.peek())) {
      cursor_.fail("expected name");
    }
    std::string name;
    name += cursor_.advance();
    while (!cursor_.at_end() && is_name_char(cursor_.peek())) {
      name += cursor_.advance();
    }
    return name;
  }

  std::string parse_attribute_value() {
    if (cursor_.at_end() ||
        (cursor_.peek() != '"' && cursor_.peek() != '\'')) {
      cursor_.fail("expected quoted attribute value");
    }
    const char quote = cursor_.advance();
    std::string raw;
    while (!cursor_.at_end() && cursor_.peek() != quote) {
      const char c = cursor_.peek();
      if (c == '<') {
        cursor_.fail("'<' in attribute value");
      }
      raw += cursor_.advance();
    }
    if (cursor_.at_end()) {
      cursor_.fail("unterminated attribute value");
    }
    cursor_.advance();  // closing quote
    return decode_entities(raw);
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const auto semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        cursor_.fail("unterminated entity reference");
      }
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out += '&';
      } else if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else if (!entity.empty() && entity[0] == '#') {
        out += decode_char_reference(entity.substr(1));
      } else {
        cursor_.fail("unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi;
    }
    return out;
  }

  std::string decode_char_reference(std::string_view digits) {
    int base = 10;
    if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
      base = 16;
      digits.remove_prefix(1);
    }
    if (digits.empty()) {
      cursor_.fail("empty character reference");
    }
    unsigned long code = 0;
    for (char c : digits) {
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (base == 16 && c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (base == 16 && c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        cursor_.fail("malformed character reference");
      }
      code = code * static_cast<unsigned long>(base) +
             static_cast<unsigned long>(digit);
      if (code > 0x10FFFF) {
        cursor_.fail("character reference out of range");
      }
    }
    // Encode as UTF-8.
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  std::unique_ptr<Element> parse_element() {
    // Caller guarantees cursor is at '<'.
    // Element nesting recurses through parse_content(); a hostile
    // document of the form "<a><a><a>..." would otherwise turn parser
    // recursion into stack exhaustion (a crash, not an error).  No sane
    // model comes near the bound.
    if (++depth_ > kMaxDepth) {
      cursor_.fail("element nesting deeper than " +
                   std::to_string(kMaxDepth) + " levels");
    }
    cursor_.advance();  // '<'
    auto element = std::make_unique<Element>(parse_name());
    // Attributes.
    for (;;) {
      cursor_.skip_space();
      if (cursor_.at_end()) {
        cursor_.fail("unterminated start tag for <" + element->name() + ">");
      }
      if (cursor_.peek() == '>' || cursor_.starts_with("/>")) {
        break;
      }
      const std::string attr_name = parse_name();
      cursor_.skip_space();
      if (cursor_.at_end() || cursor_.peek() != '=') {
        cursor_.fail("expected '=' after attribute name '" + attr_name + "'");
      }
      cursor_.advance();
      cursor_.skip_space();
      if (element->has_attr(attr_name)) {
        cursor_.fail("duplicate attribute '" + attr_name + "'");
      }
      element->set_attr(attr_name, parse_attribute_value());
    }
    if (cursor_.starts_with("/>")) {
      cursor_.skip(2);
      --depth_;
      return element;
    }
    cursor_.advance();  // '>'
    parse_content(*element);
    --depth_;
    return element;
  }

  void parse_content(Element& element) {
    std::string pending_text;
    auto flush_text = [&]() {
      if (pending_text.empty()) {
        return;
      }
      // Whitespace-only runs between elements are formatting noise from
      // pretty-printing; keep only runs with substance.
      const bool all_space =
          std::all_of(pending_text.begin(), pending_text.end(),
                      [](char c) { return is_space(c); });
      if (!all_space) {
        element.add_text(decode_entities(pending_text));
      }
      pending_text.clear();
    };

    for (;;) {
      if (cursor_.at_end()) {
        cursor_.fail("unterminated element <" + element.name() + ">");
      }
      if (cursor_.starts_with("</")) {
        flush_text();
        cursor_.skip(2);
        const std::string closing = parse_name();
        if (closing != element.name()) {
          cursor_.fail("mismatched end tag </" + closing + ">, expected </" +
                       element.name() + ">");
        }
        cursor_.skip_space();
        if (cursor_.at_end() || cursor_.peek() != '>') {
          cursor_.fail("malformed end tag");
        }
        cursor_.advance();
        return;
      }
      if (cursor_.starts_with("<!--")) {
        flush_text();
        cursor_.skip(4);
        element.add_comment(cursor_.consume_until("-->", "comment"));
        continue;
      }
      if (cursor_.starts_with("<![CDATA[")) {
        flush_text();
        cursor_.skip(9);
        element.add_cdata(cursor_.consume_until("]]>", "CDATA section"));
        continue;
      }
      if (cursor_.starts_with("<?")) {
        flush_text();
        cursor_.skip(2);
        cursor_.consume_until("?>", "processing instruction");
        continue;
      }
      if (cursor_.peek() == '<') {
        flush_text();
        element.add_child(parse_element());
        continue;
      }
      pending_text += cursor_.advance();
    }
  }

  /// Maximum element nesting depth; generous for real models, small
  /// enough that recursion stays far from the thread's stack limit.
  static constexpr std::size_t kMaxDepth = 256;

  Cursor cursor_;
  std::size_t depth_ = 0;
};

}  // namespace

ParseError::ParseError(std::string message, std::size_t line,
                       std::size_t column)
    : std::runtime_error("xml parse error at " + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

Document parse(std::string_view text) {
  return Parser(text).parse_document();
}

Document parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace prophet::xml
