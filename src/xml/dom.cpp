#include "prophet/xml/dom.hpp"

#include <utility>

#include <algorithm>

namespace prophet::xml {

std::string_view to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::Element:
      return "element";
    case NodeKind::Text:
      return "text";
    case NodeKind::Comment:
      return "comment";
    case NodeKind::CData:
      return "cdata";
  }
  return "unknown";
}

void Element::set_attr(std::string_view name, std::string_view value) {
  for (auto& attribute : attributes_) {
    if (attribute.name == name) {
      // assign() reuses the existing buffer when it is large enough.
      attribute.value.assign(value);
      return;
    }
  }
  if (attributes_.empty()) {
    // Real-world elements carry a handful of attributes (id, kind, name,
    // ...); one up-front reservation replaces the 1→2→4 growth series.
    attributes_.reserve(4);
  }
  attributes_.push_back({intern(name), std::string(value)});
}

std::optional<std::string_view> Element::attr(std::string_view name) const {
  for (const auto& attribute : attributes_) {
    if (attribute.name == name) {
      return std::string_view(attribute.value);
    }
  }
  return std::nullopt;
}

std::string Element::attr_or(std::string_view name,
                             std::string_view fallback) const {
  if (auto value = attr(name)) {
    return std::string(*value);
  }
  return std::string(fallback);
}

bool Element::has_attr(std::string_view name) const {
  return attr(name).has_value();
}

bool Element::remove_attr(std::string_view name) {
  auto it = std::find_if(attributes_.begin(), attributes_.end(),
                         [&](const Attribute& a) { return a.name == name; });
  if (it == attributes_.end()) {
    return false;
  }
  attributes_.erase(it);
  return true;
}

Node& Element::add_child(std::unique_ptr<Node> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

Element& Element::add_element(std::string_view name) {
  auto& node = add_child(std::make_unique<Element>(name));
  return static_cast<Element&>(node);
}

TextNode& Element::add_text(std::string text) {
  auto& node = add_child(std::make_unique<TextNode>(std::move(text)));
  return static_cast<TextNode&>(node);
}

CDataNode& Element::add_cdata(std::string text) {
  auto& node = add_child(std::make_unique<CDataNode>(std::move(text)));
  return static_cast<CDataNode&>(node);
}

CommentNode& Element::add_comment(std::string text) {
  auto& node = add_child(std::make_unique<CommentNode>(std::move(text)));
  return static_cast<CommentNode&>(node);
}

const Element* Element::child(std::string_view name) const {
  for (const auto& node : children_) {
    if (node->is_element()) {
      const auto& element = static_cast<const Element&>(*node);
      if (element.name() == name) {
        return &element;
      }
    }
  }
  return nullptr;
}

Element* Element::child(std::string_view name) {
  return const_cast<Element*>(std::as_const(*this).child(name));
}

std::vector<const Element*> Element::children_named(
    std::string_view name) const {
  std::vector<const Element*> result;
  for (const auto& node : children_) {
    if (node->is_element()) {
      const auto& element = static_cast<const Element&>(*node);
      if (element.name() == name) {
        result.push_back(&element);
      }
    }
  }
  return result;
}

std::vector<const Element*> Element::child_elements() const {
  std::vector<const Element*> result;
  for (const auto& node : children_) {
    if (node->is_element()) {
      result.push_back(static_cast<const Element*>(node.get()));
    }
  }
  return result;
}

std::string Element::text() const {
  std::string result;
  for (const auto& node : children_) {
    if (node->kind() == NodeKind::Text) {
      result += static_cast<const TextNode&>(*node).text();
    } else if (node->kind() == NodeKind::CData) {
      result += static_cast<const CDataNode&>(*node).text();
    }
  }
  return result;
}

std::size_t Element::element_count() const {
  std::size_t count = 0;
  for (const auto& node : children_) {
    if (node->is_element()) {
      ++count;
    }
  }
  return count;
}

std::size_t Element::subtree_size() const {
  std::size_t count = 1;
  for (const auto& node : children_) {
    if (node->is_element()) {
      count += static_cast<const Element&>(*node).subtree_size();
    }
  }
  return count;
}

const Element* Element::find(std::string_view path) const {
  if (path.empty()) {
    return this;
  }
  const auto slash = path.find('/');
  const std::string_view head =
      slash == std::string_view::npos ? path : path.substr(0, slash);
  const std::string_view tail =
      slash == std::string_view::npos ? std::string_view{}
                                      : path.substr(slash + 1);
  for (const auto& node : children_) {
    if (!node->is_element()) {
      continue;
    }
    const auto& element = static_cast<const Element&>(*node);
    if (element.name() != head) {
      continue;
    }
    if (const Element* found = element.find(tail)) {
      return found;
    }
  }
  return nullptr;
}

std::unique_ptr<Node> Element::clone() const {
  auto copy = std::make_unique<Element>(*name_);
  copy->attributes_ = attributes_;
  copy->children_.reserve(children_.size());
  for (const auto& node : children_) {
    copy->children_.push_back(node->clone());
  }
  return copy;
}

Document Document::with_root(std::string_view root_name) {
  return Document(std::make_unique<Element>(root_name));
}

Document Document::clone() const {
  Document copy;
  copy.version_ = version_;
  copy.encoding_ = encoding_;
  if (root_) {
    auto cloned = root_->clone();
    copy.root_.reset(static_cast<Element*>(cloned.release()));
  }
  return copy;
}

bool deep_equal(const Node& a, const Node& b) {
  if (a.kind() != b.kind()) {
    return false;
  }
  switch (a.kind()) {
    case NodeKind::Text:
      return static_cast<const TextNode&>(a).text() ==
             static_cast<const TextNode&>(b).text();
    case NodeKind::Comment:
      return static_cast<const CommentNode&>(a).text() ==
             static_cast<const CommentNode&>(b).text();
    case NodeKind::CData:
      return static_cast<const CDataNode&>(a).text() ==
             static_cast<const CDataNode&>(b).text();
    case NodeKind::Element: {
      const auto& ea = static_cast<const Element&>(a);
      const auto& eb = static_cast<const Element&>(b);
      if (ea.name() != eb.name() || ea.attributes() != eb.attributes() ||
          ea.children().size() != eb.children().size()) {
        return false;
      }
      for (std::size_t i = 0; i < ea.children().size(); ++i) {
        if (!deep_equal(*ea.children()[i], *eb.children()[i])) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

bool deep_equal(const Document& a, const Document& b) {
  if (a.has_root() != b.has_root()) {
    return false;
  }
  if (!a.has_root()) {
    return true;
  }
  return deep_equal(a.root(), b.root());
}

}  // namespace prophet::xml
