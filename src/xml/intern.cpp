#include "prophet/xml/intern.hpp"

#include <functional>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>

namespace prophet::xml {
namespace {

/// Transparent hashing so lookups take string_views without building a
/// temporary std::string.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view text) const noexcept {
    return std::hash<std::string_view>{}(text);
  }
  std::size_t operator()(const std::string& text) const noexcept {
    return std::hash<std::string_view>{}(text);
  }
};

struct Pool {
  std::shared_mutex mutex;
  // Node-based buckets: element addresses survive rehashing, which is
  // what lets intern() hand out references into the set.
  std::unordered_set<std::string, StringHash, std::equal_to<>> strings;
};

Pool& pool() {
  // Leaked on purpose: interned strings have process lifetime, so the
  // pool must never be destroyed while a static destructor elsewhere
  // could still read one.
  static Pool* instance = new Pool;
  return *instance;
}

}  // namespace

const std::string& intern(std::string_view text) {
  Pool& p = pool();
  {
    std::shared_lock lock(p.mutex);
    if (const auto it = p.strings.find(text); it != p.strings.end()) {
      return *it;
    }
  }
  std::unique_lock lock(p.mutex);
  return *p.strings.emplace(text).first;
}

std::size_t intern_count() {
  Pool& p = pool();
  std::shared_lock lock(p.mutex);
  return p.strings.size();
}

}  // namespace prophet::xml
