#include "prophet/xml/writer.hpp"

#include <fstream>
#include <sstream>

namespace prophet::xml {
namespace {

void write_node(std::ostream& out, const Node& node,
                const WriteOptions& options, int depth);

void write_indent(std::ostream& out, const WriteOptions& options, int depth) {
  if (options.pretty) {
    for (int i = 0; i < depth * options.indent; ++i) {
      out << ' ';
    }
  }
}

/// True when the element's children are all non-element (text-ish) nodes,
/// in which case content is written inline even in pretty mode so that
/// text round-trips without injected whitespace.
bool inline_content(const Element& element) {
  for (const auto& child : element.children()) {
    if (child->is_element()) {
      return false;
    }
  }
  return true;
}

void write_element(std::ostream& out, const Element& element,
                   const WriteOptions& options, int depth) {
  write_indent(out, options, depth);
  out << '<' << element.name();
  for (const auto& [name, value] : element.attributes()) {
    out << ' ' << name << "=\"" << escape(value) << '"';
  }
  if (element.children().empty()) {
    out << "/>";
    if (options.pretty) {
      out << '\n';
    }
    return;
  }
  out << '>';
  if (inline_content(element)) {
    for (const auto& child : element.children()) {
      write_node(out, *child, WriteOptions{.pretty = false,
                                           .indent = options.indent,
                                           .declaration = false},
                 0);
    }
    out << "</" << element.name() << '>';
    if (options.pretty) {
      out << '\n';
    }
    return;
  }
  if (options.pretty) {
    out << '\n';
  }
  for (const auto& child : element.children()) {
    write_node(out, *child, options, depth + 1);
  }
  write_indent(out, options, depth);
  out << "</" << element.name() << '>';
  if (options.pretty) {
    out << '\n';
  }
}

void write_node(std::ostream& out, const Node& node,
                const WriteOptions& options, int depth) {
  switch (node.kind()) {
    case NodeKind::Element:
      write_element(out, static_cast<const Element&>(node), options, depth);
      break;
    case NodeKind::Text:
      write_indent(out, options, depth);
      out << escape(static_cast<const TextNode&>(node).text());
      if (options.pretty) {
        out << '\n';
      }
      break;
    case NodeKind::Comment:
      write_indent(out, options, depth);
      out << "<!--" << static_cast<const CommentNode&>(node).text() << "-->";
      if (options.pretty) {
        out << '\n';
      }
      break;
    case NodeKind::CData:
      write_indent(out, options, depth);
      out << "<![CDATA[" << static_cast<const CDataNode&>(node).text()
          << "]]>";
      if (options.pretty) {
        out << '\n';
      }
      break;
  }
}

}  // namespace

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string to_string(const Node& node, const WriteOptions& options) {
  std::ostringstream out;
  write_node(out, node, options, 0);
  return out.str();
}

std::string to_string(const Document& doc, const WriteOptions& options) {
  std::ostringstream out;
  if (options.declaration) {
    out << "<?xml version=\"" << doc.version() << "\" encoding=\""
        << doc.encoding() << "\"?>";
    if (options.pretty) {
      out << '\n';
    }
  }
  if (doc.has_root()) {
    write_node(out, doc.root(), options, 0);
  }
  return out.str();
}

void write_file(const Document& doc, const std::string& path,
                const WriteOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open file for writing: " + path);
  }
  out << to_string(doc, options);
  if (!out) {
    throw std::runtime_error("write failure: " + path);
  }
}

}  // namespace prophet::xml
