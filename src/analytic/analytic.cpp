#include "prophet/analytic/analytic.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>
#include <sstream>
#include <tuple>
#include <utility>

#include "prophet/expr/compile.hpp"
#include "prophet/expr/eval.hpp"
#include "prophet/workload/runtime.hpp"

namespace prophet::analytic {
namespace {

using uml::ActivityDiagram;
using uml::Model;
using uml::Node;
using uml::NodeKind;

/// Integer-typed model variables truncate on assignment, exactly like the
/// interpreter and the generated C++.
double coerce(uml::VariableType type, double value) {
  if (type == uml::VariableType::Integer) {
    return std::trunc(value);
  }
  return value;
}

/// What one step of the abstract process timeline does.  Compute demands
/// a node processor; Busy advances the clock without contending (send
/// overhead, synchronization latency); Send/Recv/Barrier synchronize
/// across processes during replay.
enum class EvKind { Compute, Busy, Send, Recv, Barrier };

struct Event {
  EvKind kind = EvKind::Compute;
  double elapsed = 0;  // wall seconds on this process's critical path
  double demand = 0;   // contended CPU seconds charged to the node
  double bytes = 0;    // Send: payload size handed to the receiver
  int peer = 0;        // Send: destination pid / Recv: source pid
  int tag = 0;         // message tag
};

/// The abstract timeline of one process plus its side demands.
struct WalkResult {
  std::vector<Event> events;
  // Serialized seconds per named critical section (lock-held time).
  std::map<std::string, double> critical_demand;
};

double sum_elapsed(const std::vector<Event>& events) {
  double total = 0;
  for (const auto& event : events) {
    total += event.elapsed;
  }
  return total;
}

double sum_demand(const std::vector<Event>& events) {
  double total = 0;
  for (const auto& event : events) {
    total += event.demand;
  }
  return total;
}

bool compute_only(const std::vector<Event>& events) {
  return std::all_of(events.begin(), events.end(), [](const Event& event) {
    return event.kind == EvKind::Compute || event.kind == EvKind::Busy;
  });
}

workload::CollectiveKind collective_kind(const std::string& stereotype) {
  if (stereotype == uml::stereo::kBroadcast) {
    return workload::CollectiveKind::Broadcast;
  }
  if (stereotype == uml::stereo::kReduce) {
    return workload::CollectiveKind::Reduce;
  }
  if (stereotype == uml::stereo::kAllReduce) {
    return workload::CollectiveKind::AllReduce;
  }
  if (stereotype == uml::stereo::kScatter) {
    return workload::CollectiveKind::Scatter;
  }
  return workload::CollectiveKind::Gather;
}

/// A loop variable binding on the walker's lexical stack.  `read` records
/// whether an evaluated program statically references the binding's slot
/// — the loop-collapsing fast path is valid only for bodies that never
/// look at their trip variable.  (The bytecode analogue of the tree
/// walker's resolution-time marking: a reference in a short-circuited
/// subexpression now counts as a read, which can only disable a collapse
/// — the fallback per-iteration walk is always exact.)
struct LoopBinding {
  expr::Slot slot = 0;
  bool read = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// Impl: shared lowering handle + per-evaluation state
// ---------------------------------------------------------------------------

struct AnalyticEstimator::Impl {
  using CompiledAssignment = lower::CompiledAssignment;
  using NodePrograms = lower::NodePrograms;

  /// The shared lowering (slot space, bytecode, resolved fragments).
  /// Immutable, so any number of estimators — and the simulation backend —
  /// can consume the same program concurrently.
  lower::ModelProgramPtr program;
  const Model* model = nullptr;  // == &program->model(), cached

  /// Mutable state of one evaluate() call (evaluate is const + reentrant;
  /// everything per-run lives here, including the run-level slot frame).
  struct EvalState {
    machine::SystemParameters params;
    std::vector<double> global_values;  // slot-indexed, shared by walks
    std::vector<double*> run_frame;     // globals + structural template
    double np = 1, nt = 1, nn = 1, ppn = 1;
    std::uint64_t elements = 0;  // model elements walked
    std::uint64_t fragments_executed = 0;
    bool pid_queried = false;  // pid/tid reachable by an evaluated program
    int call_depth = 0;
    obs::AnalyticCounters* counters = nullptr;  // null: counting disabled
    guard::Budget* budget = nullptr;            // null: unguarded
  };

  /// expr::UserFunctions adapter: cost-function bodies evaluate against
  /// the run frame (globals + structural parameters) and the call's
  /// argument span, with the tree walker's recursion guard.
  struct FunctionCaller final : expr::UserFunctions {
    const Impl* impl = nullptr;
    EvalState* st = nullptr;
    [[nodiscard]] double call(int id,
                              std::span<const double> args) const override {
      if (st->call_depth > 64) {
        throw AnalyticError("cost-function call depth exceeded (cycle?)");
      }
      ++st->call_depth;
      expr::EvalContext ctx;
      ctx.frame = st->run_frame;
      ctx.args = args;
      ctx.functions = this;
      ctx.counters = st->counters != nullptr ? &st->counters->expr : nullptr;
      ctx.budget = st->budget;
      const double result =
          impl->program->functions()[static_cast<std::size_t>(id)].eval(ctx);
      --st->call_depth;
      return result;
    }
  };

  /// Mutable state of one evaluate_batch() call: the lane-structured
  /// analogue of EvalState.  Slot storage is slot-major (one lane array
  /// of `width` doubles per slot), so the run frame is exactly what
  /// expr::BatchEvalContext expects — and lane l's scalar view is every
  /// bound pointer offset by l.
  struct BatchState {
    std::span<const machine::SystemParameters> lanes;
    std::size_t width = 0;
    // Structural parameters as lane arrays (np/nt/nn/ppn per scenario).
    std::vector<double> np_lanes, nt_lanes, nn_lanes, ppn_lanes;
    std::vector<double> global_values;  // [slot * width + lane]
    std::vector<double*> run_frame;     // slot -> lane array
    std::uint64_t elements = 0;  // model elements walked (lane-uniform)
    int call_depth = 0;
    obs::AnalyticCounters* counters = nullptr;
    guard::Budget* budget = nullptr;
  };

  /// expr::BatchUserFunctions adapter: cost-function bodies evaluate
  /// against the batch run frame, batched when the vectorized VM can
  /// (call_batch) and against a single lane's scalar view when it falls
  /// back (call_lane).  Same recursion guard as FunctionCaller.
  struct BatchFunctionCaller final : expr::BatchUserFunctions {
    const Impl* impl = nullptr;
    BatchState* st = nullptr;

    void call_batch(int id, std::span<const double* const> args, double* out,
                    std::size_t width) const override {
      if (st->call_depth > 64) {
        throw AnalyticError("cost-function call depth exceeded (cycle?)");
      }
      ++st->call_depth;
      expr::BatchEvalContext ctx;
      ctx.frame = st->run_frame;
      ctx.width = width;
      ctx.args = args;
      ctx.functions = this;
      ctx.counters = st->counters != nullptr ? &st->counters->expr : nullptr;
      ctx.budget = st->budget;
      impl->program->functions()[static_cast<std::size_t>(id)].eval_batch(
          ctx, out);
      --st->call_depth;
    }

    [[nodiscard]] double call_lane(int id, std::span<const double> args,
                                   std::size_t lane) const override {
      if (st->call_depth > 64) {
        throw AnalyticError("cost-function call depth exceeded (cycle?)");
      }
      ++st->call_depth;
      // Lane view of the batch run frame: every bound slot offset by
      // `lane`, so the scalar VM sees exactly that lane's bindings.
      std::vector<double*> frame(st->run_frame.size());
      for (std::size_t slot = 0; slot < frame.size(); ++slot) {
        frame[slot] = st->run_frame[slot] != nullptr
                          ? st->run_frame[slot] + lane
                          : nullptr;
      }
      struct LaneFunctions final : expr::UserFunctions {
        const BatchFunctionCaller* parent;
        std::size_t lane;
        LaneFunctions(const BatchFunctionCaller* parent_in,
                      std::size_t lane_in)
            : parent(parent_in), lane(lane_in) {}
        [[nodiscard]] double call(
            int inner_id, std::span<const double> inner_args) const override {
          return parent->call_lane(inner_id, inner_args, lane);
        }
      };
      const LaneFunctions lane_functions(this, lane);
      expr::EvalContext ctx;
      ctx.frame = frame;
      ctx.args = args;
      ctx.functions = &lane_functions;
      ctx.counters = st->counters != nullptr ? &st->counters->expr : nullptr;
      ctx.budget = st->budget;
      const double result =
          impl->program->functions()[static_cast<std::size_t>(id)].eval(ctx);
      --st->call_depth;
      return result;
    }
  };

  explicit Impl(lower::ModelProgramPtr p)
      : program(std::move(p)), model(&program->model()) {}

  AnalyticReport evaluate(const machine::SystemParameters& params,
                          obs::AnalyticCounters* counters,
                          guard::Budget* budget) const;

  std::vector<AnalyticReport> evaluate_batch(
      std::span<const machine::SystemParameters> lanes,
      obs::AnalyticCounters* counters, guard::Budget* budget,
      std::size_t* lanes_fallback) const;

  /// The all-lanes-at-once attempt: one batched SPMD walk, per-lane
  /// replay/bounds.  Throws BatchDivergence (or any evaluation error)
  /// when the batch cannot proceed; evaluate_batch catches and falls
  /// back to the scalar loop.
  std::vector<AnalyticReport> evaluate_batch_fast(
      std::span<const machine::SystemParameters> lanes,
      obs::AnalyticCounters* counters, guard::Budget* budget) const;
};


namespace {

// ---------------------------------------------------------------------------
// Symbolic walk
// ---------------------------------------------------------------------------

/// Walks one process's control flow, emitting Events.  Sub-walkers (fork
/// branches, parallel-region threads, critical bodies, expectation
/// branches) share the lexical state — slot frame, locals storage, loop
/// bindings — but write to their own WalkResult so the parent can
/// aggregate elapsed/demand.  The walk is strictly sequential, so the
/// shared frame needs no snapshotting (unlike the coroutine
/// interpreter's per-scope copies).
struct Walker {
  using Impl = AnalyticEstimator::Impl;
  using EvalState = Impl::EvalState;
  using NodePrograms = Impl::NodePrograms;

  Walker(const Impl& impl_in, EvalState& st_in, WalkResult& out_in)
      : impl(impl_in), st(st_in), out(out_in) {}

  const Impl& impl;
  EvalState& st;
  WalkResult& out;
  int pid = 0;
  int tid = 0;
  std::vector<double*>* frame = nullptr;   // shared per-process slot frame
  double* locals = nullptr;                // slot-indexed local storage
  std::vector<LoopBinding>* bindings = nullptr;
  const Impl::FunctionCaller* functions = nullptr;
  int region_threads = 0;  // > 0 inside an <<ompparallel>> region
  bool allow_comm = true;
  bool allow_fragments = true;
  std::uint64_t* steps = nullptr;
  std::uint64_t step_limit = 0;

  /// A sub-walker for nested concurrent constructs: shares the lexical
  /// state, writes to its own result, and may not communicate.
  [[nodiscard]] Walker sub(WalkResult& sub_out) const {
    Walker walker(impl, st, sub_out);
    walker.pid = pid;
    walker.tid = tid;
    walker.frame = frame;
    walker.locals = locals;
    walker.bindings = bindings;
    walker.functions = functions;
    walker.region_threads = region_threads;
    walker.allow_comm = false;
    walker.allow_fragments = allow_fragments;
    walker.steps = steps;
    walker.step_limit = step_limit;
    return walker;
  }

  // --- Expression evaluation ---------------------------------------------

  /// Marks the innermost active loop binding of every slot the program
  /// references — the static analogue of the tree walker's
  /// mark-on-resolution (shadowed outer bindings stay unmarked).
  void mark_loop_reads(const expr::Compiled& program) const {
    for (auto it = bindings->rbegin(); it != bindings->rend(); ++it) {
      bool shadowed = false;
      for (auto inner = bindings->rbegin(); inner != it; ++inner) {
        if (inner->slot == it->slot) {
          shadowed = true;
          break;
        }
      }
      if (!shadowed && program.references_slot(it->slot)) {
        it->read = true;
      }
    }
  }

  [[nodiscard]] double eval_program(const expr::Compiled& program,
                                    int uid) const {
    if (program.may_read_pid_tid()) {
      st.pid_queried = true;
    }
    mark_loop_reads(program);
    expr::EvalContext ctx;
    ctx.frame = *frame;
    ctx.functions = functions;
    ctx.pid = static_cast<double>(pid);
    ctx.tid = static_cast<double>(tid);
    ctx.uid = static_cast<double>(uid);
    ctx.counters = st.counters != nullptr ? &st.counters->expr : nullptr;
    ctx.budget = st.budget;
    return program.eval(ctx);
  }

  [[nodiscard]] const NodePrograms& programs_of(const Node& node) const {
    return impl.program->at(node);
  }

  /// Evaluates an optional tag program; absent tags are 0.0, evaluation
  /// errors carry the node/tag context (tree-walker message format).
  [[nodiscard]] double eval_tag(const std::optional<expr::Compiled>& tag,
                                std::string_view tag_name, const Node& node,
                                int uid) const {
    if (!tag.has_value()) {
      return 0.0;
    }
    try {
      return eval_program(*tag, uid);
    } catch (const expr::EvalError& error) {
      throw AnalyticError("node " + node.id() + ", tag '" +
                          std::string(tag_name) + "': " + error.what());
    }
  }

  void run_fragment(const NodePrograms& programs, const Node& node) {
    if (programs.fragment.empty()) {
      return;
    }
    if (!allow_fragments) {
      throw AnalyticError("node " + node.id() +
                          ": code fragments are not supported inside "
                          "probability-weighted branches");
    }
    ++st.fragments_executed;
    for (const auto& assignment : programs.fragment) {
      double value = 0;
      try {
        value = eval_program(assignment.value, programs.uid);
      } catch (const expr::EvalError& error) {
        throw AnalyticError("code fragment at node " + node.id() + ": " +
                            error.what());
      }
      if (assignment.coerce_int) {
        value = std::trunc(value);
      }
      using Target = Impl::CompiledAssignment::Target;
      switch (assignment.target) {
        case Target::Local:
          if (locals != nullptr) {
            locals[assignment.slot] = value;
            continue;
          }
          break;
        case Target::Global:
          st.global_values[assignment.slot] = value;
          continue;
        case Target::Undeclared:
          break;
      }
      throw AnalyticError("code fragment at node " + node.id() +
                          " assigns undeclared variable '" +
                          assignment.name + "'");
    }
  }

  // --- Event emission -----------------------------------------------------

  void emit_compute(double elapsed, double demand) {
    if (std::isnan(elapsed) || elapsed < 0) {
      throw AnalyticError("negative or NaN compute cost");
    }
    if (!out.events.empty() && out.events.back().kind == EvKind::Compute) {
      out.events.back().elapsed += elapsed;
      out.events.back().demand += demand;
      return;
    }
    out.events.push_back({EvKind::Compute, elapsed, demand, 0, 0, 0});
  }

  void emit_busy(double elapsed) {
    if (!out.events.empty() && out.events.back().kind == EvKind::Busy) {
      out.events.back().elapsed += elapsed;
      return;
    }
    out.events.push_back({EvKind::Busy, elapsed, 0, 0, 0, 0});
  }

  void require_comm(const Node& node) const {
    if (!allow_comm) {
      throw AnalyticError(
          "node " + node.id() + " (<<" + node.stereotype() +
          ">>): cross-process communication inside fork branches, parallel "
          "regions, critical sections or probability-weighted branches is "
          "not supported by the analytic backend");
    }
  }

  // --- Control flow -------------------------------------------------------

  void run_diagram(const ActivityDiagram& diagram) {
    const Node* initial = diagram.initial();
    if (initial == nullptr) {
      throw AnalyticError("diagram " + diagram.id() + " has no initial node");
    }
    walk(diagram, *initial, /*stop_kind=*/std::nullopt, nullptr);
  }

  /// Walks from `start` until a Final node (stop == nullptr) or until a
  /// node of `stop_kind` is reached (its id is written to *stop, and the
  /// node is not executed).  When stopping at a Merge, merges that close
  /// a guard-resolved decision *inside* the walked stretch are passed
  /// through (`merge_debt`), so only the branch's own reconvergence point
  /// terminates it.
  void walk(const ActivityDiagram& diagram, const Node& start,
            std::optional<NodeKind> stop_kind, std::string* stop) {
    const Node* node = &start;
    int merge_debt = 0;
    while (node != nullptr) {
      if (++*steps > step_limit) {
        throw AnalyticError("diagram " + diagram.id() +
                            ": walk exceeded step limit (unstructured "
                            "cycle without <<loop+>>?)");
      }
      // Piggyback the cooperative deadline/cancel check on the existing
      // step counter so a long symbolic walk stays interruptible.
      if (st.budget != nullptr && (*steps & 1023U) == 0) {
        st.budget->checkpoint("analytic-walk");
      }
      if (stop != nullptr && stop_kind.has_value() &&
          node->kind() == *stop_kind) {
        if (*stop_kind == NodeKind::Merge && merge_debt > 0) {
          --merge_debt;  // closes a nested decision, keep walking
        } else {
          *stop = node->id();
          return;
        }
      }
      if (node->kind() == NodeKind::Fork) {
        std::string join_id;
        execute_fork(diagram, *node, &join_id);
        const Node* join = diagram.node(join_id);
        const auto after = diagram.outgoing(join->id());
        if (after.empty()) {
          return;
        }
        if (after.size() > 1) {
          throw AnalyticError("join " + join->id() +
                              " has multiple outgoing edges");
        }
        node = diagram.node(after[0]->target());
        continue;
      }
      if (node->kind() == NodeKind::Decision) {
        if (decision_is_probabilistic(diagram, *node)) {
          // Consumes the decision's merge inline and resumes after it.
          node = execute_expected_decision(diagram, *node);
          continue;
        }
        if (stop_kind == NodeKind::Merge) {
          ++merge_debt;  // this decision's own merge is not ours
        }
      }
      execute_node(*node);
      if (node->kind() == NodeKind::Final) {
        return;
      }
      node = next_node(diagram, *node);
    }
  }

  [[nodiscard]] const Node* next_node(const ActivityDiagram& diagram,
                                      const Node& node) const {
    const auto outgoing = diagram.outgoing(node.id());
    if (node.kind() == NodeKind::Decision) {
      const uml::ControlFlow* chosen = nullptr;
      const uml::ControlFlow* fallback = nullptr;
      const int uid = programs_of(node).uid;
      for (const auto* edge : outgoing) {
        if (edge->is_else()) {
          if (fallback == nullptr) {
            fallback = edge;
          }
          continue;
        }
        const expr::Compiled* guard = impl.program->guard(*edge);
        if (guard == nullptr) {
          continue;  // unguarded edge out of a decision: never taken
        }
        double value = 0;
        try {
          value = eval_program(*guard, uid);
        } catch (const expr::EvalError& error) {
          throw AnalyticError("guard of edge " + edge->id() + ": " +
                              error.what());
        }
        if (expr::truthy(value)) {
          chosen = edge;
          break;
        }
      }
      if (chosen == nullptr) {
        chosen = fallback;
      }
      if (chosen == nullptr) {
        throw AnalyticError("decision " + node.id() +
                            ": no guard holds and no 'else' edge");
      }
      return diagram.node(chosen->target());
    }
    if (outgoing.empty()) {
      return nullptr;  // dead end; the checker's connectivity rule warns
    }
    if (outgoing.size() > 1) {
      throw AnalyticError("node " + node.id() +
                          " has multiple unguarded outgoing edges");
    }
    return diagram.node(outgoing[0]->target());
  }

  void execute_node(const Node& node) {
    ++st.elements;
    switch (node.kind()) {
      case NodeKind::Initial:
      case NodeKind::Final:
      case NodeKind::Merge:
      case NodeKind::Join:
      case NodeKind::Decision:
      case NodeKind::Fork:  // handled inline by walk()
        return;
      case NodeKind::Action:
        execute_action(node);
        return;
      case NodeKind::Activity:
        execute_activity(node);
        return;
      case NodeKind::Loop:
        execute_loop(node);
        return;
    }
  }

  void execute_fork(const ActivityDiagram& diagram, const Node& node,
                    std::string* join_out) {
    const auto outgoing = diagram.outgoing(node.id());
    std::vector<std::string> joins(outgoing.size());
    double max_elapsed = 0;
    double total_demand = 0;
    for (std::size_t i = 0; i < outgoing.size(); ++i) {
      const Node* target = diagram.node(outgoing[i]->target());
      if (target == nullptr) {
        throw AnalyticError("fork " + node.id() + ": dangling edge");
      }
      WalkResult branch;
      Walker walker = sub(branch);
      walker.walk(diagram, *target, NodeKind::Join, &joins[i]);
      max_elapsed = std::max(max_elapsed, sum_elapsed(branch.events));
      total_demand += sum_demand(branch.events);
      merge_criticals(branch, 1.0);
    }
    for (std::size_t i = 1; i < joins.size(); ++i) {
      if (joins[i] != joins[0]) {
        throw AnalyticError("fork " + node.id() +
                            ": branches reach different joins ('" + joins[0] +
                            "' vs '" + joins[i] + "')");
      }
    }
    if (joins.empty() || joins[0].empty()) {
      throw AnalyticError("fork " + node.id() +
                          ": branches do not reach a join");
    }
    emit_compute(max_elapsed, total_demand);
    *join_out = joins[0];
  }

  [[nodiscard]] bool decision_is_probabilistic(const ActivityDiagram& diagram,
                                               const Node& node) const {
    for (const auto* edge : diagram.outgoing(node.id())) {
      if (edge->tag_number(uml::tag::kProb).has_value()) {
        return true;
      }
    }
    return false;
  }

  /// Expectation over the branches of a `prob`-annotated decision: every
  /// branch is walked to the common merge, weighted by its probability,
  /// and the expected elapsed/demand is emitted as one Compute step.
  /// Returns the node after the merge to continue from (the merge itself
  /// is consumed here, so an enclosing branch walk never mistakes it for
  /// its own reconvergence point).
  const Node* execute_expected_decision(const ActivityDiagram& diagram,
                                        const Node& node) {
    ++st.elements;
    const auto outgoing = diagram.outgoing(node.id());
    if (outgoing.empty()) {
      throw AnalyticError("decision " + node.id() + " has no outgoing edges");
    }
    std::vector<double> weights(outgoing.size(), -1);
    double tagged_sum = 0;
    std::size_t untagged = 0;
    for (std::size_t i = 0; i < outgoing.size(); ++i) {
      if (const auto prob = outgoing[i]->tag_number(uml::tag::kProb)) {
        if (*prob < 0 || *prob > 1 || std::isnan(*prob)) {
          throw AnalyticError("decision " + node.id() + ": edge " +
                              outgoing[i]->id() + " has prob outside [0, 1]");
        }
        weights[i] = *prob;
        tagged_sum += *prob;
      } else {
        ++untagged;
      }
    }
    if (tagged_sum > 1 + 1e-9) {
      throw AnalyticError("decision " + node.id() +
                          ": branch probabilities sum to more than 1");
    }
    const double rest =
        untagged > 0
            ? std::max(0.0, 1.0 - tagged_sum) / static_cast<double>(untagged)
            : 0;
    double norm = 0;
    for (auto& weight : weights) {
      if (weight < 0) {
        weight = rest;
      }
      norm += weight;
    }
    if (norm <= 0) {
      throw AnalyticError("decision " + node.id() +
                          ": branch probabilities sum to zero");
    }

    std::string merge_id;
    double expected_elapsed = 0;
    double expected_demand = 0;
    for (std::size_t i = 0; i < outgoing.size(); ++i) {
      const Node* target = diagram.node(outgoing[i]->target());
      if (target == nullptr) {
        throw AnalyticError("decision " + node.id() + ": dangling edge");
      }
      const double weight = weights[i] / norm;
      std::string branch_merge;
      WalkResult branch;
      Walker walker = sub(branch);
      walker.allow_fragments = false;
      walker.walk(diagram, *target, NodeKind::Merge, &branch_merge);
      if (branch_merge.empty()) {
        throw AnalyticError("decision " + node.id() +
                            ": probability-weighted branches must "
                            "reconverge at a merge");
      }
      if (merge_id.empty()) {
        merge_id = branch_merge;
      } else if (merge_id != branch_merge) {
        throw AnalyticError("decision " + node.id() +
                            ": branches reach different merges ('" +
                            merge_id + "' vs '" + branch_merge + "')");
      }
      expected_elapsed += weight * sum_elapsed(branch.events);
      expected_demand += weight * sum_demand(branch.events);
      merge_criticals(branch, weight);
    }
    emit_compute(expected_elapsed, expected_demand);
    const Node* merge = diagram.node(merge_id);
    ++st.elements;  // the consumed merge
    return next_node(diagram, *merge);
  }

  void execute_action(const Node& node) {
    const NodePrograms& programs = programs_of(node);
    run_fragment(programs, node);
    const int uid = programs.uid;
    const std::string& stereotype = node.stereotype();
    const auto& params = st.params;
    if (stereotype == uml::stereo::kActionPlus || stereotype.empty()) {
      double cost = 0;
      if (programs.cost().has_value()) {
        cost = eval_tag(programs.cost(), uml::tag::kCost, node, uid);
      } else if (auto time = node.tag_number(uml::tag::kTime)) {
        cost = *time;
      }
      const double seconds = machine::compute_time(params, cost);
      emit_compute(seconds, seconds);
    } else if (stereotype == uml::stereo::kSend) {
      require_comm(node);
      const int dest = static_cast<int>(
          eval_tag(programs.dest(), uml::tag::kDest, node, uid));
      const double bytes = eval_tag(programs.size(), uml::tag::kSize, node,
                                    uid);
      const int tag =
          static_cast<int>(node.tag_number(uml::tag::kMsgTag).value_or(0));
      emit_busy(params.network_overhead);
      out.events.push_back({EvKind::Send, 0, 0, bytes, dest, tag});
    } else if (stereotype == uml::stereo::kRecv) {
      require_comm(node);
      const int source = static_cast<int>(
          eval_tag(programs.source(), uml::tag::kSource, node, uid));
      const int tag =
          static_cast<int>(node.tag_number(uml::tag::kMsgTag).value_or(0));
      out.events.push_back({EvKind::Recv, 0, 0, 0, source, tag});
    } else if (stereotype == uml::stereo::kBarrier) {
      require_comm(node);
      out.events.push_back(
          {EvKind::Barrier, machine::barrier_time(params), 0, 0, 0, 0});
    } else if (stereotype == uml::stereo::kBroadcast ||
               stereotype == uml::stereo::kReduce ||
               stereotype == uml::stereo::kAllReduce ||
               stereotype == uml::stereo::kScatter ||
               stereotype == uml::stereo::kGather) {
      require_comm(node);
      const double bytes = eval_tag(programs.size(), uml::tag::kSize, node,
                                    uid);
      const double hold = workload::CollectiveElement::model_time(
          params, collective_kind(stereotype), params.processes, bytes);
      out.events.push_back({EvKind::Barrier, hold, 0, 0, 0, 0});
    } else if (stereotype == uml::stereo::kOmpFor) {
      const double iterations =
          eval_tag(programs.iterations(), uml::tag::kIterations, node, uid);
      const double itercost =
          eval_tag(programs.itercost(), uml::tag::kIterCost, node, uid);
      std::string schedule = node.tag_string(uml::tag::kSchedule);
      if (schedule.empty()) {
        schedule = "static";
      }
      const auto chunk = static_cast<std::int64_t>(
          node.tag_number(uml::tag::kChunk).value_or(0));
      const int threads = region_threads > 0 ? region_threads : 1;
      const double compute = workload::WorkshareElement::model_compute(
          iterations, itercost, schedule, chunk, threads, tid);
      const double seconds = machine::compute_time(params, compute);
      emit_compute(seconds, seconds);
    } else if (stereotype == uml::stereo::kOmpBarrier) {
      // Region threads are modeled as aligned (the region advances at the
      // pace of its slowest thread), so an intra-region barrier costs
      // nothing extra here — exactly what the simulator charges.
    } else {
      throw AnalyticError("node " + node.id() +
                          ": unsupported stereotype <<" + stereotype +
                          ">> on an action node");
    }
  }

  void execute_activity(const Node& node) {
    const NodePrograms& programs = programs_of(node);
    run_fragment(programs, node);
    const ActivityDiagram* sub_diagram =
        impl.model->diagram(node.subdiagram_id());
    const std::string& stereotype = node.stereotype();
    if (stereotype == uml::stereo::kOmpParallel) {
      int threads = st.params.threads_per_process;
      if (programs.num_threads().has_value()) {
        threads = static_cast<int>(eval_tag(
            programs.num_threads(), uml::tag::kNumThreads, node,
            programs.uid));
      }
      if (threads < 1) {
        throw AnalyticError("parallel region at node " + node.id() +
                            ": num_threads must be >= 1");
      }
      double max_elapsed = 0;
      double total_demand = 0;
      for (int thread = 0; thread < threads; ++thread) {
        WalkResult thread_result;
        Walker walker = sub(thread_result);
        walker.tid = thread;
        walker.region_threads = threads;
        walker.run_diagram(*sub_diagram);
        max_elapsed = std::max(max_elapsed, sum_elapsed(thread_result.events));
        total_demand += sum_demand(thread_result.events);
        merge_criticals(thread_result, 1.0);
      }
      emit_compute(max_elapsed, total_demand);
    } else if (stereotype == uml::stereo::kOmpCritical) {
      std::string lock = node.tag_string(uml::tag::kCriticalName);
      if (lock.empty()) {
        lock = "default";
      }
      WalkResult body;
      Walker walker = sub(body);
      walker.run_diagram(*sub_diagram);
      // The body runs on this process's critical path; the lock-held time
      // additionally serializes against every other holder of `lock`.
      out.critical_demand[lock] += sum_elapsed(body.events);
      merge_criticals(body, 1.0);
      for (const auto& event : body.events) {
        append_event(event);
      }
    } else {
      // <<activity+>> (or unstereotyped composite): inline content.
      run_diagram(*sub_diagram);
    }
  }

  void execute_loop(const Node& node) {
    const NodePrograms& programs = programs_of(node);
    run_fragment(programs, node);
    const ActivityDiagram* body = impl.model->diagram(node.subdiagram_id());
    const double raw =
        eval_tag(programs.iterations(), uml::tag::kIterations, node,
                 programs.uid);
    if (std::isnan(raw) || raw < 0) {
      throw AnalyticError("loop " + node.id() +
                          ": iteration count is negative or NaN");
    }
    const auto iterations = static_cast<std::int64_t>(raw);
    if (iterations == 0) {
      return;
    }
    bindings->push_back({programs.loop_var_slot, false});
    double loop_value = 0;
    double* const saved = (*frame)[programs.loop_var_slot];
    (*frame)[programs.loop_var_slot] = &loop_value;

    // First iteration into a capture buffer: when the body provably does
    // not depend on the trip variable and has no side effects, the
    // remaining iterations are the first one times (n - 1) — the symbolic
    // trip-count resolution that keeps deep loop nests O(body), not
    // O(body * n).
    const std::uint64_t fragments_before = st.fragments_executed;
    WalkResult first;
    {
      Walker walker = sub(first);
      walker.allow_comm = allow_comm;
      walker.run_diagram(*body);
    }
    const bool collapsible = !bindings->back().read &&
                             st.fragments_executed == fragments_before &&
                             compute_only(first.events);
    if (collapsible && st.counters != nullptr) {
      ++st.counters->loop_collapses;
    }
    for (const auto& event : first.events) {
      append_event(event);
    }
    merge_criticals(first, 1.0);
    if (collapsible) {
      const auto rest = static_cast<double>(iterations - 1);
      emit_compute(rest * sum_elapsed(first.events),
                   rest * sum_demand(first.events));
      merge_criticals(first, rest);
    } else {
      for (std::int64_t k = 1; k < iterations; ++k) {
        // Collapsed loops are O(1) and exempt; a non-collapsible body
        // replays per trip, so each trip is charged — this is where a
        // runaway trip count trips max_loop_trips (or the deadline).
        if (st.budget != nullptr) {
          st.budget->charge_loop_trips(1, "analytic-loop");
        }
        loop_value = static_cast<double>(k);
        run_diagram(*body);
      }
    }
    (*frame)[programs.loop_var_slot] = saved;
    bindings->pop_back();
  }

  void append_event(const Event& event) {
    // Re-coalesce adjacent Compute/Busy runs when splicing sub-results.
    if (event.kind == EvKind::Compute) {
      emit_compute(event.elapsed, event.demand);
    } else if (event.kind == EvKind::Busy) {
      emit_busy(event.elapsed);
    } else {
      out.events.push_back(event);
    }
  }

  void merge_criticals(const WalkResult& from, double weight) {
    for (const auto& [name, demand] : from.critical_demand) {
      out.critical_demand[name] += weight * demand;
    }
  }

  void walk_process() {
    // Per-process locals, initialized in declaration order and bound
    // into the frame one by one (a forward reference falls through to
    // globals/system parameters, like the tree walker's growing map).
    for (const auto& variable : impl.program->variables()) {
      if (variable.scope != uml::VariableScope::Local) {
        continue;
      }
      double value = 0;
      if (variable.initializer.has_value()) {
        try {
          value = eval_program(*variable.initializer, 0);
        } catch (const expr::EvalError& error) {
          throw AnalyticError("initializer of variable " + variable.name +
                              ": " + error.what());
        }
      }
      locals[variable.slot] = coerce(variable.type, value);
      (*frame)[variable.slot] = &locals[variable.slot];
    }
    run_diagram(*impl.model->main_diagram());
  }
};

// ---------------------------------------------------------------------------
// Replay: dependency resolution across processes
// ---------------------------------------------------------------------------

struct ReplayOutcome {
  std::vector<double> finish;       // per-process clock
  std::vector<double> node_demand;  // contended CPU seconds per node
  std::uint64_t events = 0;         // events consumed across all cursors
};

struct ReplayProc {
  std::size_t cursor = 0;
  double clock = 0;
  bool at_barrier = false;
  bool finished = false;
};

/// Reusable replay state.  One evaluation needs a handful of scratch
/// vectors whose sizes repeat from lane to lane; threading one scratch
/// through the batched per-lane finalize turns those per-lane heap
/// round-trips into capacity reuse.  Holds no results across calls —
/// replay() fully re-initializes every member it reads.
struct ReplayScratch {
  std::vector<ReplayProc> procs;
  std::vector<int> node;
  std::map<std::tuple<int, int, int>, std::deque<std::pair<double, double>>>
      ledger;
  ReplayOutcome outcome;
};

const ReplayOutcome& replay(const machine::SystemParameters& params,
                            const std::vector<const WalkResult*>& per_pid,
                            guard::Budget* budget, ReplayScratch& scratch) {
  const int np = params.processes;
  using Proc = ReplayProc;
  std::vector<Proc>& procs = scratch.procs;
  procs.assign(static_cast<std::size_t>(np), Proc{});
  std::vector<int>& node = scratch.node;
  node.resize(static_cast<std::size_t>(np));
  for (int pid = 0; pid < np; ++pid) {
    node[static_cast<std::size_t>(pid)] = machine::node_of(params, pid);
  }
  ReplayOutcome& outcome = scratch.outcome;
  outcome.finish.clear();
  outcome.events = 0;
  outcome.node_demand.assign(static_cast<std::size_t>(params.nodes), 0.0);

  // FIFO per (dst, src, tag) — the simulator's mailbox matching rule.
  // Keys recur from lane to lane, so the previous call's (emptied)
  // queues are kept and only their contents dropped.
  auto& ledger = scratch.ledger;
  for (auto& [key, queue] : ledger) {
    queue.clear();
  }

  // Uniform fast path: the SPMD walks hand every process the same
  // timeline.  When that shared timeline is also communication-free
  // (compute and busy only — no sends, receives, or barriers), the
  // cursor loop below degenerates to np independent replays of the same
  // list: every clock is the same in-order sum of elapsed times, and
  // node demands accumulate pid-major, event-minor.  Doing exactly
  // those additions in exactly that order as two tight loops is
  // bit-identical to the general machinery at a fraction of its cost.
  if (np > 0) {
    bool uniform = true;
    for (int pid = 1; pid < np && uniform; ++pid) {
      uniform = per_pid[static_cast<std::size_t>(pid)] == per_pid[0];
    }
    if (uniform) {
      const auto& events = per_pid[0]->events;
      bool comm_free = true;
      for (const Event& event : events) {
        if (event.kind != EvKind::Compute && event.kind != EvKind::Busy) {
          comm_free = false;
          break;
        }
      }
      if (comm_free) {
        const std::uint64_t total =
            static_cast<std::uint64_t>(np) * events.size();
        if (budget != nullptr) {
          // Same total as the per-event charges below; a trip raises the
          // same GuardError from the same site.
          budget->charge_replay_events(total, "analytic-replay");
        }
        double clock = 0;
        for (const Event& event : events) {
          clock += event.elapsed;
        }
        outcome.finish.assign(static_cast<std::size_t>(np), clock);
        for (int pid = 0; pid < np; ++pid) {
          double& cell = outcome.node_demand[static_cast<std::size_t>(
              node[static_cast<std::size_t>(pid)])];
          for (const Event& event : events) {
            if (event.kind == EvKind::Compute) {
              cell += event.demand;
            }
          }
        }
        outcome.events = total;
        return outcome;
      }
    }
  }

  int waiting = 0;
  int finished = 0;
  bool progressed = true;
  while (finished < np && progressed) {
    progressed = false;
    for (int pid = 0; pid < np; ++pid) {
      Proc& proc = procs[static_cast<std::size_t>(pid)];
      if (proc.finished || proc.at_barrier) {
        continue;
      }
      const auto& events = per_pid[static_cast<std::size_t>(pid)]->events;
      while (proc.cursor < events.size()) {
        const Event& event = events[proc.cursor];
        if (event.kind == EvKind::Compute) {
          proc.clock += event.elapsed;
          outcome.node_demand[static_cast<std::size_t>(
              node[static_cast<std::size_t>(pid)])] += event.demand;
        } else if (event.kind == EvKind::Busy) {
          proc.clock += event.elapsed;
        } else if (event.kind == EvKind::Send) {
          ledger[{event.peer, pid, event.tag}].emplace_back(proc.clock,
                                                            event.bytes);
        } else if (event.kind == EvKind::Recv) {
          auto it = ledger.find({pid, event.peer, event.tag});
          if (it == ledger.end() || it->second.empty()) {
            break;  // blocked until the matching send is replayed
          }
          const auto [sent_at, bytes] = it->second.front();
          it->second.pop_front();
          const double arrival =
              sent_at + machine::message_time(params, event.peer, pid, bytes);
          proc.clock = std::max(proc.clock, arrival);
        } else {  // Barrier
          proc.at_barrier = true;
          ++waiting;
          progressed = true;
          if (waiting == np) {
            double release = 0;
            for (const auto& other : procs) {
              release = std::max(release, other.clock);
            }
            for (int other = 0; other < np; ++other) {
              Proc& peer = procs[static_cast<std::size_t>(other)];
              const auto& peer_events =
                  per_pid[static_cast<std::size_t>(other)]->events;
              peer.clock = release + peer_events[peer.cursor].elapsed;
              ++peer.cursor;
              ++outcome.events;
              peer.at_barrier = false;
            }
            waiting = 0;
            // This process's cursor advanced with everyone else's;
            // continue draining it.
            continue;
          }
          break;  // parked until the last participant arrives
        }
        ++proc.cursor;
        ++outcome.events;
        progressed = true;
        // One charge per delivered event keeps a huge (but deadlock-free)
        // replay bounded by max_replay_events and the deadline.
        if (budget != nullptr) {
          budget->charge_replay_events(1, "analytic-replay");
        }
      }
      if (!proc.at_barrier && proc.cursor >= events.size() &&
          !proc.finished) {
        proc.finished = true;
        ++finished;
      }
    }
  }

  if (finished < np) {
    std::ostringstream why;
    why << "communication deadlock during analytic replay:";
    for (int pid = 0; pid < np; ++pid) {
      const Proc& proc = procs[static_cast<std::size_t>(pid)];
      if (proc.finished) {
        continue;
      }
      const auto& events = per_pid[static_cast<std::size_t>(pid)]->events;
      why << " p" << pid;
      if (proc.at_barrier) {
        why << " waits at a barrier;";
      } else if (proc.cursor < events.size() &&
                 events[proc.cursor].kind == EvKind::Recv) {
        why << " waits for a message from p" << events[proc.cursor].peer
            << ";";
      } else {
        why << " is blocked;";
      }
    }
    throw AnalyticError(why.str());
  }

  outcome.finish.reserve(static_cast<std::size_t>(np));
  for (const auto& proc : procs) {
    outcome.finish.push_back(proc.clock);
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Report assembly: replay + bounds
// ---------------------------------------------------------------------------

/// Everything downstream of the symbolic walks: dependency replay, the
/// capacity/critical contention bounds, and the report itself.  Shared
/// verbatim by the scalar evaluate() and the batched per-lane finalize,
/// which is what makes batched predictions bit-identical to scalar ones
/// by construction.
AnalyticReport assemble_report(const machine::SystemParameters& params,
                               const std::vector<const WalkResult*>& per_pid,
                               std::uint64_t elements,
                               obs::AnalyticCounters* counters,
                               guard::Budget* budget, ReplayScratch& scratch) {
  const int np = params.processes;
  const ReplayOutcome& outcome = replay(params, per_pid, budget, scratch);

  AnalyticReport report;
  report.processes = np;
  report.evaluated_elements = elements;
  double schedule_bound = 0;
  for (int pid = 0; pid < np; ++pid) {
    const double finish = outcome.finish[static_cast<std::size_t>(pid)];
    // Pids arrive in ascending order: the end hint makes each insert O(1).
    report.per_process_finish.emplace_hint(report.per_process_finish.end(),
                                           pid, finish);
    schedule_bound = std::max(schedule_bound, finish);
  }

  // Contention correction: a node's processors can serve at most
  // `processors_per_node` compute-seconds per second, so its total demand
  // divided by the server count lower-bounds the makespan (deterministic
  // M/M/k heavy-traffic limit).  Named critical sections serialize their
  // total lock-held demand the same way.
  const auto servers = static_cast<double>(params.processors_per_node);
  double capacity_bound = 0;
  for (const double demand : outcome.node_demand) {
    capacity_bound = std::max(capacity_bound, demand / servers);
  }
  std::map<std::string, double> critical_totals;
  for (const auto* result : per_pid) {
    for (const auto& [name, demand] : result->critical_demand) {
      critical_totals[name] += demand;
    }
  }
  double critical_bound = 0;
  for (const auto& [name, demand] : critical_totals) {
    critical_bound = std::max(critical_bound, demand);
  }
  const double makespan =
      std::max(schedule_bound, std::max(capacity_bound, critical_bound));
  report.predicted_time = makespan;

  if (counters != nullptr) {
    counters->events_replayed += outcome.events;
    // Which bound set the prediction; ties resolve toward the replayed
    // schedule (the capacity/critical corrections only "win" when they
    // exceed it).
    if (makespan <= schedule_bound) {
      ++counters->schedule_wins;
    } else if (capacity_bound >= critical_bound) {
      ++counters->capacity_wins;
    } else {
      ++counters->critical_wins;
    }
  }

  report.node_loads.reserve(outcome.node_demand.size());
  for (std::size_t n = 0; n < outcome.node_demand.size(); ++n) {
    NodeLoad load;
    load.compute_demand = outcome.node_demand[n];
    load.utilization = makespan > 0
                           ? outcome.node_demand[n] / (servers * makespan)
                           : 0;
    load.processes = 0;
    report.node_loads.push_back(load);
  }
  for (int pid = 0; pid < np; ++pid) {
    ++report
          .node_loads[static_cast<std::size_t>(machine::node_of(params, pid))]
          .processes;
  }
  return report;
}

// ---------------------------------------------------------------------------
// Batched symbolic walk
// ---------------------------------------------------------------------------

/// Internal control-flow signal: the batched walk hit lane-divergent
/// control, a construct outside the batched subset, or a condition the
/// scalar walker would diagnose with an error.  evaluate_batch catches
/// it (along with any evaluation error) and re-runs every lane through
/// the scalar path, which is always exact — errors included.  Never
/// escapes the analytic layer.
struct BatchDivergence {};

/// Walks one process's control flow across all scenario lanes at once,
/// emitting one structurally identical Event per lane per step — the
/// batched analogue of Walker, restricted to the rank-independent SPMD
/// shared walk (pid 0, every rank identical).  Transient values are lane
/// arrays; cost expressions evaluate through the vectorized expr VM
/// against the slot-major batch frame.
///
/// Supported: plain/<<action+>> compute, send/recv/barrier/collectives
/// with lane-uniform peers, <<ompfor>>/<<ompbarrier>>, guard-resolved
/// decisions with lane-uniform truthiness, <<loop+>> (lane-uniform trip
/// counts; lane-varying counts allowed when the body collapses and every
/// lane iterates at least once), and inlined <<activity+>> composites.
/// Everything else — forks, parallel regions, critical sections,
/// probabilistic decisions, code fragments, pid/tid-reading expressions
/// — raises BatchDivergence.
struct BatchWalker {
  using Impl = AnalyticEstimator::Impl;
  using BatchState = Impl::BatchState;
  using NodePrograms = Impl::NodePrograms;

  BatchWalker(const Impl& impl_in, BatchState& st_in,
              std::vector<WalkResult>& out_in)
      : impl(impl_in), st(st_in), out(out_in) {}

  const Impl& impl;
  BatchState& st;
  std::vector<WalkResult>& out;  // one per lane, lockstep structure
  std::vector<double*>* frame = nullptr;  // slot -> lane array
  double* locals = nullptr;               // slot-major local storage
  std::vector<LoopBinding>* bindings = nullptr;
  const Impl::BatchFunctionCaller* functions = nullptr;
  bool allow_comm = true;
  std::uint64_t* steps = nullptr;
  std::uint64_t step_limit = 0;

  [[nodiscard]] std::size_t width() const { return st.width; }

  /// A sub-walker for loop bodies: shares the lexical state, writes to
  /// its own lane results, and may not communicate (mirrors Walker::sub).
  [[nodiscard]] BatchWalker sub(std::vector<WalkResult>& sub_out) const {
    BatchWalker walker(impl, st, sub_out);
    walker.frame = frame;
    walker.locals = locals;
    walker.bindings = bindings;
    walker.functions = functions;
    walker.allow_comm = false;
    walker.steps = steps;
    walker.step_limit = step_limit;
    return walker;
  }

  // --- Expression evaluation ---------------------------------------------

  void mark_loop_reads(const expr::Compiled& program) const {
    for (auto it = bindings->rbegin(); it != bindings->rend(); ++it) {
      bool shadowed = false;
      for (auto inner = bindings->rbegin(); inner != it; ++inner) {
        if (inner->slot == it->slot) {
          shadowed = true;
          break;
        }
      }
      if (!shadowed && program.references_slot(it->slot)) {
        it->read = true;
      }
    }
  }

  /// Evaluates `program` across all lanes into `out_lanes` (width
  /// doubles).  pid/tid-reading programs diverge: the batch only covers
  /// the rank-independent SPMD walk.
  void eval_program(const expr::Compiled& program, int uid,
                    double* out_lanes) const {
    if (program.may_read_pid_tid()) {
      throw BatchDivergence{};
    }
    mark_loop_reads(program);
    expr::BatchEvalContext ctx;
    ctx.frame = *frame;
    ctx.width = st.width;
    ctx.functions = functions;
    ctx.uid = static_cast<double>(uid);
    ctx.counters = st.counters != nullptr ? &st.counters->expr : nullptr;
    ctx.budget = st.budget;
    program.eval_batch(ctx, out_lanes);
  }

  [[nodiscard]] const NodePrograms& programs_of(const Node& node) const {
    return impl.program->at(node);
  }

  /// Optional tag program across lanes; absent tags are 0.0 in every
  /// lane.  Evaluation errors propagate raw — the fallback re-runs the
  /// lanes through the scalar walker, which re-raises them with their
  /// exact node/tag context.
  void eval_tag(const std::optional<expr::Compiled>& tag, int uid,
                double* out_lanes) const {
    if (!tag.has_value()) {
      std::fill_n(out_lanes, width(), 0.0);
      return;
    }
    eval_program(*tag, uid, out_lanes);
  }

  void require_fragment_free(const NodePrograms& programs) const {
    if (!programs.fragment.empty()) {
      throw BatchDivergence{};  // fragments mutate run state per walk
    }
  }

  /// A lane-uniform integer tag (message peers must match across lanes
  /// for the lockstep event structure to hold).
  [[nodiscard]] int uniform_int(const double* lanes) const {
    const int value = static_cast<int>(lanes[0]);
    for (std::size_t lane = 1; lane < width(); ++lane) {
      if (static_cast<int>(lanes[lane]) != value) {
        throw BatchDivergence{};
      }
    }
    return value;
  }

  // --- Event emission: lockstep across lanes ------------------------------

  void emit_compute(const double* elapsed, const double* demand) {
    for (std::size_t lane = 0; lane < width(); ++lane) {
      if (std::isnan(elapsed[lane]) || elapsed[lane] < 0) {
        throw BatchDivergence{};  // scalar path raises the exact error
      }
    }
    // Every lane shares one event structure, so one coalescing decision
    // covers all of them (mirrors Walker::emit_compute per lane).
    if (!out[0].events.empty() &&
        out[0].events.back().kind == EvKind::Compute) {
      for (std::size_t lane = 0; lane < width(); ++lane) {
        out[lane].events.back().elapsed += elapsed[lane];
        out[lane].events.back().demand += demand[lane];
      }
      return;
    }
    for (std::size_t lane = 0; lane < width(); ++lane) {
      out[lane].events.push_back(
          {EvKind::Compute, elapsed[lane], demand[lane], 0, 0, 0});
    }
  }

  void emit_busy(const double* elapsed) {
    if (!out[0].events.empty() && out[0].events.back().kind == EvKind::Busy) {
      for (std::size_t lane = 0; lane < width(); ++lane) {
        out[lane].events.back().elapsed += elapsed[lane];
      }
      return;
    }
    for (std::size_t lane = 0; lane < width(); ++lane) {
      out[lane].events.push_back({EvKind::Busy, elapsed[lane], 0, 0, 0, 0});
    }
  }

  /// Splices per-lane sub-results, re-coalescing Compute/Busy runs like
  /// Walker::append_event (sub-results are lockstep, so event i has the
  /// same kind in every lane).
  void append_events(const std::vector<WalkResult>& from) {
    std::vector<double> elapsed(width());
    std::vector<double> demand(width());
    for (std::size_t i = 0; i < from[0].events.size(); ++i) {
      const EvKind kind = from[0].events[i].kind;
      if (kind == EvKind::Compute) {
        for (std::size_t lane = 0; lane < width(); ++lane) {
          elapsed[lane] = from[lane].events[i].elapsed;
          demand[lane] = from[lane].events[i].demand;
        }
        emit_compute(elapsed.data(), demand.data());
      } else if (kind == EvKind::Busy) {
        for (std::size_t lane = 0; lane < width(); ++lane) {
          elapsed[lane] = from[lane].events[i].elapsed;
        }
        emit_busy(elapsed.data());
      } else {
        for (std::size_t lane = 0; lane < width(); ++lane) {
          out[lane].events.push_back(from[lane].events[i]);
        }
      }
    }
  }

  // --- Control flow -------------------------------------------------------

  void run_diagram(const ActivityDiagram& diagram) {
    const Node* initial = diagram.initial();
    if (initial == nullptr) {
      throw BatchDivergence{};  // scalar reports the missing initial node
    }
    walk(diagram, *initial);
  }

  /// Walks from `start` to a Final node.  Forks and probabilistic
  /// decisions diverge, so no stop-kind machinery is needed here.
  void walk(const ActivityDiagram& diagram, const Node& start) {
    const Node* node = &start;
    while (node != nullptr) {
      if (++*steps > step_limit) {
        throw BatchDivergence{};  // scalar raises the step-limit error
      }
      if (st.budget != nullptr && (*steps & 1023U) == 0) {
        st.budget->checkpoint("analytic-walk");
      }
      if (node->kind() == NodeKind::Fork) {
        throw BatchDivergence{};
      }
      if (node->kind() == NodeKind::Decision &&
          decision_is_probabilistic(diagram, *node)) {
        throw BatchDivergence{};
      }
      execute_node(*node);
      if (node->kind() == NodeKind::Final) {
        return;
      }
      node = next_node(diagram, *node);
    }
  }

  [[nodiscard]] bool decision_is_probabilistic(const ActivityDiagram& diagram,
                                               const Node& node) const {
    for (const auto* edge : diagram.outgoing(node.id())) {
      if (edge->tag_number(uml::tag::kProb).has_value()) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] const Node* next_node(const ActivityDiagram& diagram,
                                      const Node& node) const {
    const auto outgoing = diagram.outgoing(node.id());
    if (node.kind() == NodeKind::Decision) {
      const uml::ControlFlow* chosen = nullptr;
      const uml::ControlFlow* fallback = nullptr;
      const int uid = programs_of(node).uid;
      std::vector<double> value(width());
      for (const auto* edge : outgoing) {
        if (edge->is_else()) {
          if (fallback == nullptr) {
            fallback = edge;
          }
          continue;
        }
        const expr::Compiled* guard = impl.program->guard(*edge);
        if (guard == nullptr) {
          continue;  // unguarded edge out of a decision: never taken
        }
        eval_program(*guard, uid, value.data());
        const bool taken = expr::truthy(value[0]);
        for (std::size_t lane = 1; lane < width(); ++lane) {
          if (expr::truthy(value[lane]) != taken) {
            throw BatchDivergence{};  // lanes branch apart
          }
        }
        if (taken) {
          chosen = edge;
          break;
        }
      }
      if (chosen == nullptr) {
        chosen = fallback;
      }
      if (chosen == nullptr) {
        throw BatchDivergence{};  // scalar raises the no-guard error
      }
      return diagram.node(chosen->target());
    }
    if (outgoing.empty()) {
      return nullptr;
    }
    if (outgoing.size() > 1) {
      throw BatchDivergence{};
    }
    return diagram.node(outgoing[0]->target());
  }

  void execute_node(const Node& node) {
    ++st.elements;
    switch (node.kind()) {
      case NodeKind::Initial:
      case NodeKind::Final:
      case NodeKind::Merge:
      case NodeKind::Join:
      case NodeKind::Decision:
        return;
      case NodeKind::Fork:  // diverged by walk() before reaching here
        throw BatchDivergence{};
      case NodeKind::Action:
        execute_action(node);
        return;
      case NodeKind::Activity:
        execute_activity(node);
        return;
      case NodeKind::Loop:
        execute_loop(node);
        return;
    }
  }

  void execute_action(const Node& node) {
    const NodePrograms& programs = programs_of(node);
    require_fragment_free(programs);
    const int uid = programs.uid;
    const std::string& stereotype = node.stereotype();
    const std::size_t w = width();
    std::vector<double> value(w);
    std::vector<double> seconds(w);
    if (stereotype == uml::stereo::kActionPlus || stereotype.empty()) {
      if (programs.cost().has_value()) {
        eval_tag(programs.cost(), uid, value.data());
      } else if (const auto time = node.tag_number(uml::tag::kTime)) {
        std::fill(value.begin(), value.end(), *time);
      } else {
        std::fill(value.begin(), value.end(), 0.0);
      }
      for (std::size_t lane = 0; lane < w; ++lane) {
        seconds[lane] = machine::compute_time(st.lanes[lane], value[lane]);
      }
      emit_compute(seconds.data(), seconds.data());
    } else if (stereotype == uml::stereo::kSend) {
      if (!allow_comm) {
        throw BatchDivergence{};
      }
      eval_tag(programs.dest(), uid, value.data());
      const int dest = uniform_int(value.data());
      eval_tag(programs.size(), uid, value.data());  // bytes may vary
      const int tag =
          static_cast<int>(node.tag_number(uml::tag::kMsgTag).value_or(0));
      for (std::size_t lane = 0; lane < w; ++lane) {
        seconds[lane] = st.lanes[lane].network_overhead;
      }
      emit_busy(seconds.data());
      for (std::size_t lane = 0; lane < w; ++lane) {
        out[lane].events.push_back(
            {EvKind::Send, 0, 0, value[lane], dest, tag});
      }
    } else if (stereotype == uml::stereo::kRecv) {
      if (!allow_comm) {
        throw BatchDivergence{};
      }
      eval_tag(programs.source(), uid, value.data());
      const int source = uniform_int(value.data());
      const int tag =
          static_cast<int>(node.tag_number(uml::tag::kMsgTag).value_or(0));
      for (std::size_t lane = 0; lane < w; ++lane) {
        out[lane].events.push_back({EvKind::Recv, 0, 0, 0, source, tag});
      }
    } else if (stereotype == uml::stereo::kBarrier) {
      if (!allow_comm) {
        throw BatchDivergence{};
      }
      for (std::size_t lane = 0; lane < w; ++lane) {
        out[lane].events.push_back(
            {EvKind::Barrier, machine::barrier_time(st.lanes[lane]), 0, 0, 0,
             0});
      }
    } else if (stereotype == uml::stereo::kBroadcast ||
               stereotype == uml::stereo::kReduce ||
               stereotype == uml::stereo::kAllReduce ||
               stereotype == uml::stereo::kScatter ||
               stereotype == uml::stereo::kGather) {
      if (!allow_comm) {
        throw BatchDivergence{};
      }
      eval_tag(programs.size(), uid, value.data());
      for (std::size_t lane = 0; lane < w; ++lane) {
        const double hold = workload::CollectiveElement::model_time(
            st.lanes[lane], collective_kind(stereotype),
            st.lanes[lane].processes, value[lane]);
        out[lane].events.push_back({EvKind::Barrier, hold, 0, 0, 0, 0});
      }
    } else if (stereotype == uml::stereo::kOmpFor) {
      std::vector<double> itercost(w);
      eval_tag(programs.iterations(), uid, value.data());
      eval_tag(programs.itercost(), uid, itercost.data());
      std::string schedule = node.tag_string(uml::tag::kSchedule);
      if (schedule.empty()) {
        schedule = "static";
      }
      const auto chunk = static_cast<std::int64_t>(
          node.tag_number(uml::tag::kChunk).value_or(0));
      // Parallel regions diverge, so a batched <<ompfor>> is always
      // outside one: threads = 1, tid = 0 — the scalar walker's values.
      for (std::size_t lane = 0; lane < w; ++lane) {
        const double compute = workload::WorkshareElement::model_compute(
            value[lane], itercost[lane], schedule, chunk, /*threads=*/1,
            /*tid=*/0);
        seconds[lane] = machine::compute_time(st.lanes[lane], compute);
      }
      emit_compute(seconds.data(), seconds.data());
    } else if (stereotype == uml::stereo::kOmpBarrier) {
      // No cost, exactly like the scalar walker.
    } else {
      throw BatchDivergence{};  // scalar raises the unsupported-stereotype error
    }
  }

  void execute_activity(const Node& node) {
    const NodePrograms& programs = programs_of(node);
    require_fragment_free(programs);
    const std::string& stereotype = node.stereotype();
    if (stereotype == uml::stereo::kOmpParallel ||
        stereotype == uml::stereo::kOmpCritical) {
      throw BatchDivergence{};
    }
    const ActivityDiagram* sub_diagram =
        impl.model->diagram(node.subdiagram_id());
    if (sub_diagram == nullptr) {
      throw BatchDivergence{};
    }
    // <<activity+>> (or unstereotyped composite): inline content.
    run_diagram(*sub_diagram);
  }

  void execute_loop(const Node& node) {
    const NodePrograms& programs = programs_of(node);
    require_fragment_free(programs);
    const ActivityDiagram* body = impl.model->diagram(node.subdiagram_id());
    if (body == nullptr) {
      throw BatchDivergence{};
    }
    const std::size_t w = width();
    std::vector<double> raw(w);
    eval_tag(programs.iterations(), programs.uid, raw.data());
    std::vector<std::int64_t> iterations(w);
    bool uniform = true;
    for (std::size_t lane = 0; lane < w; ++lane) {
      if (std::isnan(raw[lane]) || raw[lane] < 0) {
        throw BatchDivergence{};  // scalar raises the exact loop error
      }
      iterations[lane] = static_cast<std::int64_t>(raw[lane]);
      uniform = uniform && iterations[lane] == iterations[0];
    }
    if (uniform && iterations[0] == 0) {
      return;
    }
    if (!uniform) {
      for (const auto trips : iterations) {
        if (trips == 0) {
          throw BatchDivergence{};  // zero/nonzero mix: structure diverges
        }
      }
    }
    bindings->push_back({programs.loop_var_slot, false});
    std::vector<double> loop_lanes(w, 0.0);
    double* const saved = (*frame)[programs.loop_var_slot];
    (*frame)[programs.loop_var_slot] = loop_lanes.data();

    // First iteration into capture buffers, exactly like the scalar
    // walker: when the body never reads the trip variable and is pure
    // compute, the remaining per-lane iterations are the first one times
    // (n_lane - 1) — which also covers lane-varying trip counts, the one
    // place batched control flow may differ per lane.
    std::vector<WalkResult> first(w);
    {
      BatchWalker walker = sub(first);
      walker.allow_comm = allow_comm;
      walker.run_diagram(*body);
    }
    const bool collapsible =
        !bindings->back().read && compute_only(first[0].events);
    if (!uniform && !collapsible) {
      throw BatchDivergence{};  // per-trip replay needs one shared count
    }
    if (collapsible && st.counters != nullptr) {
      ++st.counters->loop_collapses;
    }
    append_events(first);
    if (collapsible) {
      std::vector<double> elapsed(w);
      std::vector<double> demand(w);
      for (std::size_t lane = 0; lane < w; ++lane) {
        const auto rest = static_cast<double>(iterations[lane] - 1);
        elapsed[lane] = rest * sum_elapsed(first[lane].events);
        demand[lane] = rest * sum_demand(first[lane].events);
      }
      emit_compute(elapsed.data(), demand.data());
    } else {
      for (std::int64_t k = 1; k < iterations[0]; ++k) {
        if (st.budget != nullptr) {
          st.budget->charge_loop_trips(1, "analytic-loop");
        }
        std::fill(loop_lanes.begin(), loop_lanes.end(),
                  static_cast<double>(k));
        run_diagram(*body);
      }
    }
    (*frame)[programs.loop_var_slot] = saved;
    bindings->pop_back();
  }

  void walk_process() {
    // Per-process locals, initialized in declaration order across lanes
    // and bound into the frame one by one (scalar walk_process order).
    std::vector<double> value(width());
    for (const auto& variable : impl.program->variables()) {
      if (variable.scope != uml::VariableScope::Local) {
        continue;
      }
      if (variable.initializer.has_value()) {
        eval_program(*variable.initializer, 0, value.data());
      } else {
        std::fill(value.begin(), value.end(), 0.0);
      }
      for (std::size_t lane = 0; lane < width(); ++lane) {
        locals[variable.slot * width() + lane] =
            coerce(variable.type, value[lane]);
      }
      (*frame)[variable.slot] = &locals[variable.slot * width()];
    }
    run_diagram(*impl.model->main_diagram());
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Impl::evaluate — walk, replay, bound
// ---------------------------------------------------------------------------

AnalyticReport AnalyticEstimator::Impl::evaluate(
    const machine::SystemParameters& params, obs::AnalyticCounters* counters,
    guard::Budget* budget) const {
  params.validate();
  EvalState st;
  st.counters = counters;
  st.budget = budget;
  st.params = params;
  st.np = static_cast<double>(params.processes);
  st.nt = static_cast<double>(params.threads_per_process);
  st.nn = static_cast<double>(params.nodes);
  st.ppn = static_cast<double>(params.processors_per_node);
  st.global_values.assign(program->slot_count(), 0.0);
  st.run_frame.assign(program->slot_count(), nullptr);
  st.run_frame[program->np_slot()] = &st.np;
  st.run_frame[program->nt_slot()] = &st.nt;
  st.run_frame[program->nn_slot()] = &st.nn;
  st.run_frame[program->ppn_slot()] = &st.ppn;
  FunctionCaller functions;
  functions.impl = this;
  functions.st = &st;

  // Global variables, initialized in declaration order and bound into
  // the run frame one by one (interpreter start_run semantics).
  std::size_t total_nodes = 0;
  for (const auto& diagram : model->diagrams()) {
    total_nodes += diagram->node_count();
  }
  for (const auto& variable : program->variables()) {
    if (variable.scope != uml::VariableScope::Global) {
      continue;
    }
    double value = 0;
    if (variable.initializer.has_value()) {
      expr::EvalContext ctx;
      ctx.frame = st.run_frame;
      ctx.functions = &functions;
      ctx.counters = counters != nullptr ? &counters->expr : nullptr;
      ctx.budget = budget;
      try {
        value = variable.initializer->eval(ctx);
      } catch (const expr::EvalError& error) {
        throw AnalyticError("initializer of variable " + variable.name +
                            ": " + error.what());
      }
    }
    st.global_values[variable.slot] = coerce(variable.type, value);
    st.run_frame[variable.slot] = &st.global_values[variable.slot];
  }

  const int np = params.processes;
  std::vector<WalkResult> storage;
  storage.reserve(static_cast<std::size_t>(np));
  std::vector<const WalkResult*> per_pid(static_cast<std::size_t>(np));

  const auto walk_one = [&](int pid) -> WalkResult {
    WalkResult result;
    std::vector<double> locals(program->slot_count(), 0.0);
    std::vector<double*> frame = st.run_frame;  // per-process frame
    std::vector<LoopBinding> bindings;
    std::uint64_t steps = 0;
    Walker walker(*this, st, result);
    walker.pid = pid;
    walker.frame = &frame;
    walker.locals = locals.data();
    walker.bindings = &bindings;
    walker.functions = &functions;
    walker.steps = &steps;
    walker.step_limit = 1000000ULL + 1000ULL * total_nodes;
    walker.walk_process();
    return result;
  };

  st.pid_queried = false;
  const std::uint64_t fragments_before = st.fragments_executed;
  storage.push_back(walk_one(0));
  if (!st.pid_queried && st.fragments_executed == fragments_before) {
    // The walk is process-independent (no pid/tid reads, no state
    // mutation): every process repeats the same timeline, so one walk
    // serves all np — the SPMD fast path that makes grid sweeps cheap.
    if (counters != nullptr) {
      ++counters->spmd_fast_path;
    }
    for (int pid = 0; pid < np; ++pid) {
      per_pid[static_cast<std::size_t>(pid)] = &storage[0];
    }
  } else {
    for (int pid = 1; pid < np; ++pid) {
      storage.push_back(walk_one(pid));
    }
    for (int pid = 0; pid < np; ++pid) {
      per_pid[static_cast<std::size_t>(pid)] =
          &storage[static_cast<std::size_t>(pid)];
    }
  }

  ReplayScratch scratch;
  return assemble_report(params, per_pid, st.elements, counters, budget,
                         scratch);
}

// ---------------------------------------------------------------------------
// Impl::evaluate_batch — one batched walk, per-lane finalize
// ---------------------------------------------------------------------------

std::vector<AnalyticReport> AnalyticEstimator::Impl::evaluate_batch(
    std::span<const machine::SystemParameters> lanes,
    obs::AnalyticCounters* counters, guard::Budget* budget,
    std::size_t* lanes_fallback) const {
  if (lanes.size() > 1) {
    try {
      return evaluate_batch_fast(lanes, counters, budget);
    } catch (const guard::GuardError&) {
      throw;  // tripped budgets propagate — retrying would double-charge
    } catch (...) {
      // Divergence or a lane error: the scalar loop below re-evaluates
      // every lane exactly, raising any error with its scalar message.
      if (lanes_fallback != nullptr) {
        *lanes_fallback += lanes.size();
      }
    }
  }
  std::vector<AnalyticReport> reports;
  reports.reserve(lanes.size());
  for (const auto& params : lanes) {
    reports.push_back(evaluate(params, counters, budget));
  }
  return reports;
}

std::vector<AnalyticReport> AnalyticEstimator::Impl::evaluate_batch_fast(
    std::span<const machine::SystemParameters> lanes,
    obs::AnalyticCounters* counters, guard::Budget* budget) const {
  const std::size_t width = lanes.size();
  for (const auto& params : lanes) {
    params.validate();
  }
  BatchState st;
  st.lanes = lanes;
  st.width = width;
  st.counters = counters;
  st.budget = budget;
  st.np_lanes.resize(width);
  st.nt_lanes.resize(width);
  st.nn_lanes.resize(width);
  st.ppn_lanes.resize(width);
  for (std::size_t lane = 0; lane < width; ++lane) {
    st.np_lanes[lane] = static_cast<double>(lanes[lane].processes);
    st.nt_lanes[lane] =
        static_cast<double>(lanes[lane].threads_per_process);
    st.nn_lanes[lane] = static_cast<double>(lanes[lane].nodes);
    st.ppn_lanes[lane] =
        static_cast<double>(lanes[lane].processors_per_node);
  }
  st.global_values.assign(program->slot_count() * width, 0.0);
  st.run_frame.assign(program->slot_count(), nullptr);
  st.run_frame[program->np_slot()] = st.np_lanes.data();
  st.run_frame[program->nt_slot()] = st.nt_lanes.data();
  st.run_frame[program->nn_slot()] = st.nn_lanes.data();
  st.run_frame[program->ppn_slot()] = st.ppn_lanes.data();
  BatchFunctionCaller functions;
  functions.impl = this;
  functions.st = &st;

  std::size_t total_nodes = 0;
  for (const auto& diagram : model->diagrams()) {
    total_nodes += diagram->node_count();
  }

  // Global variables across lanes, initialized in declaration order and
  // bound one by one (identical semantics to the scalar init loop; the
  // scalar path evaluates them with pid = tid = 0 too).
  std::vector<double> value(width);
  for (const auto& variable : program->variables()) {
    if (variable.scope != uml::VariableScope::Global) {
      continue;
    }
    if (variable.initializer.has_value()) {
      expr::BatchEvalContext ctx;
      ctx.frame = st.run_frame;
      ctx.width = width;
      ctx.functions = &functions;
      ctx.counters = counters != nullptr ? &counters->expr : nullptr;
      ctx.budget = budget;
      variable.initializer->eval_batch(ctx, value.data());
    } else {
      std::fill(value.begin(), value.end(), 0.0);
    }
    for (std::size_t lane = 0; lane < width; ++lane) {
      st.global_values[variable.slot * width + lane] =
          coerce(variable.type, value[lane]);
    }
    st.run_frame[variable.slot] = &st.global_values[variable.slot * width];
  }

  // One batched walk covers every lane AND every rank: pid/tid reads and
  // fragments diverge inside, so a walk that completes is exactly the
  // walk the scalar SPMD fast path would share across all processes.
  std::vector<WalkResult> lane_results(width);
  std::vector<double> locals(program->slot_count() * width, 0.0);
  std::vector<double*> frame = st.run_frame;
  std::vector<LoopBinding> bindings;
  std::uint64_t steps = 0;
  BatchWalker walker(*this, st, lane_results);
  walker.frame = &frame;
  walker.locals = locals.data();
  walker.bindings = &bindings;
  walker.functions = &functions;
  walker.steps = &steps;
  walker.step_limit = 1000000ULL + 1000ULL * total_nodes;
  walker.walk_process();

  std::vector<AnalyticReport> reports;
  reports.reserve(width);
  // One scratch (and one per-pid pointer table) serves every lane's
  // finalize — the replay working set recurs, so after the first lane
  // the per-lane heap traffic is just the report itself.
  ReplayScratch scratch;
  std::vector<const WalkResult*> per_pid;
  for (std::size_t lane = 0; lane < width; ++lane) {
    if (counters != nullptr) {
      ++counters->spmd_fast_path;  // one shared walk per lane, as scalar
    }
    per_pid.assign(static_cast<std::size_t>(lanes[lane].processes),
                   &lane_results[lane]);
    reports.push_back(assemble_report(lanes[lane], per_pid, st.elements,
                                      counters, budget, scratch));
  }
  return reports;
}

// ---------------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------------

std::string AnalyticReport::machine_report() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  for (std::size_t n = 0; n < node_loads.size(); ++n) {
    out << "node" << n << ": utilization " << node_loads[n].utilization
        << ", demand " << node_loads[n].compute_demand << " s, processes "
        << node_loads[n].processes << '\n';
  }
  return out.str();
}

std::string AnalyticReport::summary() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(12);
  out << "predicted time: " << predicted_time << " s (analytic)\n";
  out << "processes:      " << processes << '\n';
  out << "elements:       " << evaluated_elements << '\n';
  for (const auto& [pid, finish] : per_process_finish) {
    out << "  p" << pid << " finished at " << finish << " s\n";
  }
  const std::string machine = machine_report();
  if (!machine.empty()) {
    out << "-- machine --\n" << machine;
  }
  return out.str();
}

AnalyticEstimator::AnalyticEstimator(const uml::Model& model) {
  try {
    impl_ = std::make_unique<Impl>(lower::lower(model));
  } catch (const lower::LowerError& error) {
    throw AnalyticError(error.what());
  }
}

AnalyticEstimator::AnalyticEstimator(uml::Model&& model) {
  try {
    impl_ = std::make_unique<Impl>(lower::lower(std::move(model)));
  } catch (const lower::LowerError& error) {
    throw AnalyticError(error.what());
  }
}

AnalyticEstimator::AnalyticEstimator(lower::ModelProgramPtr program) {
  if (program == nullptr) {
    throw AnalyticError("null model program");
  }
  impl_ = std::make_unique<Impl>(std::move(program));
}

AnalyticEstimator::~AnalyticEstimator() = default;

AnalyticReport AnalyticEstimator::evaluate(
    const machine::SystemParameters& params) const {
  return impl_->evaluate(params, nullptr, nullptr);
}

AnalyticReport AnalyticEstimator::evaluate(
    const machine::SystemParameters& params,
    obs::AnalyticCounters* counters) const {
  return impl_->evaluate(params, counters, nullptr);
}

AnalyticReport AnalyticEstimator::evaluate(
    const machine::SystemParameters& params, obs::AnalyticCounters* counters,
    guard::Budget* budget) const {
  return impl_->evaluate(params, counters, budget);
}

std::vector<AnalyticReport> AnalyticEstimator::evaluate_batch(
    std::span<const machine::SystemParameters> params,
    obs::AnalyticCounters* counters, guard::Budget* budget,
    std::size_t* lanes_fallback) const {
  return impl_->evaluate_batch(params, counters, budget, lanes_fallback);
}

lower::ModelProgramPtr AnalyticEstimator::lowering() const {
  return impl_->program;
}

double AnalyticEstimator::expr_compile_seconds() const {
  return impl_->program->stats().expr_compile_seconds;
}

std::size_t AnalyticEstimator::expr_program_count() const {
  return impl_->program->stats().expr_programs;
}

}  // namespace prophet::analytic
